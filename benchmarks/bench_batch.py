"""Batched multi-scenario assembly benchmark: one replay, ``S`` scenarios.

A :class:`~repro.core.batch.ScenarioBatch` assembles ``S`` independent
parameter sets (here: per-scenario body forcing) through **one** tape
replay / generated kernel with ``(S, lanes)``-shaped buffers, paying
Python dispatch, gather indices and the scatter pattern once per batch
instead of once per scenario.  This bench measures scenarios/second for
``S in {1, 4, 16, 64}`` in both ``compiled`` and ``codegen`` modes
against the serial per-scenario loop, asserts per-scenario **bitwise**
identity first, and feeds rows (tagged ``"benchmark": "batch"`` with an
explicit ``"scenarios"`` key) into ``BENCH_variants.json`` +
``BENCH_history.jsonl`` -- ``check_regression.py`` keys on
``scenarios``, so ``S=1`` and ``S=16`` rows never gate each other.

The acceptance floor sits where the win structurally lives: the
dispatch-bound B and P variants must clear >= 3x over the serial loop at
``S=16``; the restructured RS/RSP/RSPR variants are already near the
bandwidth roofline (batching amortizes dispatch they barely pay), so
they are only guarded against regression (>= 0.85x parity).

Runnable standalone (used by the CI batch smoke step)::

    PYTHONPATH=src python benchmarks/bench_batch.py --smoke
"""

import argparse
import pathlib
import sys
import time

import numpy as np
import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.core import ScenarioBatch, UnifiedAssembler, variant_names  # noqa: E402
from repro.fem import box_tet_mesh  # noqa: E402
from repro.physics import AssemblyParams  # noqa: E402

VECTOR_DIM = 1024
REPEATS = 5
SERIAL_REPEATS = 3
SIZES = (1, 4, 16, 64)
MODES = ("compiled", "codegen")
#: variants whose serial loop is dispatch-bound -- the batching win
DISPATCH_BOUND = ("B", "P")
#: the tentpole acceptance floor at S=16 for dispatch-bound variants
BATCH_FLOOR = 3.0
#: regression guard for the bandwidth-bound restructured variants
PARITY_FLOOR = 0.85


def forcing_batch(size):
    """``S`` scenarios varying only the body forcing.

    Forcing is the one batchable column every variant accepts: the
    specialized RS/RSP/RSPR variants bake density/viscosity/vreman_c
    into the kernel, so those columns must stay uniform.
    """
    return ScenarioBatch([
        AssemblyParams(body_force=(0.0, 0.0, 0.1 * (s + 1)))
        for s in range(size)
    ])


def _best_of(fn, repeats=REPEATS):
    walls = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        walls.append(time.perf_counter() - t0)
    return min(walls)


def batch_row(mesh, velocity, variant, mode, size, vector_dim=VECTOR_DIM,
              repeats=REPEATS, tracer=None):
    """Time one (variant, mode, S) cell; asserts bitwise identity first."""
    kwargs = {} if tracer is None else {"tracer": tracer}
    batch = forcing_batch(size)
    asm = UnifiedAssembler(
        mesh, batch[0], vector_dim=vector_dim, mode=mode, **kwargs
    )
    rhs = asm.run_batch(variant, batch, velocity)  # warms the batched path
    serial = [
        UnifiedAssembler(
            mesh, batch[s], vector_dim=vector_dim, mode=mode, **kwargs
        )
        for s in range(size)
    ]
    for s in range(size):  # bitwise identity; also warms the serial loop
        ref = serial[s].assemble(variant, velocity)
        assert np.array_equal(rhs[s], ref), (
            f"{variant}/{mode} S={size}: scenario {s} not bit-identical"
        )

    t_batch = _best_of(
        lambda: asm.run_batch(variant, batch, velocity), repeats
    )
    t_serial = _best_of(
        lambda: [a.assemble(variant, velocity) for a in serial],
        SERIAL_REPEATS,
    )
    return {
        "benchmark": "batch",
        "variant": variant,
        "mode": mode,
        "nelem": int(mesh.nelem),
        "vector_dim": int(vector_dim),
        "scenarios": int(size),
        "wall_ms": t_batch * 1e3,
        "serial_loop_ms": t_serial * 1e3,
        "scenarios_per_s": size / t_batch,
        "speedup_vs_serial": t_serial / t_batch,
        "melem_per_s": mesh.nelem * size / t_batch / 1e6,
    }


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("size", tuple(s for s in SIZES if s != 16))
def test_batch_scaling(
    mode, size, bench_mesh, bench_velocity, bench_tracer, bench_extra, capsys,
):
    """Scenarios/s scaling of the baseline variant over the S sweep.

    S=16 is covered (with floors) by ``test_batch_floor_s16``; skipping
    it here keeps every (variant, mode, S) key single-rowed in the bench
    artifacts.
    """
    row = batch_row(
        bench_mesh, bench_velocity, "B", mode, size, tracer=bench_tracer
    )
    bench_extra.append(row)
    with capsys.disabled():
        print(
            f"\nbatch B/{mode} S={size:>2d}: "
            f"{row['scenarios_per_s']:8.1f} scenarios/s "
            f"({row['wall_ms']:7.1f} ms batched vs "
            f"{row['serial_loop_ms']:7.1f} ms serial loop, "
            f"{row['speedup_vs_serial']:.2f}x)"
        )
    # larger batches amortize more dispatch: the sweep must not lose to
    # the serial loop anywhere beyond noise
    assert row["speedup_vs_serial"] > PARITY_FLOOR


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("variant", variant_names())
def test_batch_floor_s16(
    variant, mode, bench_mesh, bench_velocity, bench_tracer, bench_extra,
    capsys,
):
    """The tentpole floor: >=3x at S=16 for dispatch-bound B/P; parity
    for the bandwidth-bound restructured variants."""
    row = batch_row(
        bench_mesh, bench_velocity, variant, mode, 16, tracer=bench_tracer
    )
    bench_extra.append(row)
    with capsys.disabled():
        print(
            f"\nbatch {variant:>5s}/{mode} S=16: "
            f"{row['scenarios_per_s']:8.1f} scenarios/s "
            f"({row['speedup_vs_serial']:.2f}x vs serial loop)"
        )
    if variant in DISPATCH_BOUND:
        assert row["speedup_vs_serial"] >= BATCH_FLOOR, (
            f"{variant}/{mode}: batched S=16 speedup "
            f"{row['speedup_vs_serial']:.2f}x below the {BATCH_FLOOR}x floor"
        )
    else:
        assert row["speedup_vs_serial"] > PARITY_FLOOR


def main(argv=None):
    """Standalone smoke: S=4 bitwise identity on a small mesh + one row."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small mesh, bitwise checks + one bench row (CI smoke step)",
    )
    args = parser.parse_args(argv)
    smoke = args.smoke
    mesh = box_tet_mesh(4, 4, 4) if smoke else box_tet_mesh(12, 12, 16)
    vd = 64 if smoke else VECTOR_DIM
    size = 4 if smoke else 16
    rng = np.random.default_rng(0)
    velocity = 0.1 * rng.standard_normal((mesh.nnode, 3))
    batch = forcing_batch(size)
    failed = False
    for mode in MODES:
        for variant in variant_names():
            asm = UnifiedAssembler(mesh, batch[0], vector_dim=vd, mode=mode)
            rhs = asm.run_batch(variant, batch, velocity)
            same = all(
                np.array_equal(
                    rhs[s],
                    UnifiedAssembler(
                        mesh, batch[s], vector_dim=vd, mode=mode
                    ).assemble(variant, velocity),
                )
                for s in range(size)
            )
            print(
                f"batch {variant:>5s}/{mode} S={size}: bitwise "
                f"{'OK' if same else 'MISMATCH'}"
            )
            failed |= not same
    if not failed:
        row = batch_row(
            mesh, velocity, "B", "compiled", size, vector_dim=vd, repeats=3
        )
        print(
            f"batch B/compiled S={size}: {row['scenarios_per_s']:.1f} "
            f"scenarios/s ({row['speedup_vs_serial']:.2f}x vs serial loop)"
        )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
