"""Generated-kernel benchmark: interpreted vs tape replay vs codegen.

The compiled tape (PR 3) still replays op-by-op through numpy ufunc
dispatch; :mod:`repro.core.codegen` lowers the same tape to fused,
exec-compiled Python source with hoisted loop invariants.  This bench
times all three backends per variant on the 14k-element bench mesh at
``VECTOR_DIM=1024``, asserts the outputs are **bit-identical** first,
and feeds per-variant rows (tagged ``"benchmark": "codegen"``) into
``BENCH_variants.json`` via the ``bench_extra`` fixture.

The speedup floor is asserted where the win structurally lives: the
dispatch/arena-bound B and P tapes (211-buffer replay arenas, thousands
of short-lived ops) must clear >= 1.5x over tape replay.  The
hand-restructured RS/RSP/RSPR tapes are already near the machine's
bandwidth roofline -- replay moves barely more bytes than the fused
kernel does -- so they are only guarded against regression (codegen must
not be slower than replay beyond noise).

A second microbench quantifies pure dispatch overhead: statements/sec of
the RS generated kernel at ``vector_dim`` 32 vs 1024 (small groups pay
per-call dispatch on every one of the ~100 statements per chunk; large
groups amortize it).  Those rows land in ``BENCH_history.jsonl`` via the
same session artifact writer.

Runnable standalone (used by the CI codegen smoke step)::

    PYTHONPATH=src python benchmarks/bench_codegen.py --smoke
"""

import argparse
import pathlib
import sys
import time

import numpy as np
import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.core import UnifiedAssembler, variant_names  # noqa: E402
from repro.core.codegen import generate_program, generated_kernel  # noqa: E402
from repro.core.tape import record_program  # noqa: E402
from repro.fem import box_tet_mesh, get_plan  # noqa: E402
from repro.physics import AssemblyParams  # noqa: E402

VECTOR_DIM = 1024
REPEATS = 7
#: variants whose replay is dispatch/arena bound -- the codegen win
DISPATCH_BOUND = ("B", "P")
#: regression guard for the bandwidth-bound restructured variants
PARITY_FLOOR = 0.85


def _best_of(fn, repeats=REPEATS):
    walls = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        walls.append(time.perf_counter() - t0)
    return min(walls)


def codegen_timings(mesh, params, velocity, variant, vector_dim=VECTOR_DIM,
                    repeats=REPEATS, tracer=None):
    """Time one variant three ways; asserts bitwise-equal RHS first."""
    kwargs = {} if tracer is None else {"tracer": tracer}
    interp = UnifiedAssembler(
        mesh, params, vector_dim=vector_dim, mode="interpreted", **kwargs
    )
    compiled = UnifiedAssembler(
        mesh, params, vector_dim=vector_dim, mode="compiled", **kwargs
    )
    gen = UnifiedAssembler(
        mesh, params, vector_dim=vector_dim, mode="codegen", **kwargs
    )
    ref = interp.assemble(variant, velocity)  # also warms pattern cache
    out = gen.assemble(variant, velocity)  # warms the generated kernel
    assert np.array_equal(ref, out), f"{variant}: codegen RHS not bit-identical"
    assert np.array_equal(compiled.assemble(variant, velocity), out)

    t_interp = _best_of(lambda: interp.assemble(variant, velocity), repeats)
    t_compiled = _best_of(lambda: compiled.assemble(variant, velocity), repeats)
    t_codegen = _best_of(lambda: gen.assemble(variant, velocity), repeats)
    kern = generated_kernel(
        get_plan(mesh), variant, vector_dim,
        kernel_params=params.as_kernel_params(),
    )
    report = kern.program.report
    replay_report = record_program(variant, params.as_kernel_params()).report
    return {
        "benchmark": "codegen",
        "variant": variant,
        "mode": "codegen",
        "nelem": int(mesh.nelem),
        "vector_dim": int(vector_dim),
        "interpreted_ms": t_interp * 1e3,
        "compiled_ms": t_compiled * 1e3,
        "codegen_ms": t_codegen * 1e3,
        "wall_ms": t_codegen * 1e3,
        "melem_per_s": mesh.nelem / t_codegen / 1e6,
        "speedup": t_compiled / t_codegen,
        "speedup_vs_interpreted": t_interp / t_codegen,
        "ops_fused": report.fused_ops,
        "ops_hoisted": report.hoisted_ops,
        "buffers_live": report.buffers_live,
        "replay_buffers_live": replay_report.buffers_live,
    }


def dispatch_rows(mesh, params, velocity, variant="RS", repeats=REPEATS):
    """Statements/sec of the generated kernel at small vs large groups.

    ``chunk_groups=1`` pins one element group per chunk, so the array
    length each generated statement sees is exactly ``vector_dim`` --
    at 32 lanes every statement is pure ufunc dispatch, at 1024 lanes
    the dispatch cost is amortized over 32x the work.
    """
    rows = []
    kp = params.as_kernel_params()
    for vd in (32, 1024):
        asm = UnifiedAssembler(
            mesh, params, vector_dim=vd, mode="codegen", chunk_groups=1
        )
        asm.assemble(variant, velocity)  # warm
        wall = _best_of(lambda: asm.assemble(variant, velocity), repeats)
        program = generate_program(variant, vd, kernel_params=kp)
        kern = generated_kernel(get_plan(mesh), variant, vd, kernel_params=kp)
        stmts = len(program.stmt_costs) * kern.ngroups
        rows.append({
            "benchmark": "codegen_dispatch",
            "variant": variant,
            "mode": "codegen",
            "nelem": int(mesh.nelem),
            "vector_dim": int(vd),
            "wall_ms": wall * 1e3,
            "statements": stmts,
            "ops_per_s": stmts / wall,
            "melem_per_s": mesh.nelem / wall / 1e6,
        })
    return rows


@pytest.mark.parametrize("variant", variant_names())
def test_codegen_vs_replay(
    variant, bench_mesh, bench_params, bench_velocity, bench_tracer,
    bench_extra, capsys,
):
    """Generated kernels: bit-identical; >=1.5x over replay where
    replay is dispatch-bound (B/P); no regression elsewhere."""
    row = codegen_timings(
        bench_mesh, bench_params, bench_velocity, variant, tracer=bench_tracer
    )
    bench_extra.append(row)
    with capsys.disabled():
        print(
            f"\ncodegen {variant:>5s} [vd={row['vector_dim']}]: "
            f"interpreted {row['interpreted_ms']:7.1f} ms, "
            f"replay {row['compiled_ms']:6.1f} ms, "
            f"codegen {row['codegen_ms']:6.1f} ms "
            f"({row['speedup']:.2f}x vs replay, "
            f"{row['buffers_live']} vs {row['replay_buffers_live']} buffers)"
        )
    if variant in DISPATCH_BOUND:
        # the acceptance floor: fusing away dispatch + the 211-buffer
        # arena must be worth >=1.5x where replay pays for both
        assert row["speedup"] > 1.5
        assert row["buffers_live"] < row["replay_buffers_live"]
    else:
        assert row["speedup"] > PARITY_FLOOR


def test_dispatch_overhead_microbench(
    bench_mesh, bench_params, bench_velocity, bench_extra, capsys,
):
    """Small groups are dispatch-bound: stmts/sec collapses at vd=32."""
    rows = dispatch_rows(bench_mesh, bench_params, bench_velocity)
    bench_extra.extend(rows)
    small, large = rows
    with capsys.disabled():
        print(
            f"\ncodegen dispatch RS: vd=32 {small['ops_per_s']:,.0f} stmt/s "
            f"({small['wall_ms']:.1f} ms), vd=1024 "
            f"{large['ops_per_s']:,.0f} stmt/s ({large['wall_ms']:.1f} ms)"
        )
    # more statements per second at the small group size (more, smaller
    # chunks) but far more wall time: the per-statement dispatch floor
    assert small["wall_ms"] > large["wall_ms"]


def main(argv=None):
    """Standalone smoke: compile + bitwise-check all five variants."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small mesh, bitwise checks only (CI codegen smoke step)",
    )
    args = parser.parse_args(argv)
    mesh = box_tet_mesh(4, 4, 4) if args.smoke else box_tet_mesh(12, 12, 16)
    vd = 64 if args.smoke else VECTOR_DIM
    params = AssemblyParams(body_force=(0.0, 0.0, 0.1))
    rng = np.random.default_rng(0)
    velocity = 0.1 * rng.standard_normal((mesh.nnode, 3))
    failed = False
    for variant in variant_names():
        interp = UnifiedAssembler(mesh, params, vector_dim=vd)
        gen = UnifiedAssembler(mesh, params, vector_dim=vd, mode="codegen")
        same = np.array_equal(
            interp.assemble(variant, velocity),
            gen.assemble(variant, velocity),
        )
        kern = generated_kernel(
            get_plan(mesh), variant, vd,
            kernel_params=params.as_kernel_params(),
        )
        report = kern.program.report
        print(
            f"codegen {variant:>5s}: bitwise "
            f"{'OK' if same else 'MISMATCH'} "
            f"({report.fused_ops} fused, {report.hoisted_ops} hoisted, "
            f"{report.buffers_live} slab rows)"
        )
        failed |= not same
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
