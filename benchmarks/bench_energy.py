"""Section VI: energy-efficiency comparison (GPU vs full CPU node).

Run:  pytest benchmarks/bench_energy.py --benchmark-only -s
"""

import pytest

from repro.machine.energy import energy_comparison


def test_energy_report(study, capsys):
    gpu = study.gpu_table()
    cpu = study.cpu_table()
    out = study.energy(gpu, cpu)
    with capsys.disabled():
        print()
        print("Section VI energy estimate (per time step):")
        for dev, power in (("gpu", 421.0), ("cpu", 683.0)):
            for v, joules in out[dev].items():
                print(f"  {dev} {v:5s}: {joules:9.1f} J  (at {power:.0f} W)")
        r = out["ratios"]
        print(f"\n  best-vs-best CPU/GPU energy ratio: "
              f"{r['best_cpu_over_best_gpu']:.1f}x   (paper: ~4x, 82 J vs 21 J)")
        print(f"  baseline-vs-baseline:              "
              f"{r['baseline_cpu_over_baseline_gpu']:.2f}x  "
              "(paper: GPU was the less efficient option)")
    assert 2.0 < out["ratios"]["best_cpu_over_best_gpu"] < 8.0
    assert out["ratios"]["baseline_cpu_over_baseline_gpu"] < 1.0


def test_energy_with_paper_runtimes(capsys):
    """Sanity: feeding the paper's runtimes reproduces its joule numbers."""
    out = energy_comparison(
        {"B": 3773.0, "RSPR": 51.0}, {"B": 785.0, "RSP": 122.0}
    )
    assert out["gpu"]["RSPR"] == pytest.approx(21.5, abs=0.1)
    assert out["cpu"]["RSP"] == pytest.approx(83.3, abs=0.3)


def test_bench_energy(benchmark, study):
    gpu = study.gpu_table()
    cpu = study.cpu_table()
    benchmark(study.energy, gpu, cpu)
