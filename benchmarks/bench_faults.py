"""Fault-recovery overhead benchmark (the chaos campaign's cost sheet).

Four scenarios, each run clean and with one injected fault, measuring the
wall-clock price of the recovery machinery:

* ``worker_crash``   -- supervised pool: crash rank 1, retry on a
  respawned pool; per-chunk checksums must match the clean run bitwise.
* ``integrator_nan`` -- NaN in one RHS sweep: rollback + dt halving.
* ``solver_breakdown`` -- sabotaged CG matvec: deflation rescue (rung 1).
* ``tape_corruption`` -- corrupted codegen assembly: degradation to the
  compiled rung, validated against the reference.

Every scenario runs under a *private* metrics registry (installed
process-wide for its duration) so the bench session's registry stays
fault-free -- ``check_regression.py`` treats nonzero recovery counters in
``BENCH_variants.json`` as silent degradation.  Results are written to
``BENCH_faults.json`` plus a ``FAULT_events.jsonl`` fault-event log
(honouring ``REPRO_BENCH_DIR``), and summary rows ride along in
``BENCH_variants.json`` via the ``bench_extra`` fixture.

Runnable standalone::

    PYTHONPATH=src REPRO_FAULT_SEED=1234 python benchmarks/bench_faults.py
"""

import contextlib
import json
import os
import pathlib
import sys
import time

import numpy as np
import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.fem import box_tet_mesh  # noqa: E402
from repro.obs import MetricsRegistry, set_registry, write_bench_json  # noqa: E402
from repro.parallel import MultiprocessRunner, WorkerPolicy  # noqa: E402
from repro.physics import AssemblyParams  # noqa: E402
from repro.physics.fractional_step import (  # noqa: E402
    FractionalStepSolver,
    cfl_time_step,
)
from repro.physics.momentum import assemble_momentum_rhs  # noqa: E402
from repro.physics.pressure import PressureSolver  # noqa: E402
from repro.resilience import (  # noqa: E402
    FaultPlan,
    ResilientAssembler,
    fault_seed_from_env,
)

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

POLICY = WorkerPolicy(task_timeout=30.0, max_retries=2, backoff_base=0.01)


@contextlib.contextmanager
def scoped_registry(registry: MetricsRegistry):
    """Install ``registry`` process-wide for the scenario's duration.

    Fault accounting (``resilience.faults_injected``) always goes to the
    process-wide registry; scoping it keeps chaos counters out of the
    bench session's fault-free export.
    """
    from repro.obs import get_registry

    previous = get_registry()
    set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


# -- scenarios ---------------------------------------------------------------


def scenario_worker_crash(seed: int):
    mesh = box_tet_mesh(6, 6, 6)
    params = AssemblyParams()

    clean = MultiprocessRunner(mesh, params, repeats=1, policy=POLICY)
    _, t_clean = _timed(lambda: clean.measure([2]))

    plan = FaultPlan.single("worker", "crash", rank=1, index=0, seed=seed)
    registry = MetricsRegistry()
    with scoped_registry(registry):
        runner = MultiprocessRunner(
            mesh,
            params,
            repeats=1,
            policy=POLICY,
            fault_plan=plan,
            metrics=registry,
        )
        _, t_fault = _timed(lambda: runner.measure([2]))
    recovered = runner.chunk_checksums[2] == clean.chunk_checksums[2]
    return _row("worker_crash", t_clean, t_fault, recovered, registry, plan)


def scenario_integrator_nan(seed: int):
    mesh = box_tet_mesh(4, 4, 4)
    params = AssemblyParams()
    rng = np.random.default_rng(7)
    u0 = 0.05 * rng.standard_normal((mesh.nnode, 3))

    def run(plan, registry):
        solver = FractionalStepSolver(
            mesh, params, fault_plan=plan, metrics=registry
        )
        solver.set_velocity(u0)
        dt = cfl_time_step(mesh, solver.velocity, 0.4)
        for _ in range(3):
            solver.advance(dt)
        return solver

    _, t_clean = _timed(lambda: run(None, MetricsRegistry()))
    plan = FaultPlan.single("momentum_rhs", "nan", seed=seed, index=3)
    registry = MetricsRegistry()
    with scoped_registry(registry):
        solver, t_fault = _timed(lambda: run(plan, registry))
    recovered = bool(np.isfinite(solver.velocity).all()) and (
        solver.step_count == 3
    )
    return _row("integrator_nan", t_clean, t_fault, recovered, registry, plan)


def scenario_solver_breakdown(seed: int):
    mesh = box_tet_mesh(4, 4, 4)
    params = AssemblyParams()
    rng = np.random.default_rng(11)
    u = 0.05 * rng.standard_normal((mesh.nnode, 3))

    clean_solver = PressureSolver(mesh)
    clean, t_clean = _timed(
        lambda: clean_solver.solve(u, params.density, dt=0.01)
    )
    plan = FaultPlan.single("cg", "breakdown", seed=seed)
    registry = MetricsRegistry()
    with scoped_registry(registry):
        solver = PressureSolver(mesh, fault_plan=plan, metrics=registry)
        rescued, t_fault = _timed(
            lambda: solver.solve(u, params.density, dt=0.01)
        )
    recovered = bool(
        rescued.converged
        and rescued.rung == 1
        and np.abs(rescued.x - clean.x).max() < 1e-6
    )
    return _row(
        "solver_breakdown", t_clean, t_fault, recovered, registry, plan
    )


def scenario_tape_corruption(seed: int):
    mesh = box_tet_mesh(4, 4, 4)
    params = AssemblyParams()
    rng = np.random.default_rng(11)
    u = 0.05 * rng.standard_normal((mesh.nnode, 3))
    ref = assemble_momentum_rhs(mesh, u, params)

    clean_asm = ResilientAssembler(mesh, params, metrics=MetricsRegistry())
    _, t_clean = _timed(lambda: clean_asm(mesh, u, params))

    plan = FaultPlan.single("assembler", "nan", seed=seed)
    registry = MetricsRegistry()
    with scoped_registry(registry):
        asm = ResilientAssembler(
            mesh, params, fault_plan=plan, metrics=registry
        )
        rhs, t_fault = _timed(lambda: asm(mesh, u, params))
    recovered = bool(
        asm.mode == "compiled"
        and np.allclose(rhs, ref, rtol=1e-8, atol=1e-12)
    )
    return _row(
        "tape_corruption", t_clean, t_fault, recovered, registry, plan
    )


def _row(name, t_clean, t_fault, recovered, registry, plan):
    counters = {
        k: v["value"]
        for k, v in registry.snapshot().items()
        if k.startswith("resilience.") and v["value"]
    }
    row = {
        "benchmark": "faults",
        "variant": name,
        "clean_ms": t_clean * 1e3,
        "faulted_ms": t_fault * 1e3,
        "recovery_overhead": (t_fault / t_clean) - 1.0 if t_clean else 0.0,
        "recovered": bool(recovered),
        "counters": counters,
    }
    return row, registry, list(plan.events)


SCENARIOS = (
    scenario_worker_crash,
    scenario_integrator_nan,
    scenario_solver_breakdown,
    scenario_tape_corruption,
)


def run_scenarios(seed: int):
    """Run every chaos scenario; returns (rows, merged registry, events)."""
    rows, events = [], []
    merged = MetricsRegistry()
    for scenario in SCENARIOS:
        row, registry, plan_events = scenario(seed)
        rows.append(row)
        merged.merge(registry)
        events.extend(plan_events)
    return rows, merged, events


def write_fault_artifacts(outdir: str, rows, registry, events, seed: int):
    """Write ``BENCH_faults.json`` + ``FAULT_events.jsonl``; returns paths."""
    os.makedirs(outdir, exist_ok=True)
    bench_path = os.path.join(outdir, "BENCH_faults.json")
    write_bench_json(
        bench_path,
        rows,
        metrics=registry,
        meta={"source": "bench_faults", "fault_seed": seed},
    )
    events_path = os.path.join(outdir, "FAULT_events.jsonl")
    with open(events_path, "w", encoding="utf-8") as fh:
        for event in events:
            fh.write(json.dumps(event, sort_keys=True) + "\n")
    return bench_path, events_path


# -- pytest entry ------------------------------------------------------------


@pytest.fixture(scope="module")
def fault_results():
    return run_scenarios(fault_seed_from_env())


def test_every_fault_scenario_recovers(fault_results, bench_extra, capsys):
    rows, registry, events = fault_results
    seed = fault_seed_from_env()
    outdir = os.environ.get("REPRO_BENCH_DIR", str(_REPO_ROOT))
    paths = write_fault_artifacts(outdir, rows, registry, events, seed)
    bench_extra.extend(rows)
    with capsys.disabled():
        print()
        for row in rows:
            print(
                f"faults/{row['variant']:>17s}: clean {row['clean_ms']:8.1f} ms, "
                f"faulted {row['faulted_ms']:8.1f} ms "
                f"({row['recovery_overhead']:+.0%}), "
                f"recovered={row['recovered']}"
            )
        print(f"fault artifacts: {', '.join(paths)}")
    assert all(row["recovered"] for row in rows)
    assert len(events) >= len(rows)  # every scenario logged its fault


def test_fault_counters_stay_scoped(fault_results):
    """Scenario registries must not leak into the session registry."""
    from repro.obs import get_registry

    _, merged, _ = fault_results
    snap = merged.snapshot()
    assert snap["resilience.faults_injected"]["value"] >= len(SCENARIOS)
    session = get_registry().snapshot()
    for name, data in session.items():
        if name.startswith("resilience.") and data["kind"] == "counter":
            assert data["value"] == 0.0, f"{name} leaked into session registry"


def main() -> None:
    seed = fault_seed_from_env()
    rows, registry, events = run_scenarios(seed)
    for row in rows:
        status = "recovered" if row["recovered"] else "FAILED"
        print(
            f"{row['variant']:>17s}: clean {row['clean_ms']:8.1f} ms, "
            f"faulted {row['faulted_ms']:8.1f} ms "
            f"({row['recovery_overhead']:+.0%}) -- {status}"
        )
        for name, value in sorted(row["counters"].items()):
            print(f"{'':>19s}{name} = {value:g}")
    outdir = os.environ.get("REPRO_BENCH_DIR", str(_REPO_ROOT))
    paths = write_fault_artifacts(outdir, rows, registry, events, seed)
    print("artifacts:", *paths)
    if not all(row["recovered"] for row in rows):
        raise SystemExit(1)


if __name__ == "__main__":
    main()
