"""Figure 2: CPU strong scaling (Melem/s vs workers) with turbo-bin kinks.

The machine-model curve reproduces the paper's figure for the dual Icelake;
an optional real multiprocessing measurement exercises the trivially
parallel elemental assembly on this machine.

Run:  pytest benchmarks/bench_fig2_cpu_scaling.py --benchmark-only -s
"""

import pytest

from repro.parallel import MultiprocessRunner

WORKERS = [1, 2, 4, 8, 16, 17, 18, 24, 32, 48, 60, 71]


def test_fig2_report(study, capsys):
    curves = study.cpu_scaling(worker_counts=WORKERS)
    with capsys.disabled():
        print()
        print("Figure 2 (machine model): Melem/s vs workers")
        print("workers " + " ".join(f"{w:>7d}" for w in WORKERS))
        for variant, rows in curves.items():
            print(
                f"{variant:>7s} "
                + " ".join(f"{r['melem_per_s']:7.0f}" for r in rows)
            )
        print("\nwall time (ms):")
        for variant, rows in curves.items():
            print(
                f"{variant:>7s} "
                + " ".join(f"{r['wall_ms']:7.1f}" for r in rows)
            )
        print("\nkinks after 17 and 24 workers/socket = turbo bins "
              "3.4 / 3.1 / 2.6 GHz (paper Fig. 2).")
    # shape assertions: ordering of variants at every worker count
    for i in range(len(WORKERS)):
        b = curves["B"][i]["melem_per_s"]
        rs = curves["RS"][i]["melem_per_s"]
        rsp = curves["RSP"][i]["melem_per_s"]
        assert b < rs < rsp
    # linear scaling inside the first turbo bin
    m = curves["RSP"]
    assert m[4]["melem_per_s"] / m[0]["melem_per_s"] == pytest.approx(
        16.0, rel=1e-6
    )
    # sub-linear across the kink: 71 workers less than 71x of 1 worker
    assert m[-1]["melem_per_s"] < 71 * m[0]["melem_per_s"]


def test_bench_scaling_curve(benchmark, study):
    benchmark(study.cpu_scaling, ["RSP"], WORKERS)


def test_real_multiprocessing_point(bench_mesh, bench_params, capsys):
    """One real 2-process scaling measurement (kept tiny for CI)."""
    runner = MultiprocessRunner(bench_mesh, bench_params, repeats=1)
    points = runner.measure([1, 2])
    with capsys.disabled():
        print()
        for p in points:
            print(
                f"real scaling: {p.workers} workers  "
                f"{p.wall_seconds*1e3:7.1f} ms  {p.melem_per_s:7.2f} Melem/s  "
                f"speedup {p.speedup:.2f}"
            )
    assert points[0].speedup == pytest.approx(1.0)
    assert points[1].wall_seconds > 0
