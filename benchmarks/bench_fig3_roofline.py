"""Figure 3: roofline diagram of the GPU variants (DRAM and L2 intensity).

Run:  pytest benchmarks/bench_fig3_roofline.py --benchmark-only -s
"""

import pytest

from repro.machine.roofline import render_ascii


def test_fig3_report(study, capsys):
    gpu = study.gpu_table()
    pts = study.roofline_points(gpu)
    rl = study.roofline()
    with capsys.disabled():
        print()
        print("Figure 3 data points:")
        print(f"{'variant':8s} {'DRAM F/B':>9s} {'L2 F/B':>9s} "
              f"{'TF/s':>7s} {'regime':>9s}")
        for d, l in zip(pts["dram"], pts["l2"]):
            print(
                f"{d.label:8s} {d.intensity:9.2f} {l.intensity:9.2f} "
                f"{d.performance/1e12:7.2f} {d.limited_by(rl):>9s}"
            )
        print(f"\nmachine balance (knee): {rl.knee:.1f} Flop/B "
              "(paper: ~7 Flop/B)")
        print()
        print(render_ascii(rl, pts["dram"]))
    by = {p.label: p for p in pts["dram"]}
    # the paper's key qualitative results:
    assert by["B"].intensity < rl.knee  # baseline memory-bound
    assert by["RSPR"].intensity > rl.knee  # final variant past the knee
    # the privatized variants sit at an order-of-magnitude higher intensity
    assert by["RSP"].intensity > 5 * by["B"].intensity
    assert by["RSPR"].intensity >= by["RSP"].intensity
    # performance climbs along the chain
    perf = [by[v].performance for v in ("B", "RS", "RSP", "RSPR")]
    assert perf == sorted(perf)


def test_bench_roofline_points(benchmark, study):
    gpu = study.gpu_table()
    benchmark(study.roofline_points, gpu)
