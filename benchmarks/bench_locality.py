"""Locality bench: SFC/RCM reordering + threaded tape execution.

Measures, on the 14k-element bench mesh, what the locality layer buys
each kernel variant:

* **gather bandwidth** of the velocity gather ``u[connectivity]`` before
  and after ``hilbert+rcm`` reordering (the stage the ordering targets);
* **wall clock** of the compiled assembly in three configurations --
  seed order / serial, reordered / serial, reordered / threaded -- with
  ``ordering`` and ``executor`` recorded on every row so
  ``check_regression.py`` only ever compares like with like;
* **bit consistency**: every reordered-mesh RHS is mapped back through
  the inverse node permutation and must be bitwise identical to the
  seed-order RHS (compiled *and* interpreted), and two threaded runs
  must agree bitwise -- these assertions are unconditional;
* the **speedup floor** (>=1.3x for RSP/RSPR, reordered+threaded vs seed
  serial) is asserted only on multi-core machines: a single-core runner
  serializes the thread pool and pays chunking overhead with nothing to
  overlap.

Rows land in ``BENCH_variants.json`` via ``bench_extra`` and in a
dedicated ``BENCH_locality.json`` (same directory rules: the
``REPRO_BENCH_DIR`` env var, else the repo root).

Runnable standalone::

    PYTHONPATH=src python benchmarks/bench_locality.py
    PYTHONPATH=src python benchmarks/bench_locality.py --determinism-check
"""

import argparse
import json
import os
import pathlib
import sys
import time

import numpy as np
import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.core import UnifiedAssembler  # noqa: E402
from repro.fem import bandwidth_stats, box_tet_mesh  # noqa: E402
from repro.obs import get_registry  # noqa: E402
from repro.physics import AssemblyParams  # noqa: E402

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

VARIANTS = ("B", "P", "RS", "RSP", "RSPR")
STRATEGY = "hilbert+rcm"
VECTOR_DIM = 1024  # the bench suite's tuned CPU group size
REPEATS = 3
#: variants the acceptance floor applies to (the bandwidth-bound ones)
SPEEDUP_VARIANTS = ("RSP", "RSPR")
SPEEDUP_FLOOR = 1.3


def _best_of(fn, repeats=REPEATS):
    walls = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        walls.append(time.perf_counter() - t0)
    return min(walls)


def _gather_row(mesh, reordered, velocity, repeats=REPEATS):
    """Gather bandwidth of ``u[connectivity]`` in both numberings."""
    rows = []
    for ordering, m, u in (
        ("none", mesh, velocity),
        (STRATEGY, reordered.mesh, reordered.to_reordered_nodal(velocity)),
    ):
        conn = m.connectivity
        t = _best_of(lambda: u[conn], repeats)
        bytes_moved = m.nelem * 4 * 3 * 8 + conn.nbytes + u.nbytes
        bw_max, bw_mean = bandwidth_stats(m)
        rows.append(
            {
                "benchmark": "locality_gather",
                "variant": "gather",
                "ordering": ordering,
                "nelem": int(m.nelem),
                "gather_ms": t * 1e3,
                "gather_gbps": bytes_moved / t / 1e9,
                "bandwidth_max": bw_max,
                "bandwidth_mean": bw_mean,
            }
        )
    return rows


def locality_rows(mesh, params, velocity, repeats=REPEATS):
    """All BENCH_locality rows; asserts the bitwise contracts throughout."""
    reordered = mesh.reordered(STRATEGY)
    v_new = reordered.to_reordered_nodal(velocity)
    rows = _gather_row(mesh, reordered, velocity, repeats)

    seed_serial = {}
    configs = (
        ("none", "serial", mesh, velocity, None),
        (STRATEGY, "serial", reordered.mesh, v_new, reordered),
        (STRATEGY, "threads", reordered.mesh, v_new, reordered),
    )
    for variant in VARIANTS:
        seed_rhs = None
        for ordering, executor, m, u, res in configs:
            asm = UnifiedAssembler(
                m,
                params,
                vector_dim=VECTOR_DIM,
                mode="compiled",
                executor=executor,
            )
            rhs = asm.assemble(variant, u)
            if seed_rhs is None:
                seed_rhs = rhs
            else:
                mapped = res.to_seed_nodal(rhs)
                assert np.array_equal(mapped, seed_rhs), (
                    f"{variant} {ordering}/{executor}: mapped RHS is not "
                    "bitwise identical to the seed assembly"
                )
            if executor == "threads":
                assert np.array_equal(rhs, asm.assemble(variant, u)), (
                    f"{variant}: threaded executor is not deterministic"
                )
            wall = _best_of(lambda: asm.assemble(variant, u), repeats)
            if ordering == "none" and executor == "serial":
                seed_serial[variant] = wall
            rows.append(
                {
                    "benchmark": "locality",
                    "variant": variant,
                    "vector_dim": VECTOR_DIM,
                    "mode": "compiled",
                    "ordering": ordering,
                    "executor": executor,
                    "nelem": int(m.nelem),
                    "wall_ms": wall * 1e3,
                    "speedup_vs_seed_serial": seed_serial[variant] / wall,
                    "bitwise_mapped_identical": True,
                }
            )
        # interpreted-mode bit consistency rides along (not timed)
        interp_seed = UnifiedAssembler(
            mesh, params, vector_dim=VECTOR_DIM, mode="interpreted"
        ).assemble(variant, velocity)
        interp_new = UnifiedAssembler(
            reordered.mesh, params, vector_dim=VECTOR_DIM, mode="interpreted"
        ).assemble(variant, v_new)
        assert np.array_equal(
            reordered.to_seed_nodal(interp_new), interp_seed
        ), f"{variant}: interpreted mapped RHS diverged from seed"
    return rows


def write_locality_artifact(rows):
    outdir = pathlib.Path(os.environ.get("REPRO_BENCH_DIR", str(_REPO_ROOT)))
    outdir.mkdir(parents=True, exist_ok=True)
    snap = get_registry().snapshot()
    doc = {
        "schema": "repro-locality/1",
        "strategy": STRATEGY,
        "entries": rows,
        "locality_metrics": {
            k: v for k, v in snap.items() if k.startswith("locality.")
        },
    }
    path = outdir / "BENCH_locality.json"
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


@pytest.fixture(scope="module")
def locality_results(bench_mesh, bench_params, bench_velocity, bench_extra):
    rows = locality_rows(bench_mesh, bench_params, bench_velocity)
    bench_extra.extend(rows)
    yield rows
    path = write_locality_artifact(rows)
    print(f"\nlocality artifact: {path}")


def test_locality_bitwise_and_speedup(locality_results, capsys):
    """Bitwise contracts held during collection; report + gate the ratios."""
    by_cfg = {
        (r["variant"], r["ordering"], r["executor"]): r
        for r in locality_results
        if r["benchmark"] == "locality"
    }
    with capsys.disabled():
        for variant in VARIANTS:
            seed = by_cfg[(variant, "none", "serial")]
            reord = by_cfg[(variant, STRATEGY, "serial")]
            threaded = by_cfg[(variant, STRATEGY, "threads")]
            print(
                f"\nlocality {variant:>4s}: seed {seed['wall_ms']:7.2f} ms, "
                f"{STRATEGY} {reord['wall_ms']:7.2f} ms "
                f"({reord['speedup_vs_seed_serial']:.2f}x), "
                f"+threads {threaded['wall_ms']:7.2f} ms "
                f"({threaded['speedup_vs_seed_serial']:.2f}x)"
            )
    for row in by_cfg.values():
        assert row["bitwise_mapped_identical"]
    if (os.cpu_count() or 1) >= 2:
        for variant in SPEEDUP_VARIANTS:
            best = max(
                by_cfg[(variant, STRATEGY, ex)]["speedup_vs_seed_serial"]
                for ex in ("serial", "threads")
            )
            assert best >= SPEEDUP_FLOOR, (
                f"{variant}: locality layer reached only {best:.2f}x "
                f"(floor {SPEEDUP_FLOOR}x)"
            )


def test_locality_gather_bandwidth_reported(locality_results):
    gather = [
        r for r in locality_results if r["benchmark"] == "locality_gather"
    ]
    assert {r["ordering"] for r in gather} == {"none", STRATEGY}
    for row in gather:
        assert row["gather_gbps"] > 0


def determinism_check() -> int:
    """Quick CI gate: two threaded assemblies must agree bitwise."""
    mesh = box_tet_mesh(8, 8, 8)
    params = AssemblyParams(body_force=(0.0, 0.0, 0.1))
    rng = np.random.default_rng(0)
    u = 0.1 * rng.standard_normal((mesh.nnode, 3))
    asm = UnifiedAssembler(
        mesh, params, vector_dim=64, mode="compiled",
        executor="threads", num_threads=4, chunk_groups=4,
    )
    serial = UnifiedAssembler(mesh, params, vector_dim=64, mode="compiled")
    for variant in VARIANTS:
        a = asm.assemble(variant, u)
        b = asm.assemble(variant, u)
        c = serial.assemble(variant, u)
        if not np.array_equal(a, b):
            print(f"FAIL {variant}: two threaded runs differ")
            return 1
        if not np.array_equal(a, c):
            print(f"FAIL {variant}: threaded != serial")
            return 1
    print(f"determinism check OK: {len(VARIANTS)} variants, "
          "threaded == threaded == serial (bitwise)")
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--determinism-check",
        action="store_true",
        help="only run the fast threaded-determinism gate (CI)",
    )
    args = ap.parse_args(argv)
    if args.determinism_check:
        return determinism_check()
    mesh = box_tet_mesh(12, 12, 16)
    params = AssemblyParams(body_force=(0.0, 0.0, 0.1))
    rng = np.random.default_rng(0)
    velocity = 0.1 * rng.standard_normal((mesh.nnode, 3))
    rows = locality_rows(mesh, params, velocity)
    path = write_locality_artifact(rows)
    for row in rows:
        if row["benchmark"] == "locality":
            print(
                f"{row['variant']:>4s} {row['ordering']:>11s} "
                f"{row['executor']:>7s} {row['wall_ms']:8.2f} ms "
                f"({row['speedup_vs_seed_serial']:.2f}x)"
            )
        else:
            print(
                f"gather [{row['ordering']:>11s}] "
                f"{row['gather_gbps']:6.1f} GB/s "
                f"(bandwidth max {row['bandwidth_max']}, "
                f"mean {row['bandwidth_mean']:.1f})"
            )
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
