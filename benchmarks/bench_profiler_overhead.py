"""Profiler overhead guard: profiling *off* must cost nothing.

The op-level profiler (``repro.obs.profiler``) promises zero cost when
disabled: ``CompiledTape.execute`` branches once per call on
``profiler.enabled`` and takes the original un-instrumented loop, so an
assembler built with the ``profile=`` knob left off must run the sweep
at the same speed as a build that never heard of the profiler.  This
bench times three RSP sweeps on the bench mesh:

* ``plain``    -- assembler constructed with no profiler wiring at all,
* ``off``      -- assembler constructed through the same code path a
  profiled build takes (``profile=False`` explicit), and
* ``profiled`` -- profiling on, for the record (never asserted: the
  timed dispatch loop is allowed to cost what it costs).

The guard asserts best-of-N ``off`` within 2% of best-of-N ``plain``.
Both run the identical replay loop, so anything past noise means a
branch or wrapper leaked into the hot path.  The measured row lands in
``BENCH_variants.json`` (``"benchmark": "profiler_overhead"``) so the
history drift scan tracks the guard over sessions too.

Runnable standalone::

    PYTHONPATH=src python benchmarks/bench_profiler_overhead.py
"""

import pathlib
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.core import UnifiedAssembler  # noqa: E402

VARIANT = "RSP"
VECTOR_DIM = 1024
REPEATS = 15
#: profiling disabled must stay within this factor of the unwrapped build
OVERHEAD_CEILING = 1.02


def _interleaved_walls(fns, repeats=REPEATS):
    """Per-repeat wall times for several callables, round-robin.

    The builds under comparison run the *identical* code path, so any
    measured gap is machine drift (frequency scaling, cache pollution
    from neighbouring CI jobs).  Interleaving the repeats spreads that
    drift evenly across the candidates instead of charging it all to
    whichever loop ran last, and the starting slot rotates so no
    candidate always enjoys the first-in-round cache state.
    """
    walls = [[] for _ in fns]
    for rep in range(repeats):
        for i in range(len(fns)):
            j = (i + rep) % len(fns)
            t0 = time.perf_counter()
            fns[j]()
            walls[j].append(time.perf_counter() - t0)
    return walls


def _median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def overhead_row(mesh, params, velocity, variant=VARIANT,
                 vector_dim=VECTOR_DIM, repeats=REPEATS, tracer=None):
    """Time plain vs profiling-off vs profiling-on; returns a bench row."""
    kwargs = {} if tracer is None else {"tracer": tracer}
    plain = UnifiedAssembler(
        mesh, params, vector_dim=vector_dim, mode="compiled", **kwargs
    )
    off = UnifiedAssembler(
        mesh, params, vector_dim=vector_dim, mode="compiled",
        profile=False, **kwargs
    )
    on = UnifiedAssembler(
        mesh, params, vector_dim=vector_dim, mode="compiled",
        profile=True, **kwargs
    )
    # warm every tape + pattern cache before timing anything
    ref = plain.assemble(variant, velocity)
    assert np.array_equal(ref, off.assemble(variant, velocity))
    assert np.array_equal(ref, on.assemble(variant, velocity))

    w_plain, w_off, w_on = _interleaved_walls(
        [
            lambda: plain.assemble(variant, velocity),
            lambda: off.assemble(variant, velocity),
            lambda: on.assemble(variant, velocity),
        ],
        repeats,
    )
    # the guard statistic is the median of per-round ratios: a round
    # that lands on a globally slow patch inflates both its samples, so
    # the ratio stays clean where absolute best-of-N would not
    off_ratio = _median([o / p for o, p in zip(w_off, w_plain)])
    on_ratio = _median([o / p for o, p in zip(w_on, w_plain)])
    return {
        "benchmark": "profiler_overhead",
        "variant": variant,
        "mode": "compiled",
        "nelem": int(mesh.nelem),
        "vector_dim": int(vector_dim),
        "wall_ms": min(w_off) * 1e3,
        "plain_ms": min(w_plain) * 1e3,
        "profiled_ms": min(w_on) * 1e3,
        "overhead_off": off_ratio,
        "overhead_on": on_ratio,
    }


def test_profiler_off_is_free(
    bench_mesh, bench_params, bench_velocity, bench_tracer, bench_extra,
    capsys,
):
    """Profiling disabled within 2% of the unwrapped build.

    The two builds execute the identical replay loop, so a genuine leak
    (a wrapper or per-op branch on the hot path) shows up in *every*
    measurement; scheduler noise on a shared runner does not.  The guard
    therefore takes the best ratio over a few attempts -- systematic
    overhead fails all of them.
    """
    best = None
    for _ in range(3):
        row = overhead_row(
            bench_mesh, bench_params, bench_velocity, tracer=bench_tracer
        )
        if best is None or row["overhead_off"] < best["overhead_off"]:
            best = row
        if best["overhead_off"] < OVERHEAD_CEILING:
            break
    bench_extra.append(best)
    with capsys.disabled():
        print(
            f"\nprofiler overhead {best['variant']} "
            f"[vd={best['vector_dim']}]: plain {best['plain_ms']:6.1f} ms, "
            f"off {best['wall_ms']:6.1f} ms ({best['overhead_off']:.3f}x), "
            f"on {best['profiled_ms']:6.1f} ms ({best['overhead_on']:.3f}x)"
        )
    assert best["overhead_off"] < OVERHEAD_CEILING, (
        f"profiling disabled is {best['overhead_off']:.3f}x the unwrapped "
        f"build (ceiling {OVERHEAD_CEILING}x): a wrapper or branch leaked "
        "into the hot path"
    )


def main() -> None:
    from repro.fem import box_tet_mesh
    from repro.physics import AssemblyParams

    mesh = box_tet_mesh(12, 12, 16)
    params = AssemblyParams(body_force=(0.0, 0.0, 0.1))
    rng = np.random.default_rng(0)
    velocity = 0.1 * rng.standard_normal((mesh.nnode, 3))
    row = overhead_row(mesh, params, velocity)
    print(
        f"profiler overhead {row['variant']}: plain {row['plain_ms']:.1f} ms, "
        f"off {row['wall_ms']:.1f} ms ({row['overhead_off']:.3f}x), "
        f"on {row['profiled_ms']:.1f} ms ({row['overhead_on']:.3f}x)"
    )


if __name__ == "__main__":
    main()
