"""Scatter-reduction benchmark: ``np.add.at`` vs the precomputed plan.

The global-RHS reduction is the one assembly stage numpy punishes hardest:
``np.add.at`` is unbuffered and runs an order of magnitude slower than the
gather/compute stages it follows.  :class:`repro.fem.plan.ScatterPlan`
replaces it with a precomputed ``bincount`` reduction (bit-identical) and
an optional sort/``reduceat`` strategy (deterministic, rounding-level
differences).  This bench times all three on a >=100k-element mesh and
feeds the result into ``BENCH_variants.json`` via the ``bench_extra``
fixture.

Runnable standalone::

    PYTHONPATH=src python benchmarks/bench_scatter.py
"""

import pathlib
import sys
import time

import numpy as np
import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.fem import box_tet_mesh, get_plan  # noqa: E402

#: 26^3 box -> 105,456 tets: past the acceptance floor of 100k elements.
MESH_SHAPE = (26, 26, 26)
REPEATS = 5


def _best_of(fn, repeats=REPEATS):
    walls = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        walls.append(time.perf_counter() - t0)
    return min(walls)


def scatter_timings(mesh, repeats=REPEATS):
    """Time the three reduction strategies on one momentum-sized scatter.

    Returns a bench.json-style row; asserts the plan's default strategy is
    bitwise equal to ``np.add.at`` before timing anything.
    """
    plan = get_plan(mesh)
    rng = np.random.default_rng(0)
    values = rng.standard_normal((mesh.nelem * 4, 3))
    indices = mesh.connectivity.ravel()

    def add_at():
        out = np.zeros((mesh.nnode, 3))
        np.add.at(out, indices, values)
        return out

    reference = add_at()
    assert np.array_equal(reference, plan.scatter.scatter(values))
    assert np.allclose(reference, plan.scatter.scatter(values, strategy="sort"))

    t_add_at = _best_of(add_at, repeats)
    t_bincount = _best_of(lambda: plan.scatter.scatter(values), repeats)
    t_sort = _best_of(
        lambda: plan.scatter.scatter(values, strategy="sort"), repeats
    )
    # Effective traffic of one reduction: every contribution is read once
    # with its index, every output row written once.
    bytes_moved = values.nbytes + indices.nbytes + mesh.nnode * 3 * 8

    # Effective gather bandwidth: the velocity gather u[connectivity] is
    # the locality-bound stage SFC/RCM reordering targets -- measure it
    # too so BENCH_locality.json ratios have an absolute anchor.
    u = rng.standard_normal((mesh.nnode, 3))
    conn = mesh.connectivity
    t_gather = _best_of(lambda: u[conn], repeats)
    gather_bytes = mesh.nelem * 4 * 3 * 8 + conn.nbytes + u.nbytes
    return {
        "benchmark": "scatter",
        "nelem": int(mesh.nelem),
        "nnode": int(mesh.nnode),
        "ordering": "none",
        "add_at_ms": t_add_at * 1e3,
        "plan_bincount_ms": t_bincount * 1e3,
        "plan_sort_ms": t_sort * 1e3,
        "speedup_bincount": t_add_at / t_bincount,
        "speedup_sort": t_add_at / t_sort,
        "scatter_gbps": bytes_moved / t_bincount / 1e9,
        "gather_ms": t_gather * 1e3,
        "gather_gbps": gather_bytes / t_gather / 1e9,
    }


@pytest.fixture(scope="module")
def scatter_mesh():
    return box_tet_mesh(*MESH_SHAPE)


def test_scatter_plan_beats_add_at(scatter_mesh, bench_extra, capsys):
    """Plan scatter must be bitwise exact and meaningfully faster."""
    row = scatter_timings(scatter_mesh)
    bench_extra.append(row)
    with capsys.disabled():
        print(
            f"\nscatter [{row['nelem']} elems]: "
            f"add.at {row['add_at_ms']:.1f} ms, "
            f"bincount {row['plan_bincount_ms']:.1f} ms "
            f"({row['speedup_bincount']:.1f}x), "
            f"sort {row['plan_sort_ms']:.1f} ms "
            f"({row['speedup_sort']:.1f}x)"
        )
    # 4x measured on a quiet machine; 1.5x floor absorbs CI noise
    assert row["speedup_bincount"] > 1.5


def test_scatter_plan_bitwise_small_meshes(bench_extra):
    """Exactness holds across mesh sizes (duplicate-heavy small boxes)."""
    for shape in ((3, 3, 3), (6, 5, 4)):
        mesh = box_tet_mesh(*shape)
        plan = get_plan(mesh)
        rng = np.random.default_rng(1)
        values = rng.standard_normal((mesh.nelem * 4, 3))
        ref = np.zeros((mesh.nnode, 3))
        np.add.at(ref, mesh.connectivity.ravel(), values)
        assert np.array_equal(ref, plan.scatter.scatter(values))


def main() -> None:
    mesh = box_tet_mesh(*MESH_SHAPE)
    row = scatter_timings(mesh)
    print(f"scatter reduction on {row['nelem']} elements ({row['nnode']} nodes):")
    print(f"  np.add.at       {row['add_at_ms']:8.2f} ms")
    print(
        f"  plan bincount   {row['plan_bincount_ms']:8.2f} ms  "
        f"({row['speedup_bincount']:.1f}x, bit-identical)"
    )
    print(
        f"  plan sort       {row['plan_sort_ms']:8.2f} ms  "
        f"({row['speedup_sort']:.1f}x, deterministic)"
    )
    print(
        f"  bandwidth: scatter {row['scatter_gbps']:.1f} GB/s, "
        f"gather {row['gather_gbps']:.1f} GB/s"
    )


if __name__ == "__main__":
    main()
