#!/usr/bin/env python
"""Campaign-server service-latency benchmark: cold vs warm vs cached.

Boots a :class:`repro.server.CampaignServer` on a loop thread and
measures the end-to-end request latency (client socket -> JSON -> admit
-> execute -> respond) for the three service regimes the caches create:

* ``cold``  -- first request ever: mesh build + plan + tape/codegen
  compile all land on the request path;
* ``warm-mesh`` -- same mesh, new velocity seed: result-cache miss but
  the mesh (and its weak-keyed plan/tape/autotune caches) is hot, so
  **zero** ``plan.builds`` happen on the request path;
* ``cached`` -- identical request: content-hash hit, no recompute at
  all.

The direct in-process library call is measured alongside, so the row
set quantifies the *service overhead* the EXPERIMENTS.md section quotes.
Acceptance (asserted here, gated by the CI ``server`` job): warm and
cached latencies beat cold, and neither warm path re-plans.

``--chaos`` instead drives the deterministic fault sites
(``REPRO_FAULT_SEED``): a corrupted request must be a typed
``malformed``, a poisoned cache entry must be detected and recomputed,
and the healthy requests in between must stay **bitwise identical** to
the direct library call.

Usage::

    PYTHONPATH=src python benchmarks/bench_server.py [--smoke] [--chaos]
"""

from __future__ import annotations

import argparse
import hashlib
import os
import pathlib
import statistics
import sys
import time

import numpy as np

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.core.unified import UnifiedAssembler  # noqa: E402
from repro.fem.meshgen import box_tet_mesh  # noqa: E402
from repro.obs import get_registry  # noqa: E402
from repro.obs.export import write_bench_json  # noqa: E402
from repro.physics.momentum import AssemblyParams  # noqa: E402
from repro.resilience.faults import FaultPlan, FaultSpec, fault_seed_from_env  # noqa: E402
from repro.server import (  # noqa: E402
    CampaignClient,
    CampaignServer,
    ProtocolError,
    ServerConfig,
)

MESH = {"nx": 4, "ny": 4, "nz": 4}
VARIANT = "RSP"
MODE = "compiled"


def _counter(name: str) -> float:
    snap = get_registry().snapshot().get(name)
    return 0.0 if snap is None else float(snap["value"])


def _direct_ms(velocity_seed: int, repeats: int) -> tuple:
    """Median in-process assemble latency and its RHS sha256."""
    mesh = box_tet_mesh(MESH["nx"], MESH["ny"], MESH["nz"])
    velocity = 0.1 * np.random.default_rng(velocity_seed).standard_normal(
        (mesh.nnode, 3)
    )
    asm = UnifiedAssembler(mesh, AssemblyParams(), mode=MODE)
    rhs = asm.assemble(VARIANT, velocity)  # untimed warmup (plan/tape build)
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        rhs = asm.assemble(VARIANT, velocity)
        times.append((time.perf_counter() - t0) * 1e3)
    sha = hashlib.sha256(np.ascontiguousarray(rhs).tobytes()).hexdigest()
    return statistics.median(times), sha


def _timed_run(client: CampaignClient, req: dict) -> tuple:
    # a tight poll so the measured latency is the service's, not the
    # client's polling granularity
    t0 = time.perf_counter()
    resp = client.run(req, timeout=300, poll_s=0.001)
    return (time.perf_counter() - t0) * 1e3, resp


def run_bench(repeats: int) -> list:
    """The cold/warm-mesh/cached latency rows (plus the direct row)."""
    direct_ms, direct_sha = _direct_ms(velocity_seed=0, repeats=repeats)

    server = CampaignServer(ServerConfig(workers=1))
    handle = server.start_in_thread()
    client = CampaignClient(port=handle.port, timeout=300)
    entries = []
    try:
        base = {"kind": "assemble", "mesh": MESH, "variant": VARIANT,
                "mode": MODE}

        builds0 = _counter("plan.builds")
        cold_ms, resp = _timed_run(client, {**base, "velocity_seed": 0})
        assert resp["result"]["sha256"] == direct_sha, (
            "served assembly diverged from the direct library call"
        )
        assert _counter("plan.builds") > builds0, (
            "cold request should have built the plan"
        )

        # warm mesh: new seeds -> result-cache misses, plan stays hot
        builds1 = _counter("plan.builds")
        warm_times = []
        for i in range(repeats):
            ms, resp = _timed_run(client, {**base, "velocity_seed": 100 + i})
            assert resp.get("cached") is not True
            warm_times.append(ms)
        warm_ms = statistics.median(warm_times)
        assert _counter("plan.builds") == builds1, (
            "warm-mesh requests must not re-plan"
        )

        # cached: identical request -> content-hash hit
        cached_times = []
        for _ in range(repeats):
            ms, resp = _timed_run(client, {**base, "velocity_seed": 0})
            assert resp.get("cached") is True, "identical request must hit"
            cached_times.append(ms)
        cached_ms = statistics.median(cached_times)
        assert _counter("plan.builds") == builds1

        assert warm_ms < cold_ms, (
            f"warm-mesh latency {warm_ms:.1f} ms should beat cold "
            f"{cold_ms:.1f} ms (plan build amortized)"
        )
        assert cached_ms < cold_ms, (
            f"cached latency {cached_ms:.1f} ms should beat cold "
            f"{cold_ms:.1f} ms"
        )

        overhead_ms = warm_ms - direct_ms
        for phase, ms in (
            ("direct", direct_ms),
            ("cold", cold_ms),
            ("warm-mesh", warm_ms),
            ("cached", cached_ms),
        ):
            entries.append({
                "benchmark": "server",
                "variant": VARIANT,
                "mode": MODE,
                "executor": phase,  # the like-for-like axis for this bench
                "wall_ms": ms,
            })
        entries.append({
            "benchmark": "server",
            "variant": VARIANT,
            "mode": MODE,
            "executor": "overhead",
            "wall_ms": max(overhead_ms, 0.0),
        })
        print(
            f"bench_server: direct {direct_ms:8.2f} ms | "
            f"cold {cold_ms:8.2f} ms | warm-mesh {warm_ms:8.2f} ms | "
            f"cached {cached_ms:8.2f} ms | service overhead "
            f"{overhead_ms:+.2f} ms"
        )
    finally:
        handle.stop()
    return entries


def run_chaos() -> None:
    """Deterministic fault pass: typed failures, bitwise-healthy service."""
    seed = fault_seed_from_env()
    plan = FaultPlan(
        [
            FaultSpec(site="server_request", kind="corrupt", index=0),
            FaultSpec(site="server_cache", kind="poison", index=0),
        ],
        seed=seed,
    )
    _, direct_sha = _direct_ms(velocity_seed=0, repeats=1)
    server = CampaignServer(ServerConfig(workers=1), fault_plan=plan)
    handle = server.start_in_thread()
    client = CampaignClient(port=handle.port, timeout=300)
    try:
        req = {"kind": "assemble", "mesh": MESH, "variant": VARIANT,
               "mode": MODE, "velocity_seed": 0}
        try:
            client.run(req)
            raise AssertionError("corrupted request was not rejected")
        except ProtocolError as exc:
            assert exc.code == "malformed", exc.code
        first = client.run(req)  # healthy; fills the result cache
        assert first["result"]["sha256"] == direct_sha
        poisons0 = _counter("server.cache.poison_detected")
        second = client.run(req)  # poisoned read -> detected -> recompute
        assert _counter("server.cache.poison_detected") == poisons0 + 1
        assert second["result"]["sha256"] == direct_sha
        print(
            f"bench_server: chaos OK (seed={seed}) -- corrupted request "
            "typed malformed, cache poison detected and recomputed, "
            "healthy responses bitwise-identical to the library"
        )
    finally:
        handle.stop()


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="fewer repeats (the CI server job)")
    ap.add_argument("--chaos", action="store_true",
                    help="run the deterministic fault pass instead of timing")
    ap.add_argument("--out", default=None,
                    help="output path (default <bench dir>/BENCH_server.json)")
    args = ap.parse_args(argv)

    if args.chaos:
        run_chaos()
        return 0

    repeats = 3 if args.smoke else 9
    entries = run_bench(repeats)
    out = args.out or os.path.join(
        os.environ.get("REPRO_BENCH_DIR", str(_REPO_ROOT)),
        "BENCH_server.json",
    )
    write_bench_json(out, entries, metrics=get_registry(),
                     meta={"repeats": repeats, "mesh": MESH})
    print(f"bench_server: wrote {out} ({len(entries)} entries)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
