"""Headline speedups (Sections IV-V) and design-choice ablations.

Covers the paper's narrative numbers that sit outside the tables:

* baseline GPU 4-5x slower than the CPU node (Sec. IV);
* per-measure speedup chain B -> P -> RS -> RSP -> RSPR (Sec. V);

plus ablations of the machine-model design choices DESIGN.md calls out:
forwarding-window width, occupancy sensitivity to register count, and
full-LRU vs set-associative cache behaviour.

Run:  pytest benchmarks/bench_speedups_ablation.py --benchmark-only -s
"""

import pytest

from repro.machine import A100_SXM4_40GB, LruCache, SetAssociativeCache
from repro.machine.gpu import GpuModel


def test_speedup_chain_report(study, capsys):
    gpu = {c.variant: c for c in study.gpu_table()}
    cpu = {c.variant: c for c in study.cpu_table()}
    chain = ["B", "P", "RS", "RSP", "RSPR"]
    with capsys.disabled():
        print()
        print("GPU speedup chain (each variant vs baseline B):")
        for v in chain:
            print(
                f"  {v:5s}: {gpu['B'].runtime_ms / gpu[v].runtime_ms:7.1f}x "
                f"({gpu[v].runtime_ms:8.1f} ms)"
            )
        ratio = gpu["B"].runtime_ms / cpu["B"].runtime_multicore_ms
        print(
            f"\nbaseline GPU vs baseline CPU node: {ratio:.1f}x slower "
            "(paper: 4-5x slower)"
        )
        print(
            f"final GPU vs best CPU node: "
            f"{cpu['RSP'].runtime_multicore_ms / gpu['RSPR'].runtime_ms:.1f}x "
            "faster"
        )
    assert ratio > 2.0
    assert gpu["B"].runtime_ms / gpu["RSPR"].runtime_ms > 50.0


def test_ablation_forwarding_window(study, capsys):
    """Wider forwarding windows eliminate more private traffic for P."""
    rep = study.trace("P")
    rows = []
    for window in (0, 2, 8, 32):
        model = GpuModel(forward_window=window)
        mapping = model.map_storage(rep)
        filtered = model.filter_pattern(rep, mapping)
        rows.append((window, len(filtered)))
    with capsys.disabled():
        print()
        print("ablation: forwarding window vs surviving accesses (P):")
        for w, n in rows:
            print(f"  window {w:3d}: {n:6d} of {len(rep.pattern)}")
    survivors = [n for _, n in rows]
    assert survivors == sorted(survivors, reverse=True)
    assert survivors[-1] < survivors[0]


def test_ablation_occupancy_curve(capsys):
    """Occupancy staircase vs register count (the paper's 148->128 step)."""
    spec = A100_SXM4_40GB
    rows = [(r, spec.warps_for_registers(r)) for r in range(64, 256, 16)]
    with capsys.disabled():
        print()
        print("ablation: registers -> warps/SM:")
        for r, w in rows:
            print(f"  {r:4d} regs: {w:3d} warps")
    warps = [w for _, w in rows]
    assert warps == sorted(warps, reverse=True)


def test_ablation_cache_associativity(capsys):
    """Conflict misses: set-associative vs full LRU on a strided pattern."""
    results = {}
    for name, cache in (
        ("full-LRU", LruCache(64)),
        ("4-way", SetAssociativeCache(64, ways=4)),
        ("1-way", SetAssociativeCache(64, ways=1)),
    ):
        for rep in range(20):
            for line in range(0, 256, 64):  # pathological stride
                cache.access(line)
        results[name] = cache.stats.hit_rate
    with capsys.disabled():
        print()
        print("ablation: cache associativity on a strided pattern:")
        for k, v in results.items():
            print(f"  {k:9s}: hit rate {v:.2f}")
    assert results["full-LRU"] >= results["4-way"] >= results["1-way"]


@pytest.mark.parametrize("sim_sms", [1, 2, 4])
def test_bench_gpu_model_scaling(benchmark, study, sim_sms):
    """Model cost vs simulated-SM count (fidelity/runtime ablation)."""
    rep = study.trace("RS")
    model = GpuModel(sim_sms=sim_sms, batches_per_warp=1)
    c = benchmark(model.run, "RS", rep, study.mesh.connectivity)
    assert c.runtime_ms > 0
