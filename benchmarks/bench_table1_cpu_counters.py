"""Table I: CPU performance counters and runtimes for B / RS / RSP.

Prints the reproduced table next to the paper's published values and
wall-clock-benchmarks the CPU machine model itself.

Run:  pytest benchmarks/bench_table1_cpu_counters.py --benchmark-only -s
"""

import pytest

from repro.io.report import PAPER_TABLE1, comparison_table_cpu
from repro.machine.cpu import CpuModel


def test_table1_report(study, capsys):
    table = study.cpu_table()
    with capsys.disabled():
        print()
        print(study.format_cpu_table(table))
        print()
        print(comparison_table_cpu(table))
        b = {c.variant: c for c in table}
        paper_ratio = (
            PAPER_TABLE1["B"]["runtime_1c_ms"]
            / PAPER_TABLE1["RSP"]["runtime_1c_ms"]
        )
        ours = b["B"].runtime_1c_ms / b["RSP"].runtime_1c_ms
        print(
            f"\nB -> RSP single-core speedup: {ours:.1f}x "
            f"(paper: {paper_ratio:.1f}x; headline '>5x')"
        )
    assert ours > 5.0


@pytest.mark.parametrize("variant", ["B", "RS", "RSP"])
def test_bench_cpu_model(benchmark, study, variant):
    """Wall time of one full CPU-model evaluation (trace cached)."""
    trace = study.trace(variant)
    model = CpuModel(sim_groups=64)
    benchmark(model.run, variant, trace, study.mesh.connectivity)
