"""Table II: GPU performance counters and runtimes for B/P/RS/RSP/RSPR.

Run:  pytest benchmarks/bench_table2_gpu_counters.py --benchmark-only -s
"""

import pytest

from repro.io.report import PAPER_TABLE2, comparison_table_gpu
from repro.machine.gpu import GpuModel


def test_table2_report(study, capsys):
    table = study.gpu_table()
    by = {c.variant: c for c in table}
    with capsys.disabled():
        print()
        print(study.format_gpu_table(table))
        print()
        print(comparison_table_gpu(table))
        paper_speedup = (
            PAPER_TABLE2["B"]["runtime_ms"] / PAPER_TABLE2["RSPR"]["runtime_ms"]
        )
        ours = by["B"].runtime_ms / by["RSPR"].runtime_ms
        print(
            f"\nB -> RSPR speedup: {ours:.0f}x "
            f"(paper: {paper_speedup:.0f}x; headline 'more than 50x')"
        )
        print(
            "registers (measured/paper): "
            + ", ".join(
                f"{v}={by[v].registers}/{PAPER_TABLE2[v]['registers']:.0f}"
                for v in by
            )
        )
    assert ours > 50.0
    for v in by:
        assert by[v].registers == PAPER_TABLE2[v]["registers"]


@pytest.mark.parametrize("variant", ["B", "P", "RS", "RSP", "RSPR"])
def test_bench_gpu_model(benchmark, study, variant):
    """Wall time of one full GPU-model evaluation (trace cached)."""
    trace = study.trace(variant)
    model = GpuModel(sim_sms=2, batches_per_warp=1)
    benchmark(model.run, variant, trace, study.mesh.connectivity)
