"""Table III: the Listing-3 privatization micro-study.

Reproduces the paper's per-thread store counts and store volumes for the
three temp-array mappings (global / local / registers) -- exactly.

Run:  pytest benchmarks/bench_table3_privatization.py --benchmark-only -s
"""

import pytest

from repro.core.microbench import run_listing3
from repro.io.report import PAPER_TABLE3


def test_table3_report(capsys):
    results = run_listing3()
    with capsys.disabled():
        print()
        print("Table III (per thread): measured / paper")
        print(f"{'mapping':10s} {'local st':>12s} {'global st':>12s} "
              f"{'L2 bytes':>12s} {'DRAM bytes':>12s}")
        for name, r in results.items():
            p = PAPER_TABLE3[name]
            print(
                f"{name:10s} {r.local_stores:>5d}/{p['local_stores']:<6.0f} "
                f"{r.global_stores:>5d}/{p['global_stores']:<6.0f} "
                f"{r.l2_store_bytes:>5d}/{p['l2_store_bytes']:<6.0f} "
                f"{r.dram_store_bytes:>5d}/{p['dram_store_bytes']:<6.0f}"
            )
    for name, r in results.items():
        p = PAPER_TABLE3[name]
        assert r.local_stores == p["local_stores"]
        assert r.global_stores == p["global_stores"]
        assert r.l2_store_bytes == p["l2_store_bytes"]
        assert r.dram_store_bytes == p["dram_store_bytes"]


def test_bench_listing3(benchmark):
    benchmark(run_listing3)
