"""Compiled-tape benchmark: interpreted NumpyBackend vs the kernel tape.

The interpreted DSL path allocates a fresh lane-width array for every
binop/unop; the compiled tape (``repro.core.tape``) records each variant
once, assigns intermediates to a fixed buffer arena and replays with
in-place ufunc calls over all element groups at once.  This bench times
both paths for every variant on the 14k-element bench mesh, asserts the
outputs are **bit-identical**, and feeds per-variant rows (tagged
``"benchmark": "tape"`` and carrying ``vector_dim``) into
``BENCH_variants.json`` via the ``bench_extra`` fixture.  It also runs a
small ``VECTOR_DIM`` autotune sweep and writes ``BENCH_autotune.json``
(uploaded as a CI artifact).

Runnable standalone::

    PYTHONPATH=src python benchmarks/bench_tape.py
"""

import os
import pathlib
import sys
import time

import numpy as np
import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.core import UnifiedAssembler, variant_names  # noqa: E402
from repro.core.autotune import autotune_vector_dim, write_autotune_report  # noqa: E402
from repro.core.tape import compiled_tape  # noqa: E402
from repro.fem import get_plan  # noqa: E402

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

VECTOR_DIM = 1024
REPEATS = 3
#: sweep kept small so the bench session stays in seconds
AUTOTUNE_CANDIDATES = (64, 256, 1024, 4096)


def _best_of(fn, repeats=REPEATS):
    walls = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        walls.append(time.perf_counter() - t0)
    return min(walls)


def tape_timings(mesh, params, velocity, variant, vector_dim=VECTOR_DIM,
                 repeats=REPEATS, tracer=None):
    """Time one variant both ways; asserts bitwise-equal RHS first."""
    kwargs = {} if tracer is None else {"tracer": tracer}
    interp = UnifiedAssembler(
        mesh, params, vector_dim=vector_dim, mode="interpreted", **kwargs
    )
    compiled = UnifiedAssembler(
        mesh, params, vector_dim=vector_dim, mode="compiled", **kwargs
    )
    ref = interp.assemble(variant, velocity)  # also warms pattern cache
    out = compiled.assemble(variant, velocity)  # warms the tape cache
    assert np.array_equal(ref, out), f"{variant}: compiled RHS not bit-identical"

    t_interp = _best_of(lambda: interp.assemble(variant, velocity), repeats)
    t_compiled = _best_of(lambda: compiled.assemble(variant, velocity), repeats)
    tape = compiled_tape(
        get_plan(mesh), variant, vector_dim,
        kernel_params=params.as_kernel_params(),
    )
    report = tape.report
    return {
        "benchmark": "tape",
        "variant": variant,
        "mode": "compiled",
        "nelem": int(mesh.nelem),
        "vector_dim": int(vector_dim),
        "interpreted_ms": t_interp * 1e3,
        "compiled_ms": t_compiled * 1e3,
        "wall_ms": t_compiled * 1e3,
        "melem_per_s": mesh.nelem / t_compiled / 1e6,
        "speedup": t_interp / t_compiled,
        "ops_recorded": report.ops_recorded,
        "ops_live": report.ops_live,
        "buffers_live": report.buffers_live,
    }


@pytest.mark.parametrize("variant", variant_names())
def test_tape_vs_interpreted(
    variant, bench_mesh, bench_params, bench_velocity, bench_tracer,
    bench_extra, capsys,
):
    """Compiled tape must be bit-identical and >=1.5x faster per variant."""
    row = tape_timings(
        bench_mesh, bench_params, bench_velocity, variant, tracer=bench_tracer
    )
    bench_extra.append(row)
    with capsys.disabled():
        print(
            f"\ntape {variant:>5s} [vd={row['vector_dim']}]: "
            f"interpreted {row['interpreted_ms']:7.1f} ms, "
            f"compiled {row['compiled_ms']:6.1f} ms "
            f"({row['speedup']:.1f}x, {row['buffers_live']} buffers for "
            f"{row['ops_live']} ops)"
        )
    # ~4-7x measured on a quiet machine; 1.5x is the acceptance floor
    assert row["speedup"] > 1.5


def test_autotune_report(bench_mesh, bench_params, bench_velocity, capsys):
    """Sweep VECTOR_DIM for RSP, persist the winner, write the report."""
    result = autotune_vector_dim(
        bench_mesh,
        "RSP",
        bench_params,
        candidates=AUTOTUNE_CANDIDATES,
        repeats=2,
        velocity=bench_velocity,
        mode="compiled",
    )
    outdir = os.environ.get("REPRO_BENCH_DIR", str(_REPO_ROOT))
    path = pathlib.Path(outdir) / "BENCH_autotune.json"
    write_autotune_report([result], path)
    assert get_plan(bench_mesh).tuned_vector_dim("RSP") == result.winner
    with capsys.disabled():
        timings = ", ".join(
            f"{vd}:{t * 1e3:.1f}ms"
            for vd, t in zip(result.candidates, result.wall_seconds)
        )
        print(f"\nautotune RSP [{timings}] -> vector_dim={result.winner}")


def main() -> None:
    from repro.fem import box_tet_mesh
    from repro.physics import AssemblyParams

    mesh = box_tet_mesh(12, 12, 16)
    params = AssemblyParams(body_force=(0.0, 0.0, 0.1))
    rng = np.random.default_rng(0)
    velocity = 0.1 * rng.standard_normal((mesh.nnode, 3))
    print(f"compiled tape vs interpreted DSL on {mesh.nelem} elements:")
    for variant in variant_names():
        row = tape_timings(mesh, params, velocity, variant)
        print(
            f"  {variant:>5s}  interpreted {row['interpreted_ms']:8.2f} ms  "
            f"compiled {row['compiled_ms']:7.2f} ms  "
            f"{row['speedup']:5.2f}x  "
            f"[{row['buffers_live']} buffers / {row['ops_live']} live ops]"
        )
    result = autotune_vector_dim(
        mesh, "RSP", params, candidates=AUTOTUNE_CANDIDATES, repeats=2,
        velocity=velocity,
    )
    print(f"autotuned RSP vector_dim -> {result.winner}")


if __name__ == "__main__":
    main()
