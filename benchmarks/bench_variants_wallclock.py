"""Real wall-clock benchmarks of the numpy-executed kernel variants.

Beyond the machine models, the variants are *actually faster* in this
Python implementation too -- the baseline materializes every intermediate
and builds the 144-entry elemental matrix; the restructured variants don't.
This bench also covers the reference vectorized assembly, the pressure
solvers and meshing.

Run:  pytest benchmarks/bench_variants_wallclock.py --benchmark-only
"""

import numpy as np
import pytest

from repro.fem import box_tet_mesh
from repro.physics import assemble_momentum_rhs
from repro.physics.pressure import PressureSolver


@pytest.mark.parametrize("variant", ["B", "P", "RS", "RSP", "RSPR"])
def test_bench_variant_assembly(
    benchmark, bench_assembler, bench_velocity, variant
):
    rhs = benchmark(bench_assembler.assemble, variant, bench_velocity)
    assert np.isfinite(rhs).all()


def test_bench_reference_assembly(
    benchmark, bench_mesh, bench_params, bench_velocity
):
    rhs = benchmark(
        assemble_momentum_rhs, bench_mesh, bench_velocity, bench_params
    )
    assert np.isfinite(rhs).all()


def test_bench_trace(benchmark, bench_assembler, bench_velocity):
    rep = benchmark(bench_assembler.trace, "RSPR", bench_velocity)
    assert rep.flops > 0


def test_bench_meshgen(benchmark):
    mesh = benchmark(box_tet_mesh, 12, 12, 12)
    assert mesh.nelem == 12**3 * 6


def test_bench_pressure_amg_solve(benchmark, bench_mesh):
    ps = PressureSolver(bench_mesh, tol=1e-8)
    rng = np.random.default_rng(1)
    u = 0.1 * rng.standard_normal((bench_mesh.nnode, 3))
    res = benchmark(ps.solve, u, 1.0, 0.05)
    assert res.converged


def test_bench_pressure_jacobi_solve(benchmark, bench_mesh):
    ps = PressureSolver(bench_mesh, tol=1e-8, use_amg=False)
    rng = np.random.default_rng(1)
    u = 0.1 * rng.standard_normal((bench_mesh.nnode, 3))
    res = benchmark(ps.solve, u, 1.0, 0.05)
    assert res.converged
