#!/usr/bin/env python
"""Non-fatal perf regression guard.

Compares a fresh ``BENCH_variants.json`` against the committed baseline
(``benchmarks/bench_baseline.json``) and warns when a variant's real wall
clock regressed by more than the threshold (default 20%).  Entries are
matched like-for-like on ``(benchmark, variant, vector_dim, mode,
ordering, executor, scenarios)`` -- wall clock scales with the vector
length, the mesh ordering, the executor and the scenario batch size, so
only measurements with all of them equal are ever compared.  Model runtimes are compared too, but
those are deterministic -- any drift there means the machine model itself
changed.

``--drift`` adds the time axis the single-baseline diff lacks: the last
``--window`` sessions of ``BENCH_history.jsonl`` (appended by the bench
harness, see ``benchmarks/history.py``) are checked per entry key with
an EWMA excess/z-score gate plus a CUSUM changepoint scan.  Drift
findings are always warn-only -- a slow trend needs a human eye, not a
red CI -- so they never affect the exit code, even under ``--strict``.

Exit code is 0 unless ``--strict`` is passed (then >threshold wall-clock
regressions fail the run).  Wall-clock noise on shared CI runners is why
the default is warn-only.

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py \
        [--bench BENCH_variants.json] [--baseline benchmarks/bench_baseline.json] \
        [--threshold 0.20] [--strict] [--write-diff bench_regression.txt] \
        [--drift] [--history BENCH_history.jsonl] [--window 20]
"""

from __future__ import annotations

import argparse
import pathlib
import sys

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_REPO_ROOT / "src"))
sys.path.insert(0, str(_REPO_ROOT))

from repro.obs import read_bench_json  # noqa: E402
from repro.resilience import RECOVERY_COUNTERS  # noqa: E402

from benchmarks import history as bench_history  # noqa: E402


#: wall-clock and model-runtime fields compared between runs
_FIELDS = (
    "wall_ms",
    "interpreted_ms",
    "compiled_ms",
    "codegen_ms",
    "gpu_model_runtime_ms",
    "cpu_model_runtime_ms",
)


def _entry_key(entry: dict) -> tuple:
    """Like-for-like comparison key for one bench entry.

    Wall clock scales with the group size, so entries are only comparable
    when benchmark kind, variant, ``vector_dim`` AND execution mode all
    match -- a baseline measured at ``vector_dim=64`` must never gate a
    fresh ``vector_dim=1024`` run (or interpreted vs compiled).  The
    locality rows add two more axes: the mesh ``ordering`` (seed vs an
    SFC/RCM permutation) and the ``executor`` (serial vs threads) change
    the wall clock by design, so they are part of the key too.  Batched
    rows add ``scenarios`` (the batch size ``S``; ``None`` for serial
    rows), so ``S=1`` and ``S=16`` measurements never mix.
    """
    return bench_history.entry_key(entry)


def _by_key(doc: dict) -> dict:
    return {
        _entry_key(e): e for e in doc.get("entries", []) if "variant" in e
    }


def compare(bench: dict, baseline: dict, threshold: float) -> list:
    """Return [(label, field, old, new, ratio)] for regressed entries."""
    fresh = _by_key(bench)
    base = _by_key(baseline)
    regressions = []
    for key, entry in sorted(fresh.items(), key=lambda kv: str(kv[0])):
        ref = base.get(key)
        if ref is None:
            continue
        label = bench_history.key_label(key)
        for field in _FIELDS:
            old, new = ref.get(field), entry.get(field)
            if old is None or new is None or old <= 0:
                continue
            ratio = new / old
            if ratio > 1.0 + threshold:
                regressions.append((label, field, old, new, ratio))
    return regressions


def silent_degradations(bench: dict) -> list:
    """Recovery counters that fired in a run that injected no faults.

    A fault-free bench session must serve every request from the fast
    path; nonzero retries/fallbacks/rollbacks/escalations with
    ``resilience.faults_injected == 0`` mean the run silently lost a fast
    path (e.g. a kernel tape failing validation) -- exactly the loss the
    wall-clock thresholds are too noisy to catch.
    """
    metrics = bench.get("metrics", {})

    def value(name: str) -> float:
        return float(metrics.get(name, {}).get("value") or 0.0)

    if value("resilience.faults_injected") > 0:
        return []  # a chaos run: recovery activity is the point
    return [
        (name, value(name)) for name in RECOVERY_COUNTERS if value(name) > 0
    ]


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--bench", default=str(_REPO_ROOT / "BENCH_variants.json"))
    ap.add_argument(
        "--baseline",
        default=str(_REPO_ROOT / "benchmarks" / "bench_baseline.json"),
    )
    ap.add_argument("--threshold", type=float, default=0.20)
    ap.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 on wall-clock regressions instead of warning",
    )
    ap.add_argument(
        "--write-diff",
        metavar="PATH",
        help="also write the comparison report to PATH (for CI artifacts)",
    )
    ap.add_argument(
        "--drift",
        action="store_true",
        help="EWMA/changepoint drift scan over the bench history "
        "(always warn-only, even with --strict)",
    )
    ap.add_argument(
        "--history",
        default=str(_REPO_ROOT / bench_history.DEFAULT_HISTORY_NAME),
        help="BENCH_history.jsonl session log to scan with --drift",
    )
    ap.add_argument(
        "--window",
        type=int,
        default=20,
        help="number of most recent history sessions the drift scan sees",
    )
    args = ap.parse_args(argv)

    report: list[str] = []

    def emit(line: str) -> None:
        print(line)
        report.append(line)

    def flush_report() -> None:
        if args.write_diff:
            pathlib.Path(args.write_diff).write_text(
                "\n".join(report) + "\n", encoding="utf-8"
            )

    if args.drift:
        # History drift is independent of the fresh/baseline pair: it
        # reads the session log and never gates the exit code.
        try:
            records = bench_history.read_history(args.history)
        except OSError as exc:
            records = []
            emit(f"check_regression: no bench history ({exc}); drift skipped")
        if records:
            findings = bench_history.drift_report(
                records, window=args.window
            )
            if findings:
                emit(
                    f"check_regression: DRIFT -- {len(findings)} series "
                    f"adrift over the last {min(args.window, len(records))} "
                    "sessions (warn-only):"
                )
                for f in findings:
                    z = f["z"]
                    z_text = "inf" if z != z or z == float("inf") else f"{z:.1f}"
                    cp = (
                        f", changepoint@{f['changepoint']}"
                        if f["changepoint"] is not None
                        else ""
                    )
                    emit(
                        f"  {f['label']:>20s} {f['field']:<22s} "
                        f"ewma {f['mean']:10.3f} -> {f['last']:10.3f} ms "
                        f"({f['excess']:+.0%}, z={z_text}{cp})"
                    )
            else:
                emit(
                    f"check_regression: drift OK -- no drifting series "
                    f"across {len(records)} history sessions"
                )

    try:
        bench = read_bench_json(args.bench)
    except (OSError, ValueError) as exc:
        emit(
            f"check_regression: MISSING bench results at {args.bench} "
            f"({exc}) -- run the bench step first (e.g. 'PYTHONPATH=src "
            f"python -m pytest benchmarks -q' or the bench_*.py script "
            f"that writes it)"
        )
        flush_report()
        return 1 if args.strict else 0

    # silent degradation needs no baseline: a fault-free run must not
    # have exercised any recovery path.
    degraded = silent_degradations(bench)
    if degraded:
        emit(
            "check_regression: WARNING -- recovery counters nonzero in a "
            "fault-free run (a fast path was silently lost):"
        )
        for name, value in degraded:
            emit(f"  {name:>40s} = {value:g}")

    try:
        baseline = read_bench_json(args.baseline)
    except (OSError, ValueError) as exc:
        emit(
            f"check_regression: MISSING baseline at {args.baseline} "
            f"({exc}) -- seed it from the fresh results with "
            f"'cp {args.bench} {args.baseline}' and commit it"
        )
        flush_report()
        return 1 if args.strict else 0

    fresh_keys, base_keys = set(_by_key(bench)), set(_by_key(baseline))
    if fresh_keys and base_keys and not (fresh_keys & base_keys):
        emit(
            f"check_regression: NO OVERLAP -- none of the "
            f"{len(fresh_keys)} fresh entry keys match the "
            f"{len(base_keys)} baseline keys (benchmark renamed or key "
            f"schema changed?) -- regenerate the baseline with "
            f"'cp {args.bench} {args.baseline}'"
        )
        flush_report()
        return 1 if args.strict else 0

    regressions = compare(bench, baseline, args.threshold)
    if not regressions and not degraded:
        emit(
            f"check_regression: OK -- no >{args.threshold:.0%} regressions "
            f"across {len(_by_key(bench))} entries, no silent degradation"
        )
        flush_report()
        return 0

    wall_regressed = False
    if regressions:
        emit(f"check_regression: WARNING -- >{args.threshold:.0%} regressions:")
        for label, field, old, new, ratio in regressions:
            emit(
                f"  {label:>20s} {field:<22s} {old:10.3f} -> {new:10.3f} ms "
                f"({ratio - 1.0:+.0%})"
            )
            wall_regressed |= field in ("wall_ms", "compiled_ms", "codegen_ms")
    if args.strict and (wall_regressed or degraded):
        flush_report()
        return 1
    emit("check_regression: non-fatal (pass --strict to enforce)")
    flush_report()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
