"""Shared benchmark fixtures.

The machine-model study is session-scoped: every table/figure bench reads
from the same traced kernels, exactly as the paper's tables all come from
one measurement campaign.

Every benchmark session runs under an enabled :class:`repro.obs.Tracer`
and a fresh metrics registry; at session exit the ``BENCH_*`` artifacts
(``BENCH_variants.json`` summary, ``BENCH_trace.json`` Chrome trace,
``BENCH_spans.jsonl`` span log) are written to the repo root -- the perf
trajectory consumed by ``benchmarks/check_regression.py`` and the CI
artifact upload.  Set ``REPRO_BENCH_DIR`` to redirect them.

Profiled sessions (the default; opt out with ``REPRO_BENCH_PROFILE=0``)
additionally run one untimed op-profiled assembly per variant and emit
the attribution set -- ``BENCH_roofline_attrib.json``,
``BENCH_flamegraph.txt``, ``BENCH_prometheus.prom`` -- and every session
appends one line to ``BENCH_history.jsonl``, the per-key time series
``check_regression.py --drift`` scans.
"""

import os
import pathlib

import numpy as np
import pytest

from repro.core import OptimizationStudy, UnifiedAssembler
from repro.fem import box_tet_mesh
from repro.io import write_bench_artifacts, write_profile_artifacts
from repro.obs import MetricsRegistry, Tracer, set_registry, set_tracer
from repro.physics import AssemblyParams

from benchmarks.history import DEFAULT_HISTORY_NAME, append_history

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


@pytest.fixture(scope="session")
def bench_tracer():
    tracer = Tracer(pid=0)
    set_tracer(tracer)
    yield tracer
    set_tracer(None)


@pytest.fixture(scope="session")
def bench_registry():
    registry = set_registry(MetricsRegistry())
    # pre-register every resilience counter at zero: the fault-free bench
    # session then exports an explicit all-zero baseline, and
    # check_regression.py can flag nonzero recovery counters (silent
    # degradation) without guessing at missing keys.
    from repro.resilience import RESILIENCE_COUNTERS

    for name in RESILIENCE_COUNTERS:
        registry.counter(name)
    yield registry
    set_registry(None)


@pytest.fixture(scope="session")
def study(bench_tracer, bench_registry):
    return OptimizationStudy(tracer=bench_tracer, metrics=bench_registry)


@pytest.fixture(scope="session")
def bench_extra():
    """Extra bench.json rows contributed by individual benches.

    Non-variant benchmarks (e.g. ``bench_scatter.py``) append dict rows
    here; they are merged after the per-variant entries in
    ``BENCH_variants.json`` at session exit.
    """
    return []


@pytest.fixture(scope="session", autouse=True)
def bench_artifacts(study, bench_tracer, bench_registry, bench_extra):
    """Emit the BENCH_* perf artifacts when the bench session ends."""
    yield
    profile = os.environ.get("REPRO_BENCH_PROFILE", "1") != "0"
    entries = study.bench_summary(profile=profile) + list(bench_extra)
    outdir = os.environ.get("REPRO_BENCH_DIR", str(_REPO_ROOT))
    meta = {"source": "benchmarks", "nelem": int(study.mesh.nelem)}
    paths = write_bench_artifacts(
        outdir,
        entries,
        tracer=bench_tracer,
        metrics=bench_registry,
        meta=meta,
    )
    if profile:
        paths.update(
            write_profile_artifacts(
                outdir,
                attribution=study.roofline_attribution(),
                collapsed=study.profiler.collapsed(),
                metrics=bench_registry,
            )
        )
    history_path = os.path.join(outdir, DEFAULT_HISTORY_NAME)
    append_history(history_path, entries, meta=meta)
    paths["history"] = history_path
    print(f"\nbench artifacts: {', '.join(sorted(paths.values()))}")


@pytest.fixture(scope="session")
def bench_mesh():
    # 13824 elements: big enough for stable wall-clock numbers, small
    # enough to keep the full suite in seconds.
    return box_tet_mesh(12, 12, 16)


@pytest.fixture(scope="session")
def bench_params():
    return AssemblyParams(body_force=(0.0, 0.0, 0.1))


@pytest.fixture(scope="session")
def bench_velocity(bench_mesh):
    rng = np.random.default_rng(0)
    return 0.1 * rng.standard_normal((bench_mesh.nnode, 3))


@pytest.fixture(scope="session")
def bench_assembler(bench_mesh, bench_params, bench_tracer):
    return UnifiedAssembler(
        bench_mesh, bench_params, vector_dim=1024, tracer=bench_tracer
    )
