"""Shared benchmark fixtures.

The machine-model study is session-scoped: every table/figure bench reads
from the same traced kernels, exactly as the paper's tables all come from
one measurement campaign.
"""

import numpy as np
import pytest

from repro.core import OptimizationStudy, UnifiedAssembler
from repro.fem import box_tet_mesh
from repro.physics import AssemblyParams


@pytest.fixture(scope="session")
def study():
    return OptimizationStudy()


@pytest.fixture(scope="session")
def bench_mesh():
    # 13824 elements: big enough for stable wall-clock numbers, small
    # enough to keep the full suite in seconds.
    return box_tet_mesh(12, 12, 16)


@pytest.fixture(scope="session")
def bench_params():
    return AssemblyParams(body_force=(0.0, 0.0, 0.1))


@pytest.fixture(scope="session")
def bench_velocity(bench_mesh):
    rng = np.random.default_rng(0)
    return 0.1 * rng.standard_normal((bench_mesh.nnode, 3))


@pytest.fixture(scope="session")
def bench_assembler(bench_mesh, bench_params):
    return UnifiedAssembler(bench_mesh, bench_params, vector_dim=1024)
