"""Bench-history store and drift detection.

``check_regression.py`` compares one fresh run against one committed
baseline -- good at catching a single large regression, blind to slow
drift where every session is "within threshold" of the last but the
trend over weeks is a real loss.  This module adds the missing time
axis:

* :func:`append_history` appends one JSON line per bench session to
  ``BENCH_history.jsonl`` (schema ``repro-bench-history/1``), keeping
  only the like-for-like key fields and the measured wall-clock /
  model-runtime numbers, so the file stays small enough to commit or
  carry as a CI artifact.
* :func:`series` re-groups the records into per-key time series using
  the same 6-tuple key (:func:`entry_key`) the baseline diff matches
  on -- ``(benchmark, variant, vector_dim, mode, ordering, executor)``.
* :func:`ewma_drift` flags a series whose latest point sits both
  relatively (``threshold``) and statistically (``zscore`` against an
  exponentially-weighted variance) above the smoothed history, and
  :func:`cusum_changepoint` locates sustained level shifts a single
  endpoint test would miss.

``check_regression.py --drift`` runs :func:`drift_report` warn-only
alongside the baseline diff; both share :func:`entry_key` so an entry
gated there is the same entry tracked here.
"""

from __future__ import annotations

import json
import math
import os
import time
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "HISTORY_SCHEMA",
    "DEFAULT_HISTORY_NAME",
    "HISTORY_FIELDS",
    "entry_key",
    "key_label",
    "append_history",
    "read_history",
    "series",
    "ewma_drift",
    "cusum_changepoint",
    "drift_report",
]

HISTORY_SCHEMA = "repro-bench-history/1"
DEFAULT_HISTORY_NAME = "BENCH_history.jsonl"

#: key fields carried verbatim into each history row
KEY_FIELDS = ("benchmark", "variant", "vector_dim", "mode", "ordering",
              "executor", "scenarios")

#: measured fields kept per entry (superset of check_regression._FIELDS)
HISTORY_FIELDS = (
    "wall_ms",
    "interpreted_ms",
    "compiled_ms",
    "codegen_ms",
    "gpu_model_runtime_ms",
    "cpu_model_runtime_ms",
    "profiled_seconds",
    "profiled_bytes",
    "byte_residual",
    "ops_per_s",
    "scenarios_per_s",
)


def entry_key(entry: Dict[str, Any]) -> Tuple:
    """Like-for-like comparison key for one bench entry.

    Wall clock scales with the group size, the mesh ordering, the
    executor and the scenario batch size, so only measurements with the
    whole 7-tuple equal are ever compared -- the exact key
    ``check_regression.py`` matches baseline entries on.  ``scenarios``
    is ``None`` for serial (unbatched) rows and the batch size ``S`` for
    batched rows, so an ``S=1`` batched row never gates an ``S=16`` one
    (nor a serial one).
    """
    return (
        entry.get("benchmark", "variants"),
        entry["variant"],
        entry.get("vector_dim"),
        entry.get("mode"),
        entry.get("ordering"),
        entry.get("executor"),
        entry.get("scenarios"),
    )


def key_label(key: Tuple) -> str:
    """Human-readable label for a 7-tuple key (diff-report style)."""
    benchmark, variant, vector_dim, _mode, ordering, executor = key[:6]
    scenarios = key[6] if len(key) > 6 else None
    label = variant if benchmark == "variants" else f"{benchmark}/{variant}"
    if vector_dim is not None:
        label += f"@vd{vector_dim}"
    if scenarios is not None:
        label += f"@S{scenarios}"
    if ordering not in (None, "none"):
        label += f"+{ordering}"
    if executor not in (None, "serial"):
        label += f"+{executor}"
    return label


def _slim(entry: Dict[str, Any]) -> Dict[str, Any]:
    row: Dict[str, Any] = {}
    for field in KEY_FIELDS:
        if field in entry:
            row[field] = entry[field]
    for field in HISTORY_FIELDS:
        value = entry.get(field)
        if value is not None:
            row[field] = value
    return row


def append_history(
    path: str,
    entries: Iterable[Dict[str, Any]],
    meta: Optional[Dict[str, Any]] = None,
    timestamp: Optional[float] = None,
) -> Dict[str, Any]:
    """Append one session record (one JSON line) to the history file.

    Returns the record written.  Entries without a ``variant`` (metric
    side-rows) are skipped; the rest are slimmed to key + measured
    fields so years of sessions stay a few hundred kilobytes.
    """
    record = {
        "schema": HISTORY_SCHEMA,
        "timestamp": time.time() if timestamp is None else float(timestamp),
        "meta": dict(meta or {}),
        "entries": [_slim(e) for e in entries if "variant" in e],
    }
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")
    return record


def read_history(path: str) -> List[Dict[str, Any]]:
    """Read session records oldest-first; corrupt lines are skipped.

    A truncated final line (killed CI job mid-append) must not poison
    the whole history, so bad JSON is dropped rather than raised.
    """
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict) and "entries" in record:
                records.append(record)
    return records


def series(
    records: Iterable[Dict[str, Any]], field: str = "wall_ms"
) -> Dict[Tuple, List[float]]:
    """Per-key time series of ``field`` across sessions (append order)."""
    out: Dict[Tuple, List[float]] = {}
    for record in records:
        for entry in record.get("entries", []):
            if "variant" not in entry:
                continue
            value = entry.get(field)
            if value is None:
                continue
            out.setdefault(entry_key(entry), []).append(float(value))
    return out


def ewma_drift(
    values: List[float],
    alpha: float = 0.3,
    threshold: float = 0.15,
    zscore: float = 3.0,
    min_points: int = 5,
) -> Dict[str, Any]:
    """Is the latest value adrift from the smoothed history before it?

    An exponentially-weighted mean and variance are run over all points
    *except the last*; the last point drifts when it exceeds the mean
    both relatively (``excess > threshold``) and statistically
    (``z > zscore``).  Requiring both gates keeps a noisy-but-flat
    series (large std, small excess) and a microsecond-level jitter
    series (tiny std, tiny excess) from alarming.  One-sided by design:
    getting faster is never drift.
    """
    n = len(values)
    result: Dict[str, Any] = {
        "drift": False, "n": n, "mean": None, "std": None,
        "last": values[-1] if values else None, "excess": 0.0, "z": 0.0,
    }
    if n < max(2, min_points):
        return result
    mean = values[0]
    var = 0.0
    for value in values[1:-1]:
        delta = value - mean
        incr = alpha * delta
        mean += incr
        var = (1.0 - alpha) * (var + delta * incr)
    std = math.sqrt(var)
    last = values[-1]
    excess = (last - mean) / mean if mean > 0 else 0.0
    if std > 0:
        z = (last - mean) / std
    else:
        # zero historical variance: any relative excess is infinitely
        # many "standard deviations", none is zero.
        z = math.inf if last > mean else 0.0
    result.update(mean=mean, std=std, excess=excess, z=z)
    result["drift"] = excess > threshold and z > zscore
    return result


def cusum_changepoint(
    values: List[float],
    k: float = 0.5,
    h: float = 4.0,
    min_points: int = 8,
) -> Optional[int]:
    """Index of the first sustained level shift, or ``None``.

    Two-sided standardized CUSUM (Page): values are z-scored against
    the whole series, then the one-sided cumulative sums
    ``S+ = max(0, S+ + z - k)`` / ``S- = max(0, S- - z - k)`` accumulate
    persistent excursions; the first index where either exceeds ``h``
    is the changepoint.  ``k`` (the slack, in stds) absorbs noise;
    ``h`` sets how long a shift must persist before it counts.
    """
    n = len(values)
    if n < min_points:
        return None
    mean = sum(values) / n
    var = sum((v - mean) ** 2 for v in values) / n
    std = math.sqrt(var)
    if std <= 0:
        return None
    s_hi = s_lo = 0.0
    for i, value in enumerate(values):
        z = (value - mean) / std
        s_hi = max(0.0, s_hi + z - k)
        s_lo = max(0.0, s_lo - z - k)
        if s_hi > h or s_lo > h:
            return i
    return None


def drift_report(
    records: Iterable[Dict[str, Any]],
    fields: Tuple[str, ...] = ("wall_ms", "compiled_ms"),
    window: int = 20,
    alpha: float = 0.3,
    threshold: float = 0.15,
    zscore: float = 3.0,
    min_points: int = 5,
) -> List[Dict[str, Any]]:
    """Drifting (key, field) series over the last ``window`` sessions.

    Each finding carries the :func:`ewma_drift` verdict plus any
    :func:`cusum_changepoint` index inside the window; a series appears
    when either detector fires.
    """
    records = list(records)
    findings: List[Dict[str, Any]] = []
    for field in fields:
        for key, values in sorted(
            series(records, field).items(), key=lambda kv: str(kv[0])
        ):
            window_values = values[-window:] if window > 0 else values
            verdict = ewma_drift(
                window_values, alpha=alpha, threshold=threshold,
                zscore=zscore, min_points=min_points,
            )
            changepoint = cusum_changepoint(window_values)
            if verdict["drift"] or changepoint is not None:
                findings.append({
                    "key": list(key),
                    "label": key_label(key),
                    "field": field,
                    "changepoint": changepoint,
                    **verdict,
                })
    return findings
