#!/usr/bin/env python3
"""Bolund-hill LES: a miniature of the paper's benchmark case.

Atmospheric boundary-layer flow over a Bolund-like cliff, run end to end
with the explicit fractional-step scheme: RHS assembly with a selectable
kernel variant, AMG-CG pressure solve, projection, and VTK output.

Run:  python examples/bolund_les.py [--variant RSPR] [--steps 10]
"""

import argparse

import numpy as np

from repro.core import UnifiedAssembler
from repro.fem import bolund_like_mesh, classify_box_boundaries, DirichletBC
from repro.io import write_vtk
from repro.physics import AssemblyParams
from repro.physics.fractional_step import FractionalStepSolver
from repro.physics.pressure import PressureSolver


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--variant", default="RSPR", help="kernel variant (B..RSPR)")
    ap.add_argument("--steps", type=int, default=10)
    ap.add_argument("--nx", type=int, default=16)
    ap.add_argument("--output", default=None, help="VTK output path")
    args = ap.parse_args()

    mesh = bolund_like_mesh(nx=args.nx, ny=args.nx * 2 // 3, nz=8)
    print(f"Bolund-like mesh: {mesh.nnode} nodes, {mesh.nelem} tets")
    print(mesh.statistics())

    params = AssemblyParams(body_force=(0.0, 0.0, 0.0))
    regions = classify_box_boundaries(mesh)

    # log-profile inflow over the upwind face, no-slip ground, free-slip top
    u_ref, z_ref, z0 = 1.0, 2.0, 0.01

    def inflow(coords: np.ndarray) -> np.ndarray:
        z = np.maximum(coords[:, 2] - coords[:, 2].min() + z0, z0)
        u = u_ref * np.log(z / z0) / np.log(z_ref / z0)
        out = np.zeros((len(coords), 3))
        out[:, 0] = np.maximum(u, 0.0)
        return out

    bcs = [
        DirichletBC(regions["xmin"].nodes, inflow),
        DirichletBC(regions["zmin"].nodes, np.zeros(3)),
        DirichletBC(regions["zmax"].nodes, np.zeros(3), components=(2,)),
        DirichletBC(regions["ymin"].nodes, np.zeros(3), components=(1,)),
        DirichletBC(regions["ymax"].nodes, np.zeros(3), components=(1,)),
    ]

    assembler = UnifiedAssembler(mesh, params, vector_dim=256)

    def assemble(mesh_, velocity, params_):
        return assembler.assemble(args.variant, velocity)

    solver = FractionalStepSolver(
        mesh,
        params,
        dirichlet=bcs,
        assemble=assemble,
        pressure_solver=PressureSolver(mesh, tol=1e-6),
    )
    solver.set_velocity(inflow(mesh.coords))

    print(f"\nrunning {args.steps} steps with variant {args.variant}:")
    print(f"{'step':>4s} {'t':>8s} {'dt':>8s} {'|u|max':>8s} "
          f"{'KE':>10s} {'p iters':>7s}")
    for rep in solver.run(args.steps, cfl=0.4):
        print(
            f"{rep.step:4d} {rep.time:8.3f} {rep.dt:8.4f} "
            f"{rep.max_velocity:8.3f} {rep.kinetic_energy:10.4f} "
            f"{rep.pressure_iterations:7d}"
        )

    breakdown = solver.timing_breakdown()
    print(
        f"\nassembly fraction of solver time: "
        f"{breakdown['assembly_fraction']:.0%} "
        "(the paper reports up to 80% for production LES)"
    )

    if args.output:
        write_vtk(
            args.output,
            mesh,
            point_data={
                "velocity": solver.velocity,
                "pressure": solver.pressure_field,
            },
            title="Bolund-like LES",
        )
        print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
