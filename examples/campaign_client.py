#!/usr/bin/env python3
"""Talk to the campaign server: submit, poll, fetch, verify, drain.

Two ways to run it:

* against a server you started yourself::

      PYTHONPATH=src python -m repro.server --port 8750 &
      PYTHONPATH=src python examples/campaign_client.py --port 8750

* self-contained (``--spawn``): the script boots ``python -m repro.server``
  on an ephemeral port as a subprocess, runs the whole smoke sequence --
  health, an assembly request **bitwise-verified** against the direct
  library call, a small LES campaign, a second identical submit that must
  come back ``cached`` without re-planning, ``/stats`` -- then sends
  SIGTERM and waits for the graceful drain.  The CI ``server`` job runs
  exactly this::

      PYTHONPATH=src python examples/campaign_client.py --spawn \
          --stats-out SERVER_stats.json
"""

import argparse
import hashlib
import json
import os
import signal
import subprocess
import sys
import time

import numpy as np

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.server import CampaignClient  # noqa: E402

MESH = {"nx": 4, "ny": 4, "nz": 4}


def direct_sha256(velocity_seed: int) -> str:
    """The library-side answer the served one must match bitwise."""
    from repro.core import UnifiedAssembler
    from repro.fem import box_tet_mesh
    from repro.physics import AssemblyParams

    mesh = box_tet_mesh(MESH["nx"], MESH["ny"], MESH["nz"])
    velocity = 0.1 * np.random.default_rng(velocity_seed).standard_normal(
        (mesh.nnode, 3)
    )
    rhs = UnifiedAssembler(mesh, AssemblyParams(), mode="compiled").assemble(
        "RSP", velocity
    )
    return hashlib.sha256(np.ascontiguousarray(rhs).tobytes()).hexdigest()


def smoke(client: CampaignClient, stats_out=None) -> None:
    health = client.health()
    print(f"health: {health}")
    assert health["status"] == "ok"

    # 1. one assembly, checked bitwise against the in-process library
    req = {"kind": "assemble", "mesh": MESH, "variant": "RSP",
           "mode": "compiled", "velocity_seed": 3}
    resp = client.run(req)
    served, direct = resp["result"]["sha256"], direct_sha256(3)
    print(f"assemble: served sha256 {served[:16]}… "
          f"{'==' if served == direct else '!='} direct library")
    assert served == direct, "served assembly diverged from the library"

    # 2. a small two-scenario LES campaign (explicit submit/poll/fetch)
    campaign = {
        "kind": "campaign", "mesh": MESH, "steps": 5, "dt": 2e-3,
        "mode": "compiled",
        "scenarios": [{"body_force": [0.0, 0.0, 0.01]},
                      {"body_force": [0.0, 0.0, 0.02]}],
    }
    sub = client.submit(campaign)
    print(f"campaign submitted: {sub['job_id']} ({sub['state']})")
    result = client.wait(sub["job_id"], timeout=300)
    energies = result["result"]["kinetic_energy"]
    print(f"campaign done: kinetic energy per scenario = "
          f"{[f'{e:.3e}' for e in energies]}")

    # 3. the identical campaign again: a content-hash cache hit
    again = client.run(campaign)
    assert again.get("cached") is True, "identical campaign must be cached"
    assert again["result"] == result["result"]
    print("resubmit: served from the result cache, bit-identical")

    stats = client.stats()
    print(f"stats: jobs={stats['jobs']} "
          f"mesh_cache={stats['mesh_cache_entries']} "
          f"result_cache={stats['result_cache_entries']}")
    if stats_out:
        with open(stats_out, "w", encoding="utf-8") as fh:
            json.dump(stats, fh, indent=2, sort_keys=True)
        print(f"stats written to {stats_out}")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--host", default="127.0.0.1")
    ap.add_argument("--port", type=int, default=8750)
    ap.add_argument("--spawn", action="store_true",
                    help="boot python -m repro.server on an ephemeral port, "
                         "run the smoke sequence, then drain it with SIGTERM")
    ap.add_argument("--stats-out", default=None,
                    help="write the final /stats snapshot to this JSON file")
    args = ap.parse_args()

    if not args.spawn:
        smoke(CampaignClient(host=args.host, port=args.port, timeout=300),
              stats_out=args.stats_out)
        return 0

    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "..", "src"
    ) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.server", "--port", "0"],
        stdout=subprocess.PIPE, env=env, text=True,
    )
    try:
        banner = json.loads(proc.stdout.readline())
        host, port = banner["listening"].rsplit(":", 1)
        print(f"spawned server on {banner['listening']}")
        smoke(CampaignClient(host=host, port=int(port), timeout=300),
              stats_out=args.stats_out)
        print("sending SIGTERM for the graceful drain…")
        proc.send_signal(signal.SIGTERM)
        deadline = time.monotonic() + 60
        for line in proc.stdout:
            if json.loads(line).get("drained"):
                print("server drained cleanly")
                break
            if time.monotonic() > deadline:
                raise RuntimeError("server did not drain in time")
        return proc.wait(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)


if __name__ == "__main__":
    raise SystemExit(main())
