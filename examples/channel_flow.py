#!/usr/bin/env python3
"""Pressure-driven channel flow with wall-resolved grading.

Demonstrates the physics substrate beyond the Bolund case: a body-force
driven channel with no-slip walls, the Vreman subgrid model, and the
kinetic-energy budget of the explicit fractional-step scheme.  Also shows
the specialization boundary: switching the turbulence model requires the
baseline variant -- the specialized kernels refuse.

Run:  python examples/channel_flow.py [--steps 12]
"""

import argparse

import numpy as np

from repro.core import SpecializationError, UnifiedAssembler
from repro.fem import channel_mesh, classify_box_boundaries, DirichletBC
from repro.physics import AssemblyParams, TurbulenceModel
from repro.physics.fractional_step import FractionalStepSolver
from repro.physics.pressure import PressureSolver


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--steps", type=int, default=12)
    args = ap.parse_args()

    mesh = channel_mesh(nx=12, ny=8, nz=10)
    print(f"channel mesh: {mesh.nnode} nodes, {mesh.nelem} tets")

    # driven by a streamwise body force (the pressure-gradient surrogate)
    params = AssemblyParams(body_force=(5e-3, 0.0, 0.0))
    regions = classify_box_boundaries(mesh)
    bcs = [
        DirichletBC(regions["zmin"].nodes, np.zeros(3)),
        DirichletBC(regions["zmax"].nodes, np.zeros(3)),
    ]

    solver = FractionalStepSolver(
        mesh,
        params,
        dirichlet=bcs,
        pressure_solver=PressureSolver(mesh, tol=1e-6),
    )

    # start from a laminar-ish parabolic profile plus noise
    z = mesh.coords[:, 2]
    zmax = z.max()
    rng = np.random.default_rng(11)
    u0 = np.zeros((mesh.nnode, 3))
    u0[:, 0] = 0.05 * 4.0 * (z / zmax) * (1.0 - z / zmax)
    u0 += 0.002 * rng.standard_normal(u0.shape)
    solver.set_velocity(u0)

    print(f"\n{'step':>4s} {'t':>8s} {'KE':>12s} {'bulk u':>8s} {'p iters':>7s}")
    for rep in solver.run(args.steps, cfl=0.4):
        bulk = float(solver.velocity[:, 0].mean())
        print(
            f"{rep.step:4d} {rep.time:8.3f} {rep.kinetic_energy:12.6f} "
            f"{bulk:8.4f} {rep.pressure_iterations:7d}"
        )
    print("\nthe body force steadily accelerates the bulk flow while the "
          "walls hold -- the standard channel spin-up transient.")

    # The specialization boundary the paper pays for its speed with:
    smag = AssemblyParams(
        body_force=(5e-3, 0.0, 0.0),
        turbulence_model=TurbulenceModel.SMAGORINSKY,
    )
    asm = UnifiedAssembler(mesh, smag)
    try:
        asm.assemble("RSP", solver.velocity)
    except SpecializationError as exc:
        print(f"\nspecialization boundary (expected): {exc}")
    rhs = asm.assemble("B", solver.velocity)  # the generic baseline copes
    print(f"baseline handled the Smagorinsky model fine "
          f"(|rhs|max = {np.abs(rhs).max():.3e})")


if __name__ == "__main__":
    main()
