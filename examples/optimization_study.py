#!/usr/bin/env python3
"""Regenerate the paper's measurement campaign on the machine models:
Table I (CPU), Table II (GPU), the Figure 3 roofline and the Section VI
energy comparison -- side by side with the paper's published numbers.

Run:  python examples/optimization_study.py
"""

from repro.core import OptimizationStudy
from repro.core.microbench import run_listing3
from repro.io.report import (
    PAPER_TABLE3,
    comparison_table_cpu,
    comparison_table_gpu,
)
from repro.machine.roofline import render_ascii


def main() -> None:
    study = OptimizationStudy()

    print("=" * 72)
    gpu = study.gpu_table()
    print(study.format_gpu_table(gpu))
    print()
    print(comparison_table_gpu(gpu))

    print("=" * 72)
    cpu = study.cpu_table()
    print(study.format_cpu_table(cpu))
    print()
    print(comparison_table_cpu(cpu))

    print("=" * 72)
    print("Table III (privatization micro-study), measured vs paper:")
    for name, r in run_listing3().items():
        p = PAPER_TABLE3[name]
        print(
            f"  {name:9s}: local/global stores {r.local_stores}/"
            f"{r.global_stores} (paper {p['local_stores']}/"
            f"{p['global_stores']}), store volume L2/DRAM "
            f"{r.l2_store_bytes}/{r.dram_store_bytes} B (paper "
            f"{p['l2_store_bytes']}/{p['dram_store_bytes']} B)"
        )

    print("=" * 72)
    print("Figure 3 roofline (DRAM intensity):\n")
    pts = study.roofline_points(gpu)
    print(render_ascii(study.roofline(), pts["dram"]))

    print("=" * 72)
    energy = study.energy(gpu, cpu)
    print("Section VI energy estimate:")
    for dev in ("gpu", "cpu"):
        for variant, joules in energy[dev].items():
            print(f"  {dev} {variant:5s}: {joules:8.1f} J")
    r = energy["ratios"]
    print(
        f"  best CPU / best GPU energy ratio: "
        f"{r['best_cpu_over_best_gpu']:.1f}x (paper: ~4x)"
    )
    print(
        f"  baseline CPU / baseline GPU:      "
        f"{r['baseline_cpu_over_baseline_gpu']:.2f}x "
        "(paper: GPU was the *less* efficient option at the baseline)"
    )


if __name__ == "__main__":
    main()
