#!/usr/bin/env python3
"""Quickstart: assemble the Navier-Stokes momentum RHS with every kernel
variant from the paper, verify they agree, and look at their cost traces.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import Storage, UnifiedAssembler, variant_names
from repro.fem import box_tet_mesh
from repro.physics import AssemblyParams, assemble_momentum_rhs


def main() -> None:
    # A structured tet mesh of the unit cube: 8^3 cells x 6 tets.
    mesh = box_tet_mesh(8, 8, 8)
    print(f"mesh: {mesh.nnode} nodes, {mesh.nelem} tetrahedra")

    # Physics: the constants the paper's specialized kernels hard-wire
    # (constant density/viscosity, Vreman LES model) plus a body force.
    params = AssemblyParams(body_force=(0.0, 0.0, -0.1))

    # A synthetic velocity field to assemble the RHS for.
    rng = np.random.default_rng(7)
    velocity = 0.1 * rng.standard_normal((mesh.nnode, 3))

    # The oracle: vectorized numpy reference assembly.
    reference = assemble_momentum_rhs(mesh, velocity, params)

    # The paper's variants, all through one driver (VECTOR_DIM=16 is the
    # paper's CPU group size).
    assembler = UnifiedAssembler(mesh, params, vector_dim=16)
    print(f"\n{'variant':8s} {'max rel err':>12s} {'flops/elem':>11s} "
          f"{'global ld/st':>13s} {'private ld/st':>14s} {'temp slots':>11s}")
    for name in variant_names():
        rhs = assembler.assemble(name, velocity)
        err = np.abs(rhs - reference).max() / np.abs(reference).max()
        trace = assembler.trace(name, velocity)
        slots = trace.temp_slots(Storage.GLOBAL_TEMP) + trace.temp_slots(
            Storage.PRIVATE
        )
        print(
            f"{name:8s} {err:12.2e} {trace.flops:11d} "
            f"{trace.loadstore(Storage.GLOBAL_TEMP):13d} "
            f"{trace.loadstore(Storage.PRIVATE):14d} {slots:11d}"
        )

    print(
        "\nAll variants assemble the same physics; the traces show why the "
        "restructured+specialized+privatized versions are so much cheaper: "
        "4-8x fewer flops and orders of magnitude fewer temporary-array "
        "accesses -- the paper's entire optimization story in one table."
    )


if __name__ == "__main__":
    main()
