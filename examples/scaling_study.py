#!/usr/bin/env python3
"""Figure 2: CPU strong scaling, two ways.

1. The machine model's turbo-binned curve for the paper's dual Icelake
   (3.4 GHz up to 17 workers, then 3.1, then 2.6 -- the kinks in Fig. 2).
2. A real multiprocessing measurement of the trivially-parallel elemental
   assembly on *this* machine.

Run:  python examples/scaling_study.py [--real]
"""

import argparse
import os

from repro.core import OptimizationStudy
from repro.fem import box_tet_mesh
from repro.parallel import MultiprocessRunner
from repro.physics import AssemblyParams


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--real", action="store_true",
                    help="also run the multiprocessing measurement")
    args = ap.parse_args()

    study = OptimizationStudy()
    curves = study.cpu_scaling(worker_counts=[1, 2, 4, 8, 16, 17, 18, 24,
                                              32, 48, 60, 71])
    print("machine-model scaling (Fig. 2 analogue), Melem/s:")
    header = "workers: " + "  ".join(f"{r['workers']:>6d}"
                                     for r in curves["B"])
    print(header)
    for variant, rows in curves.items():
        line = "  ".join(f"{r['melem_per_s']:6.0f}" for r in rows)
        print(f"{variant:>7s}: {line}")
    print("\nnote the slope changes after 17 and 24 workers/socket: the "
          "turbo frequency drops 3.4 -> 3.1 -> 2.6 GHz, exactly the kinks "
          "the paper's Figure 2 shows.")

    if args.real:
        ncpu = os.cpu_count() or 2
        counts = sorted({1, 2, min(4, ncpu), min(ncpu, 8)})
        mesh = box_tet_mesh(16, 16, 16)
        runner = MultiprocessRunner(mesh, AssemblyParams(), repeats=2)
        print(f"\nreal multiprocessing scaling on this machine "
              f"({mesh.nelem} elements):")
        for p in runner.measure(list(counts)):
            print(
                f"  {p.workers:3d} workers: {p.wall_seconds*1e3:8.1f} ms, "
                f"{p.melem_per_s:7.1f} Melem/s, speedup {p.speedup:5.2f} "
                f"(eff {p.efficiency:.0%})"
            )


if __name__ == "__main__":
    main()
