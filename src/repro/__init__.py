"""repro: reproduction of "Alya towards Exascale: Optimal OpenACC
Performance of the Navier-Stokes Finite Element Assembly on GPUs"
(IPPS 2024).

Quick start::

    from repro.fem import box_tet_mesh
    from repro.physics import AssemblyParams
    from repro.core import UnifiedAssembler, OptimizationStudy

    mesh = box_tet_mesh(8, 8, 8)
    asm = UnifiedAssembler(mesh, AssemblyParams())
    rhs = asm.assemble("RSPR", velocity)      # any of B, P, RS, RSP, RSPR

    study = OptimizationStudy(mesh)
    print(study.format_gpu_table(study.gpu_table()))   # the paper's Table II

Subpackages: :mod:`repro.fem` (tetrahedral FEM substrate),
:mod:`repro.physics` (incompressible LES), :mod:`repro.core` (the kernel
variants + DSL + study), :mod:`repro.machine` (A100/Icelake execution
models), :mod:`repro.solvers` (CG/AMG), :mod:`repro.parallel` (MPI-style
decomposition), :mod:`repro.io` (VTK + reports), :mod:`repro.obs`
(telemetry: spans, metrics, perf artifacts).
"""

__version__ = "1.0.0"

from . import core, fem, io, machine, obs, parallel, physics, solvers  # noqa: F401

__all__ = [
    "core", "fem", "io", "machine", "obs", "parallel", "physics", "solvers",
    "__version__",
]
