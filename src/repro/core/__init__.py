"""The paper's primary contribution: the kernel DSL, the five assembly
variants (B, P, RS, RSP, RSPR), the unified driver and the optimization
study that regenerates the paper's tables and figures."""

from .storage import AccessKind, MemoryEvent, Storage, TempSpec
from .dsl import (
    Backend,
    KernelContext,
    NumpyBackend,
    Temp,
    TraceReport,
    TracingBackend,
    Value,
    trace_kernel,
)
from .baseline import baseline_kernel, make_baseline_kernel, privatized_kernel
from .restructured import (
    make_specialized_kernel,
    rs_kernel,
    rsp_kernel,
    rspr_kernel,
    SPEC_DENSITY,
    SPEC_VISCOSITY,
    SPEC_VREMAN_C,
)
from .variants import VARIANTS, Variant, get_variant, variant_names
from .tape import (
    BatchTapeProgram,
    BatchedTape,
    CompiledTape,
    ElementalTape,
    RecordingBackend,
    TapeProgram,
    TapeReport,
    batched_tape,
    compiled_tape,
    record_batch_program,
    record_program,
)
from .codegen import (
    BatchedCodegenProgram,
    BatchedGeneratedKernel,
    CodegenProgram,
    ElementalCodegenProgram,
    ElementalGeneratedKernel,
    GeneratedKernel,
    batched_generated_kernel,
    generate_batched_program,
    generate_elemental_program,
    generate_program,
    generated_kernel,
)
from .batch import ScenarioBatch
from .unified import (
    CPU_VECTOR_DIM,
    GPU_VECTOR_DIM,
    SpecializationError,
    UnifiedAssembler,
)
from .autotune import (
    DEFAULT_CANDIDATES,
    DEFAULT_CHUNK_CANDIDATES,
    AutotuneResult,
    autotune_chunk_groups,
    autotune_vector_dim,
    write_autotune_report,
)
from .study import OptimizationStudy, PAPER_NELEM

__all__ = [
    "AccessKind", "MemoryEvent", "Storage", "TempSpec",
    "Backend", "KernelContext", "NumpyBackend", "Temp", "TraceReport",
    "TracingBackend", "Value", "trace_kernel",
    "baseline_kernel", "make_baseline_kernel", "privatized_kernel",
    "make_specialized_kernel", "rs_kernel", "rsp_kernel", "rspr_kernel",
    "SPEC_DENSITY", "SPEC_VISCOSITY", "SPEC_VREMAN_C",
    "VARIANTS", "Variant", "get_variant", "variant_names",
    "BatchTapeProgram", "BatchedTape", "CompiledTape", "ElementalTape",
    "RecordingBackend", "TapeProgram", "TapeReport", "batched_tape",
    "compiled_tape", "record_batch_program", "record_program",
    "BatchedCodegenProgram", "BatchedGeneratedKernel", "CodegenProgram",
    "ElementalCodegenProgram", "ElementalGeneratedKernel",
    "GeneratedKernel", "batched_generated_kernel",
    "generate_batched_program", "generate_elemental_program",
    "generate_program", "generated_kernel",
    "ScenarioBatch",
    "CPU_VECTOR_DIM", "GPU_VECTOR_DIM", "SpecializationError",
    "UnifiedAssembler",
    "DEFAULT_CANDIDATES", "DEFAULT_CHUNK_CANDIDATES", "AutotuneResult",
    "autotune_chunk_groups", "autotune_vector_dim",
    "write_autotune_report",
    "OptimizationStudy", "PAPER_NELEM",
]
