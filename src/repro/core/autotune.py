"""``VECTOR_DIM`` autotuner: sweep group sizes, persist the winner.

The paper fixes ``VECTOR_DIM = 16`` on the CPU and ``2048k`` on the GPU
after manual tuning ("a study of vectorization for matrix-free finite
element methods" makes the same point: the profitable vector length is a
machine property, not a code property).  This module automates that sweep
for the Python substrate: time each candidate group size on the actual
mesh, pick the fastest, and persist the winner on the mesh's
:class:`~repro.fem.plan.AssemblyPlan` so every later
:class:`~repro.core.unified.UnifiedAssembler` constructed without an
explicit ``vector_dim`` resolves to it.

Determinism: candidates are timed best-of-``repeats`` with an injectable
``timer`` callable (the tests pass a seeded stub), and ties break toward
the smaller group size, so a given sequence of timer readings always
elects the same winner.
"""

from __future__ import annotations

import dataclasses
import json
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..fem.mesh import TetMesh
from ..fem.plan import get_plan
from ..obs.metrics import get_registry
from ..obs.spans import get_tracer
from .unified import UnifiedAssembler

__all__ = [
    "DEFAULT_CANDIDATES",
    "DEFAULT_CHUNK_CANDIDATES",
    "AutotuneResult",
    "autotune_chunk_groups",
    "autotune_vector_dim",
    "write_autotune_report",
]

#: Default group-size sweep: powers of two bracketing the paper's CPU
#: choice of 16 up through whole-mesh-at-once territory.
DEFAULT_CANDIDATES: Tuple[int, ...] = (8, 16, 32, 64, 256, 1024, 4096)

#: Default chunk-size sweep for the threaded executor, in element groups
#: per chunk.  Small chunks balance load; large chunks amortize per-op
#: numpy dispatch.
DEFAULT_CHUNK_CANDIDATES: Tuple[int, ...] = (1, 2, 4, 8, 16, 32)


@dataclasses.dataclass(frozen=True)
class AutotuneResult:
    """Outcome of one parameter sweep for one variant.

    ``parameter`` names the knob that was swept: ``"vector_dim"`` for the
    classic group-size sweep, ``"chunk_groups"`` for the threaded
    executor's chunk-size sweep.
    """

    variant: str
    mode: str
    nelem: int
    candidates: Tuple[int, ...]
    wall_seconds: Tuple[float, ...]  # best-of-``repeats`` per candidate
    winner: int
    repeats: int
    parameter: str = "vector_dim"

    @property
    def best_seconds(self) -> float:
        return self.wall_seconds[self.candidates.index(self.winner)]

    def to_dict(self) -> dict:
        return {
            "variant": self.variant,
            "mode": self.mode,
            "nelem": self.nelem,
            "parameter": self.parameter,
            "candidates": list(self.candidates),
            "wall_seconds": list(self.wall_seconds),
            "winner": self.winner,
            "best_seconds": self.best_seconds,
            "repeats": self.repeats,
        }


def autotune_vector_dim(
    mesh: TetMesh,
    variant: str = "RSP",
    params=None,
    candidates: Optional[Sequence[int]] = None,
    repeats: int = 3,
    timer: Optional[Callable[[], float]] = None,
    velocity: Optional[np.ndarray] = None,
    mode: str = "compiled",
    tracer=None,
    persist: bool = True,
    batch=None,
) -> AutotuneResult:
    """Sweep ``VECTOR_DIM`` candidates for ``variant`` on ``mesh``.

    Each candidate is warmed once (tape recording / pattern build excluded
    from timing) and then timed ``repeats`` times; the candidate with the
    smallest best-of time wins, ties broken toward the smaller group size.
    With ``persist=True`` (default) the winner is recorded on the mesh's
    plan via :meth:`~repro.fem.plan.AssemblyPlan.set_tuned_vector_dim`,
    keyed ``(variant, mode)`` so the compiled and codegen winners never
    evict each other; assemblers constructed with ``vector_dim=None``
    pick it up.

    Parameters
    ----------
    timer:
        Clock used for the measurements (``time.perf_counter`` by
        default).  Injectable so tests can drive the sweep with a
        deterministic stub.
    batch:
        Optional :class:`~repro.core.batch.ScenarioBatch` (or sequence of
        :class:`AssemblyParams`): candidates are then timed on the
        batched ``run_batch`` path and the winner persists under the
        batch-aware mode key ``"<mode>@S<scenarios>"``, which
        :meth:`~repro.core.unified.UnifiedAssembler.resolve_vector_dim`
        consults first for batched assemblies.  The profitable lane
        width shifts with ``S`` (each lane carries ``S`` rows of every
        full-rank buffer), so batched campaigns deserve their own sweep.
    """
    from ..physics.momentum import AssemblyParams

    if batch is not None:
        from .batch import ScenarioBatch

        if not isinstance(batch, ScenarioBatch):
            batch = ScenarioBatch(batch)
    if params is None:
        params = AssemblyParams() if batch is None else batch[0]
    if timer is None:
        timer = time.perf_counter
    if candidates is None:
        candidates = DEFAULT_CANDIDATES
    cand = tuple(int(c) for c in candidates)
    if not cand:
        raise ValueError("autotune needs at least one candidate vector_dim")
    if velocity is None:
        velocity = np.zeros((mesh.nnode, 3))
    variant = variant.upper()
    mode_key = mode if batch is None else f"{mode}@S{batch.size}"

    walls: List[float] = []
    with get_tracer().span(
        "tape.autotune",
        variant=variant,
        mode=mode_key,
        candidates=len(cand),
    ):
        for vd in cand:
            kwargs = dict(vector_dim=vd, mode=mode)
            if tracer is not None:
                kwargs["tracer"] = tracer
            asm = UnifiedAssembler(mesh, params, **kwargs)
            # warm: record/compile/cache
            if batch is None:
                asm.assemble(variant, velocity)
            else:
                asm.run_batch(variant, batch, velocity)
            best = None
            for _ in range(max(1, int(repeats))):
                t0 = timer()
                if batch is None:
                    asm.assemble(variant, velocity)
                else:
                    asm.run_batch(variant, batch, velocity)
                dt = timer() - t0
                best = dt if best is None else min(best, dt)
            walls.append(float(best))

    # Deterministic winner: smallest time, then smallest group size.
    winner = min(zip(walls, cand))[1]
    result = AutotuneResult(
        variant=variant,
        mode=mode_key,
        nelem=int(mesh.nelem),
        candidates=cand,
        wall_seconds=tuple(walls),
        winner=winner,
        repeats=max(1, int(repeats)),
    )
    registry = get_registry()
    registry.counter("tape.autotune_runs").inc()
    if persist:
        get_plan(mesh).set_tuned_vector_dim(variant, winner, mode=mode_key)
    return result


def autotune_chunk_groups(
    mesh: TetMesh,
    variant: str = "RSP",
    params=None,
    candidates: Optional[Sequence[int]] = None,
    repeats: int = 3,
    timer: Optional[Callable[[], float]] = None,
    velocity: Optional[np.ndarray] = None,
    vector_dim: Optional[int] = None,
    num_threads: Optional[int] = None,
    mode: str = "compiled",
    tracer=None,
    persist: bool = True,
) -> AutotuneResult:
    """Sweep the threaded executor's chunk size for ``variant`` on ``mesh``.

    Complements :func:`autotune_vector_dim`: with the group size fixed
    (explicit ``vector_dim`` or the plan's tuned winner), this times
    the chunked executor (``mode="compiled"`` tape replay or
    ``mode="codegen"`` generated kernels) at each
    candidate ``chunk_groups`` and persists the fastest via
    :meth:`~repro.fem.plan.AssemblyPlan.set_tuned_chunk_groups`, where
    threaded assemblers constructed without an explicit ``chunk_groups``
    pick it up.  Same determinism contract as the vector-dim sweep:
    injectable ``timer``, best-of-``repeats``, ties break toward the
    smaller chunk.
    """
    from ..physics.momentum import AssemblyParams

    if params is None:
        params = AssemblyParams()
    if timer is None:
        timer = time.perf_counter
    if candidates is None:
        candidates = DEFAULT_CHUNK_CANDIDATES
    cand = tuple(int(c) for c in candidates)
    if not cand:
        raise ValueError("autotune needs at least one candidate chunk_groups")
    if velocity is None:
        velocity = np.zeros((mesh.nnode, 3))
    variant = variant.upper()

    walls: List[float] = []
    with get_tracer().span(
        "tape.autotune_chunks", variant=variant, candidates=len(cand)
    ):
        for cg in cand:
            kwargs = dict(
                vector_dim=vector_dim,
                mode=mode,
                executor="threads",
                num_threads=num_threads,
                chunk_groups=cg,
            )
            if tracer is not None:
                kwargs["tracer"] = tracer
            asm = UnifiedAssembler(mesh, params, **kwargs)
            asm.assemble(variant, velocity)  # warm: record/compile/cache
            best = None
            for _ in range(max(1, int(repeats))):
                t0 = timer()
                asm.assemble(variant, velocity)
                dt = timer() - t0
                best = dt if best is None else min(best, dt)
            walls.append(float(best))

    # Deterministic winner: smallest time, then smallest chunk size.
    winner = min(zip(walls, cand))[1]
    result = AutotuneResult(
        variant=variant,
        mode=mode,
        nelem=int(mesh.nelem),
        candidates=cand,
        wall_seconds=tuple(walls),
        winner=winner,
        repeats=max(1, int(repeats)),
        parameter="chunk_groups",
    )
    get_registry().counter("tape.autotune_runs").inc()
    if persist:
        get_plan(mesh).set_tuned_chunk_groups(variant, winner)
    return result


def write_autotune_report(
    results: Sequence[AutotuneResult], path
) -> Dict[str, object]:
    """Write a JSON autotune report (uploaded as a CI artifact)."""
    doc = {
        "schema": "repro-autotune/1",
        "results": [r.to_dict() for r in results],
        "winners": {
            (
                r.variant
                if r.parameter == "vector_dim"
                else f"{r.variant}:{r.parameter}"
            ): r.winner
            for r in results
        },
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return doc
