"""Variant **B** (baseline) and **P** (baseline + privatization).

This kernel reproduces the structure of Alya's original vectorized momentum
RHS assembly, the starting point of the paper:

* **generic element machinery**: node and Gauss counts are runtime values,
  the isoparametric geometry (Jacobian, inverse, Cartesian derivatives) is
  evaluated *at every Gauss point* even though it is constant for linear
  tetrahedra;
* **runtime options**: material law, turbulence model and convective form
  are read as input flags and dispatched with branches;
* **elemental matrices**: the kernel first builds the full
  ``elauu(pnode, pnode, ndime, ndime)`` elemental matrix -- "a hold over
  from a previous time when Alya still used implicit time-stepping" -- and
  then multiplies it by the element velocities to obtain the elemental RHS;
* **every intermediate is an array**: each assignment round-trips through a
  named temporary (the paper counts 430 double-precision values in 32
  arrays; this kernel declares ~450 values in 18 arrays, inventoried by the
  tracing backend).

Variant ``P`` is *identical source code* with the temporaries declared
``PRIVATE`` instead of ``GLOBAL_TEMP``.  Because the baseline's loop bounds
are runtime values, the private arrays are **not** register-mappable
(``static=False``): they land in GPU local memory, exactly the paper's
Table II column P.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..fem.quadrature import rule_for
from ..fem.reference import element
from .dsl import Backend, KernelContext
from .storage import Storage

__all__ = ["make_baseline_kernel", "baseline_kernel", "privatized_kernel"]


def _element_tables(ctx: KernelContext) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Shape values / reference derivatives / weights for the runtime type.

    In Alya these tables arrive as function arguments (``elmar`` structures)
    computed once at start-up; reading them is modelled inside the kernel as
    global-temp traffic after an initial copy-in.
    """
    name = getattr(ctx, "element_type", "TET04")
    ref = element(name)
    rule = rule_for(name, None if ref.nnode != 4 else 4)
    shapes, dref = ref.evaluate(rule.points)  # (nnode, ngauss), (nnode, 3, ngauss)
    return shapes, dref, rule.weights


def make_baseline_kernel(temp_storage: Storage = Storage.GLOBAL_TEMP):
    """Build the baseline kernel with a chosen temporary storage class.

    ``Storage.GLOBAL_TEMP`` gives variant **B**; ``Storage.PRIVATE`` gives
    variant **P** (the paper's isolated-privatization study).
    """

    def kernel(bk: Backend, ctx: KernelContext) -> None:
        pnode = ctx.nnode_per_element  # runtime value in the baseline
        shapes, dref, weights = _element_tables(ctx)
        pgaus = shapes.shape[1]
        ndime = 3
        st = temp_storage

        # -- runtime option flags (the generality S removes) -------------
        kfl_material = bk.runtime_flag("material_law")
        kfl_turb = bk.runtime_flag("turbulence_model")
        kfl_conv = bk.runtime_flag("convective_form")
        rho_p = bk.runtime_param("density")
        nu_p = bk.runtime_param("viscosity")
        cvre = bk.runtime_param("vreman_c")
        force = [
            bk.runtime_param("force_x"),
            bk.runtime_param("force_y"),
            bk.runtime_param("force_z"),
        ]

        # -- temporary arrays (Alya names) --------------------------------
        elcod = bk.temp("elcod", (pnode, ndime), st, write_before_read=True)
        elvel = bk.temp("elvel", (pnode, ndime), st, write_before_read=True)
        gpsha = bk.temp("gpsha", (pnode, pgaus), st, write_before_read=True)
        gpder = bk.temp("gpder", (pnode, ndime, pgaus), st, write_before_read=True)
        xjacm = bk.temp("xjacm", (pgaus, ndime, ndime), st, write_before_read=True)
        xjaci = bk.temp("xjaci", (pgaus, ndime, ndime), st, write_before_read=True)
        gpdet = bk.temp("gpdet", (pgaus,), st, write_before_read=True)
        gpvol = bk.temp("gpvol", (pgaus,), st, write_before_read=True)
        gpcar = bk.temp("gpcar", (pgaus, pnode, ndime), st, write_before_read=True)
        gpadv = bk.temp("gpadv", (pgaus, ndime), st, write_before_read=True)
        gpgve = bk.temp("gpgve", (pgaus, ndime, ndime), st, write_before_read=True)
        gpden = bk.temp("gpden", (pgaus,), st, write_before_read=True)
        gpvis = bk.temp("gpvis", (pgaus,), st, write_before_read=True)
        gpmut = bk.temp("gpmut", (pgaus,), st, write_before_read=True)
        gpalp = bk.temp("gpalp", (ndime, ndime), st, write_before_read=True)
        gpbet = bk.temp("gpbet", (ndime, ndime), st, write_before_read=True)
        elauu = bk.temp("elauu", (pnode, pnode, ndime, ndime), st, write_before_read=True)
        elrbu = bk.temp("elrbu", (pnode, ndime), st, write_before_read=True)

        # -- gather element data ------------------------------------------
        for a in range(pnode):
            for i in range(ndime):
                bk.store(elcod, (a, i), bk.gather_coord(a, i))
                bk.store(elvel, (a, i), bk.gather_field("velocity", a, i))

        # -- copy in the element tables (Alya: elmar arrays) ---------------
        for a in range(pnode):
            for q in range(pgaus):
                bk.store(gpsha, (a, q), bk.const(shapes[a, q]))
            for i in range(ndime):
                for q in range(pgaus):
                    bk.store(gpder, (a, i, q), bk.const(dref[a, i, q]))

        # -- geometry at EVERY Gauss point ---------------------------------
        # (for tetrahedra the Jacobian is constant; the generic baseline
        # does not know that and recomputes it pgaus times)
        for q in range(pgaus):
            for i in range(ndime):
                for j in range(ndime):
                    acc = bk.const(0.0)
                    for a in range(pnode):
                        acc = acc + bk.load(gpder, (a, i, q)) * bk.load(
                            elcod, (a, j)
                        )
                    bk.store(xjacm, (q, i, j), acc)

            # adjugate / determinant inverse
            j00 = bk.load(xjacm, (q, 0, 0))
            j01 = bk.load(xjacm, (q, 0, 1))
            j02 = bk.load(xjacm, (q, 0, 2))
            j10 = bk.load(xjacm, (q, 1, 0))
            j11 = bk.load(xjacm, (q, 1, 1))
            j12 = bk.load(xjacm, (q, 1, 2))
            j20 = bk.load(xjacm, (q, 2, 0))
            j21 = bk.load(xjacm, (q, 2, 1))
            j22 = bk.load(xjacm, (q, 2, 2))
            c00 = j11 * j22 - j12 * j21
            c01 = j12 * j20 - j10 * j22
            c02 = j10 * j21 - j11 * j20
            det = j00 * c00 + j01 * c01 + j02 * c02
            bk.store(gpdet, (q,), det)
            bk.store(gpvol, (q,), det * weights[q])
            inv_det = 1.0 / det
            # xjaci[j][k] = cof[k][j] / det  (inverse = adj / det)
            bk.store(xjaci, (q, 0, 0), c00 * inv_det)
            bk.store(xjaci, (q, 1, 0), c01 * inv_det)
            bk.store(xjaci, (q, 2, 0), c02 * inv_det)
            bk.store(xjaci, (q, 0, 1), (j02 * j21 - j01 * j22) * inv_det)
            bk.store(xjaci, (q, 1, 1), (j00 * j22 - j02 * j20) * inv_det)
            bk.store(xjaci, (q, 2, 1), (j01 * j20 - j00 * j21) * inv_det)
            bk.store(xjaci, (q, 0, 2), (j01 * j12 - j02 * j11) * inv_det)
            bk.store(xjaci, (q, 1, 2), (j02 * j10 - j00 * j12) * inv_det)
            bk.store(xjaci, (q, 2, 2), (j00 * j11 - j01 * j10) * inv_det)

            # Cartesian derivatives gpcar[q, a, j] = sum_k xjaci[j,k] gpder[a,k,q]
            for a in range(pnode):
                for j in range(ndime):
                    acc = bk.const(0.0)
                    for k in range(ndime):
                        acc = acc + bk.load(xjaci, (q, j, k)) * bk.load(
                            gpder, (a, k, q)
                        )
                    bk.store(gpcar, (q, a, j), acc)

        bk.fence("geometry")

        # -- velocity and gradient at every Gauss point ---------------------
        for q in range(pgaus):
            for i in range(ndime):
                acc = bk.const(0.0)
                for a in range(pnode):
                    acc = acc + bk.load(gpsha, (a, q)) * bk.load(elvel, (a, i))
                bk.store(gpadv, (q, i), acc)
            for i in range(ndime):
                for j in range(ndime):
                    acc = bk.const(0.0)
                    for a in range(pnode):
                        acc = acc + bk.load(gpcar, (q, a, j)) * bk.load(
                            elvel, (a, i)
                        )
                    bk.store(gpgve, (q, i, j), acc)

        bk.fence("interpolation")

        # -- material properties at every Gauss point ------------------------
        # (runtime material-law dispatch; the constant law is selected)
        for q in range(pgaus):
            if kfl_material == 0:
                bk.store(gpden, (q,), rho_p)
                bk.store(gpvis, (q,), nu_p)
            else:  # pragma: no cover - exercised by dedicated material tests
                # temperature-dependent laws would interpolate gptem here
                bk.store(gpden, (q,), rho_p)
                bk.store(gpvis, (q,), nu_p)

        # -- turbulent viscosity at every Gauss point -------------------------
        # element scale: delta^2 = V^(2/3) with V = sum_q gpvol[q]
        volel = bk.const(0.0)
        for q in range(pgaus):
            volel = volel + bk.load(gpvol, (q,))
        delta = volel.cbrt()
        delta2 = delta * delta

        for q in range(pgaus):
            if kfl_turb == 0:
                bk.store(gpmut, (q,), bk.const(0.0))
            elif kfl_turb == 1:  # Vreman
                # alpha_ij = du_j/dx_i = gpgve[q, j, i]
                for i in range(ndime):
                    for j in range(ndime):
                        bk.store(gpalp, (i, j), bk.load(gpgve, (q, j, i)))
                aa = bk.const(0.0)
                for i in range(ndime):
                    for j in range(ndime):
                        aij = bk.load(gpalp, (i, j))
                        aa = aa + aij * aij
                for i in range(ndime):
                    for j in range(ndime):
                        acc = bk.const(0.0)
                        for m in range(ndime):
                            acc = acc + bk.load(gpalp, (m, i)) * bk.load(
                                gpalp, (m, j)
                            )
                        bk.store(gpbet, (i, j), delta2 * acc)
                bbeta = (
                    bk.load(gpbet, (0, 0)) * bk.load(gpbet, (1, 1))
                    - bk.load(gpbet, (0, 1)) * bk.load(gpbet, (0, 1))
                    + bk.load(gpbet, (0, 0)) * bk.load(gpbet, (2, 2))
                    - bk.load(gpbet, (0, 2)) * bk.load(gpbet, (0, 2))
                    + bk.load(gpbet, (1, 1)) * bk.load(gpbet, (2, 2))
                    - bk.load(gpbet, (1, 2)) * bk.load(gpbet, (1, 2))
                )
                bbeta = bk.maximum(bbeta, 0.0)
                nut = bk.select_gt(
                    aa,
                    1e-30,
                    cvre * (bbeta / bk.maximum(aa, 1e-30)).sqrt(),
                    0.0,
                )
                bk.store(gpmut, (q,), nut)
            else:  # pragma: no cover - Smagorinsky/WALE via physics module
                # Smagorinsky |S| path (kept runtime-generic)
                ss = bk.const(0.0)
                for i in range(ndime):
                    for j in range(ndime):
                        sij = (
                            bk.load(gpgve, (q, i, j)) + bk.load(gpgve, (q, j, i))
                        ) * 0.5
                        ss = ss + sij * sij
                nut = 0.0289 * delta2 * (ss * 2.0).sqrt()
                bk.store(gpmut, (q,), nut)

        bk.fence("properties")

        # -- elemental matrix elauu -------------------------------------------
        for a in range(pnode):
            for b in range(pnode):
                for i in range(ndime):
                    for j in range(ndime):
                        bk.store(elauu, (a, b, i, j), bk.const(0.0))

        for q in range(pgaus):
            vol_q = bk.load(gpvol, (q,))
            den_q = bk.load(gpden, (q,))
            mu_q = den_q * (bk.load(gpvis, (q,)) + bk.load(gpmut, (q,)))
            for a in range(pnode):
                for b in range(pnode):
                    # convection: rho N_a (u . grad N_b)
                    adv = bk.const(0.0)
                    for k in range(ndime):
                        adv = adv + bk.load(gpadv, (q, k)) * bk.load(
                            gpcar, (q, b, k)
                        )
                    conv_ab = vol_q * den_q * bk.load(gpsha, (a, q)) * adv
                    if kfl_conv == 1:  # skew-symmetric extra term
                        div = (
                            bk.load(gpgve, (q, 0, 0))
                            + bk.load(gpgve, (q, 1, 1))
                            + bk.load(gpgve, (q, 2, 2))
                        )
                        conv_ab = conv_ab + vol_q * den_q * 0.5 * div * bk.load(
                            gpsha, (a, q)
                        ) * bk.load(gpsha, (b, q))
                    # diffusion: mu grad N_a . grad N_b
                    lap = bk.const(0.0)
                    for k in range(ndime):
                        lap = lap + bk.load(gpcar, (q, a, k)) * bk.load(
                            gpcar, (q, b, k)
                        )
                    diag_ab = conv_ab + vol_q * mu_q * lap
                    for i in range(ndime):
                        cur = bk.load(elauu, (a, b, i, i))
                        bk.store(elauu, (a, b, i, i), cur + diag_ab)
                    # transpose-viscous term: mu dN_a/dx_j dN_b/dx_i
                    for i in range(ndime):
                        for j in range(ndime):
                            cur = bk.load(elauu, (a, b, i, j))
                            bk.store(
                                elauu,
                                (a, b, i, j),
                                cur
                                + vol_q
                                * mu_q
                                * bk.load(gpcar, (q, a, j))
                                * bk.load(gpcar, (q, b, i)),
                            )

        bk.fence("elauu")

        # -- elemental RHS: force term, then elrbu -= elauu @ elvel -----------
        for a in range(pnode):
            for i in range(ndime):
                acc = bk.const(0.0)
                for q in range(pgaus):
                    acc = acc + bk.load(gpvol, (q,)) * bk.load(
                        gpden, (q,)
                    ) * bk.load(gpsha, (a, q)) * force[i]
                bk.store(elrbu, (a, i), acc)

        for a in range(pnode):
            for i in range(ndime):
                acc = bk.load(elrbu, (a, i))
                for b in range(pnode):
                    for j in range(ndime):
                        acc = acc - bk.load(elauu, (a, b, i, j)) * bk.load(
                            elvel, (b, j)
                        )
                bk.store(elrbu, (a, i), acc)

        bk.fence("elrbu")

        # -- scatter to the global RHS ----------------------------------------
        for a in range(pnode):
            for i in range(ndime):
                bk.scatter_add_rhs(a, i, bk.load(elrbu, (a, i)))

    return kernel


#: Variant B -- the paper's baseline.
baseline_kernel = make_baseline_kernel(Storage.GLOBAL_TEMP)

#: Variant P -- baseline with privatized (local-memory) temporaries.
privatized_kernel = make_baseline_kernel(Storage.PRIVATE)
