"""Scenario batches: parameter campaigns over one shared mesh.

A :class:`ScenarioBatch` is a struct-of-arrays view over ``S`` independent
:class:`~repro.physics.momentum.AssemblyParams`: one column per batchable
scalar parameter (density, viscosity, body-force components, the Vreman
constant).  Batched execution (``UnifiedAssembler.run_batch``) assembles
all ``S`` scenarios through **one** tape replay / generated kernel with
``(S, lanes)``-shaped buffers, so gather indices, scatter patterns,
geometry caches and Python dispatch are paid once per batch.

Broadcasting rules
------------------
* Scalars passed to :meth:`ScenarioBatch.from_arrays` broadcast to all
  ``S`` scenarios; arrays must have length ``S``.
* Enum-valued *flags* (turbulence model, convective form, material law)
  select code paths at record time, so they must be uniform across the
  batch -- mixing them raises :class:`ValueError`.  Split such campaigns
  into one batch per flag combination.
* A column whose ``S`` values are all equal is **folded** into the tape
  as a compile-time constant, exactly as a serial recording would fold
  it; only *varying* columns become per-scenario ``(S, 1)`` parameter
  rows.  Batched results stay bit-identical to serial per-scenario
  solves either way.
"""

from __future__ import annotations

from typing import Dict, Iterator, Sequence, Tuple

import numpy as np

from ..physics.momentum import (
    BATCHABLE_PARAMS,
    FLAG_PARAMS,
    AssemblyParams,
)

__all__ = ["ScenarioBatch"]


class ScenarioBatch:
    """``S`` independent parameter sets sharing one mesh and one tape.

    Construct from per-scenario params (``ScenarioBatch(params_list)`` or
    :meth:`from_params`) or column-wise with broadcasting
    (:meth:`from_arrays`).  Indexing returns the per-scenario
    :class:`AssemblyParams` -- the serial / resilience-ladder fallback
    path uses exactly those objects, so a scenario dropped from the batch
    is solved with the same parameters it was batched with.
    """

    def __init__(self, scenarios: Sequence[AssemblyParams]) -> None:
        scenarios = tuple(scenarios)
        if not scenarios:
            raise ValueError("ScenarioBatch needs at least one scenario")
        for i, p in enumerate(scenarios):
            if not isinstance(p, AssemblyParams):
                raise TypeError(
                    f"scenario {i} is {type(p).__name__}, "
                    "expected AssemblyParams"
                )
        self.scenarios: Tuple[AssemblyParams, ...] = scenarios
        kps = [p.as_kernel_params() for p in scenarios]
        self.flags: Dict[str, int] = {}
        for name in FLAG_PARAMS:
            values = {kp[name] for kp in kps}
            if len(values) > 1:
                raise ValueError(
                    f"flag parameter {name!r} must be uniform across the "
                    f"batch (got {sorted(values)}); flags select code "
                    "paths at record time -- split into one batch per "
                    "flag combination"
                )
            self.flags[name] = kps[0][name]
        #: per-parameter (S,) float64 columns (struct-of-arrays)
        self.columns: Dict[str, np.ndarray] = {
            name: np.array([kp[name] for kp in kps], dtype=np.float64)
            for name in BATCHABLE_PARAMS
        }
        #: names whose column actually varies -- only these become
        #: per-scenario parameter rows in the batched tape
        self.varying: Tuple[str, ...] = tuple(
            name
            for name in BATCHABLE_PARAMS
            if not np.all(self.columns[name] == self.columns[name][0])
        )
        #: constant columns, folded into the tape at record time
        self.folded: Dict[str, float] = {
            name: float(self.columns[name][0])
            for name in BATCHABLE_PARAMS
            if name not in self.varying
        }

    # -- construction ------------------------------------------------

    @classmethod
    def from_params(
        cls, scenarios: Sequence[AssemblyParams]
    ) -> "ScenarioBatch":
        """Batch an explicit sequence of per-scenario parameters."""
        return cls(scenarios)

    @classmethod
    def from_arrays(
        cls,
        size: int = None,
        density=1.0,
        viscosity=1e-3,
        body_force=(0.0, 0.0, 0.0),
        vreman_c=None,
        turbulence_model=None,
        convective_form=None,
    ) -> "ScenarioBatch":
        """Build a batch column-wise; scalars broadcast to ``size``.

        ``body_force`` is either one ``(3,)`` force (broadcast) or an
        ``(S, 3)`` array of per-scenario forces.
        """
        lengths = []
        for v in (density, viscosity, vreman_c):
            if v is not None and np.ndim(v) == 1:
                lengths.append(len(v))
        bf = np.asarray(body_force, dtype=np.float64)
        if bf.ndim == 2:
            lengths.append(bf.shape[0])
        if size is None:
            if not lengths:
                raise ValueError(
                    "pass size= or at least one (S,)-shaped column"
                )
            size = lengths[0]
        if any(n != size for n in lengths):
            raise ValueError(
                f"column lengths {lengths} disagree with batch size {size}"
            )

        def col(v, default):
            if v is None:
                v = default
            a = np.broadcast_to(
                np.asarray(v, dtype=np.float64), (size,)
            )
            return a

        base = AssemblyParams()
        dens = col(density, base.density)
        visc = col(viscosity, base.viscosity)
        vrc = col(vreman_c, base.vreman_c)
        if bf.ndim == 1:
            bf = np.broadcast_to(bf, (size, 3))
        elif bf.shape != (size, 3):
            raise ValueError(
                f"body_force must be (3,) or ({size}, 3), got {bf.shape}"
            )
        extra = {}
        if turbulence_model is not None:
            extra["turbulence_model"] = turbulence_model
        if convective_form is not None:
            extra["convective_form"] = convective_form
        return cls(
            [
                AssemblyParams(
                    density=float(dens[s]),
                    viscosity=float(visc[s]),
                    body_force=tuple(float(x) for x in bf[s]),
                    vreman_c=float(vrc[s]),
                    **extra,
                )
                for s in range(size)
            ]
        )

    # -- container protocol ------------------------------------------

    @property
    def size(self) -> int:
        return len(self.scenarios)

    def __len__(self) -> int:
        return len(self.scenarios)

    def __getitem__(self, s: int) -> AssemblyParams:
        return self.scenarios[s]

    def __iter__(self) -> Iterator[AssemblyParams]:
        return iter(self.scenarios)

    def __repr__(self) -> str:
        return (
            f"ScenarioBatch(S={self.size}, "
            f"varying={list(self.varying) or 'none'})"
        )

    # -- batched-execution plumbing ----------------------------------

    def recording_params(self) -> Dict[str, float]:
        """Kernel params handed to the batched recording context.

        Flags and folded constants are read directly; varying names are
        intercepted by the batch recorder and turned into symbolic
        per-scenario parameter ops, so their value here never reaches
        the tape.
        """
        return self.scenarios[0].as_kernel_params()

    def param_rows(self) -> Dict[str, np.ndarray]:
        """``(S, 1)`` float64 rows for each *varying* parameter."""
        return {
            name: self.columns[name].reshape(-1, 1).copy()
            for name in self.varying
        }

    def cache_key(self) -> tuple:
        """Hashable identity of the batched tape this batch records.

        Two batches share a tape iff they agree on size, which columns
        vary, every folded constant and every flag -- the varying
        *values* live outside the tape (refreshed per execute).
        """
        return (
            self.size,
            self.varying,
            tuple(sorted(self.folded.items())),
            tuple(sorted(self.flags.items())),
        )
