"""Tape-to-source code generation: fused, exec-compiled assembly kernels.

The compiled tapes of :mod:`repro.core.tape` eliminate per-op *allocation*
but still replay op-by-op through a Python loop -- thousands of ufunc
dispatch round trips per sweep, which the op-level profiler attributes as
pure dispatch overhead on short-lived ops.  This module removes that last
interpreter layer, the Python analogue of the paper's single fused OpenACC
kernel per variant: each recorded kernel tape is lowered to *generated
Python source* -- one function per ``(variant, vector_dim)`` -- that is
``exec``-compiled once and cached on the :class:`~repro.fem.plan.AssemblyPlan`
next to the tape, so a sweep becomes a single function call per chunk.

Lowering pipeline (all passes operate on the recorder's SSA op list):

1. **DCE** backwards from the scatter roots (same algorithm as
   :func:`~repro.core.tape.compile_tape`).
2. **CSE** with structural keys; scalar operands key on their exact
   ``float64`` bits (``tobytes``), never on Python ``float`` equality,
   so ``-0.0``/``0.0`` are not merged and bit-identity survives.
3. **Invariant hoisting**: ops depending only on coordinate gathers are
   loop-invariant across sweeps; they (and scatters of invariant values)
   move to a ``setup`` function executed once at bind time into pinned
   full-width buffers.
4. **DFS scheduling** from the scatter roots, shrinking producer-consumer
   distance so the liveness pass below needs far fewer slab rows than the
   recorded order.
5. **Single-use fusion**: a unary/binary/select op whose value is consumed
   exactly once is inlined into its consumer's expression (bounded depth),
   collapsing ufunc chains into single numpy expressions.  Selects are
   emitted as ``where(greater(x, t), a, b)`` expressions, which evaluate
   their arguments before the destination is written -- no aliasing
   protection needed anywhere.
6. **Statement liveness** assigns the surviving statement outputs to a
   small slab of reusable rows (LIFO free list, dying operands released
   before the output is placed so in-place ``out=`` aliasing happens
   naturally).

Bit-identity contract
---------------------
Generated code must match the interpreted backend *exactly*.  Every pass
preserves bits: DCE/CSE/scheduling only drop or reorder pure SSA value
definitions (each value is still computed by the identical ufunc over
identical operands); hoisting replays invariant ops once instead of every
sweep (same inputs, same bits); fusion feeds a ufunc the freshly computed
operand array instead of a stored copy of it; ``where`` is pure selection;
and scatter values land in the same ``(group, call, lane)`` layout flushed
by the same shared plan pattern as the compiled tape.  Scalar literals are
embedded via ``repr(float(x))`` -- shortest round-trip repr is exact for
float64 -- with non-finite values spelled ``float('inf')`` etc.

Generated source is fully deterministic (all set iterations are sorted),
so a pickled :class:`ElementalCodegenProgram` rebuilds byte-identical
source in every pool worker and the module-level code cache
(:data:`_CODE_CACHE`) guarantees a cache hit never re-``exec``\\ s.

Set ``REPRO_CODEGEN_DUMP=<dir>`` to dump every generated module to
``<dir>/<variant>_vd<N>.py`` / ``<dir>/<variant>_elemental.py``.
"""

from __future__ import annotations

import dataclasses
import math
import os
import time
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..obs.metrics import get_registry
from ..obs.profiler import NULL_PROFILER
from ..obs.spans import NULL_TRACER, get_tracer
from .dsl import KernelContext
from .tape import (
    BatchRecordingBackend,
    RecordingBackend,
    TapeReport,
    _UFUNC_NAMES,
    _eval_param_stage,
    _is_scalar,
    batch_tape_cache_key,
    tape_cache_key,
)
from .variants import get_variant

__all__ = [
    "DEFAULT_CHUNK_LANES",
    "MAX_FUSE_DEPTH",
    "BatchedCodegenProgram",
    "CodegenProgram",
    "ElementalCodegenProgram",
    "BatchedGeneratedKernel",
    "GeneratedKernel",
    "ElementalGeneratedKernel",
    "generate_batched_program",
    "generate_program",
    "generate_elemental_program",
    "batched_generated_kernel",
    "generated_kernel",
]

#: default lane count per generated-kernel chunk (ufunc bandwidth sweet
#: spot on cache-resident slabs; chunk_groups = DEFAULT_CHUNK_LANES / vd)
DEFAULT_CHUNK_LANES = 4096

#: maximum fused-subtree depth inlined into one expression
MAX_FUSE_DEPTH = 10

#: names resolvable inside generated modules (picklable source resolves
#: ufuncs at exec time, exactly like the tape's _UFUNC_NAMES indirection)
_NAMESPACE: Dict[str, object] = {
    "take": np.take,
    "copyto": np.copyto,
    "where": np.where,
    "greater": np.greater,
}
for _name in sorted(set(_UFUNC_NAMES.values())):
    _NAMESPACE[_name] = getattr(np, _name)

#: source string -> compiled code object; a cache hit never re-compiles
_CODE_CACHE: Dict[str, object] = {}


# ---------------------------------------------------------------------------
# SSA passes
# ---------------------------------------------------------------------------


def _annotate(ops: Sequence[tuple]) -> List[tuple]:
    """Rewrite scatters ``(sc, slot, comp, src)`` to carry their call
    index: ``(sc, call, slot, comp, src)``.  The call index survives DCE
    (scatters are roots, never removed) and names the op's row in the
    deferred values buffer."""
    out: List[tuple] = []
    call = 0
    for op in ops:
        if op[0] == "sc":
            out.append(("sc", call, op[1], op[2], op[3]))
            call += 1
        else:
            out.append(op)
    return out


def _reads(op: tuple) -> Tuple:
    """Operand refs (vector ids or folded scalars) of an annotated op."""
    tag = op[0]
    if tag == "bin":
        return (op[2], op[3])
    if tag == "un":
        return (op[2],)
    if tag == "sel":
        return (op[1], op[2], op[3])
    if tag == "sc":
        return (op[4],)
    return ()  # gc / gf


def _dce(ops: List[tuple]) -> Tuple[List[tuple], int]:
    """Drop ops unreachable backwards from the scatter roots."""
    needed: Set[int] = set()
    keep = [False] * len(ops)
    for i in range(len(ops) - 1, -1, -1):
        op = ops[i]
        if op[0] == "sc" or op[-1] in needed:
            keep[i] = True
            for r in _reads(op):
                if not _is_scalar(r):
                    needed.add(r)
    live = [op for op, k in zip(ops, keep) if k]
    return live, len(ops) - len(live)


def _scalar_key(x) -> bytes:
    """Exact-bits CSE key for a folded scalar.  ``tobytes`` distinguishes
    ``-0.0`` from ``0.0`` (Python ``float`` equality would merge them,
    changing bits at e.g. ``x + -0.0`` for ``x = -0.0``)."""
    return np.float64(x).tobytes()


def _cse(ops: List[tuple]) -> Tuple[List[tuple], int]:
    """Merge structurally identical value definitions.

    A duplicate's consumers are rewritten to the first occurrence as they
    stream through (SSA: operands always precede their uses), so no
    re-DCE is needed -- the canonical op keeps every producer alive that
    the duplicate kept alive.
    """
    rep: Dict[int, int] = {}
    table: Dict[tuple, int] = {}
    out_ops: List[tuple] = []
    removed = 0

    def res(r):
        return r if _is_scalar(r) else rep.get(r, r)

    def rkey(r):
        return ("s", _scalar_key(r)) if _is_scalar(r) else ("v", res(r))

    for op in ops:
        tag = op[0]
        if tag == "sc":
            out_ops.append(("sc", op[1], op[2], op[3], res(op[4])))
            continue
        if tag == "bin":
            key = ("bin", op[1], rkey(op[2]), rkey(op[3]))
            new = ("bin", op[1], res(op[2]), res(op[3]), op[4])
        elif tag == "un":
            key = ("un", op[1], rkey(op[2]))
            new = ("un", op[1], res(op[2]), op[3])
        elif tag == "sel":
            key = ("sel", rkey(op[1]), rkey(op[2]), rkey(op[3]),
                   _scalar_key(op[4]))
            new = ("sel", res(op[1]), res(op[2]), res(op[3]), op[4], op[5])
        elif tag == "gc":
            key = ("gc", op[1], op[2])
            new = op
        elif tag == "rp":
            # batched recordings only: one symbolic per-scenario row per
            # parameter name (the recorder memoizes, but keep CSE total)
            key = ("rp", op[1])
            new = op
        else:  # gf
            key = ("gf", op[1], op[2], op[3])
            new = op
        prev = table.get(key)
        if prev is not None:
            rep[op[-1]] = prev
            removed += 1
            continue
        table[key] = op[-1]
        out_ops.append(new)
    return out_ops, removed


def _invariants(ops: List[tuple]) -> Set[int]:
    """Value ids constant across sweeps: coordinate gathers and anything
    computed only from them (and folded scalars).  Field gathers read the
    per-sweep velocity, so they -- and everything downstream -- vary."""
    inv: Set[int] = set()
    for op in ops:
        tag = op[0]
        if tag == "gc":
            inv.add(op[-1])
        elif tag in ("bin", "un", "sel"):
            if all(_is_scalar(r) or r in inv for r in _reads(op)):
                inv.add(op[-1])
    return inv


def _schedule(
    ops: List[tuple], prod: Dict[int, tuple], extra_roots: Sequence[int] = ()
) -> List[tuple]:
    """Reorder one partition's compute ops depth-first from its scatter
    roots (then ``extra_roots`` -- pinned values not reachable from the
    partition's own scatters).  Scatters keep their original relative
    order, so the deferred values buffer is filled in call order and the
    elemental flavour preserves ``+=`` accumulation order.  Pure SSA
    value definitions commute, so reordering cannot change bits."""
    sched: List[tuple] = []
    emitted: Set[int] = set()
    opened: Set[int] = set()

    def visit(root: int) -> None:
        stack = [root]
        while stack:
            r = stack[-1]
            if r in emitted or r not in prod:
                stack.pop()
                continue
            op = prod[r]
            if r in opened:
                stack.pop()
                if r not in emitted:
                    emitted.add(r)
                    sched.append(op)
                continue
            opened.add(r)
            for q in reversed([x for x in _reads(op) if not _is_scalar(x)]):
                if q not in emitted and q in prod:
                    stack.append(q)

    for op in ops:
        if op[0] == "sc":
            src = op[4]
            if not _is_scalar(src):
                visit(src)
            sched.append(op)
    for r in extra_roots:
        visit(r)
    return sched


def _fuse(sched: List[tuple], exclude: Set[int]) -> Set[int]:
    """Ids of single-use arithmetic ops to inline into their consumer.

    Gathers stay statements (they need an ``out=`` target), as does any
    value consumed more than once (inlining would recompute it), any
    value read outside the partition (``exclude``), and any subtree
    deeper than :data:`MAX_FUSE_DEPTH`.  ``sched`` is topologically
    ordered, so fused depths are known when each op is visited.
    """
    uses: Dict[int, int] = {}
    for op in sched:
        for r in _reads(op):
            if not _is_scalar(r):
                uses[r] = uses.get(r, 0) + 1
    fused: Set[int] = set()
    fdepth: Dict[int, int] = {}
    for op in sched:
        if op[0] not in ("bin", "un", "sel"):
            continue
        out = op[-1]
        depth = 1
        for r in _reads(op):
            if not _is_scalar(r) and r in fused:
                depth = max(depth, 1 + fdepth[r])
        if (
            uses.get(out, 0) == 1
            and out not in exclude
            and depth <= MAX_FUSE_DEPTH
        ):
            fused.add(out)
            fdepth[out] = depth
    return fused


@dataclasses.dataclass
class _Stmt:
    """One emitted statement: a non-fused root op plus its inlined tree."""

    op: tuple
    leaves: List[int]  # non-fused vector refs actually read (w/ dups)
    tree: List[tuple]  # root + fused constituents (for cost accounting)


def _collect(
    op: tuple,
    prod: Dict[int, tuple],
    fused: Set[int],
    leaves: List[int],
    tree: List[tuple],
) -> None:
    tree.append(op)
    for r in _reads(op):
        if _is_scalar(r):
            continue
        if r in fused:
            _collect(prod[r], prod, fused, leaves, tree)
        else:
            leaves.append(r)


def _statements(
    sched: List[tuple], prod: Dict[int, tuple], fused: Set[int]
) -> List[_Stmt]:
    stmts: List[_Stmt] = []
    for op in sched:
        if op[0] != "sc" and op[-1] in fused:
            continue
        leaves: List[int] = []
        tree: List[tuple] = []
        _collect(op, prod, fused, leaves, tree)
        stmts.append(_Stmt(op=op, leaves=leaves, tree=tree))
    return stmts


def _assign_rows(
    stmts: List[_Stmt], is_external: Callable[[int], bool]
) -> Tuple[Dict[int, int], int]:
    """Statement-level linear-scan slab allocation (LIFO free list).

    Dying operands release their row *before* the output is placed, so
    in-place ``out=`` aliasing happens naturally -- safe because every
    emitted form either is an elementwise ufunc over direct operands or
    (``where`` selects, fused sub-expressions) fully evaluates its
    arguments into temporaries before the destination is written.
    """
    last: Dict[int, int] = {}
    for j, st in enumerate(stmts):
        for r in st.leaves:
            if not is_external(r):
                last[r] = j
    row_of: Dict[int, int] = {}
    free: List[int] = []
    nrows = 0
    for j, st in enumerate(stmts):
        for r in sorted(set(st.leaves)):
            if not is_external(r) and last.get(r) == j:
                free.append(row_of[r])
        if st.op[0] != "sc":
            out = st.op[-1]
            if not is_external(out):
                if free:
                    row_of[out] = free.pop()
                else:
                    row_of[out] = nrows
                    nrows += 1
    return row_of, nrows


# ---------------------------------------------------------------------------
# Source emission
# ---------------------------------------------------------------------------


def _lit(x) -> str:
    """Exact float64 literal.  ``repr(float(x))`` is shortest-round-trip
    (bit-exact on parse); non-finite values need the ``float('...')``
    spelling to be valid source."""
    f = float(x)
    if math.isfinite(f):
        return repr(f)
    return f"float({str(f)!r})"


def _expr(
    r,
    prod: Dict[int, tuple],
    fused: Set[int],
    name_of: Callable[[int], str],
    scratch: Optional[List[int]] = None,
) -> str:
    """Render a ref as an expression, inlining fused producers.

    With ``scratch`` (a one-element counter), fused binary/unary nodes
    write into dedicated scratch rows via ``out=`` -- ufuncs return their
    ``out`` array, so the calls still compose as expressions but stop
    allocating a temporary per node.  Scratch rows are unique within one
    statement (the counter resets per statement), so sibling subtrees can
    never clobber each other before the parent reads them; values are
    identical either way, so bit-identity is untouched.  Fused selects
    stay ``where(...)`` (no ``out=`` support; it allocates regardless).
    """
    if _is_scalar(r):
        return _lit(r)
    if r in fused:
        op = prod[r]
        tag = op[0]
        out = ""
        if scratch is not None and tag in ("bin", "un"):
            out = f", out=t{scratch[0]}"
            scratch[0] += 1
        if tag == "bin":
            return (
                f"{_UFUNC_NAMES[op[1]]}"
                f"({_expr(op[2], prod, fused, name_of, scratch)}, "
                f"{_expr(op[3], prod, fused, name_of, scratch)}{out})"
            )
        if tag == "un":
            return (
                f"{_UFUNC_NAMES[op[1]]}"
                f"({_expr(op[2], prod, fused, name_of, scratch)}{out})"
            )
        # sel: pure selection, arguments evaluated before any write
        return (
            f"where(greater({_expr(op[1], prod, fused, name_of, scratch)}, "
            f"{_lit(op[4])}), {_expr(op[2], prod, fused, name_of, scratch)}, "
            f"{_expr(op[3], prod, fused, name_of, scratch)})"
        )
    return name_of(r)


def _render_mesh(
    st: _Stmt,
    prod: Dict[int, tuple],
    fused: Set[int],
    name_of: Callable[[int], str],
    scatter_dst: Callable[[int], str],
    gather_src: Callable[[tuple], str],
    vd: int,
    scratch: Optional[List[int]] = None,
) -> str:
    """One mesh-wide statement (setup or body flavour)."""
    op = st.op
    tag = op[0]

    def ex(r):
        return _expr(r, prod, fused, name_of, scratch)

    if tag == "bin":
        return (
            f"{_UFUNC_NAMES[op[1]]}({ex(op[2])}, {ex(op[3])}, "
            f"out={name_of(op[4])})"
        )
    if tag == "un":
        return f"{_UFUNC_NAMES[op[1]]}({ex(op[2])}, out={name_of(op[3])})"
    if tag == "sel":
        return (
            f"copyto({name_of(op[5])}, where(greater({ex(op[1])}, "
            f"{_lit(op[4])}), {ex(op[2])}, {ex(op[3])}))"
        )
    if tag in ("gc", "gf"):
        return gather_src(op)
    # sc
    dst = scatter_dst(op[1])
    src = op[4]
    if _is_scalar(src):
        return f"{dst}[...] = {_lit(src)}"
    return f"copyto({dst}, {ex(src)}.reshape(-1, {vd}))"


def _emit_block(lines: List[str], stmts: List[str], indent: str,
                timed: bool) -> None:
    if not stmts:
        lines.append(f"{indent}pass")
        return
    if not timed:
        for s in stmts:
            lines.append(f"{indent}{s}")
        return
    # timer binding must not collide with scratch rows t0, t1, ...
    for i, s in enumerate(stmts):
        lines.append(f"{indent}_t = clock()")
        lines.append(f"{indent}{s}")
        lines.append(f"{indent}rec({i}, clock() - _t, n)")


def _op_cost(op: tuple) -> Tuple[float, float, float]:
    """Per-lane (bytes read, bytes written, flops) of one SSA op --
    mirrors :func:`repro.obs.profiler.op_costs_from_program`."""
    tag = op[0]
    if tag == "bin":
        nvec = sum(1 for r in (op[2], op[3]) if not _is_scalar(r))
        return (nvec * 8.0, 8.0, 1.0)
    if tag == "un":
        nvec = 0 if _is_scalar(op[2]) else 1
        return (nvec * 8.0, 8.0, 1.0)
    if tag == "sel":
        nvec = sum(1 for r in (op[1], op[2], op[3]) if not _is_scalar(r))
        return (nvec * 8.0 + 1.0, 9.0, 1.0)
    if tag in ("gc", "gf"):
        return (16.0, 8.0, 0.0)
    # sc
    nvec = 0 if _is_scalar(op[4]) else 1
    return (nvec * 8.0, 8.0, 0.0)


_ROOT_KINDS = {"bin": "bin", "un": "un", "sel": "sel",
               "gc": "gather", "gf": "gather", "sc": "scatter"}


def _root_label(op: tuple) -> str:
    tag = op[0]
    if tag in ("bin", "un"):
        return _UFUNC_NAMES[op[1]]
    if tag == "sel":
        return "select"
    if tag == "gc":
        return f"coord[{op[1]},{op[2]}]"
    if tag == "gf":
        return f"{op[1]}[{op[2]},{op[3]}]"
    return f"rhs[{op[2]},{op[3]}]"


def _stmt_costs(stmts: List[_Stmt]) -> Tuple[tuple, ...]:
    """Per-statement ``(kind, label, rb, wb, fl)`` profiler cost slots.

    A fused statement reports the *summed* bytes/FLOPs of its constituent
    ops (the ISSUE's attribution contract), labelled ``<root>+<k>`` for
    ``k`` inlined ops.
    """
    costs: List[tuple] = []
    for st in stmts:
        rb = wb = fl = 0.0
        for op in st.tree:
            orb, owb, ofl = _op_cost(op)
            rb += orb
            wb += owb
            fl += ofl
        label = _root_label(st.op)
        if len(st.tree) > 1:
            label += f"+{len(st.tree) - 1}"
        costs.append((_ROOT_KINDS[st.op[0]], label, rb, wb, fl))
    return tuple(costs)


# ---------------------------------------------------------------------------
# Programs
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class CodegenProgram:
    """A generated, picklable mesh-wide kernel module.

    ``source`` defines three functions: ``setup(C, I, P, T, SV)`` (run
    once at bind time: coordinate gathers, loop-invariant arithmetic and
    invariant/constant scatters, at full lane width), ``factory(VC, GI,
    P, SV, B)`` (returns a zero-argument per-chunk closure over prebound
    chunk views) and ``factory_timed(...)`` (the profiled twin, one clock
    read per statement).  Re-compilation in a pool worker is exact: the
    emission is deterministic, so equal configurations produce equal
    source strings and hit the module-level code cache.
    """

    variant: str
    params_key: Tuple
    vector_dim: int
    nnode_per_element: int
    source: str
    scatter_calls: Tuple[Tuple[int, int], ...]
    setup_calls: Tuple[int, ...]
    body_calls: Tuple[int, ...]
    gf_slots: Tuple[int, ...]
    vc_comps: Tuple[int, ...]
    npinned: int
    nsetup_tmp: int
    nslab: int
    stmt_costs: Tuple[tuple, ...]
    report: TapeReport


@dataclasses.dataclass(frozen=True)
class ElementalCodegenProgram:
    """Generated worker-side module: ``elemental(X, U, R, B)`` accumulates
    ``(n, nnode_per_element, 3)`` contributions exactly like
    :class:`~repro.core.tape.ElementalTape` (no hoisting -- the setup
    split would reorder the ``+=`` accumulation), plus the profiled twin
    ``elemental_timed``."""

    variant: str
    params_key: Tuple
    nnode_per_element: int
    source: str
    nslab: int
    stmt_costs: Tuple[tuple, ...]
    report: TapeReport


def _record_ssa(variant_name: str, kernel_params: Dict[str, float],
                nnode_per_element: int):
    variant = get_variant(variant_name)
    ctx = KernelContext(
        connectivity=np.zeros((1, nnode_per_element), dtype=np.int64),
        coords=np.zeros((1, 3)),
        fields={"velocity": np.zeros((1, 3))},
        rhs=np.zeros((1, 3)),
        params=dict(kernel_params),
        nnode_per_element=nnode_per_element,
    )
    recorder = RecordingBackend(ctx)
    variant.kernel(recorder, ctx)
    return variant, recorder


def _make_report(variant: str, recorder, ops: List[tuple], dce_removed: int,
                 cse_removed: int, hoisted: int, fused: int, nslab: int,
                 npinned: int) -> TapeReport:
    tags = [op[0] for op in ops]
    return TapeReport(
        variant=variant,
        ops_recorded=len(recorder.ops),
        ops_live=len(ops),
        dce_removed=dce_removed,
        folded_scalars=recorder.folded_scalars,
        gather_reuses=recorder.gather_reuses,
        scatter_calls=len(recorder.scatter_calls),
        buffers_live=nslab,
        binary_ops=tags.count("bin"),
        unary_ops=tags.count("un"),
        select_ops=tags.count("sel"),
        gather_ops=tags.count("gc") + tags.count("gf"),
        cse_removed=cse_removed,
        hoisted_ops=hoisted,
        fused_ops=fused,
        pinned_buffers=npinned,
    )


def _maybe_dump(filename: str, source: str) -> None:
    outdir = os.environ.get("REPRO_CODEGEN_DUMP")
    if not outdir:
        return
    os.makedirs(outdir, exist_ok=True)
    with open(os.path.join(outdir, filename), "w", encoding="utf-8") as fh:
        fh.write(source)
    get_registry().counter("codegen.dumps").inc()


def generate_program(
    variant_name: str,
    vector_dim: int,
    kernel_params: Optional[Dict[str, float]] = None,
    nnode_per_element: int = 4,
) -> CodegenProgram:
    """Lower one variant to a mesh-wide generated source module."""
    kernel_params = dict(kernel_params or {})
    vd = int(vector_dim)
    with get_tracer().span(
        "codegen.generate", variant=variant_name.upper(), vector_dim=vd
    ):
        variant, recorder = _record_ssa(
            variant_name, kernel_params, nnode_per_element
        )
        for op in recorder.ops:
            if op[0] == "gf" and op[1] != "velocity":
                raise ValueError(
                    f"generated kernel gathers unknown field {op[1]!r}; "
                    "the mesh-wide executor only binds 'velocity'"
                )
        ops = _annotate(recorder.ops)
        live, dce_removed = _dce(ops)
        ops, cse_removed = _cse(live)
        inv = _invariants(ops)

        setup_ops: List[tuple] = []
        body_ops: List[tuple] = []
        setup_calls: List[int] = []
        body_calls: List[int] = []
        for op in ops:
            if op[0] == "sc":
                src = op[4]
                if _is_scalar(src) or src in inv:
                    setup_ops.append(op)
                    setup_calls.append(op[1])
                else:
                    body_ops.append(op)
                    body_calls.append(op[1])
            elif op[-1] in inv:
                setup_ops.append(op)
            else:
                body_ops.append(op)

        prod: Dict[int, tuple] = {
            op[-1]: op for op in ops if op[0] != "sc"
        }
        # per-partition producer maps: the DFS scheduler must stop at the
        # partition boundary (a body op reading an invariant value treats
        # it as an external pinned input, not as something to re-emit).
        setup_prod = {op[-1]: op for op in setup_ops if op[0] != "sc"}
        body_prod = {op[-1]: op for op in body_ops if op[0] != "sc"}
        pinned = sorted({
            r
            for op in body_ops
            for r in _reads(op)
            if not _is_scalar(r) and r in inv
        })
        pinned_set = set(pinned)
        pin_index = {r: k for k, r in enumerate(pinned)}

        setup_sched = _schedule(setup_ops, setup_prod, extra_roots=pinned)
        body_sched = _schedule(body_ops, body_prod)
        setup_fused = _fuse(setup_sched, exclude=pinned_set)
        body_fused = _fuse(body_sched, exclude=set())
        setup_stmts = _statements(setup_sched, prod, setup_fused)
        body_stmts = _statements(body_sched, prod, body_fused)

        setup_rows, nsetup_tmp = _assign_rows(
            setup_stmts, lambda r: r in pinned_set
        )
        body_rows, nslab = _assign_rows(
            body_stmts, lambda r: r in pinned_set
        )

        def setup_name(r: int) -> str:
            if r in pinned_set:
                return f"P[{pin_index[r]}]"
            return f"T[{setup_rows[r]}]"

        def body_name(r: int) -> str:
            if r in pinned_set:
                return f"p{pin_index[r]}"
            return f"b{body_rows[r]}"

        spos = {call: j for j, call in enumerate(setup_calls)}
        bpos = {call: j for j, call in enumerate(body_calls)}
        gf_slots = sorted({
            op[2] for op in body_ops if op[0] == "gf"
        })
        gi_index = {slot: k for k, slot in enumerate(gf_slots)}
        vc_comps = sorted({
            op[3] for op in body_ops if op[0] == "gf"
        })

        setup_lines = [
            _render_mesh(
                st, prod, setup_fused, setup_name,
                lambda c: f"SV[{spos[c]}]",
                lambda op: (
                    f"take(C[{op[2]}], I[{op[1]}], out={setup_name(op[3])})"
                ),
                vd,
            )
            for st in setup_stmts
        ]
        # Body statements route fused bin/un nodes into scratch rows
        # (``out=t{k}``): no per-node allocation on the hot path.  The
        # counter resets per statement, so scratch rows are shared across
        # statements but unique within one (no sibling clobbering).
        body_lines: List[str] = []
        nscratch = 0
        for st in body_stmts:
            ctr = [0]
            body_lines.append(_render_mesh(
                st, prod, body_fused, body_name,
                lambda c: f"s{bpos[c]}",
                lambda op: (
                    f"take(vc{op[3]}, gi{gi_index[op[2]]}, "
                    f"out={body_name(op[4])})"
                ),
                vd,
                scratch=ctr,
            ))
            nscratch = max(nscratch, ctr[0])
        nrows = nslab + nscratch

        prologue = (
            [f"vc{c} = VC[{c}]" for c in vc_comps]
            + [f"gi{k} = GI[{k}]" for k in range(len(gf_slots))]
            + [f"p{k} = P[{k}]" for k in range(len(pinned))]
            + [f"s{j} = SV[{j}]" for j in range(len(body_calls))]
            + [f"b{r} = B[{r}]" for r in range(nslab)]
            + [f"t{k} = B[{nslab + k}]" for k in range(nscratch)]
        )

        lines: List[str] = [
            f"# generated by repro.core.codegen -- do not edit",
            f"# variant={variant.name} vector_dim={vd} "
            f"stmts={len(body_stmts)} slab_rows={nrows} "
            f"(scratch={nscratch}) pinned={len(pinned)} fused="
            f"{len(setup_fused) + len(body_fused)}",
            "",
            "",
            "def setup(C, I, P, T, SV):",
        ]
        _emit_block(lines, setup_lines, "    ", timed=False)
        lines += ["", "", "def factory(VC, GI, P, SV, B):"]
        for p in prologue:
            lines.append(f"    {p}")
        lines.append("")
        lines.append("    def kernel():")
        _emit_block(lines, body_lines, "        ", timed=False)
        lines.append("")
        lines.append("    return kernel")
        lines += ["", "", "def factory_timed(VC, GI, P, SV, B, clock, rec, n):"]
        for p in prologue:
            lines.append(f"    {p}")
        lines.append("")
        lines.append("    def kernel():")
        _emit_block(lines, body_lines, "        ", timed=True)
        lines.append("")
        lines.append("    return kernel")
        source = "\n".join(lines) + "\n"

        report = _make_report(
            variant.name, recorder, ops, dce_removed, cse_removed,
            hoisted=len(setup_sched),
            fused=len(setup_fused) + len(body_fused),
            nslab=nrows, npinned=len(pinned),
        )
        program = CodegenProgram(
            variant=variant.name,
            params_key=tuple(sorted(kernel_params.items())),
            vector_dim=vd,
            nnode_per_element=nnode_per_element,
            source=source,
            scatter_calls=tuple(recorder.scatter_calls),
            setup_calls=tuple(setup_calls),
            body_calls=tuple(body_calls),
            gf_slots=tuple(gf_slots),
            vc_comps=tuple(vc_comps),
            npinned=len(pinned),
            nsetup_tmp=nsetup_tmp,
            nslab=nrows,
            stmt_costs=_stmt_costs(body_stmts),
            report=report,
        )
    registry = get_registry()
    registry.counter("codegen.generates").inc()
    registry.gauge(f"codegen.slab_rows.{variant.name}").set(nrows)
    _maybe_dump(f"{variant.name}_vd{vd}.py", source)
    return program


def generate_elemental_program(
    variant_name: str,
    kernel_params: Optional[Dict[str, float]] = None,
    nnode_per_element: int = 4,
) -> ElementalCodegenProgram:
    """Lower one variant to the worker-side elemental source module.

    No hoisting: the elemental executor accumulates scatters with ``+=``
    in call order, and a setup/body split would reorder that sum.
    """
    kernel_params = dict(kernel_params or {})
    with get_tracer().span(
        "codegen.generate_elemental", variant=variant_name.upper()
    ):
        variant, recorder = _record_ssa(
            variant_name, kernel_params, nnode_per_element
        )
        ops = _annotate(recorder.ops)
        live, dce_removed = _dce(ops)
        ops, cse_removed = _cse(live)
        prod: Dict[int, tuple] = {
            op[-1]: op for op in ops if op[0] != "sc"
        }
        sched = _schedule(ops, prod)
        fused = _fuse(sched, exclude=set())
        stmts = _statements(sched, prod, fused)
        rows, nslab = _assign_rows(stmts, lambda r: False)

        def name(r: int) -> str:
            return f"b{rows[r]}"

        def render(st: _Stmt, ctr: List[int]) -> str:
            op = st.op
            tag = op[0]

            def ex(r):
                return _expr(r, prod, fused, name, ctr)

            if tag == "gc":
                return f"copyto({name(op[3])}, x{op[1]}{op[2]})"
            if tag == "gf":
                return f"copyto({name(op[4])}, u{op[2]}{op[3]})"
            if tag == "sc":
                rname = f"r{op[2]}{op[3]}"
                return f"add({rname}, {ex(op[4])}, out={rname})"
            return _render_mesh(
                st, prod, fused, name, lambda c: "", lambda o: "", 0,
                scratch=ctr,
            )

        stmt_lines: List[str] = []
        nscratch = 0
        for st in stmts:
            ctr = [0]
            stmt_lines.append(render(st, ctr))
            nscratch = max(nscratch, ctr[0])
        nrows = nslab + nscratch
        x_keys = sorted({
            (op[1], op[2]) for op in ops if op[0] == "gc"
        })
        u_keys = sorted({
            (op[2], op[3]) for op in ops if op[0] == "gf"
        })
        r_keys = sorted({
            (op[2], op[3]) for op in ops if op[0] == "sc"
        })
        prologue = (
            [f"x{s}{c} = X[:, {s}, {c}]" for s, c in x_keys]
            + [f"u{s}{c} = U[:, {s}, {c}]" for s, c in u_keys]
            + [f"r{s}{c} = R[:, {s}, {c}]" for s, c in r_keys]
            + [f"b{r} = B[{r}]" for r in range(nslab)]
            + [f"t{k} = B[{nslab + k}]" for k in range(nscratch)]
        )
        lines: List[str] = [
            f"# generated by repro.core.codegen -- do not edit",
            f"# variant={variant.name} elemental "
            f"stmts={len(stmts)} slab_rows={nrows} fused={len(fused)}",
            "",
            "",
            "def elemental(X, U, R, B):",
        ]
        for p in prologue:
            lines.append(f"    {p}")
        _emit_block(lines, stmt_lines, "    ", timed=False)
        lines += ["", "", "def elemental_timed(X, U, R, B, clock, rec, n):"]
        for p in prologue:
            lines.append(f"    {p}")
        _emit_block(lines, stmt_lines, "    ", timed=True)
        source = "\n".join(lines) + "\n"

        report = _make_report(
            variant.name, recorder, ops, dce_removed, cse_removed,
            hoisted=0, fused=len(fused), nslab=nrows, npinned=0,
        )
        program = ElementalCodegenProgram(
            variant=variant.name,
            params_key=tuple(sorted(kernel_params.items())),
            nnode_per_element=nnode_per_element,
            source=source,
            nslab=nrows,
            stmt_costs=_stmt_costs(stmts),
            report=report,
        )
    get_registry().counter("codegen.generates").inc()
    _maybe_dump(f"{variant.name}_elemental.py", source)
    return program


# ---------------------------------------------------------------------------
# exec-compilation (module-level source cache)
# ---------------------------------------------------------------------------


def _load(source: str, filename: str) -> Dict[str, object]:
    """Exec a generated module into a fresh namespace.

    The compiled code object is cached on the exact source string, so a
    plan-cache hit (or a worker re-shipping the same program) never pays
    ``compile`` twice in one process.
    """
    registry = get_registry()
    code = _CODE_CACHE.get(source)
    if code is None:
        code = compile(source, filename, "exec")
        _CODE_CACHE[source] = code
        registry.counter("codegen.source_compiles").inc()
    else:
        registry.counter("codegen.source_reuses").inc()
    ns = dict(_NAMESPACE)
    exec(code, ns)
    return ns


# ---------------------------------------------------------------------------
# Mesh-wide executor
# ---------------------------------------------------------------------------


class GeneratedKernel:
    """Executable generated module bound to one ``(plan, packing)`` pair.

    Mirrors :class:`~repro.core.tape.CompiledTape`'s binding (same gather
    index layout, same shared plan scatter pattern under the same key,
    same group-major deferred values flush) but owns its values/velocity
    buffers, so a coexisting compiled tape of the same configuration is
    never mutated.  ``setup`` runs once here at full lane width; a sweep
    then runs one prebound closure per chunk plus the serial flush.
    """

    def __init__(
        self,
        program: CodegenProgram,
        plan,
        packing,
        perm_key=None,
        tracer=NULL_TRACER,
    ) -> None:
        self.program = program
        self.plan = plan
        self.packing = packing
        self.tracer = tracer
        self.profiler = NULL_PROFILER
        mesh = plan.mesh
        self.nnode = int(mesh.nnode)
        self.ncomp = 3
        groups = packing.groups()
        self.ngroups = len(groups)
        self.vector_dim = int(packing.vector_dim)
        if self.vector_dim != program.vector_dim:
            raise ValueError(
                f"program generated for vector_dim={program.vector_dim}, "
                f"packing has {self.vector_dim}"
            )
        nlane = self.ngroups * self.vector_dim
        self.nlane = nlane
        nnpe = program.nnode_per_element

        conn3 = np.stack([g.connectivity for g in groups])  # (G, vd, nnpe)
        conn_all = conn3.reshape(nlane, nnpe)
        self._idx = [
            np.ascontiguousarray(conn_all[:, s], dtype=np.int64)
            for s in range(nnpe)
        ]
        self._ccols = [
            np.ascontiguousarray(mesh.coords[:, c]) for c in range(3)
        ]
        self._vcols = np.empty((3, self.nnode))

        # -- shared scatter index pattern (same key/shape as the tape) ---
        ncalls = len(program.scatter_calls)
        self._ncalls = ncalls
        trash = self.nnode * self.ncomp
        signature = tuple(
            (g, slot, comp)
            for g in range(self.ngroups)
            for (slot, comp) in program.scatter_calls
        )
        key = (program.variant, self.vector_dim, perm_key)
        pattern = plan.scatter_pattern(key)
        registry = get_registry()
        if pattern is None:
            from ..fem.plan import seed_flush_order

            active3 = np.stack([g.active for g in groups])  # (G, vd)
            indices = np.empty(
                (self.ngroups, ncalls, self.vector_dim), dtype=np.int64
            )
            for c, (slot, comp) in enumerate(program.scatter_calls):
                icol = conn3[:, :, slot] * self.ncomp + comp
                np.copyto(indices[:, c, :], np.where(active3, icol, trash))
            order = None
            seed_ids = mesh.seed_element_ids
            if seed_ids is not None:
                lane_seed = np.concatenate(
                    [seed_ids[g.element_ids] for g in groups]
                )
                order = seed_flush_order(
                    lane_seed, active3.reshape(-1), ncalls, self.vector_dim
                )
            pattern = plan.store_scatter_pattern(
                key, indices.reshape(-1), signature, order=order
            )
            registry.counter("scatter.pattern_builds").inc()
        else:
            if pattern.signature != signature:
                raise RuntimeError(
                    "scatter pattern mismatch: cached plan pattern does "
                    "not match the generated kernel's call order"
                )
            registry.counter("scatter.pattern_reuses").inc()
        self._pattern = pattern

        # -- own deferred values buffer + pinned invariants --------------
        self._values = np.empty((self.ngroups, ncalls, self.vector_dim))
        self._values_flat = self._values.reshape(-1)
        self._pinned = np.empty((max(program.npinned, 1), nlane))

        ns = _load(
            program.source,
            f"<codegen:{program.variant}:vd{self.vector_dim}>",
        )
        self._factory = ns["factory"]
        self._factory_timed = ns["factory_timed"]

        # run the hoisted setup once: coordinate gathers, loop-invariant
        # arithmetic and constant/invariant scatter rows, full lane width.
        # The transient rows are freed immediately after.
        T = np.empty((max(program.nsetup_tmp, 1), nlane))
        SV = [self._values[:, c, :] for c in program.setup_calls]
        ns["setup"](self._ccols, self._idx, self._pinned, T, SV)
        del T

        #: (chunk_groups, nslabs) -> list-per-slab of chunk closures
        self._chunk_cache: Dict[Tuple[int, int], list] = {}

    @property
    def report(self) -> TapeReport:
        return self.program.report

    # -- chunk closures ---------------------------------------------------
    def _resolve_cg(self, chunk_groups: Optional[int]) -> int:
        if chunk_groups is None:
            chunk_groups = max(1, DEFAULT_CHUNK_LANES // self.vector_dim)
        return max(1, min(int(chunk_groups), self.ngroups))

    def _build_closures(
        self, cg: int, nslabs: int, profile=None
    ) -> List[list]:
        """Bind one closure per chunk; chunk ``i`` runs on slab
        ``i % nslabs``, and each slab's chunks run sequentially in one
        pool task, so concurrent slabs never share scratch rows."""
        vd = self.vector_dim
        program = self.program
        bounds = list(range(0, self.ngroups, cg)) + [self.ngroups]
        chunks = list(zip(bounds[:-1], bounds[1:]))
        nslabs = max(1, min(nslabs, len(chunks)))
        slabs = np.empty((nslabs, max(program.nslab, 1), cg * vd))
        per_slab: List[list] = [[] for _ in range(nslabs)]
        factory = self._factory if profile is None else self._factory_timed
        for i, (g0, g1) in enumerate(chunks):
            s = i % nslabs
            lo = g0 * vd
            n = (g1 - g0) * vd
            GI = [self._idx[slot][lo:lo + n] for slot in program.gf_slots]
            P = [self._pinned[k, lo:lo + n] for k in range(program.npinned)]
            SV = [self._values[g0:g1, c, :] for c in program.body_calls]
            B = [slabs[s, r, :n] for r in range(program.nslab)]
            if profile is None:
                kern = factory(self._vcols, GI, P, SV, B)
            else:
                kern = factory(
                    self._vcols, GI, P, SV, B,
                    time.perf_counter, profile.record, n,
                )
            per_slab[s].append(kern)
        return per_slab

    def _closures(self, cg: int, nslabs: int) -> List[list]:
        key = (cg, nslabs)
        per_slab = self._chunk_cache.get(key)
        if per_slab is None:
            per_slab = self._build_closures(cg, nslabs)
            self._chunk_cache[key] = per_slab
        return per_slab

    # -- execution --------------------------------------------------------
    def _check_velocity(self, velocity: np.ndarray) -> np.ndarray:
        velocity = np.asarray(velocity, dtype=np.float64)
        if velocity.shape != (self.nnode, 3):
            raise ValueError(
                f"velocity must be ({self.nnode}, 3), got {velocity.shape}"
            )
        return velocity

    def _flush(self, rhs: np.ndarray, profile=None) -> None:
        from ..fem.plan import flush_pattern

        with self.tracer.span("scatter.flush", variant=self.program.variant):
            t0 = time.perf_counter()
            flush_pattern(
                self._pattern, self._values_flat, rhs, self.nnode, self.ncomp
            )
            if profile is not None:
                moved = 2.0 * self._values_flat.nbytes + rhs.nbytes
                profile.record_flush(time.perf_counter() - t0, moved)

    @staticmethod
    def _run_slab(kerns: list) -> None:
        for kern in kerns:
            kern()

    def execute(
        self,
        velocity: np.ndarray,
        rhs: Optional[np.ndarray] = None,
        chunk_groups: Optional[int] = None,
    ) -> np.ndarray:
        """Assemble the momentum RHS, accumulating into ``rhs`` in place."""
        velocity = self._check_velocity(velocity)
        if rhs is None:
            rhs = np.zeros((self.nnode, self.ncomp))
        cg = self._resolve_cg(chunk_groups)
        with self.tracer.span(
            "codegen.execute",
            variant=self.program.variant,
            vector_dim=self.vector_dim,
            nlane=self.nlane,
            chunk_groups=cg,
        ):
            np.copyto(self._vcols, velocity.T)
            if self.profiler.enabled:
                profile = self.profiler.for_codegen(
                    self.program, self.vector_dim, "serial"
                )
                per_slab = self._build_closures(cg, 1, profile=profile)
                self._run_slab(per_slab[0])
                self._flush(rhs, profile)
                profile.finish_execution()
                nchunks = len(per_slab[0])
            else:
                per_slab = self._closures(cg, 1)
                self._run_slab(per_slab[0])
                self._flush(rhs)
                nchunks = len(per_slab[0])
        registry = get_registry()
        registry.counter("codegen.executions").inc()
        registry.counter("codegen.lanes_executed").inc(self.nlane)
        registry.counter("codegen.chunks_executed").inc(nchunks)
        return rhs

    def execute_chunked(
        self,
        velocity: np.ndarray,
        rhs: Optional[np.ndarray] = None,
        num_threads: Optional[int] = None,
        chunk_groups: Optional[int] = None,
    ) -> np.ndarray:
        """Assemble on a thread pool: one task per slab, chunks of one
        slab running sequentially.  Scatter values land in disjoint
        chunk slices and the flush runs serially afterwards, so the
        result is bitwise identical to :meth:`execute` for any thread
        count or schedule (numpy ufuncs drop the GIL, so slabs overlap).
        """
        from ..parallel import threads as _threads

        velocity = self._check_velocity(velocity)
        if rhs is None:
            rhs = np.zeros((self.nnode, self.ncomp))
        nthreads = _threads.resolve_num_threads(num_threads)
        cg = self._resolve_cg(chunk_groups)
        nchunks = (self.ngroups + cg - 1) // cg
        threaded = nthreads > 1 and nchunks > 1
        nslabs = min(nthreads, nchunks) if threaded else 1
        with self.tracer.span(
            "codegen.execute_chunked",
            variant=self.program.variant,
            vector_dim=self.vector_dim,
            nlane=self.nlane,
            chunks=nchunks,
            threads=nthreads,
            chunk_groups=cg,
        ):
            np.copyto(self._vcols, velocity.T)
            profile = None
            if self.profiler.enabled:
                profile = self.profiler.for_codegen(
                    self.program, self.vector_dim, "threads"
                )
                per_slab = self._build_closures(cg, nslabs, profile=profile)
            else:
                per_slab = self._closures(cg, nslabs)
            if len(per_slab) == 1:
                self._run_slab(per_slab[0])
            else:
                pool = _threads.get_thread_pool(nthreads)
                for future in [
                    pool.submit(self._run_slab, kerns)
                    for kerns in per_slab
                ]:
                    future.result()
            self._flush(rhs, profile)
            if profile is not None:
                profile.finish_execution()
        registry = get_registry()
        registry.counter("codegen.executions").inc()
        registry.counter("codegen.lanes_executed").inc(self.nlane)
        registry.counter("codegen.chunks_executed").inc(nchunks)
        if len(per_slab) > 1:
            registry.counter("locality.threaded_executions").inc()
        return rhs


# ---------------------------------------------------------------------------
# Elemental executor (multiprocess workers)
# ---------------------------------------------------------------------------


class ElementalGeneratedKernel:
    """Run a generated elemental module against packed per-element arrays.

    Drop-in for :class:`~repro.core.tape.ElementalTape`: same
    ``(n, nnode_per_element, 3)`` output, same ``+=`` accumulation order,
    same lazy slab rebinding across chunk sizes, same ``profile``
    attribute contract.
    """

    def __init__(self, program: ElementalCodegenProgram) -> None:
        self.program = program
        #: set to a :class:`repro.obs.profiler.TapeProfile` to time stmts
        self.profile = None
        self._n = -1
        self._rows: Optional[List[np.ndarray]] = None
        ns = _load(
            program.source, f"<codegen:{program.variant}:elemental>"
        )
        self._fn = ns["elemental"]
        self._fn_timed = ns["elemental_timed"]

    def _bind(self, n: int) -> None:
        slab = np.empty((max(self.program.nslab, 1), n))
        self._rows = [slab[r] for r in range(self.program.nslab)]
        self._n = n

    def __call__(self, xel: np.ndarray, uel: np.ndarray) -> np.ndarray:
        n = xel.shape[0]
        if n != self._n:
            self._bind(n)
        nnpe = self.program.nnode_per_element
        out_rhs = np.zeros((n, nnpe, 3))
        if self.profile is not None:
            self._fn_timed(
                xel, uel, out_rhs, self._rows,
                time.perf_counter, self.profile.record, n,
            )
            self.profile.finish_execution()
        else:
            self._fn(xel, uel, out_rhs, self._rows)
        return out_rhs


# ---------------------------------------------------------------------------
# Plan-level cache
# ---------------------------------------------------------------------------


def generated_kernel(
    plan,
    variant_name: str,
    vector_dim: int,
    permutation: Optional[np.ndarray] = None,
    kernel_params: Optional[Dict[str, float]] = None,
    tracer=None,
    profiler=None,
) -> GeneratedKernel:
    """The plan-cached :class:`GeneratedKernel` for one configuration.

    Cached next to the compiled tapes under the same
    :func:`~repro.core.tape.tape_cache_key`; mesh reorientation
    (``fix_orientation`` / any ``mesh._version`` bump) invalidates the
    plan and with it every generated kernel, forcing regeneration.
    """
    kernel_params = dict(kernel_params or {})
    key = tape_cache_key(variant_name, vector_dim, permutation, kernel_params)
    kern = plan.cached_codegen(key)
    registry = get_registry()
    if kern is None:
        with get_tracer().span(
            "codegen.compile", variant=key[0], vector_dim=int(vector_dim)
        ):
            program = generate_program(key[0], int(vector_dim), kernel_params)
            packing = plan.packing(int(vector_dim), permutation=permutation)
            kern = GeneratedKernel(program, plan, packing, perm_key=key[2])
        plan.store_codegen(key, kern)
        registry.counter("codegen.compiles").inc()
    else:
        registry.counter("codegen.cache_hits").inc()
    if tracer is not None:
        kern.tracer = tracer
    # Always (re)set the profiler -- generated kernels are plan-cached and
    # shared across assemblers, like compiled tapes.
    kern.profiler = profiler if profiler is not None else NULL_PROFILER
    return kern


# ---------------------------------------------------------------------------
# Scenario-batched codegen
# ---------------------------------------------------------------------------
#
# A batched recording (BatchRecordingBackend) keeps varying runtime
# parameters symbolic as ("rp", name, out) ops, giving every SSA value a
# rank on the lattice srow (S, 1) < {vec (lanes,), full (S, lanes)} (see
# repro.core.tape._infer_ranks).  Lowering reuses the serial pipeline --
# DCE, CSE, invariant hoisting, DFS scheduling, fusion -- with three
# batch-specific twists:
#
# * the all-srow prefix is peeled into a tiny Python-evaluated parameter
#   stage (same lowered format as BatchTapeProgram.param_ops, evaluated
#   by tape._eval_param_stage into persistent (S, 1) rows Q) instead of
#   being emitted as lane-wide statements;
# * slab rows are assigned from two pools -- rank-1 rows BV and (S, n)
#   rows BF -- by a rank-aware liveness scan, and fused scratch rows are
#   drawn per pool from the fused op's *own* rank, so shared geometry
#   arithmetic runs once per batch at rank-1;
# * scatters reshape by source rank: scalars fill, srow rows broadcast as
#   (S, 1, 1), vec sources broadcast a (cg, vd) block over all scenarios
#   and full sources land per scenario as (S, cg, vd).
#
# The hoisted setup stays *identical* to the serial emission (invariants
# are geometry-only, hence rank-1); only the SV views handed to it are
# (S, G, vd) so its writes broadcast across scenarios once at bind time.


def _infer_ranks_annotated(ops: List[tuple], velocity_rank: str) -> Dict[int, str]:
    """Rank of every annotated SSA value: ``srow`` / ``vec`` / ``full``."""
    rank: Dict[int, str] = {}
    for op in ops:
        tag = op[0]
        if tag == "sc":
            continue
        if tag == "rp":
            rank[op[-1]] = "srow"
        elif tag == "gc":
            rank[op[-1]] = "vec"
        elif tag == "gf":
            rank[op[-1]] = velocity_rank
        else:  # bin / un / sel
            rs = {rank[r] for r in _reads(op) if not _is_scalar(r)}
            if rs <= {"srow"}:
                rank[op[-1]] = "srow"
            elif rs == {"vec"}:
                rank[op[-1]] = "vec"
            else:
                rank[op[-1]] = "full"
    return rank


def _assign_rows_batch(
    stmts: List[_Stmt],
    is_external: Callable[[int], bool],
    rank_of: Callable[[int], str],
) -> Tuple[Dict[int, int], int, int]:
    """Two-pool statement liveness: rank-1 rows and ``(S, n)`` rows.

    Same LIFO linear scan as :func:`_assign_rows`, with one free list per
    rank pool -- a released rank-1 row can never be handed to a full-rank
    output (the pools are disjoint slabs), so in-place ``out=`` aliasing
    stays confined to same-shape rows exactly like the serial kernel.
    """
    last: Dict[int, int] = {}
    for j, st in enumerate(stmts):
        for r in st.leaves:
            if not is_external(r):
                last[r] = j
    row_of: Dict[int, int] = {}
    free: Dict[str, List[int]] = {"vec": [], "full": []}
    nrows = {"vec": 0, "full": 0}
    for j, st in enumerate(stmts):
        for r in sorted(set(st.leaves)):
            if not is_external(r) and last.get(r) == j:
                free[rank_of(r)].append(row_of[r])
        if st.op[0] != "sc":
            out = st.op[-1]
            if not is_external(out):
                pool = rank_of(out)
                if free[pool]:
                    row_of[out] = free[pool].pop()
                else:
                    row_of[out] = nrows[pool]
                    nrows[pool] += 1
    return row_of, nrows["vec"], nrows["full"]


def _expr_batch(
    r,
    prod: Dict[int, tuple],
    fused: Set[int],
    name_of: Callable[[int], str],
    rank_of: Callable[[int], str],
    scratch: Optional[Dict[str, int]],
) -> str:
    """Rank-aware :func:`_expr`: fused bin/un nodes write ``out=`` scratch
    rows drawn from the pool of the node's *own* rank (``tv*`` rank-1,
    ``tf*`` full), so a shared-geometry subtree inside a per-scenario
    statement still computes once per batch."""
    if _is_scalar(r):
        return _lit(r)
    if r in fused:
        op = prod[r]
        tag = op[0]
        out = ""
        if scratch is not None and tag in ("bin", "un"):
            pool = rank_of(r)
            prefix = "tv" if pool == "vec" else "tf"
            out = f", out={prefix}{scratch[pool]}"
            scratch[pool] += 1

        def ex(q):
            return _expr_batch(q, prod, fused, name_of, rank_of, scratch)

        if tag == "bin":
            return f"{_UFUNC_NAMES[op[1]]}({ex(op[2])}, {ex(op[3])}{out})"
        if tag == "un":
            return f"{_UFUNC_NAMES[op[1]]}({ex(op[2])}{out})"
        return (
            f"where(greater({ex(op[1])}, {_lit(op[4])}), "
            f"{ex(op[2])}, {ex(op[3])})"
        )
    return name_of(r)


def _stmt_costs_batch(
    stmts: List[_Stmt],
    rank: Dict[int, str],
    q_refs: Set[int],
    scenarios: int,
) -> Tuple[tuple, ...]:
    """Per-statement profiler cost slots in units of the *root's* lanes.

    The timed kernel records ``S * n`` lanes for full-rank statements and
    ``n`` for rank-1 ones; a rank-1 op fused inside a full-rank statement
    still executes only ``n`` lanes, so its per-lane contribution scales
    by ``1/S`` to keep total bytes honest.  Reads of ``(S, 1)`` parameter
    rows count zero bytes, like folded scalars (cache-resident).
    """

    def cheap(ref) -> bool:
        return _is_scalar(ref) or ref in q_refs

    costs: List[tuple] = []
    for st in stmts:
        root = st.op
        root_full = root[0] == "sc" or rank.get(root[-1]) == "full"
        rb = wb = fl = 0.0
        for op in st.tree:
            tag = op[0]
            if tag == "bin":
                nv = sum(1 for r in (op[2], op[3]) if not cheap(r))
                orb, owb, ofl = nv * 8.0, 8.0, 1.0
            elif tag == "un":
                orb = 0.0 if cheap(op[2]) else 8.0
                owb, ofl = 8.0, 1.0
            elif tag == "sel":
                nv = sum(1 for r in (op[1], op[2], op[3]) if not cheap(r))
                orb, owb, ofl = nv * 8.0 + 1.0, 9.0, 1.0
            elif tag in ("gc", "gf"):
                orb, owb, ofl = 16.0, 8.0, 0.0
            else:  # sc
                orb = 0.0 if cheap(op[4]) else 8.0
                owb, ofl = 8.0, 0.0
            scale = 1.0
            if root_full and tag != "sc" and rank.get(op[-1]) == "vec":
                scale = 1.0 / scenarios
            rb += orb * scale
            wb += owb * scale
            fl += ofl * scale
        label = _root_label(root)
        if len(st.tree) > 1:
            label += f"+{len(st.tree) - 1}"
        costs.append((_ROOT_KINDS[root[0]], label, rb, wb, fl))
    return tuple(costs)


def _emit_block_batch(
    lines: List[str],
    stmts: List[str],
    lanevars: List[str],
    indent: str,
    timed: bool,
) -> None:
    if not stmts:
        lines.append(f"{indent}pass")
        return
    if not timed:
        for s in stmts:
            lines.append(f"{indent}{s}")
        return
    for i, (s, lv) in enumerate(zip(stmts, lanevars)):
        lines.append(f"{indent}_t = clock()")
        lines.append(f"{indent}{s}")
        lines.append(f"{indent}rec({i}, clock() - _t, {lv})")


@dataclasses.dataclass(frozen=True)
class BatchedCodegenProgram:
    """A generated, picklable scenario-batched kernel module.

    ``source`` defines ``setup(C, I, P, T, SV)`` (byte-identical emission
    to the serial module -- invariants are rank-1 -- writing broadcast
    ``(S, G, vd)`` views once at bind time), ``factory(VC, GI, P, Q, SV,
    BV, BF)`` and the profiled twin ``factory_timed(..., clock, rec, n,
    ns)`` where ``n``/``ns`` are the chunk's rank-1 / full lane counts.
    ``param_ops`` is the Python-evaluated ``(S, 1)`` scenario-row stage in
    the exact :class:`~repro.core.tape.BatchTapeProgram` format, refreshed
    every execute by :func:`~repro.core.tape._eval_param_stage`.
    """

    variant: str
    batch_key: tuple
    scenarios: int
    velocity_rank: str
    vector_dim: int
    nnode_per_element: int
    source: str
    param_ops: Tuple[tuple, ...]
    nq: int
    scatter_calls: Tuple[Tuple[int, int], ...]
    setup_calls: Tuple[int, ...]
    body_calls: Tuple[int, ...]
    gf_slots: Tuple[int, ...]
    vc_comps: Tuple[int, ...]
    npinned: int
    nsetup_tmp: int
    nslab_vec: int
    nslab_full: int
    stmt_costs: Tuple[tuple, ...]
    report: TapeReport


def generate_batched_program(
    variant_name: str,
    vector_dim: int,
    batch,
    velocity_rank: str = "vec",
    nnode_per_element: int = 4,
) -> BatchedCodegenProgram:
    """Lower one variant to a scenario-batched generated source module."""
    if velocity_rank not in ("vec", "full"):
        raise ValueError(
            f"velocity_rank must be 'vec' or 'full', got {velocity_rank!r}"
        )
    vd = int(vector_dim)
    S = int(batch.size)
    variant = get_variant(variant_name)
    with get_tracer().span(
        "codegen.generate_batch",
        variant=variant.name,
        vector_dim=vd,
        scenarios=S,
    ):
        ctx = KernelContext(
            connectivity=np.zeros((1, nnode_per_element), dtype=np.int64),
            coords=np.zeros((1, 3)),
            fields={"velocity": np.zeros((1, 3))},
            rhs=np.zeros((1, 3)),
            params=dict(batch.recording_params()),
            nnode_per_element=nnode_per_element,
        )
        recorder = BatchRecordingBackend(ctx, batch.varying)
        variant.kernel(recorder, ctx)
        for op in recorder.ops:
            if op[0] == "gf" and op[1] != "velocity":
                raise ValueError(
                    f"batched generated kernel gathers unknown field "
                    f"{op[1]!r}; the executor only binds 'velocity'"
                )
        ops = _annotate(recorder.ops)
        live, dce_removed = _dce(ops)
        ops, cse_removed = _cse(live)
        rank = _infer_ranks_annotated(ops, velocity_rank)
        inv = _invariants(ops)

        # -- three-way partition: param stage / setup / body -------------
        q_of: Dict[int, int] = {}
        param_ops: List[tuple] = []
        setup_ops: List[tuple] = []
        body_ops: List[tuple] = []
        setup_calls: List[int] = []
        body_calls: List[int] = []
        for op in ops:
            tag = op[0]
            if tag == "sc":
                src = op[4]
                if _is_scalar(src) or src in inv:
                    setup_ops.append(op)
                    setup_calls.append(op[1])
                else:
                    body_ops.append(op)
                    body_calls.append(op[1])
                continue
            out = op[-1]
            if tag == "rp" or rank[out] == "srow":
                q_of[out] = len(q_of)

                def qref(r):
                    return r if _is_scalar(r) else q_of[r]

                if tag == "rp":
                    param_ops.append(("rp", op[1], q_of[out]))
                elif tag == "bin":
                    param_ops.append((
                        "bin", _UFUNC_NAMES[op[1]], qref(op[2]),
                        qref(op[3]), q_of[out],
                    ))
                elif tag == "un":
                    param_ops.append((
                        "un", _UFUNC_NAMES[op[1]], qref(op[2]), q_of[out],
                    ))
                else:  # sel (x is srow: scalar x folds at record time)
                    param_ops.append((
                        "sel", qref(op[1]), qref(op[2]), qref(op[3]),
                        op[4], q_of[out],
                    ))
            elif out in inv:
                setup_ops.append(op)
            else:
                body_ops.append(op)

        prod: Dict[int, tuple] = {
            op[-1]: op for op in ops if op[0] != "sc"
        }
        setup_prod = {op[-1]: op for op in setup_ops if op[0] != "sc"}
        body_prod = {op[-1]: op for op in body_ops if op[0] != "sc"}
        pinned = sorted({
            r
            for op in body_ops
            for r in _reads(op)
            if not _is_scalar(r) and r in inv
        })
        pinned_set = set(pinned)
        pin_index = {r: k for k, r in enumerate(pinned)}
        q_refs = set(q_of)

        def is_external(r: int) -> bool:
            return r in pinned_set or r in q_refs

        setup_sched = _schedule(setup_ops, setup_prod, extra_roots=pinned)
        body_sched = _schedule(body_ops, body_prod)
        setup_fused = _fuse(setup_sched, exclude=pinned_set)
        body_fused = _fuse(body_sched, exclude=set())
        setup_stmts = _statements(setup_sched, prod, setup_fused)
        body_stmts = _statements(body_sched, prod, body_fused)

        setup_rows, nsetup_tmp = _assign_rows(
            setup_stmts, lambda r: r in pinned_set
        )
        body_rows, nslab_v, nslab_f = _assign_rows_batch(
            body_stmts, is_external, lambda r: rank[r]
        )

        def setup_name(r: int) -> str:
            if r in pinned_set:
                return f"P[{pin_index[r]}]"
            return f"T[{setup_rows[r]}]"

        def body_name(r: int) -> str:
            if r in pinned_set:
                return f"p{pin_index[r]}"
            if r in q_refs:
                return f"q{q_of[r]}"
            if rank[r] == "vec":
                return f"bv{body_rows[r]}"
            return f"bf{body_rows[r]}"

        spos = {call: j for j, call in enumerate(setup_calls)}
        bpos = {call: j for j, call in enumerate(body_calls)}
        gf_slots = sorted({op[2] for op in body_ops if op[0] == "gf"})
        gi_index = {slot: k for k, slot in enumerate(gf_slots)}
        vc_comps = sorted({op[3] for op in body_ops if op[0] == "gf"})

        # -- setup: identical emission to the serial module --------------
        setup_lines = [
            _render_mesh(
                st, prod, setup_fused, setup_name,
                lambda c: f"SV[{spos[c]}]",
                lambda op: (
                    f"take(C[{op[2]}], I[{op[1]}], out={setup_name(op[3])})"
                ),
                vd,
            )
            for st in setup_stmts
        ]

        # -- body: rank-aware emission ------------------------------------
        gather = "take(vc{c}, gi{k}, axis=1, out={dst})" \
            if velocity_rank == "full" else "take(vc{c}, gi{k}, out={dst})"
        body_lines: List[str] = []
        lanevars: List[str] = []
        nscratch = {"vec": 0, "full": 0}
        for st in body_stmts:
            op = st.op
            tag = op[0]
            ctr = {"vec": 0, "full": 0}

            def ex(r):
                return _expr_batch(
                    r, prod, body_fused, body_name, lambda v: rank[v], ctr
                )

            if tag == "bin":
                line = (
                    f"{_UFUNC_NAMES[op[1]]}({ex(op[2])}, {ex(op[3])}, "
                    f"out={body_name(op[4])})"
                )
            elif tag == "un":
                line = (
                    f"{_UFUNC_NAMES[op[1]]}({ex(op[2])}, "
                    f"out={body_name(op[3])})"
                )
            elif tag == "sel":
                line = (
                    f"copyto({body_name(op[5])}, where(greater({ex(op[1])}, "
                    f"{_lit(op[4])}), {ex(op[2])}, {ex(op[3])}))"
                )
            elif tag == "gf":
                line = gather.format(
                    c=op[3], k=gi_index[op[2]], dst=body_name(op[4])
                )
            else:  # sc
                dst = f"s{bpos[op[1]]}"
                src = op[4]
                if _is_scalar(src):
                    line = f"{dst}[...] = {_lit(src)}"
                elif src in q_refs:
                    line = f"copyto({dst}, q{q_of[src]}.reshape({S}, 1, 1))"
                elif rank[src] == "full":
                    line = (
                        f"copyto({dst}, {ex(src)}.reshape({S}, -1, {vd}))"
                    )
                else:
                    line = f"copyto({dst}, {ex(src)}.reshape(-1, {vd}))"
            body_lines.append(line)
            if tag == "sc" or rank.get(op[-1]) == "full":
                lanevars.append("ns")
            else:
                lanevars.append("n")
            nscratch["vec"] = max(nscratch["vec"], ctr["vec"])
            nscratch["full"] = max(nscratch["full"], ctr["full"])

        nslab_vec = nslab_v + nscratch["vec"]
        nslab_full = nslab_f + nscratch["full"]

        prologue = (
            [f"vc{c} = VC[{c}]" for c in vc_comps]
            + [f"gi{k} = GI[{k}]" for k in range(len(gf_slots))]
            + [f"p{k} = P[{k}]" for k in range(len(pinned))]
            + [f"q{k} = Q[{k}]" for k in range(len(q_of))]
            + [f"s{j} = SV[{j}]" for j in range(len(body_calls))]
            + [f"bv{r} = BV[{r}]" for r in range(nslab_v)]
            + [f"tv{k} = BV[{nslab_v + k}]" for k in range(nscratch["vec"])]
            + [f"bf{r} = BF[{r}]" for r in range(nslab_f)]
            + [f"tf{k} = BF[{nslab_f + k}]" for k in range(nscratch["full"])]
        )

        lines: List[str] = [
            "# generated by repro.core.codegen -- do not edit",
            f"# variant={variant.name} vector_dim={vd} scenarios={S} "
            f"velocity_rank={velocity_rank} stmts={len(body_stmts)} "
            f"rows_vec={nslab_vec} rows_full={nslab_full} "
            f"param_ops={len(param_ops)} pinned={len(pinned)} "
            f"fused={len(setup_fused) + len(body_fused)}",
            "",
            "",
            "def setup(C, I, P, T, SV):",
        ]
        _emit_block(lines, setup_lines, "    ", timed=False)
        lines += ["", "", "def factory(VC, GI, P, Q, SV, BV, BF):"]
        for p in prologue:
            lines.append(f"    {p}")
        lines.append("")
        lines.append("    def kernel():")
        _emit_block_batch(lines, body_lines, lanevars, "        ",
                          timed=False)
        lines.append("")
        lines.append("    return kernel")
        lines += [
            "", "",
            "def factory_timed(VC, GI, P, Q, SV, BV, BF, clock, rec, n, ns):",
        ]
        for p in prologue:
            lines.append(f"    {p}")
        lines.append("")
        lines.append("    def kernel():")
        _emit_block_batch(lines, body_lines, lanevars, "        ",
                          timed=True)
        lines.append("")
        lines.append("    return kernel")
        source = "\n".join(lines) + "\n"

        nvec_ops = sum(
            1 for op in body_ops
            if op[0] != "sc" and rank.get(op[-1]) == "vec"
        )
        nfull_ops = sum(
            1 for op in body_ops
            if op[0] != "sc" and rank.get(op[-1]) == "full"
        )
        report = dataclasses.replace(
            _make_report(
                variant.name, recorder, ops, dce_removed, cse_removed,
                hoisted=len(setup_sched),
                fused=len(setup_fused) + len(body_fused),
                nslab=nslab_vec + nslab_full,
                npinned=len(pinned),
            ),
            srow_ops=len(param_ops),
            vec_ops=nvec_ops,
            full_ops=nfull_ops,
            scenarios=S,
        )
        program = BatchedCodegenProgram(
            variant=variant.name,
            batch_key=tuple(batch.cache_key()),
            scenarios=S,
            velocity_rank=velocity_rank,
            vector_dim=vd,
            nnode_per_element=nnode_per_element,
            source=source,
            param_ops=tuple(param_ops),
            nq=len(q_of),
            scatter_calls=tuple(recorder.scatter_calls),
            setup_calls=tuple(setup_calls),
            body_calls=tuple(body_calls),
            gf_slots=tuple(gf_slots),
            vc_comps=tuple(vc_comps),
            npinned=len(pinned),
            nsetup_tmp=nsetup_tmp,
            nslab_vec=nslab_vec,
            nslab_full=nslab_full,
            stmt_costs=_stmt_costs_batch(body_stmts, rank, q_refs, S),
            report=report,
        )
    registry = get_registry()
    registry.counter("codegen.generates").inc()
    registry.gauge(f"codegen.batch_full_rows.{variant.name}").set(nslab_full)
    _maybe_dump(f"{variant.name}_vd{vd}_S{S}.py", source)
    return program


class BatchedGeneratedKernel:
    """Executable batched generated module bound to one plan/packing pair.

    Mirrors :class:`~repro.core.tape.BatchedTape`'s binding -- same gather
    index layout, same *serial* scatter pattern key (the batched flush
    tiles it per scenario via
    :func:`~repro.fem.plan.batch_flush_indices`), same ``(S, 1)``
    parameter rows refreshed from :attr:`param_rows` every execute -- and
    :class:`GeneratedKernel`'s chunked closure execution: one prebound
    zero-argument kernel per chunk, slab-striped across threads.
    """

    #: target bytes per arena slab for the default chunk size
    TARGET_SLAB_BYTES = 8 << 20

    def __init__(
        self,
        program: BatchedCodegenProgram,
        plan,
        packing,
        perm_key=None,
        tracer=NULL_TRACER,
    ) -> None:
        self.program = program
        self.plan = plan
        self.packing = packing
        self.tracer = tracer
        self.profiler = NULL_PROFILER
        self.S = program.scenarios
        mesh = plan.mesh
        self.nnode = int(mesh.nnode)
        self.ncomp = 3
        groups = packing.groups()
        self.ngroups = len(groups)
        self.vector_dim = int(packing.vector_dim)
        if self.vector_dim != program.vector_dim:
            raise ValueError(
                f"program generated for vector_dim={program.vector_dim}, "
                f"packing has {self.vector_dim}"
            )
        nlane = self.ngroups * self.vector_dim
        self.nlane = nlane
        nnpe = program.nnode_per_element

        conn3 = np.stack([g.connectivity for g in groups])
        conn_all = conn3.reshape(nlane, nnpe)
        self._idx = [
            np.ascontiguousarray(conn_all[:, s], dtype=np.int64)
            for s in range(nnpe)
        ]
        self._ccols = [
            np.ascontiguousarray(mesh.coords[:, c]) for c in range(3)
        ]
        if program.velocity_rank == "full":
            self._vcols = np.empty((3, self.S, self.nnode))
        else:
            self._vcols = np.empty((3, self.nnode))

        # -- scatter pattern: shared with the serial tape/kernel ---------
        ncalls = len(program.scatter_calls)
        self._ncalls = ncalls
        signature = tuple(
            (g, slot, comp)
            for g in range(self.ngroups)
            for (slot, comp) in program.scatter_calls
        )
        key = (program.variant, self.vector_dim, perm_key)
        pattern = plan.scatter_pattern(key)
        registry = get_registry()
        if pattern is None:
            from ..fem.plan import seed_flush_order

            trash = self.nnode * self.ncomp
            active3 = np.stack([g.active for g in groups])
            indices = np.empty(
                (self.ngroups, ncalls, self.vector_dim), dtype=np.int64
            )
            for c, (slot, comp) in enumerate(program.scatter_calls):
                icol = conn3[:, :, slot] * self.ncomp + comp
                np.copyto(indices[:, c, :], np.where(active3, icol, trash))
            order = None
            seed_ids = mesh.seed_element_ids
            if seed_ids is not None:
                lane_seed = np.concatenate(
                    [seed_ids[g.element_ids] for g in groups]
                )
                order = seed_flush_order(
                    lane_seed, active3.reshape(-1), ncalls, self.vector_dim
                )
            pattern = plan.store_scatter_pattern(
                key, indices.reshape(-1), signature, order=order
            )
            registry.counter("scatter.pattern_builds").inc()
        else:
            if pattern.signature != signature:
                raise RuntimeError(
                    "scatter pattern mismatch: cached plan pattern does "
                    "not match the batched generated kernel's call order"
                )
            registry.counter("scatter.pattern_reuses").inc()
        self._pattern = pattern

        # -- persistent buffers ------------------------------------------
        from ..fem.plan import batch_flush_indices

        self._batch_indices = batch_flush_indices(
            pattern, self.S, self.nnode, self.ncomp
        )
        self._values = np.empty(
            (self.S, self.ngroups, ncalls, self.vector_dim)
        )
        self._values2d = self._values.reshape(self.S, -1)
        self._Q = [np.empty((self.S, 1)) for _ in range(program.nq)]
        #: current per-scenario parameter rows (name -> (S, 1) array);
        #: refreshed by the plan wrapper on every cache hit
        self.param_rows: Dict[str, np.ndarray] = {}
        self._pinned = np.empty((max(program.npinned, 1), nlane))

        ns = _load(
            program.source,
            f"<codegen:{program.variant}:vd{self.vector_dim}:S{self.S}>",
        )
        self._factory = ns["factory"]
        self._factory_timed = ns["factory_timed"]

        # run the hoisted setup once: rank-1 geometry at full lane width,
        # writes broadcasting over the (S, G, vd) scatter-value views.
        T = np.empty((max(program.nsetup_tmp, 1), nlane))
        SV = [self._values[:, :, c, :] for c in program.setup_calls]
        ns["setup"](self._ccols, self._idx, self._pinned, T, SV)
        del T

        self._chunk_cache: Dict[Tuple[int, int], list] = {}

    @property
    def report(self) -> TapeReport:
        return self.program.report

    # -- chunk closures ---------------------------------------------------
    def _default_chunk_groups(self) -> int:
        per_lane = 8 * (
            self.program.nslab_vec + 1
            + (self.program.nslab_full + 1) * self.S
        )
        cg = self.TARGET_SLAB_BYTES // max(per_lane * self.vector_dim, 1)
        return max(1, min(int(cg), self.ngroups))

    def _resolve_cg(self, chunk_groups: Optional[int]) -> int:
        if chunk_groups is not None:
            return max(1, min(int(chunk_groups), self.ngroups))
        return self._default_chunk_groups()

    def _build_closures(
        self, cg: int, nslabs: int, profile=None
    ) -> List[list]:
        vd = self.vector_dim
        S = self.S
        program = self.program
        bounds = list(range(0, self.ngroups, cg)) + [self.ngroups]
        chunks = list(zip(bounds[:-1], bounds[1:]))
        nslabs = max(1, min(nslabs, len(chunks)))
        slabs_v = np.empty(
            (nslabs, max(program.nslab_vec, 1), cg * vd)
        )
        slabs_f = np.empty(
            (nslabs, max(program.nslab_full, 1), S * cg * vd)
        )
        per_slab: List[list] = [[] for _ in range(nslabs)]
        factory = self._factory if profile is None else self._factory_timed
        for i, (g0, g1) in enumerate(chunks):
            s = i % nslabs
            lo = g0 * vd
            n = (g1 - g0) * vd
            GI = [self._idx[slot][lo:lo + n] for slot in program.gf_slots]
            P = [self._pinned[k, lo:lo + n] for k in range(program.npinned)]
            SV = [self._values[:, g0:g1, c, :] for c in program.body_calls]
            BV = [slabs_v[s, r, :n] for r in range(program.nslab_vec)]
            BF = [
                slabs_f[s, r, :S * n].reshape(S, n)
                for r in range(program.nslab_full)
            ]
            if profile is None:
                kern = factory(self._vcols, GI, P, self._Q, SV, BV, BF)
            else:
                kern = factory(
                    self._vcols, GI, P, self._Q, SV, BV, BF,
                    time.perf_counter, profile.record, n, S * n,
                )
            per_slab[s].append(kern)
        return per_slab

    def _closures(self, cg: int, nslabs: int) -> List[list]:
        key = (cg, nslabs)
        per_slab = self._chunk_cache.get(key)
        if per_slab is None:
            per_slab = self._build_closures(cg, nslabs)
            self._chunk_cache[key] = per_slab
        return per_slab

    # -- execution --------------------------------------------------------
    def _check_velocity(self, velocity: np.ndarray) -> np.ndarray:
        velocity = np.asarray(velocity, dtype=np.float64)
        if self.program.velocity_rank == "full":
            want = (self.S, self.nnode, 3)
        else:
            want = (self.nnode, 3)
        if velocity.shape != want:
            raise ValueError(
                f"velocity must be {want} for velocity_rank="
                f"{self.program.velocity_rank!r}, got {velocity.shape}"
            )
        return velocity

    def _refresh_inputs(self, velocity: np.ndarray) -> None:
        if self.program.velocity_rank == "full":
            np.copyto(self._vcols, np.moveaxis(velocity, -1, 0))
        else:
            np.copyto(self._vcols, velocity.T)
        _eval_param_stage(self.program, self.param_rows, self._Q)

    def _flush(self, rhs: np.ndarray, profile=None) -> None:
        from ..fem.plan import flush_batch

        with self.tracer.span(
            "scatter.flush_batch",
            variant=self.program.variant,
            scenarios=self.S,
        ):
            t0 = time.perf_counter()
            flush_batch(
                self._pattern, self._batch_indices, self._values2d, rhs,
                self.nnode, self.ncomp,
            )
            if profile is not None:
                moved = 2.0 * self._values2d.nbytes + rhs.nbytes
                profile.record_flush(time.perf_counter() - t0, moved)

    @staticmethod
    def _run_slab(kerns: list) -> None:
        for kern in kerns:
            kern()

    def execute(
        self,
        velocity: np.ndarray,
        rhs: Optional[np.ndarray] = None,
        chunk_groups: Optional[int] = None,
    ) -> np.ndarray:
        """Assemble all ``S`` scenario RHS vectors: ``(S, nnode, 3)``."""
        velocity = self._check_velocity(velocity)
        if rhs is None:
            rhs = np.zeros((self.S, self.nnode, self.ncomp))
        cg = self._resolve_cg(chunk_groups)
        with self.tracer.span(
            "codegen.execute_batch",
            variant=self.program.variant,
            scenarios=self.S,
            vector_dim=self.vector_dim,
            nlane=self.nlane,
            chunk_groups=cg,
        ):
            self._refresh_inputs(velocity)
            if self.profiler.enabled:
                profile = self.profiler.for_batch_codegen(
                    self.program, self.vector_dim, "serial"
                )
                per_slab = self._build_closures(cg, 1, profile=profile)
                self._run_slab(per_slab[0])
                self._flush(rhs, profile)
                profile.finish_execution()
            else:
                per_slab = self._closures(cg, 1)
                self._run_slab(per_slab[0])
                self._flush(rhs)
        registry = get_registry()
        registry.counter("codegen.batch_executions").inc()
        registry.counter("codegen.batch_scenarios").inc(self.S)
        registry.counter("codegen.lanes_executed").inc(self.nlane)
        registry.counter("codegen.chunks_executed").inc(len(per_slab[0]))
        return rhs

    def execute_chunked(
        self,
        velocity: np.ndarray,
        rhs: Optional[np.ndarray] = None,
        num_threads: Optional[int] = None,
        chunk_groups: Optional[int] = None,
    ) -> np.ndarray:
        """Threaded batched assembly; bitwise identical to :meth:`execute`.

        Chunks write disjoint slices of the shared values buffer and the
        offset-``bincount`` flush runs serially afterwards, so thread
        count and scheduling order cannot change a bit.
        """
        from ..parallel import threads as _threads

        velocity = self._check_velocity(velocity)
        if rhs is None:
            rhs = np.zeros((self.S, self.nnode, self.ncomp))
        nthreads = _threads.resolve_num_threads(num_threads)
        cg = self._resolve_cg(chunk_groups)
        nchunks = -(-self.ngroups // cg)
        threaded = nthreads > 1 and nchunks > 1
        nslabs = min(nthreads, nchunks) if threaded else 1
        with self.tracer.span(
            "codegen.execute_batch_chunked",
            variant=self.program.variant,
            scenarios=self.S,
            vector_dim=self.vector_dim,
            chunks=nchunks,
            threads=nthreads,
        ):
            self._refresh_inputs(velocity)
            profile = None
            if self.profiler.enabled:
                profile = self.profiler.for_batch_codegen(
                    self.program, self.vector_dim,
                    "threads" if threaded else "serial",
                )
                per_slab = self._build_closures(cg, nslabs, profile=profile)
            else:
                per_slab = self._closures(cg, nslabs)
            if len(per_slab) == 1:
                self._run_slab(per_slab[0])
            else:
                pool = _threads.get_thread_pool(nthreads)
                for future in [
                    pool.submit(self._run_slab, kerns)
                    for kerns in per_slab
                ]:
                    future.result()
            self._flush(rhs, profile)
            if profile is not None:
                profile.finish_execution()
        registry = get_registry()
        registry.counter("codegen.batch_executions").inc()
        registry.counter("codegen.batch_scenarios").inc(self.S)
        registry.counter("codegen.lanes_executed").inc(self.nlane)
        registry.counter("codegen.chunks_executed").inc(nchunks)
        if len(per_slab) > 1:
            registry.counter("locality.threaded_executions").inc()
        return rhs


def batched_generated_kernel(
    plan,
    variant_name: str,
    vector_dim: int,
    batch,
    permutation: Optional[np.ndarray] = None,
    velocity_rank: str = "vec",
    tracer=None,
    profiler=None,
) -> BatchedGeneratedKernel:
    """The plan-cached :class:`BatchedGeneratedKernel` for one batch.

    Keyed like :func:`~repro.core.tape.batched_tape` (variant, group
    size, permutation, batch shape/constants/flags, velocity rank) but in
    the plan's codegen store.  The varying parameter *values* live
    outside the kernel: they are refreshed from ``batch`` on every call,
    so sweeping a campaign over new values re-generates nothing.
    """
    key = batch_tape_cache_key(
        variant_name, vector_dim, permutation, batch, velocity_rank
    )
    kern = plan.cached_codegen(key)
    registry = get_registry()
    if kern is None:
        with get_tracer().span(
            "codegen.compile_batch",
            variant=key[0],
            vector_dim=int(vector_dim),
            scenarios=batch.size,
        ):
            program = generate_batched_program(
                key[0], int(vector_dim), batch, velocity_rank=velocity_rank
            )
            packing = plan.packing(int(vector_dim), permutation=permutation)
            kern = BatchedGeneratedKernel(
                program, plan, packing, perm_key=key[2]
            )
        plan.store_codegen(key, kern)
        registry.counter("codegen.batch_compiles").inc()
    else:
        registry.counter("codegen.batch_cache_hits").inc()
    kern.param_rows = batch.param_rows()
    if tracer is not None:
        kern.tracer = tracer
    kern.profiler = profiler if profiler is not None else NULL_PROFILER
    return kern
