"""Kernel DSL: one kernel source, two execution modes.

The central trick of this reproduction mirrors the paper's central theme
(one source, multiple targets): every assembly variant is written **once**
against the small backend interface below, and then

* :class:`NumpyBackend` *executes* it -- every DSL scalar is a numpy vector
  over the ``VECTOR_DIM`` lanes of an element group, so the kernel really
  assembles the Navier-Stokes RHS (this is what correctness tests and the
  wall-clock benchmarks run); and
* :class:`TracingBackend` *measures* it -- it counts floating-point
  operations and loads/stores by storage class, estimates register pressure
  from value liveness, and records the per-lane memory-access pattern that
  the GPU/CPU machine models replay through their cache hierarchies to
  produce the paper's Tables I and II.

Because both backends run the *same* kernel code, the counters respond to
the R/S/P source transformations exactly the way the hardware counters
responded in the paper: that correspondence is the point of the experiment.
"""

from __future__ import annotations

import dataclasses
import math
import time
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from .storage import AccessKind, MemoryEvent, Storage, TempSpec

__all__ = [
    "Value",
    "Backend",
    "NumpyBackend",
    "ProfilingNumpyBackend",
    "TracingBackend",
    "Temp",
    "KernelContext",
    "TraceReport",
]

Number = Union[int, float]


class Value:
    """A lane-wide scalar inside a kernel.

    Supports the arithmetic the assembly needs; every operation is routed
    through the owning backend so it can be executed or counted.
    """

    __slots__ = ("backend", "payload", "depth")

    def __init__(self, backend: "Backend", payload, depth: int = 0) -> None:
        self.backend = backend
        self.payload = payload
        self.depth = depth

    # -- arithmetic ----------------------------------------------------
    def _coerce(self, other) -> "Value":
        if isinstance(other, Value):
            return other
        return self.backend.const(other)

    def __add__(self, other):
        return self.backend.binop("add", self, self._coerce(other))

    def __radd__(self, other):
        return self.backend.binop("add", self._coerce(other), self)

    def __sub__(self, other):
        return self.backend.binop("sub", self, self._coerce(other))

    def __rsub__(self, other):
        return self.backend.binop("sub", self._coerce(other), self)

    def __mul__(self, other):
        return self.backend.binop("mul", self, self._coerce(other))

    def __rmul__(self, other):
        return self.backend.binop("mul", self._coerce(other), self)

    def __truediv__(self, other):
        return self.backend.binop("div", self, self._coerce(other))

    def __rtruediv__(self, other):
        return self.backend.binop("div", self._coerce(other), self)

    def __neg__(self):
        return self.backend.unop("neg", self)

    def sqrt(self) -> "Value":
        return self.backend.unop("sqrt", self)

    def cbrt(self) -> "Value":
        return self.backend.unop("cbrt", self)

    def __del__(self) -> None:
        # Liveness feedback for the tracing backend's register-pressure
        # model; CPython refcounting makes this deterministic.
        try:
            self.backend.note_value_death()
        except Exception:  # pragma: no cover - interpreter shutdown
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Value({self.payload!r})"


@dataclasses.dataclass
class Temp:
    """Handle of a declared temporary array."""

    spec: TempSpec
    data: Optional[np.ndarray] = None  # numpy backend only


@dataclasses.dataclass
class KernelContext:
    """Everything a kernel invocation needs about its element group.

    Attributes
    ----------
    connectivity:
        ``(nlane, nnode)`` global node ids of the group.
    coords:
        ``(nnode_global, 3)`` global coordinate array.
    fields:
        Global nodal arrays by name (``"velocity"`` is ``(nnode, 3)``).
    rhs:
        Global RHS ``(nnode, 3)`` accumulated into by scatter-adds.
    params:
        Runtime parameters (density, viscosity, model constants, flags).
        The *specialized* kernels ignore this and use compile-time Python
        constants -- that is the S transformation.
    nnode_per_element:
        Local nodes per element (4 for TET04; runtime-variable for the
        generic baseline).
    scatter:
        Optional :class:`repro.fem.plan.ScatterAccumulator`.  When set,
        the numpy backend defers every ``scatter_add_rhs`` into it (one
        ``bincount`` reduction per assembly, bit-identical to the
        per-call ``np.add.at`` path); when ``None`` the backend scatters
        immediately with ``np.add.at``.
    """

    connectivity: np.ndarray
    coords: np.ndarray
    fields: Dict[str, np.ndarray]
    rhs: np.ndarray
    params: Dict[str, float]
    nnode_per_element: int = 4
    active: Optional[np.ndarray] = None
    scatter: Optional[object] = None

    @property
    def nlane(self) -> int:
        return self.connectivity.shape[0]


class Backend:
    """Abstract kernel backend."""

    #: lanes the backend evaluates concurrently
    nlane: int

    # -- scalars -------------------------------------------------------
    def const(self, x: Number) -> Value:
        raise NotImplementedError

    def binop(self, op: str, a: Value, b: Value) -> Value:
        raise NotImplementedError

    def unop(self, op: str, a: Value) -> Value:
        raise NotImplementedError

    # -- temporaries ---------------------------------------------------
    def temp(
        self,
        name: str,
        shape: Tuple[int, ...],
        storage: Storage,
        static: bool = False,
        write_before_read: bool = False,
    ) -> Temp:
        raise NotImplementedError

    def load(self, temp: Temp, idx: Tuple[int, ...]) -> Value:
        raise NotImplementedError

    def store(self, temp: Temp, idx: Tuple[int, ...], value: Value) -> None:
        raise NotImplementedError

    # -- mesh / global data ---------------------------------------------
    def gather_coord(self, node_slot: int, component: int) -> Value:
        """Load coordinate ``component`` of local node ``node_slot``."""
        raise NotImplementedError

    def gather_field(self, field: str, node_slot: int, component: int) -> Value:
        raise NotImplementedError

    def scatter_add_rhs(self, node_slot: int, component: int, value: Value) -> None:
        raise NotImplementedError

    def select_gt(self, x: Value, thresh: float, a: Value, b) -> Value:
        """Lane-wise ``a if x > thresh else b`` (predicated select)."""
        raise NotImplementedError

    def maximum(self, a: Value, b) -> Value:
        raise NotImplementedError

    # -- parameters and control -----------------------------------------
    def runtime_param(self, name: str) -> Value:
        """Load a runtime scalar parameter (counts as a uniform load)."""
        raise NotImplementedError

    def runtime_flag(self, name: str) -> int:
        """Read an integer option flag (counts as a branch)."""
        raise NotImplementedError

    def fence(self, label: str = "") -> None:
        """Marker separating kernel phases (no-op numerically)."""

    def note_value_death(self) -> None:
        """Liveness callback from :class:`Value`; only tracing cares."""


# ---------------------------------------------------------------------------
# Numpy execution backend
# ---------------------------------------------------------------------------


class NumpyBackend(Backend):
    """Executes kernels: each :class:`Value` wraps a ``(nlane,)`` float64
    vector, so one kernel call assembles a whole element group."""

    def __init__(self, ctx: KernelContext) -> None:
        self.ctx = ctx
        self.nlane = ctx.nlane
        self._temps: Dict[str, Temp] = {}

    # -- scalars -------------------------------------------------------
    def const(self, x: Number) -> Value:
        return Value(self, np.float64(x))

    def binop(self, op: str, a: Value, b: Value) -> Value:
        pa, pb = a.payload, b.payload
        if op == "add":
            return Value(self, pa + pb)
        if op == "sub":
            return Value(self, pa - pb)
        if op == "mul":
            return Value(self, pa * pb)
        if op == "div":
            return Value(self, pa / pb)
        if op == "max":
            return Value(self, np.maximum(pa, pb))
        raise ValueError(f"unknown binop {op!r}")

    def unop(self, op: str, a: Value) -> Value:
        if op == "neg":
            return Value(self, -a.payload)
        if op == "sqrt":
            return Value(self, np.sqrt(a.payload))
        if op == "cbrt":
            return Value(self, np.cbrt(a.payload))
        raise ValueError(f"unknown unop {op!r}")

    def maximum(self, a: Value, b) -> Value:
        return self.binop("max", a, self._coerce(b))

    def select_gt(self, x: Value, thresh: float, a: Value, b) -> Value:
        bv = self._coerce(b)
        return Value(self, np.where(x.payload > thresh, a.payload, bv.payload))

    def _coerce(self, x) -> Value:
        return x if isinstance(x, Value) else self.const(x)

    # -- temporaries ---------------------------------------------------
    def temp(
        self,
        name: str,
        shape: Tuple[int, ...],
        storage: Storage,
        static: bool = False,
        write_before_read: bool = False,
    ) -> Temp:
        spec = TempSpec(
            name=name,
            shape=tuple(shape),
            storage=storage,
            static=static,
            write_before_read=write_before_read,
        )
        # Write-before-read temporaries skip the zero fill (see the
        # TempSpec contract in storage.py): the kernel promises every slot
        # is stored before it is loaded, so the fill would be dead work.
        alloc = np.empty if spec.write_before_read else np.zeros
        t = Temp(spec=spec, data=alloc((self.nlane,) + spec.shape))
        self._temps[name] = t
        return t

    def load(self, temp: Temp, idx: Tuple[int, ...]) -> Value:
        return Value(self, temp.data[(slice(None),) + tuple(idx)])

    def store(self, temp: Temp, idx: Tuple[int, ...], value: Value) -> None:
        temp.data[(slice(None),) + tuple(idx)] = value.payload

    # -- mesh / global data ---------------------------------------------
    def gather_coord(self, node_slot: int, component: int) -> Value:
        nodes = self.ctx.connectivity[:, node_slot]
        return Value(self, self.ctx.coords[nodes, component])

    def gather_field(self, field: str, node_slot: int, component: int) -> Value:
        nodes = self.ctx.connectivity[:, node_slot]
        data = self.ctx.fields[field]
        if data.ndim == 1:
            return Value(self, data[nodes])
        return Value(self, data[nodes, component])

    def scatter_add_rhs(self, node_slot: int, component: int, value: Value) -> None:
        if self.ctx.scatter is not None:
            self.ctx.scatter.add(node_slot, component, value.payload)
            return
        nodes = self.ctx.connectivity[:, node_slot]
        vals = np.broadcast_to(value.payload, nodes.shape)
        if self.ctx.active is not None:
            nodes = nodes[self.ctx.active]
            vals = vals[self.ctx.active]
        np.add.at(self.ctx.rhs, (nodes, component), vals)

    # -- parameters ------------------------------------------------------
    def runtime_param(self, name: str) -> Value:
        return self.const(self.ctx.params[name])

    def runtime_flag(self, name: str) -> int:
        return int(self.ctx.params[name])

    def fence(self, label: str = "") -> None:
        pass


# ---------------------------------------------------------------------------
# Profiling execution backend
# ---------------------------------------------------------------------------


class ProfilingNumpyBackend(NumpyBackend):
    """:class:`NumpyBackend` with op-level software counters.

    The interpreted cross-check for the tape profiler: every DSL op runs
    through the *parent's* implementation (results stay bitwise identical
    to an unprofiled interpreted sweep) with one clock read around it,
    recorded into a duck-typed profile object (a
    :class:`repro.obs.profiler.TapeProfile` in practice -- held abstract
    here so ``core`` never imports ``obs`` at module level).  Ops are
    keyed by their position in the kernel's straight-line sequence; every
    element group replays the same sequence, so per-group backends
    recording into one shared profile accumulate op-wise.

    Byte accounting matches the compiled-tape cost model (8 B float64
    lanes; scalar operands are register-resident and free), with one
    deliberate addition: temporary *stores* are charged 16 B/lane.  The
    compiled tape SSA-renames stores away entirely, so the measured
    interpreted-vs-compiled traffic gap exhibits exactly the temporary
    round-trips the paper's privatization transformation eliminates.
    Loads of temporaries are numpy views (no data motion) and are not
    charged.
    """

    def __init__(self, ctx: KernelContext, profile) -> None:
        super().__init__(ctx)
        self.profile = profile
        self._i = 0

    def _rec(
        self, kind: str, label: str, t0: float, rb: float, wb: float, fl: float
    ) -> None:
        dt = time.perf_counter() - t0
        i = self._i
        self._i += 1
        self.profile.record_dynamic(i, kind, label, dt, self.nlane, rb, wb, fl)

    @staticmethod
    def _nvec(*payloads) -> int:
        return sum(1 for p in payloads if isinstance(p, np.ndarray))

    def binop(self, op: str, a: Value, b: Value) -> Value:
        t0 = time.perf_counter()
        v = super().binop(op, a, b)
        self._rec("bin", op, t0, 8.0 * self._nvec(a.payload, b.payload), 8.0, 1.0)
        return v

    def unop(self, op: str, a: Value) -> Value:
        t0 = time.perf_counter()
        v = super().unop(op, a)
        self._rec("un", op, t0, 8.0 * self._nvec(a.payload), 8.0, 1.0)
        return v

    def select_gt(self, x: Value, thresh: float, a: Value, b) -> Value:
        bv = self._coerce(b)
        t0 = time.perf_counter()
        v = super().select_gt(x, thresh, a, bv)
        rb = 8.0 * self._nvec(x.payload, a.payload, bv.payload) + 1.0
        self._rec("sel", "select", t0, rb, 9.0, 1.0)
        return v

    def store(self, temp: Temp, idx: Tuple[int, ...], value: Value) -> None:
        t0 = time.perf_counter()
        super().store(temp, idx, value)
        self._rec("store", f"store:{temp.spec.name}", t0, 8.0, 8.0, 0.0)

    def gather_coord(self, node_slot: int, component: int) -> Value:
        t0 = time.perf_counter()
        v = super().gather_coord(node_slot, component)
        self._rec("gather", f"coord[{node_slot},{component}]", t0, 16.0, 8.0, 0.0)
        return v

    def gather_field(self, field: str, node_slot: int, component: int) -> Value:
        t0 = time.perf_counter()
        v = super().gather_field(field, node_slot, component)
        self._rec(
            "gather", f"{field}[{node_slot},{component}]", t0, 16.0, 8.0, 0.0
        )
        return v

    def scatter_add_rhs(self, node_slot: int, component: int, value: Value) -> None:
        t0 = time.perf_counter()
        super().scatter_add_rhs(node_slot, component, value)
        rb = 8.0 * self._nvec(value.payload)
        self._rec("scatter", f"rhs[{node_slot},{component}]", t0, rb, 8.0, 0.0)


# ---------------------------------------------------------------------------
# Tracing backend
# ---------------------------------------------------------------------------

#: flop cost per DSL operation (1 FMA = 2 Flop convention of the paper;
#: the DSL has no fused op, so add and mul simply cost 1 each).
_FLOP_COST = {
    "add": 1,
    "sub": 1,
    "mul": 1,
    "div": 1,
    "max": 1,
    "neg": 1,
    "sqrt": 1,
    "cbrt": 1,
}


@dataclasses.dataclass
class TraceReport:
    """Per-element instruction statistics of one traced kernel run.

    All counts are per element (lane).  ``pattern`` is the ordered memory
    event list of the kernel body, used by the machine models to replay the
    access stream warp-by-warp / group-by-group.
    """

    flops: int = 0
    loads: Dict[Storage, int] = dataclasses.field(
        default_factory=lambda: {s: 0 for s in Storage}
    )
    stores: Dict[Storage, int] = dataclasses.field(
        default_factory=lambda: {s: 0 for s in Storage}
    )
    branches: int = 0
    param_loads: int = 0
    peak_live_values: int = 0
    dependency_depth: int = 0
    memory_ilp: float = 1.0
    temps: Dict[str, TempSpec] = dataclasses.field(default_factory=dict)
    pattern: List[MemoryEvent] = dataclasses.field(default_factory=list)

    # -- derived -------------------------------------------------------
    def temp_slots(self, storage: Storage) -> int:
        """Total scalar slots of temporaries in a storage class."""
        return sum(t.size for t in self.temps.values() if t.storage is storage)

    def temp_arrays(self, storage: Storage) -> int:
        return sum(1 for t in self.temps.values() if t.storage is storage)

    @property
    def total_loads(self) -> int:
        return sum(self.loads.values())

    @property
    def total_stores(self) -> int:
        return sum(self.stores.values())

    def loadstore(self, *storages: Storage) -> int:
        """Loads + stores restricted to the given storage classes."""
        return sum(self.loads[s] + self.stores[s] for s in storages)

    def summary(self) -> str:
        lines = [
            f"flops/element            : {self.flops}",
            f"global temp load/store   : {self.loadstore(Storage.GLOBAL_TEMP)}",
            f"private load/store       : {self.loadstore(Storage.PRIVATE)}",
            f"mesh load/store          : {self.loadstore(Storage.MESH)}",
            f"param loads / branches   : {self.param_loads} / {self.branches}",
            f"temp arrays (global/priv): "
            f"{self.temp_arrays(Storage.GLOBAL_TEMP)} / "
            f"{self.temp_arrays(Storage.PRIVATE)}",
            f"temp values (global/priv): "
            f"{self.temp_slots(Storage.GLOBAL_TEMP)} / "
            f"{self.temp_slots(Storage.PRIVATE)}",
            f"peak live scalars        : {self.peak_live_values}",
            f"dependency depth         : {self.dependency_depth}",
            f"memory ILP estimate      : {self.memory_ilp:.2f}",
        ]
        return "\n".join(lines)


class TracingBackend(Backend):
    """Counts instructions and records the memory-access pattern.

    The backend runs the kernel on a *single representative element group*
    (numerics are evaluated with plain floats so control flow is identical
    to a real run).  It maintains:

    * per-storage-class load/store counters and flop counters;
    * the ordered :class:`MemoryEvent` pattern of one lane;
    * a live-value high-water mark: every :class:`Value` created is live
      until garbage collected, which under CPython refcounting tracks
      expression lifetimes closely -- the model for *register pressure*;
    * the longest dependency chain (each value records
      ``depth = max(operand depths) + 1``) -- the model for exposed
      latency;
    * a memory-ILP estimate: the mean number of loads issued between
      dependent uses, which the GPU model feeds into its Little's-law
      bandwidth term.
    """

    def __init__(self, ctx: KernelContext, lane: int = 0) -> None:
        self.ctx = ctx
        self.nlane = ctx.nlane
        self.lane = lane
        self.report = TraceReport()
        self._live = 0
        self._chain_max = 0
        # memory ILP bookkeeping: count loads in the current independent
        # burst; a burst ends when an arithmetic op consumes a loaded value.
        self._burst = 0
        self._bursts: List[int] = []
        self._temps: Dict[str, Temp] = {}
        self._scalar_temp_values: Dict[Tuple[str, int], float] = {}

    # -- value lifecycle -------------------------------------------------
    def _make(self, payload: float, depth: int, from_load: bool = False) -> Value:
        v = Value(self, float(payload), depth)
        self._live += 1
        self.report.peak_live_values = max(self.report.peak_live_values, self._live)
        self._chain_max = max(self._chain_max, depth)
        self.report.dependency_depth = self._chain_max
        if from_load:
            self._burst += 1
        return v

    def note_value_death(self) -> None:
        self._live = max(0, self._live - 1)

    # -- scalars -------------------------------------------------------
    def const(self, x: Number) -> Value:
        return self._make(float(x), 0)

    def binop(self, op: str, a: Value, b: Value) -> Value:
        self.report.flops += _FLOP_COST[op]
        if self._burst:
            self._bursts.append(self._burst)
            self._burst = 0
        pa, pb = a.payload, b.payload
        if op == "add":
            r = pa + pb
        elif op == "sub":
            r = pa - pb
        elif op == "mul":
            r = pa * pb
        elif op == "div":
            r = pa / pb if pb != 0 else 0.0
        elif op == "max":
            r = max(pa, pb)
        else:
            raise ValueError(f"unknown binop {op!r}")
        return self._make(r, max(a.depth, b.depth) + 1)

    def unop(self, op: str, a: Value) -> Value:
        self.report.flops += _FLOP_COST[op]
        if op == "neg":
            r = -a.payload
        elif op == "sqrt":
            r = math.sqrt(max(a.payload, 0.0))
        elif op == "cbrt":
            r = math.copysign(abs(a.payload) ** (1.0 / 3.0), a.payload)
        else:
            raise ValueError(f"unknown unop {op!r}")
        return self._make(r, a.depth + 1)

    def maximum(self, a: Value, b) -> Value:
        b = b if isinstance(b, Value) else self.const(b)
        return self.binop("max", a, b)

    def select_gt(self, x: Value, thresh: float, a: Value, b) -> Value:
        b = b if isinstance(b, Value) else self.const(b)
        self.report.flops += 1  # predicated select
        r = a.payload if x.payload > thresh else b.payload
        return self._make(r, max(x.depth, a.depth, b.depth) + 1)

    # -- temporaries ---------------------------------------------------
    def temp(
        self,
        name: str,
        shape: Tuple[int, ...],
        storage: Storage,
        static: bool = False,
        write_before_read: bool = False,
    ) -> Temp:
        spec = TempSpec(
            name=name,
            shape=tuple(shape),
            storage=storage,
            static=static,
            write_before_read=write_before_read,
        )
        if name in self._temps:
            raise ValueError(f"temporary {name!r} declared twice")
        t = Temp(spec=spec, data=None)
        self._temps[name] = t
        self.report.temps[name] = spec
        return t

    def load(self, temp: Temp, idx: Tuple[int, ...]) -> Value:
        spec = temp.spec
        lin = spec.linear_index(tuple(idx))
        self.report.loads[spec.storage] += 1
        self.report.pattern.append(
            MemoryEvent(
                kind=AccessKind.LOAD,
                storage=spec.storage,
                array=spec.name,
                offset=lin,
            )
        )
        val = self._scalar_temp_values.get((spec.name, lin), 0.0)
        return self._make(val, 0, from_load=True)

    def store(self, temp: Temp, idx: Tuple[int, ...], value: Value) -> None:
        spec = temp.spec
        lin = spec.linear_index(tuple(idx))
        self.report.stores[spec.storage] += 1
        self.report.pattern.append(
            MemoryEvent(
                kind=AccessKind.STORE,
                storage=spec.storage,
                array=spec.name,
                offset=lin,
            )
        )
        self._scalar_temp_values[(spec.name, lin)] = value.payload

    # -- mesh / global data ---------------------------------------------
    def gather_coord(self, node_slot: int, component: int) -> Value:
        self.report.loads[Storage.MESH] += 1
        self.report.pattern.append(
            MemoryEvent(
                kind=AccessKind.LOAD,
                storage=Storage.MESH,
                array="coords",
                node_slot=node_slot,
                component=component,
            )
        )
        node = int(self.ctx.connectivity[self.lane, node_slot])
        return self._make(self.ctx.coords[node, component], 0, from_load=True)

    def gather_field(self, field: str, node_slot: int, component: int) -> Value:
        self.report.loads[Storage.MESH] += 1
        self.report.pattern.append(
            MemoryEvent(
                kind=AccessKind.LOAD,
                storage=Storage.MESH,
                array=field,
                node_slot=node_slot,
                component=component,
            )
        )
        node = int(self.ctx.connectivity[self.lane, node_slot])
        data = self.ctx.fields[field]
        val = data[node] if data.ndim == 1 else data[node, component]
        return self._make(val, 0, from_load=True)

    def scatter_add_rhs(self, node_slot: int, component: int, value: Value) -> None:
        self.report.stores[Storage.MESH] += 1
        self.report.pattern.append(
            MemoryEvent(
                kind=AccessKind.ATOMIC_ADD,
                storage=Storage.MESH,
                array="rhs",
                node_slot=node_slot,
                component=component,
            )
        )

    # -- parameters ------------------------------------------------------
    def runtime_param(self, name: str) -> Value:
        self.report.param_loads += 1
        self.report.loads[Storage.PARAM] += 1
        return self._make(float(self.ctx.params[name]), 0, from_load=True)

    def runtime_flag(self, name: str) -> int:
        self.report.branches += 1
        return int(self.ctx.params[name])

    def fence(self, label: str = "") -> None:
        if self._burst:
            self._bursts.append(self._burst)
            self._burst = 0

    # -- finalize --------------------------------------------------------
    def finalize(self) -> TraceReport:
        """Close open bursts and compute derived statistics."""
        self.fence()
        if self._bursts:
            self.report.memory_ilp = float(np.mean(self._bursts))
        return self.report


def trace_kernel(
    kernel: Callable[[Backend, KernelContext], None], ctx: KernelContext
) -> TraceReport:
    """Run ``kernel`` under the tracing backend and return its report."""
    bk = TracingBackend(ctx)
    kernel(bk, ctx)
    return bk.finalize()
