"""The paper's Listing 3 privatization micro-study (Table III).

A tiny kernel -- fill an 8-slot ``temp`` array, then reduce it into ``B`` --
compiled three ways:

1. ``temp`` as a global, ``VECTOR_DIM``-strided 2-D array  -> global memory
2. ``temp`` as a private array with runtime indexing       -> local memory
3. ``temp`` as a private array with compile-time indexing  -> registers

Table III reports, per thread: local/global store instructions and the
store data volumes reaching L2 and DRAM.  The mechanism: *both* local and
global stores write through to the L2, but only global stores must reach
DRAM -- local lines of finished threads are invalidated in place.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

import numpy as np

from ..machine.gpu import GpuModel
from .dsl import Backend, KernelContext, TracingBackend
from .storage import Storage

__all__ = ["Listing3Result", "run_listing3", "make_listing3_kernel", "ROWLEN"]

ROWLEN = 8


def make_listing3_kernel(storage: Storage, static: bool):
    """Listing 3: ``temp(row) = row * A``; ``B = sum(temp)``."""

    def kernel(bk: Backend, ctx: KernelContext) -> None:
        a_arr = bk.temp("A", (1,), Storage.GLOBAL_TEMP)
        b_arr = bk.temp("B", (1,), Storage.GLOBAL_TEMP)
        temp = bk.temp("temp", (ROWLEN,), storage, static=static)
        a = bk.load(a_arr, (0,))
        for row in range(ROWLEN):
            bk.store(temp, (row,), float(row + 1) * a)
        acc = bk.const(0.0)
        for row in range(ROWLEN):
            acc = acc + bk.load(temp, (row,))
        bk.store(b_arr, (0,), acc)

    return kernel


@dataclasses.dataclass(frozen=True)
class Listing3Result:
    """Per-thread store statistics for one mapping (a Table III column)."""

    mapping: str
    local_stores: int
    global_stores: int
    l2_store_bytes: int
    dram_store_bytes: int


def run_listing3(model: GpuModel | None = None) -> Dict[str, Listing3Result]:
    """Run the micro-study; keys are ``global``/``local``/``registers``."""
    model = model or GpuModel()
    dummy_ctx = KernelContext(
        connectivity=np.zeros((1, 4), dtype=np.int64),
        coords=np.zeros((4, 3)),
        fields={},
        rhs=np.zeros((4, 3)),
        params={},
    )
    cases = {
        "global": (Storage.GLOBAL_TEMP, False),
        "local": (Storage.PRIVATE, False),
        "registers": (Storage.PRIVATE, True),
    }
    out: Dict[str, Listing3Result] = {}
    for name, (storage, static) in cases.items():
        bk = TracingBackend(dummy_ctx)
        make_listing3_kernel(storage, static)(bk, dummy_ctx)
        report = bk.finalize()
        mapping = model.map_storage(report)
        local_stores = 0
        global_stores = 0
        for ev in report.pattern:
            if not ev.is_store():
                continue
            region = mapping.region_of.get(ev.array, "global")
            if region == "register":
                continue  # promoted: no store instruction at all
            if region == "local":
                local_stores += 1
            else:
                global_stores += 1
        # Both store kinds write through to L2; only global stores must
        # eventually reach DRAM (local lines are invalidated on thread
        # exit, assuming -- as in the paper's test -- no capacity eviction).
        l2_bytes = (local_stores + global_stores) * 8
        dram_bytes = global_stores * 8
        out[name] = Listing3Result(
            mapping=name,
            local_stores=local_stores,
            global_stores=global_stores,
            l2_store_bytes=l2_bytes,
            dram_store_bytes=dram_bytes,
        )
    return out
