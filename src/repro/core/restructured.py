"""Variants **RS**, **RSP** and **RSPR**: specialized + restructured kernels.

This is the destination of the paper's optimization journey, one kernel
source parameterized by storage class and scatter policy:

* **S -- specialization** (Section V-B): the element type is hard-wired to
  the linear tetrahedron -- 4 nodes, 4 Gauss points as compile-time
  constants, shape-function values inlined as literals, the geometry
  evaluated *once* per element because the gradients are constant; density
  and viscosity are compile-time constants; the Vreman model is the only
  turbulence model and is evaluated **once per element** instead of per
  Gauss point; no option flags, no branches.
* **R -- restructuring** (Section V-A): no elemental matrices.  Every RHS
  entry is computed directly; intermediate values are produced, used and
  discarded with minimal lifetime.
* **P -- privatization** (Section V-C): with ``Storage.PRIVATE`` the
  temporaries are per-thread scalars with compile-time indices
  (``static=True``), which the machine model maps to registers.
* **second R** (Section V-D, GPU only): with ``immediate_scatter=True`` each
  local RHS entry is scattered to the global RHS the moment it is complete,
  eliminating the ``elrbu`` accumulation array ("the largest part is the
  immediate scattering of local RHS entries to the global matrix instead of
  first computing the entire local RHS").

The numerical result is identical to :func:`repro.physics.momentum.
assemble_momentum_rhs` and to the baseline kernel -- asserted by the
variant-equality tests.
"""

from __future__ import annotations

from ..fem.quadrature import rule_for
from ..fem.reference import TET04
from .dsl import Backend, KernelContext
from .storage import Storage

__all__ = [
    "make_specialized_kernel",
    "rs_kernel",
    "rsp_kernel",
    "rspr_kernel",
    "SPEC_DENSITY",
    "SPEC_VISCOSITY",
    "SPEC_VREMAN_C",
]

# ---------------------------------------------------------------------------
# Compile-time constants of the specialized kernel (Fortran `parameter`s in
# the paper).  The unified driver checks at dispatch time that the runtime
# parameters match these, mirroring how the specialized Alya build is only
# valid for the problem class it was specialized for.
# ---------------------------------------------------------------------------
SPEC_DENSITY = 1.0
SPEC_VISCOSITY = 1.0e-3
SPEC_VREMAN_C = 0.07225

_RULE = rule_for("TET04", 4)
_SHAPES, _ = TET04.evaluate(_RULE.points)  # (4, 4)
_WEIGHTS = _RULE.weights  # (4,)

_PNODE = 4
_PGAUS = 4
_NDIME = 3


def make_specialized_kernel(
    temp_storage: Storage = Storage.GLOBAL_TEMP,
    immediate_scatter: bool = False,
    density: float = SPEC_DENSITY,
    viscosity: float = SPEC_VISCOSITY,
    vreman_c: float = SPEC_VREMAN_C,
):
    """Build a specialized+restructured kernel.

    ``temp_storage=GLOBAL_TEMP`` gives **RS**; ``PRIVATE`` gives **RSP**;
    ``PRIVATE`` + ``immediate_scatter`` gives **RSPR**.  The physical
    constants are compile-time parameters (closure constants), overridable
    only by *building a new kernel* -- that is what specialization means.
    """
    if immediate_scatter and temp_storage is not Storage.PRIVATE:
        raise ValueError("immediate scatter is defined for the private variant")

    rho = float(density)
    nu = float(viscosity)
    cv = float(vreman_c)

    def kernel(bk: Backend, ctx: KernelContext) -> None:
        st = temp_storage

        # Body force stays a runtime quantity (physics, not specialization).
        force = [
            bk.runtime_param("force_x"),
            bk.runtime_param("force_y"),
            bk.runtime_param("force_z"),
        ]

        # -- temporaries: 6-8 small arrays instead of 18 -------------------
        elvel = bk.temp("elvel", (_PNODE, _NDIME), st, static=True, write_before_read=True)
        xjacm = bk.temp("xjacm", (_NDIME, _NDIME), st, static=True, write_before_read=True)
        xjaci = bk.temp("xjaci", (_NDIME, _NDIME), st, static=True, write_before_read=True)
        gpcar = bk.temp("gpcar", (_PNODE, _NDIME), st, static=True, write_before_read=True)
        gpgve = bk.temp("gpgve", (_NDIME, _NDIME), st, static=True, write_before_read=True)
        if not immediate_scatter:
            gpadv = bk.temp("gpadv", (_PGAUS, _NDIME), st, static=True, write_before_read=True)
            elrbu = bk.temp("elrbu", (_PNODE, _NDIME), st, static=True, write_before_read=True)

        # -- gather velocities (coordinates are consumed on the fly) -------
        for a in range(_PNODE):
            for i in range(_NDIME):
                bk.store(elvel, (a, i), bk.gather_field("velocity", a, i))

        # -- geometry ONCE per element --------------------------------------
        # Jacobian rows are edge vectors; coordinates are loaded straight
        # into the expressions (12 mesh loads, no elcod array).
        x0 = [bk.gather_coord(0, j) for j in range(_NDIME)]
        for i in range(_NDIME):
            for j in range(_NDIME):
                bk.store(xjacm, (i, j), bk.gather_coord(i + 1, j) - x0[j])
        del x0

        j00 = bk.load(xjacm, (0, 0))
        j01 = bk.load(xjacm, (0, 1))
        j02 = bk.load(xjacm, (0, 2))
        j10 = bk.load(xjacm, (1, 0))
        j11 = bk.load(xjacm, (1, 1))
        j12 = bk.load(xjacm, (1, 2))
        j20 = bk.load(xjacm, (2, 0))
        j21 = bk.load(xjacm, (2, 1))
        j22 = bk.load(xjacm, (2, 2))
        c00 = j11 * j22 - j12 * j21
        c01 = j12 * j20 - j10 * j22
        c02 = j10 * j21 - j11 * j20
        det = j00 * c00 + j01 * c01 + j02 * c02
        inv_det = 1.0 / det

        bk.store(xjaci, (0, 0), c00 * inv_det)
        bk.store(xjaci, (1, 0), c01 * inv_det)
        bk.store(xjaci, (2, 0), c02 * inv_det)
        bk.store(xjaci, (0, 1), (j02 * j21 - j01 * j22) * inv_det)
        bk.store(xjaci, (1, 1), (j00 * j22 - j02 * j20) * inv_det)
        bk.store(xjaci, (2, 1), (j01 * j20 - j00 * j21) * inv_det)
        bk.store(xjaci, (0, 2), (j01 * j12 - j02 * j11) * inv_det)
        bk.store(xjaci, (1, 2), (j02 * j10 - j00 * j12) * inv_det)
        bk.store(xjaci, (2, 2), (j00 * j11 - j01 * j10) * inv_det)
        del j00, j01, j02, j10, j11, j12, j20, j21, j22, c00, c01, c02

        # dN_a/dx_j = xjaci[j][a-1] for a in 1..3 (inverse columns), and
        # dN_0 = -(dN_1 + dN_2 + dN_3): stored in the single gpcar panel.
        for a in range(1, _PNODE):
            for j in range(_NDIME):
                bk.store(gpcar, (a, j), bk.load(xjaci, (j, a - 1)))
        for j in range(_NDIME):
            bk.store(
                gpcar,
                (0, j),
                -(
                    bk.load(xjaci, (j, 0))
                    + bk.load(xjaci, (j, 1))
                    + bk.load(xjaci, (j, 2))
                ),
            )

        bk.fence("geometry")

        # -- velocity gradient ONCE (constant on the element) ----------------
        for i in range(_NDIME):
            for j in range(_NDIME):
                acc = bk.const(0.0)
                for a in range(_PNODE):
                    acc = acc + bk.load(gpcar, (a, j)) * bk.load(elvel, (a, i))
                bk.store(gpgve, (i, j), acc)

        # -- Vreman ONCE per element, no alpha/beta arrays --------------------
        vol = det * (1.0 / 6.0)
        delta = vol.cbrt()
        delta2 = delta * delta

        aa = bk.const(0.0)
        for i in range(_NDIME):
            for j in range(_NDIME):
                gij = bk.load(gpgve, (i, j))
                aa = aa + gij * gij

        # beta_ij = delta2 sum_m alpha_mi alpha_mj with alpha_mi = g[i][m]:
        # computed entry-by-entry and folded into B_beta immediately.
        def beta(i: int, j: int):
            acc = bk.const(0.0)
            for m in range(_NDIME):
                acc = acc + bk.load(gpgve, (i, m)) * bk.load(gpgve, (j, m))
            return delta2 * acc

        b00 = beta(0, 0)
        b11 = beta(1, 1)
        b22 = beta(2, 2)
        b01 = beta(0, 1)
        b02 = beta(0, 2)
        b12 = beta(1, 2)
        bbeta = (
            b00 * b11 - b01 * b01 + b00 * b22 - b02 * b02 + b11 * b22 - b12 * b12
        )
        del b00, b11, b22, b01, b02, b12
        bbeta = bk.maximum(bbeta, 0.0)
        nut = bk.select_gt(
            aa, 1e-30, cv * (bbeta / bk.maximum(aa, 1e-30)).sqrt(), 0.0
        )
        mu_eff = rho * (nu + nut)
        del aa, bbeta, nut, delta, delta2

        bk.fence("properties")

        if not immediate_scatter:
            # -- velocity at the Gauss points (shape values are literals) ----
            for q in range(_PGAUS):
                for i in range(_NDIME):
                    acc = bk.const(0.0)
                    for a in range(_PNODE):
                        acc = acc + float(_SHAPES[a, q]) * bk.load(
                            elvel, (a, i)
                        )
                    bk.store(gpadv, (q, i), acc)

            # ---------------- RS / RSP path --------------------------------
            for a in range(_PNODE):
                for i in range(_NDIME):
                    bk.store(elrbu, (a, i), bk.const(0.0))

            for q in range(_PGAUS):
                wdet = float(_WEIGHTS[q]) * det
                for i in range(_NDIME):
                    conv = bk.const(0.0)
                    for j in range(_NDIME):
                        conv = conv + bk.load(gpadv, (q, j)) * bk.load(
                            gpgve, (i, j)
                        )
                    contrib = rho * (force[i] - conv)
                    for a in range(_PNODE):
                        cur = bk.load(elrbu, (a, i))
                        bk.store(
                            elrbu,
                            (a, i),
                            cur + wdet * float(_SHAPES[a, q]) * contrib,
                        )

            # viscous term, constant over the element
            for a in range(_PNODE):
                for i in range(_NDIME):
                    acc = bk.const(0.0)
                    for j in range(_NDIME):
                        acc = acc + bk.load(gpcar, (a, j)) * (
                            bk.load(gpgve, (i, j)) + bk.load(gpgve, (j, i))
                        )
                    cur = bk.load(elrbu, (a, i))
                    bk.store(elrbu, (a, i), cur - vol * mu_eff * acc)

            bk.fence("elrbu")

            for a in range(_PNODE):
                for i in range(_NDIME):
                    bk.scatter_add_rhs(a, i, bk.load(elrbu, (a, i)))
        else:
            # ---------------- RSPR path: immediate scatter ------------------
            # Convective contributions per (gauss, i) are finished into a
            # small conv panel; each (a, i) RHS entry is then completed and
            # scattered immediately -- no elemental RHS array exists, and
            # the gpadv panel is dropped by re-gathering the velocity on
            # the fly (trading a few extra global loads for fewer live
            # values, which is why the paper's RSPR shows *more* global
            # loads but *fewer* registers than RSP).
            gpcnv = bk.temp("gpcnv", (_PGAUS, _NDIME), st, static=True, write_before_read=True)
            for q in range(_PGAUS):
                uq = []
                for j in range(_NDIME):
                    acc = bk.const(0.0)
                    for a in range(_PNODE):
                        acc = acc + float(_SHAPES[a, q]) * bk.gather_field(
                            "velocity", a, j
                        )
                    uq.append(acc)
                for i in range(_NDIME):
                    conv = bk.const(0.0)
                    for j in range(_NDIME):
                        conv = conv + uq[j] * bk.load(gpgve, (i, j))
                    bk.store(gpcnv, (q, i), rho * (force[i] - conv))

            for a in range(_PNODE):
                for i in range(_NDIME):
                    acc = bk.const(0.0)
                    for q in range(_PGAUS):
                        acc = acc + (float(_WEIGHTS[q]) * det) * float(
                            _SHAPES[a, q]
                        ) * bk.load(gpcnv, (q, i))
                    vacc = bk.const(0.0)
                    for j in range(_NDIME):
                        vacc = vacc + bk.load(gpcar, (a, j)) * (
                            bk.load(gpgve, (i, j)) + bk.load(gpgve, (j, i))
                        )
                    bk.scatter_add_rhs(a, i, acc - vol * mu_eff * vacc)

    return kernel


#: Variant RS -- restructured + specialized, global temporaries.
rs_kernel = make_specialized_kernel(Storage.GLOBAL_TEMP)

#: Variant RSP -- restructured + specialized + privatized (registers).
rsp_kernel = make_specialized_kernel(Storage.PRIVATE)

#: Variant RSPR -- RSP + immediate scatter (the GPU-only final variant).
rspr_kernel = make_specialized_kernel(Storage.PRIVATE, immediate_scatter=True)
