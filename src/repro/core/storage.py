"""Storage classes and memory-event records for the kernel DSL.

The paper's whole optimization story is about *where temporary values live*:

* ``GLOBAL_TEMP`` -- the baseline style: every intermediate is an array with
  an extra leading ``VECTOR_DIM`` dimension, allocated in global memory
  (GPU) / as a stack array streamed through the cache hierarchy (CPU).
  Loads and stores are coalesced but *every assignment round-trips through
  memory* ("even for zero initialization, the compilers emit the store of a
  zero to memory, just to reload the zero a few instructions later").
* ``PRIVATE`` -- after privatization: the array is per-thread.  With
  compile-time-constant indices the compiler promotes the slots to
  **registers**; runtime indices or register exhaustion demote them to
  **local memory** (Table III of the paper studies exactly these three
  mappings).
* ``MESH`` -- true global data: node coordinates, velocity, the global RHS.
  Gathers are indirect (data-dependent addresses) and scatters are atomic
  reductions.
* ``PARAM`` -- runtime scalar parameters / option flags read from input
  (the generality that *specialization* turns into compile-time constants).

The :class:`MemoryEvent` records emitted by the tracing backend carry enough
information for the machine models to synthesize line-accurate address
streams per warp / SIMD group.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "Storage",
    "TempSpec",
    "MemoryEvent",
    "AccessKind",
]


class Storage(enum.Enum):
    """Where a temporary array's values live."""

    GLOBAL_TEMP = "global_temp"
    PRIVATE = "private"
    MESH = "mesh"
    PARAM = "param"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Storage.{self.name}"


class AccessKind(enum.Enum):
    LOAD = "load"
    STORE = "store"
    ATOMIC_ADD = "atomic_add"


@dataclasses.dataclass(frozen=True)
class TempSpec:
    """Declaration of a temporary array inside a kernel.

    Attributes
    ----------
    name:
        Alya-style identifier (``gpcar``, ``elauu``, ...).
    shape:
        Per-lane shape; the numpy backend adds the leading lane dimension.
    storage:
        Storage class.
    """

    name: str
    shape: Tuple[int, ...]
    storage: Storage
    #: True when every index into the array is a compile-time constant (the
    #: consequence of *specialization*: fixed node/Gauss counts let the
    #: compiler fully unroll the loops).  Private arrays with static indices
    #: are register-mappable; private arrays with runtime indices live in
    #: local memory (Table III, cases 3 vs 2).
    static: bool = False
    #: Allocation contract: ``True`` promises that the kernel stores into
    #: every slot it later loads, so the execution backend may hand out
    #: *uninitialized* memory (``np.empty``) instead of zero-filling -- the
    #: Python analogue of the paper's observation that "even for zero
    #: initialization, the compilers emit the store of a zero to memory,
    #: just to reload the zero a few instructions later".  With the default
    #: ``False`` the backend keeps the seed ``np.zeros`` semantics and a
    #: load of a never-stored slot reads 0.0.  Declaring ``True`` for a
    #: temporary that *does* read before writing is undefined behaviour
    #: (garbage values); the variant bit-equality tests pin the contract.
    write_before_read: bool = False

    @property
    def size(self) -> int:
        """Number of scalar slots per lane."""
        n = 1
        for s in self.shape:
            n *= s
        return n

    def linear_index(self, idx: Tuple[int, ...]) -> int:
        """Row-major linear index of ``idx`` within the per-lane shape."""
        if len(idx) != len(self.shape):
            raise IndexError(
                f"{self.name}: index {idx} does not match shape {self.shape}"
            )
        lin = 0
        for i, (ix, dim) in enumerate(zip(idx, self.shape)):
            if not 0 <= ix < dim:
                raise IndexError(
                    f"{self.name}: index {idx} out of bounds for {self.shape}"
                )
            lin = lin * dim + ix
        return lin


@dataclasses.dataclass(frozen=True)
class MemoryEvent:
    """One memory access of the recorded kernel pattern.

    For ``GLOBAL_TEMP``/``PRIVATE`` accesses ``offset`` is the linear slot
    index inside the owning array; the machine model combines it with the
    array base and the lane/thread id to form addresses.  For ``MESH``
    accesses ``node_slot`` identifies which local node's global id provides
    the (data-dependent) address and ``component`` the field component.
    """

    kind: AccessKind
    storage: Storage
    array: str
    offset: int = 0
    node_slot: Optional[int] = None
    component: int = 0
    bytes_per_lane: int = 8

    def is_store(self) -> bool:
        return self.kind in (AccessKind.STORE, AccessKind.ATOMIC_ADD)
