"""The optimization study: one call per paper table/figure.

:class:`OptimizationStudy` wires the pieces together -- it traces every
kernel variant on a representative mesh, runs the GPU and CPU machine
models, and returns the paper's Tables I and II, the Figure 2 scaling
curves, the Figure 3 roofline points and the Section VI energy numbers.
The benchmark harness in ``benchmarks/`` is a thin printing layer over this
class.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

import numpy as np

from ..fem.mesh import TetMesh
from ..fem.meshgen import box_tet_mesh
from ..machine.counters import CpuCounters, GpuCounters, format_table
from ..machine.cpu import CpuModel
from ..machine.energy import energy_comparison
from ..machine.gpu import GpuModel
from ..machine.roofline import Roofline, RooflinePoint, gpu_roofline
from ..obs.metrics import MetricsRegistry, get_registry
from ..obs.spans import NULL_TRACER
from ..physics.momentum import AssemblyParams
from .unified import UnifiedAssembler
from .variants import variant_names

__all__ = ["OptimizationStudy", "PAPER_NELEM"]

#: Element count of the paper's Bolund mesh.
PAPER_NELEM = 32.6e6


class OptimizationStudy:
    """Run the paper's measurement campaign on the machine models.

    Parameters
    ----------
    mesh:
        Representative mesh driving the cache simulators' mesh traffic
        (defaults to a 12^3 box -- per-element behaviour is what matters).
    params:
        Assembly parameters (must match the specialized kernels).
    nelem_total:
        Mesh size runtimes are extrapolated to (paper: 32.6M elements).
    seed:
        RNG seed for the synthetic velocity field used while tracing.
    tracer:
        Optional :class:`repro.obs.Tracer`.  When enabled, every variant
        gets a nested span tree (``variant`` > ``kernel_trace`` /
        ``gpu_model`` / ``cpu_model``) suitable for Chrome-trace export.
    metrics:
        Registry receiving per-variant model runtimes
        (``study.gpu_runtime_ms.<V>`` / ``study.cpu_runtime_ms.<V>``
        gauges); defaults to the process-wide registry.
    """

    def __init__(
        self,
        mesh: Optional[TetMesh] = None,
        params: Optional[AssemblyParams] = None,
        gpu_model: Optional[GpuModel] = None,
        cpu_model: Optional[CpuModel] = None,
        nelem_total: float = PAPER_NELEM,
        seed: int = 2024,
        tracer=None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.mesh = mesh if mesh is not None else box_tet_mesh(12, 12, 12)
        self.params = params if params is not None else AssemblyParams(
            body_force=(0.0, 0.0, 0.1)
        )
        self.gpu_model = gpu_model if gpu_model is not None else GpuModel()
        self.cpu_model = cpu_model if cpu_model is not None else CpuModel()
        self.nelem_total = float(nelem_total)
        self.tracer = NULL_TRACER if tracer is None else tracer
        self._metrics = metrics
        rng = np.random.default_rng(seed)
        self.velocity = 0.1 * rng.standard_normal((self.mesh.nnode, 3))
        self.assembler = UnifiedAssembler(
            self.mesh, self.params, vector_dim=64, tracer=self.tracer
        )
        self._traces: Dict[str, object] = {}

    @property
    def metrics(self) -> MetricsRegistry:
        return get_registry() if self._metrics is None else self._metrics

    # ------------------------------------------------------------------
    def trace(self, variant: str):
        """Cached kernel trace of a variant."""
        if variant not in self._traces:
            self._traces[variant] = self.assembler.trace(variant, self.velocity)
        return self._traces[variant]

    # ------------------------------------------------------------------
    # Table II
    # ------------------------------------------------------------------
    def gpu_table(self, variants: Optional[List[str]] = None) -> List[GpuCounters]:
        """Table II: GPU counters for B, P, RS, RSP, RSPR."""
        names = variants or list(variant_names("gpu"))
        out: List[GpuCounters] = []
        with self.tracer.span("gpu_table", variants=list(names)):
            for v in names:
                with self.tracer.span("variant", variant=v, target="gpu"):
                    trace = self.trace(v)
                    with self.tracer.span("gpu_model", variant=v):
                        counters = self.gpu_model.run(
                            v, trace, self.mesh.connectivity, self.nelem_total
                        )
                    self.metrics.gauge(f"study.gpu_runtime_ms.{v}").set(
                        counters.runtime_ms
                    )
                    out.append(counters)
        return out

    # ------------------------------------------------------------------
    # Table I
    # ------------------------------------------------------------------
    def cpu_table(self, variants: Optional[List[str]] = None) -> List[CpuCounters]:
        """Table I: CPU counters for B, RS, RSP."""
        names = variants or list(variant_names("cpu"))
        out: List[CpuCounters] = []
        with self.tracer.span("cpu_table", variants=list(names)):
            for v in names:
                with self.tracer.span("variant", variant=v, target="cpu"):
                    trace = self.trace(v)
                    with self.tracer.span("cpu_model", variant=v):
                        counters = self.cpu_model.run(
                            v, trace, self.mesh.connectivity, self.nelem_total
                        )
                    self.metrics.gauge(f"study.cpu_runtime_ms.{v}").set(
                        counters.runtime_1c_ms
                    )
                    out.append(counters)
        return out

    # ------------------------------------------------------------------
    # Figure 2
    # ------------------------------------------------------------------
    def cpu_scaling(
        self,
        variants: Optional[List[str]] = None,
        worker_counts: Optional[List[int]] = None,
    ) -> Dict[str, List[Dict[str, float]]]:
        """Figure 2: per-variant Melem/s and wall time vs worker count."""
        names = variants or list(variant_names("cpu"))
        return {
            v: self.cpu_model.scaling_curve(
                self.trace(v),
                self.mesh.connectivity,
                worker_counts,
                self.nelem_total,
            )
            for v in names
        }

    # ------------------------------------------------------------------
    # Figure 3
    # ------------------------------------------------------------------
    def roofline_points(
        self, table: Optional[List[GpuCounters]] = None
    ) -> Dict[str, List[RooflinePoint]]:
        """Figure 3: DRAM- and L2-intensity points for the GPU variants."""
        table = table if table is not None else self.gpu_table()
        dram_pts = [
            RooflinePoint(c.variant, c.dram_intensity, c.gflops * 1e9)
            for c in table
        ]
        l2_pts = [
            RooflinePoint(c.variant, c.l2_intensity, c.gflops * 1e9)
            for c in table
        ]
        return {"dram": dram_pts, "l2": l2_pts}

    def roofline(self) -> Roofline:
        spec = self.gpu_model.spec
        return gpu_roofline(
            spec.dram_bandwidth, spec.fp64_peak, spec.instruction_mix_roof
        )

    # ------------------------------------------------------------------
    # Section VI
    # ------------------------------------------------------------------
    def energy(
        self,
        gpu_table: Optional[List[GpuCounters]] = None,
        cpu_table: Optional[List[CpuCounters]] = None,
    ) -> Dict[str, Dict[str, float]]:
        """Energy comparison (best GPU variant vs best CPU full node)."""
        gpu_table = gpu_table if gpu_table is not None else self.gpu_table()
        cpu_table = cpu_table if cpu_table is not None else self.cpu_table()
        return energy_comparison(
            {c.variant: c.runtime_ms for c in gpu_table},
            {c.variant: c.runtime_multicore_ms for c in cpu_table},
            gpu_power=self.gpu_model.spec.power_watts,
            cpu_power=self.cpu_model.spec.node_power_watts,
        )

    # ------------------------------------------------------------------
    # Machine-readable perf summary
    # ------------------------------------------------------------------
    def bench_summary(
        self,
        variants: Optional[List[str]] = None,
        repeats: int = 1,
        profile: bool = False,
    ):
        """Per-variant real wall clock plus model runtimes (bench.json rows).

        For every variant this times ``repeats`` actual numpy assemblies of
        the study mesh (best-of), attaches the machine-model runtimes at
        ``nelem_total`` elements, and records everything into the metrics
        registry -- the raw material of ``BENCH_variants.json``.

        With ``profile=True`` each variant additionally runs one *untimed*
        profiled assembly (op-level software counters never contaminate
        the ``wall_ms`` samples) and the entry grows measured
        ``profiled_*`` fields: seconds, bytes, Flops, arithmetic
        intensity, and the predicted-vs-measured byte residual against
        the variant's :class:`~repro.core.tape.TapeReport`.  The collected
        profiles stay on :attr:`profiler` for roofline attribution and
        flamegraph export.
        """
        names = list(variants) if variants is not None else list(variant_names())
        gpu_rt = {c.variant: c.runtime_ms for c in self.gpu_table()}
        cpu_rt = {c.variant: c.runtime_1c_ms for c in self.cpu_table()}
        entries: List[Dict[str, object]] = []
        with self.tracer.span("bench_summary", repeats=int(repeats)):
            for v in names:
                walls = []
                for _ in range(max(1, int(repeats))):
                    t0 = time.perf_counter()
                    self.assembler.assemble(v, self.velocity)
                    walls.append(time.perf_counter() - t0)
                wall = min(walls)
                entry: Dict[str, object] = {
                    "variant": v,
                    "nelem": int(self.mesh.nelem),
                    "vector_dim": int(self.assembler.resolve_vector_dim(v)),
                    "mode": self.assembler.mode,
                    "executor": self.assembler.executor,
                    "wall_ms": wall * 1e3,
                    "melem_per_s": self.mesh.nelem / wall / 1e6,
                }
                if self.assembler.plan is not None:
                    tuned = self.assembler.plan.tuned_vector_dim(
                        v, self.assembler.mode
                    )
                    if tuned is not None:
                        entry["tuned_vector_dim"] = int(tuned)
                if v in gpu_rt:
                    entry["gpu_model_runtime_ms"] = gpu_rt[v]
                if v in cpu_rt:
                    entry["cpu_model_runtime_ms"] = cpu_rt[v]
                if profile:
                    entry.update(self._profile_entry(v))
                self.metrics.gauge(f"study.wall_ms.{v}").set(entry["wall_ms"])
                self.metrics.counter("study.elements_assembled").inc(
                    self.mesh.nelem * max(1, int(repeats))
                )
                entries.append(entry)
        if profile:
            self.profiler.publish(self.metrics)
        return entries

    # ------------------------------------------------------------------
    # Performance attribution (the software-LIKWID loop)
    # ------------------------------------------------------------------
    @property
    def profiler(self):
        """Lazily-created :class:`repro.obs.profiler.TapeProfiler` shared
        by every profiled assembly this study runs."""
        if getattr(self, "_profiler", None) is None:
            from ..obs.profiler import TapeProfiler

            self._profiler = TapeProfiler()
        return self._profiler

    def _profiled_assembler(self) -> UnifiedAssembler:
        return UnifiedAssembler(
            self.mesh,
            self.params,
            vector_dim=self.assembler.vector_dim,
            tracer=self.tracer,
            mode=self.assembler.mode,
            executor=self.assembler.executor,
            num_threads=self.assembler.num_threads,
            chunk_groups=self.assembler.chunk_groups,
            profiler=self.profiler,
        )

    def _profile_entry(self, variant: str) -> Dict[str, object]:
        """Run one profiled assembly of ``variant``; measured-entry fields."""
        asm = self._profiled_assembler()
        asm.assemble(variant, self.velocity)
        vector_dim = asm.resolve_vector_dim(variant)
        key = (variant, int(vector_dim), asm.mode, asm.executor)
        prof = self.profiler.profiles[key]
        fields: Dict[str, object] = {
            "profiled_seconds": prof.total_seconds,
            "profiled_bytes": prof.total_bytes,
            "profiled_flops": prof.total_flops,
            "profiled_intensity": prof.intensity,
        }
        if prof.report is not None and prof.executions:
            nlane = prof.lanes[0] / prof.executions if prof.lanes else 0
            predicted = prof.report.predicted_bytes(nlane) * prof.executions
            fields["predicted_bytes"] = predicted
            if predicted:
                fields["byte_residual"] = (
                    (predicted - prof.total_bytes) / predicted
                )
        return fields

    def profile_variants(
        self, variants: Optional[List[str]] = None
    ) -> Dict[str, object]:
        """Profile one assembly per variant; returns ``{variant: TapeProfile}``."""
        names = list(variants) if variants is not None else list(variant_names())
        asm = self._profiled_assembler()
        out: Dict[str, object] = {}
        for v in names:
            asm.assemble(v, self.velocity)
            vd = asm.resolve_vector_dim(v)
            out[v] = self.profiler.profiles[(v, int(vd), asm.mode, asm.executor)]
        return out

    def roofline_attribution(
        self, variants: Optional[List[str]] = None
    ) -> Dict[str, object]:
        """Measured roofline attribution (``BENCH_roofline_attrib.json``).

        Profiles every variant (reusing profiles already collected by this
        study), places each measured whole-tape point under the paper's
        roofline, and reports per-phase breakdowns plus the
        predicted-vs-measured byte residual per variant -- the
        calibration data the ROADMAP's predictive autotuner consumes.
        """
        from ..machine.roofline import render_ascii

        names = list(variants) if variants is not None else list(variant_names())
        profiles = self.profile_variants(names)
        roof = self.roofline()
        doc: Dict[str, object] = {
            "schema": "repro-roofline-attrib/1",
            "roofline": roof.to_dict(),
            "variants": {},
        }
        points = []
        for v, prof in profiles.items():
            point = prof.roofline_point()
            points.append(point)
            row = roof.attribution(point)
            row["phases"] = prof.phases()
            row["seconds"] = prof.total_seconds
            row["measured_bytes"] = prof.total_bytes
            row["measured_flops"] = prof.total_flops
            if prof.report is not None and prof.executions:
                nlane = prof.lanes[0] / prof.executions if prof.lanes else 0
                predicted = prof.report.predicted_bytes(nlane) * prof.executions
                row["predicted_bytes"] = predicted
                if predicted:
                    row["byte_residual"] = (
                        (predicted - prof.total_bytes) / predicted
                    )
            doc["variants"][v] = row
        doc["ascii"] = render_ascii(roof, points)
        return doc

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    @staticmethod
    def format_gpu_table(table: List[GpuCounters]) -> str:
        rows = [
            {
                "variant": c.variant,
                "global ld/st": c.global_loadstore,
                "local ld/st": c.local_loadstore,
                "flops": c.flops,
                "L1 B (eff)": f"{c.l1_volume:.0f} ({c.l1_effectiveness:.0%})",
                "L2 B (eff)": f"{c.l2_volume:.0f} ({c.l2_effectiveness:.0%})",
                "DRAM B": c.dram_volume,
                "regs": c.registers,
                "GFlop/s": c.gflops,
                "GB/s": c.gbs,
                "runtime ms": c.runtime_ms,
            }
            for c in table
        ]
        if not rows:
            return format_table(
                [], ["variant"], title="Table II (GPU, per element) -- empty"
            )
        cols = list(rows[0].keys())
        return format_table(rows, cols, title="Table II (GPU, per element)")

    @staticmethod
    def format_cpu_table(table: List[CpuCounters]) -> str:
        rows = [
            {
                "variant": c.variant,
                "ld/st": c.loadstore,
                "flops": c.flops,
                "L1 B (eff)": f"{c.l1_volume:.0f} ({c.l1_effectiveness:.0%})",
                "L2/L3 B (eff)": f"{c.l23_volume:.0f} ({c.l23_effectiveness:.0%})",
                "DRAM B": c.dram_volume,
                "GFlop/s 1c": c.gflops_1c,
                "GB/s 1c": c.gbs_1c,
                "runtime 1c ms": c.runtime_1c_ms,
                f"runtime {c.multicore_workers}c ms": c.runtime_multicore_ms,
            }
            for c in table
        ]
        if not rows:
            return format_table(
                [], ["variant"], title="Table I (CPU, per element) -- empty"
            )
        cols = list(rows[0].keys())
        return format_table(rows, cols, title="Table I (CPU, per element)")
