"""The optimization study: one call per paper table/figure.

:class:`OptimizationStudy` wires the pieces together -- it traces every
kernel variant on a representative mesh, runs the GPU and CPU machine
models, and returns the paper's Tables I and II, the Figure 2 scaling
curves, the Figure 3 roofline points and the Section VI energy numbers.
The benchmark harness in ``benchmarks/`` is a thin printing layer over this
class.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

import numpy as np

from ..fem.mesh import TetMesh
from ..fem.meshgen import box_tet_mesh
from ..machine.counters import CpuCounters, GpuCounters, format_table
from ..machine.cpu import CpuModel
from ..machine.energy import energy_comparison
from ..machine.gpu import GpuModel
from ..machine.roofline import Roofline, RooflinePoint, gpu_roofline
from ..physics.momentum import AssemblyParams
from .unified import UnifiedAssembler
from .variants import variant_names

__all__ = ["OptimizationStudy", "PAPER_NELEM"]

#: Element count of the paper's Bolund mesh.
PAPER_NELEM = 32.6e6


class OptimizationStudy:
    """Run the paper's measurement campaign on the machine models.

    Parameters
    ----------
    mesh:
        Representative mesh driving the cache simulators' mesh traffic
        (defaults to a 12^3 box -- per-element behaviour is what matters).
    params:
        Assembly parameters (must match the specialized kernels).
    nelem_total:
        Mesh size runtimes are extrapolated to (paper: 32.6M elements).
    seed:
        RNG seed for the synthetic velocity field used while tracing.
    """

    def __init__(
        self,
        mesh: Optional[TetMesh] = None,
        params: Optional[AssemblyParams] = None,
        gpu_model: Optional[GpuModel] = None,
        cpu_model: Optional[CpuModel] = None,
        nelem_total: float = PAPER_NELEM,
        seed: int = 2024,
    ) -> None:
        self.mesh = mesh if mesh is not None else box_tet_mesh(12, 12, 12)
        self.params = params if params is not None else AssemblyParams(
            body_force=(0.0, 0.0, 0.1)
        )
        self.gpu_model = gpu_model if gpu_model is not None else GpuModel()
        self.cpu_model = cpu_model if cpu_model is not None else CpuModel()
        self.nelem_total = float(nelem_total)
        rng = np.random.default_rng(seed)
        self.velocity = 0.1 * rng.standard_normal((self.mesh.nnode, 3))
        self.assembler = UnifiedAssembler(self.mesh, self.params, vector_dim=64)
        self._traces: Dict[str, object] = {}

    # ------------------------------------------------------------------
    def trace(self, variant: str):
        """Cached kernel trace of a variant."""
        if variant not in self._traces:
            self._traces[variant] = self.assembler.trace(variant, self.velocity)
        return self._traces[variant]

    # ------------------------------------------------------------------
    # Table II
    # ------------------------------------------------------------------
    def gpu_table(self, variants: Optional[List[str]] = None) -> List[GpuCounters]:
        """Table II: GPU counters for B, P, RS, RSP, RSPR."""
        names = variants or list(variant_names("gpu"))
        return [
            self.gpu_model.run(
                v, self.trace(v), self.mesh.connectivity, self.nelem_total
            )
            for v in names
        ]

    # ------------------------------------------------------------------
    # Table I
    # ------------------------------------------------------------------
    def cpu_table(self, variants: Optional[List[str]] = None) -> List[CpuCounters]:
        """Table I: CPU counters for B, RS, RSP."""
        names = variants or list(variant_names("cpu"))
        return [
            self.cpu_model.run(
                v, self.trace(v), self.mesh.connectivity, self.nelem_total
            )
            for v in names
        ]

    # ------------------------------------------------------------------
    # Figure 2
    # ------------------------------------------------------------------
    def cpu_scaling(
        self,
        variants: Optional[List[str]] = None,
        worker_counts: Optional[List[int]] = None,
    ) -> Dict[str, List[Dict[str, float]]]:
        """Figure 2: per-variant Melem/s and wall time vs worker count."""
        names = variants or list(variant_names("cpu"))
        return {
            v: self.cpu_model.scaling_curve(
                self.trace(v),
                self.mesh.connectivity,
                worker_counts,
                self.nelem_total,
            )
            for v in names
        }

    # ------------------------------------------------------------------
    # Figure 3
    # ------------------------------------------------------------------
    def roofline_points(
        self, table: Optional[List[GpuCounters]] = None
    ) -> Dict[str, List[RooflinePoint]]:
        """Figure 3: DRAM- and L2-intensity points for the GPU variants."""
        table = table if table is not None else self.gpu_table()
        dram_pts = [
            RooflinePoint(c.variant, c.dram_intensity, c.gflops * 1e9)
            for c in table
        ]
        l2_pts = [
            RooflinePoint(c.variant, c.l2_intensity, c.gflops * 1e9)
            for c in table
        ]
        return {"dram": dram_pts, "l2": l2_pts}

    def roofline(self) -> Roofline:
        spec = self.gpu_model.spec
        return gpu_roofline(
            spec.dram_bandwidth, spec.fp64_peak, spec.instruction_mix_roof
        )

    # ------------------------------------------------------------------
    # Section VI
    # ------------------------------------------------------------------
    def energy(
        self,
        gpu_table: Optional[List[GpuCounters]] = None,
        cpu_table: Optional[List[CpuCounters]] = None,
    ) -> Dict[str, Dict[str, float]]:
        """Energy comparison (best GPU variant vs best CPU full node)."""
        gpu_table = gpu_table if gpu_table is not None else self.gpu_table()
        cpu_table = cpu_table if cpu_table is not None else self.cpu_table()
        return energy_comparison(
            {c.variant: c.runtime_ms for c in gpu_table},
            {c.variant: c.runtime_multicore_ms for c in cpu_table},
            gpu_power=self.gpu_model.spec.power_watts,
            cpu_power=self.cpu_model.spec.node_power_watts,
        )

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    @staticmethod
    def format_gpu_table(table: List[GpuCounters]) -> str:
        rows = [
            {
                "variant": c.variant,
                "global ld/st": c.global_loadstore,
                "local ld/st": c.local_loadstore,
                "flops": c.flops,
                "L1 B (eff)": f"{c.l1_volume:.0f} ({c.l1_effectiveness:.0%})",
                "L2 B (eff)": f"{c.l2_volume:.0f} ({c.l2_effectiveness:.0%})",
                "DRAM B": c.dram_volume,
                "regs": c.registers,
                "GFlop/s": c.gflops,
                "GB/s": c.gbs,
                "runtime ms": c.runtime_ms,
            }
            for c in table
        ]
        cols = list(rows[0].keys())
        return format_table(rows, cols, title="Table II (GPU, per element)")

    @staticmethod
    def format_cpu_table(table: List[CpuCounters]) -> str:
        rows = [
            {
                "variant": c.variant,
                "ld/st": c.loadstore,
                "flops": c.flops,
                "L1 B (eff)": f"{c.l1_volume:.0f} ({c.l1_effectiveness:.0%})",
                "L2/L3 B (eff)": f"{c.l23_volume:.0f} ({c.l23_effectiveness:.0%})",
                "DRAM B": c.dram_volume,
                "GFlop/s 1c": c.gflops_1c,
                "GB/s 1c": c.gbs_1c,
                "runtime 1c ms": c.runtime_1c_ms,
                f"runtime {c.multicore_workers}c ms": c.runtime_multicore_ms,
            }
            for c in table
        ]
        cols = list(rows[0].keys())
        return format_table(rows, cols, title="Table I (CPU, per element)")
