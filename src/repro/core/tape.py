"""Compiled kernel tapes: record-once DSL execution with buffer arenas.

The interpreted :class:`~repro.core.dsl.NumpyBackend` allocates a fresh
lane-width array for **every** DSL binop/unop -- hundreds of short-lived
arrays per element group, the exact overhead class the paper's
Privatization (P) transformation eliminates on the GPU.  This module is
the Python analogue of P:

* :class:`RecordingBackend` runs a variant kernel **once** (symbolically,
  no numerics beyond scalar constant folding) and captures a linear SSA
  tape of the vector operations the kernel would have executed.  Because
  the kernels are straight-line code whose control flow depends only on
  runtime *flags* (baked into the tape) and never on lane data, a single
  recording is valid for every element group of every assembly.
* :func:`compile_tape` dead-code-eliminates the tape backwards from its
  scatter calls, runs a linear-scan liveness analysis and assigns every
  surviving intermediate to a small pool of preallocated lane-width
  buffers -- the numpy analog of registers.  The resulting
  :class:`TapeReport` reports "buffers live" the way
  :class:`~repro.core.dsl.TracingBackend` reports register pressure.
* :class:`CompiledTape` replays the tape over **all element groups at
  once** (lanes stacked) with in-place ``out=`` ufunc calls into the
  arena, and ends with the same single-``bincount`` flush the deferred
  :class:`~repro.fem.plan.ScatterAccumulator` uses.  Steady-state
  time-stepping therefore does zero Python-level array allocation in the
  momentum RHS.
* :class:`ElementalTape` is the picklable flavour the multiprocess runner
  ships to workers: the same compiled program, executed against packed
  per-element coordinate/velocity arrays, producing ``(n, 4, 3)``
  elemental contributions.

Bit-identity contract
---------------------
The compiled tape must produce **bit-identical** RHS output to the
interpreted ``NumpyBackend`` path.  This holds because

* every DSL arithmetic op is an elementwise float64 ufunc, so evaluating
  all groups' lanes stacked in one array gives the same per-lane bits as
  per-group evaluation;
* scalar folding at record time uses the *same* numpy-scalar arithmetic
  ``NumpyBackend`` would have used (``np.float64`` throughout);
* gathers and ``select_gt`` are pure selection (no arithmetic), so CSE
  and predicated replay preserve bits; and
* scatter values are laid out ``(ngroups, ncalls, nlane)`` so that their
  C-order flattening reproduces the accumulator's group-major temporal
  order -- the same ``bincount`` input order, hence the same rounding.

Tapes are cached on the :class:`~repro.fem.plan.AssemblyPlan` keyed by
``(variant, vector_dim, permutation, params)``; plans themselves are
invalidated on mesh reorientation, so a tape can never outlive the mesh
version it was recorded against.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..obs.metrics import get_registry
from ..obs.profiler import NULL_PROFILER
from ..obs.spans import NULL_TRACER, get_tracer
from .dsl import Backend, KernelContext, Temp, Value
from .storage import Storage, TempSpec
from .variants import get_variant

__all__ = [
    "RecordingBackend",
    "BatchRecordingBackend",
    "TapeReport",
    "TapeProgram",
    "BatchTapeProgram",
    "CompiledTape",
    "BatchedTape",
    "ElementalTape",
    "record_program",
    "record_batch_program",
    "compiled_tape",
    "batched_tape",
    "tape_cache_key",
    "batch_tape_cache_key",
]

#: scalar reference on the tape (folded constant); vector refs are ints
Scalar = np.float64
Ref = Union[int, np.float64]

#: DSL op name -> numpy ufunc name (picklable; resolved at execution time)
_UFUNC_NAMES = {
    "add": "add",
    "sub": "subtract",
    "mul": "multiply",
    "div": "true_divide",
    "max": "maximum",
    "neg": "negative",
    "sqrt": "sqrt",
    "cbrt": "cbrt",
}


def _ufunc(name: str):
    return getattr(np, name)


def _is_scalar(ref) -> bool:
    return not isinstance(ref, (int, np.integer)) or isinstance(ref, bool)


# ---------------------------------------------------------------------------
# Recording
# ---------------------------------------------------------------------------


class RecordingBackend(Backend):
    """Captures a variant kernel's op stream as a linear SSA tape.

    Values are symbolic: a :class:`~repro.core.dsl.Value` payload is either
    an SSA id (``int`` -- a lane-wide vector produced by a recorded op) or
    a folded ``np.float64`` scalar.  Temporaries are not allocated at all;
    stores bind ``(name, linear index)`` slots to refs and loads read the
    current binding (SSA renaming), which is exactly what the eager
    backend's store-then-load round trip computes.  Loading a never-stored
    slot yields the scalar ``0.0`` -- the ``np.zeros`` initialisation the
    execution backend guarantees for non-``write_before_read`` temps.

    Gathers are CSE'd (coordinates and fields are read-only during a
    sweep, so re-gathering the same ``(slot, component)`` -- which the
    RSPR kernel does -- is the same value).  Scalar arithmetic is folded
    at record time with the identical numpy-scalar operations the numpy
    backend would have executed, so folding cannot change a single bit.
    """

    def __init__(self, ctx: KernelContext) -> None:
        self.ctx = ctx
        self.nlane = ctx.nlane
        self.ops: List[tuple] = []
        self.scatter_calls: List[Tuple[int, int]] = []
        self.temps: Dict[str, TempSpec] = {}
        self._slots: Dict[Tuple[str, int], Ref] = {}
        self._gather_memo: Dict[tuple, int] = {}
        self._next_id = 0
        self.folded_scalars = 0
        self.gather_reuses = 0

    # -- SSA ids ---------------------------------------------------------
    def _emit(self, op: tuple) -> Value:
        """Append ``op`` (whose last element is the fresh out id)."""
        self.ops.append(op)
        return Value(self, op[-1])

    def _new_id(self) -> int:
        i = self._next_id
        self._next_id += 1
        return i

    # -- scalars ---------------------------------------------------------
    def const(self, x) -> Value:
        return Value(self, np.float64(x))

    def binop(self, op: str, a: Value, b: Value) -> Value:
        pa, pb = a.payload, b.payload
        if _is_scalar(pa) and _is_scalar(pb):
            # Fold with the same np.float64 arithmetic NumpyBackend uses.
            self.folded_scalars += 1
            return Value(self, _ufunc(_UFUNC_NAMES[op])(pa, pb))
        return self._emit(("bin", op, pa, pb, self._new_id()))

    def unop(self, op: str, a: Value) -> Value:
        pa = a.payload
        if _is_scalar(pa):
            self.folded_scalars += 1
            return Value(self, _ufunc(_UFUNC_NAMES[op])(pa))
        return self._emit(("un", op, pa, self._new_id()))

    def maximum(self, a: Value, b) -> Value:
        return self.binop("max", a, self._coerce(b))

    def select_gt(self, x: Value, thresh: float, a: Value, b) -> Value:
        bv = self._coerce(b)
        px, pa, pb = x.payload, a.payload, bv.payload
        if _is_scalar(px):
            # Pure selection on a uniform condition: the eager backend's
            # np.where would return (a copy of) one branch wholesale.
            self.folded_scalars += 1
            return Value(self, pa if px > thresh else pb)
        return self._emit(("sel", px, pa, pb, np.float64(thresh), self._new_id()))

    def _coerce(self, x) -> Value:
        return x if isinstance(x, Value) else self.const(x)

    # -- temporaries -----------------------------------------------------
    def temp(
        self,
        name: str,
        shape: Tuple[int, ...],
        storage: Storage,
        static: bool = False,
        write_before_read: bool = False,
    ) -> Temp:
        spec = TempSpec(
            name=name,
            shape=tuple(shape),
            storage=storage,
            static=static,
            write_before_read=write_before_read,
        )
        self.temps[name] = spec
        return Temp(spec=spec, data=None)

    def load(self, temp: Temp, idx: Tuple[int, ...]) -> Value:
        lin = temp.spec.linear_index(tuple(idx))
        return Value(self, self._slots.get((temp.spec.name, lin), np.float64(0.0)))

    def store(self, temp: Temp, idx: Tuple[int, ...], value: Value) -> None:
        lin = temp.spec.linear_index(tuple(idx))
        self._slots[(temp.spec.name, lin)] = value.payload

    # -- mesh / global data ----------------------------------------------
    def gather_coord(self, node_slot: int, component: int) -> Value:
        key = ("gc", int(node_slot), int(component))
        ref = self._gather_memo.get(key)
        if ref is not None:
            self.gather_reuses += 1
            return Value(self, ref)
        out = self._new_id()
        self._gather_memo[key] = out
        return self._emit(("gc", int(node_slot), int(component), out))

    def gather_field(self, field: str, node_slot: int, component: int) -> Value:
        key = ("gf", field, int(node_slot), int(component))
        ref = self._gather_memo.get(key)
        if ref is not None:
            self.gather_reuses += 1
            return Value(self, ref)
        out = self._new_id()
        self._gather_memo[key] = out
        return self._emit(("gf", field, int(node_slot), int(component), out))

    def scatter_add_rhs(self, node_slot: int, component: int, value: Value) -> None:
        self.scatter_calls.append((int(node_slot), int(component)))
        self.ops.append(("sc", int(node_slot), int(component), value.payload))

    # -- parameters ------------------------------------------------------
    def runtime_param(self, name: str) -> Value:
        return self.const(self.ctx.params[name])

    def runtime_flag(self, name: str) -> int:
        # Python-level control flow: the flag value specializes the tape,
        # which is why tapes are keyed on the full kernel-params dict.
        return int(self.ctx.params[name])

    def fence(self, label: str = "") -> None:
        pass

    def note_value_death(self) -> None:
        pass


class BatchRecordingBackend(RecordingBackend):
    """Recording backend for scenario-batched tapes.

    Identical to :class:`RecordingBackend` except that runtime parameters
    named in ``varying`` are *not* folded into scalar constants: they
    become symbolic ``("rp", name, out)`` ops (memoized, one per name)
    whose value at execution time is a per-scenario ``(S, 1)`` row.  Any
    op downstream of one is then computed for all ``S`` scenarios at
    once, while the (usually dominant) geometry/velocity chains stay at
    rank-1 and are computed once per batch.

    Parameters *not* in ``varying`` fold exactly as a serial recording
    folds them, and runtime *flags* still specialize Python control flow
    (which is why a batch must be flag-uniform).
    """

    def __init__(self, ctx: KernelContext, varying) -> None:
        super().__init__(ctx)
        self.varying = frozenset(varying)
        self._param_memo: Dict[str, int] = {}

    def runtime_param(self, name: str) -> Value:
        if name not in self.varying:
            return self.const(self.ctx.params[name])
        ref = self._param_memo.get(name)
        if ref is not None:
            return Value(self, ref)
        out = self._new_id()
        self._param_memo[name] = out
        return self._emit(("rp", name, out))


# ---------------------------------------------------------------------------
# Compilation: DCE + linear-scan buffer-arena allocation
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class TapeReport:
    """Static statistics of one compiled kernel tape.

    ``buffers_live`` is the size of the lane-width buffer arena -- the
    numpy analog of the register count :class:`TracingBackend` estimates
    with ``peak_live_values``.
    """

    variant: str
    ops_recorded: int
    ops_live: int
    dce_removed: int
    folded_scalars: int
    gather_reuses: int
    scatter_calls: int
    buffers_live: int
    binary_ops: int = 0
    unary_ops: int = 0
    select_ops: int = 0
    gather_ops: int = 0
    # codegen-only statistics (zero for replayed tapes): common
    # subexpressions merged, ops hoisted into the one-time setup, ops
    # inlined into fused expressions, and full-width pinned invariant
    # buffers.  ``buffers_live`` for a generated kernel counts the *slab*
    # rows surviving fusion -- directly comparable to (and smaller than)
    # the replay arena of the same variant.
    cse_removed: int = 0
    hoisted_ops: int = 0
    fused_ops: int = 0
    pinned_buffers: int = 0
    # batched-tape statistics (zero / 1 for serial tapes): ops evaluated
    # once per batch in the (S, 1) scenario-row stage, rank-1 lane ops
    # shared by all scenarios, full-rank (S, lanes) ops, and the batch
    # size.  vec_ops / full_ops is the work-retention ratio that carries
    # the batched throughput win.
    srow_ops: int = 0
    vec_ops: int = 0
    full_ops: int = 0
    scenarios: int = 1

    def arena_bytes(self, nlane: int) -> int:
        """Arena footprint for ``nlane`` stacked lanes (float64)."""
        return self.buffers_live * nlane * 8

    def predicted_bytes(self, nlane: int) -> float:
        """Predicted arena traffic of one execution over ``nlane`` lanes.

        Uniform all-vector-operand accounting (every binop reads two 8 B
        operands, every select three plus the byte-wide mask round trip,
        every gather an index+value pair, every scatter a vector source)
        -- an *upper bound* on what the op-level profiler measures, since
        folded-scalar operands cost no arena read at execution time.  The
        gap between this and the measured bytes is therefore exactly the
        scalar-operand share, which is what the predicted-vs-measured
        residual report attributes.
        """
        per_lane = (
            self.binary_ops * 24.0
            + self.unary_ops * 16.0
            + self.select_ops * 34.0
            + self.gather_ops * 24.0
            + self.scatter_calls * 16.0
        )
        return per_lane * nlane

    def predicted_flops(self, nlane: int) -> float:
        """Predicted Flops of one execution: 1 Flop/lane per arithmetic
        op, matching :data:`repro.core.dsl._FLOP_COST`."""
        return (self.binary_ops + self.unary_ops + self.select_ops) * float(nlane)

    def summary(self) -> str:
        return "\n".join(
            [
                f"variant                  : {self.variant}",
                f"ops recorded / live      : {self.ops_recorded} / {self.ops_live}",
                f"dead ops removed         : {self.dce_removed}",
                f"scalars folded           : {self.folded_scalars}",
                f"gathers CSE'd            : {self.gather_reuses}",
                f"scatter calls            : {self.scatter_calls}",
                f"buffers live (arena)     : {self.buffers_live}",
            ]
            + (
                [
                    f"cse removed              : {self.cse_removed}",
                    f"ops hoisted to setup     : {self.hoisted_ops}",
                    f"ops fused                : {self.fused_ops}",
                    f"pinned invariant buffers : {self.pinned_buffers}",
                ]
                if (self.cse_removed or self.hoisted_ops or self.fused_ops)
                else []
            )
        )


def _op_inputs(op: tuple) -> Tuple[Ref, ...]:
    tag = op[0]
    if tag == "bin":
        return (op[2], op[3])
    if tag == "un":
        return (op[2],)
    if tag == "sel":
        return (op[1], op[2], op[3])
    if tag == "sc":
        return (op[3],)
    return ()  # gc / gf


@dataclasses.dataclass(frozen=True)
class TapeProgram:
    """A compiled, picklable kernel tape.

    ``ops`` use integer opcodes; every vector reference is a buffer-arena
    row index in ``[0, nbufs)`` and every scalar reference is a folded
    ``np.float64``:

    ==  ==========================================  =========================
    op  operands                                    semantics
    ==  ==========================================  =========================
    0   ``(ufunc, a, b, out)``                      ``ufunc(a, b, out=out)``
    1   ``(ufunc, a, out)``                         ``ufunc(a, out=out)``
    2   ``(x, a, b, thresh, out)``                  ``where(x > thresh, a, b)``
    3   ``(node_slot, component, out)``             coordinate gather
    4   ``(field, node_slot, component, out)``      field gather
    5   ``(call, node_slot, component, src)``       deferred RHS scatter
    ==  ==========================================  =========================
    """

    variant: str
    params_key: Tuple[Tuple[str, float], ...]
    ops: Tuple[tuple, ...]
    nbufs: int
    scatter_calls: Tuple[Tuple[int, int], ...]
    report: TapeReport
    nnode_per_element: int = 4


def compile_tape(recorder: RecordingBackend, variant: str, params_key) -> TapeProgram:
    """Lower a recorded tape: DCE, liveness, arena assignment."""
    ops = recorder.ops
    # -- dead-code elimination backwards from the scatter roots ----------
    needed: set = set()
    keep = [False] * len(ops)
    for i in range(len(ops) - 1, -1, -1):
        op = ops[i]
        if op[0] == "sc" or (not _is_scalar(op[-1]) and op[-1] in needed):
            keep[i] = True
            for ref in _op_inputs(op):
                if not _is_scalar(ref):
                    needed.add(ref)
    live_ops = [op for op, k in zip(ops, keep) if k]

    # -- liveness: last read position of every vector ref ----------------
    last_use: Dict[int, int] = {}
    for j, op in enumerate(live_ops):
        for ref in _op_inputs(op):
            if not _is_scalar(ref):
                last_use[ref] = j

    # -- linear-scan arena allocation (LIFO free list) -------------------
    # Dying inputs release their buffer *before* the output is allocated,
    # so in-place ``out=`` aliasing happens naturally -- safe for every
    # elementwise ufunc.  The one exception is the select op: its executor
    # overwrites ``out`` with branch ``b`` before reading branch ``a``
    # (mask-first order makes ``x``- and ``b``-aliasing safe), so ``a``'s
    # buffer is protected until after the output is placed.
    buf_of: Dict[int, int] = {}
    free: List[int] = []
    nbufs = 0
    for j, op in enumerate(live_ops):
        protected = None
        if op[0] == "sel" and not _is_scalar(op[2]):
            protected = op[2]
        deferred = None
        for ref in set(_op_inputs(op)):
            if _is_scalar(ref) or last_use.get(ref) != j:
                continue
            if ref == protected:
                deferred = ref
            else:
                free.append(buf_of[ref])
        if op[0] != "sc":
            out = op[-1]
            if free:
                buf_of[out] = free.pop()
            else:
                buf_of[out] = nbufs
                nbufs += 1
        if deferred is not None:
            free.append(buf_of[deferred])

    # -- lower to executable opcodes -------------------------------------
    def ref_of(r: Ref):
        return r if _is_scalar(r) else buf_of[r]

    lowered: List[tuple] = []
    call = 0
    for op in live_ops:
        tag = op[0]
        if tag == "bin":
            lowered.append(
                (0, _UFUNC_NAMES[op[1]], ref_of(op[2]), ref_of(op[3]), buf_of[op[4]])
            )
        elif tag == "un":
            lowered.append((1, _UFUNC_NAMES[op[1]], ref_of(op[2]), buf_of[op[3]]))
        elif tag == "sel":
            lowered.append(
                (2, ref_of(op[1]), ref_of(op[2]), ref_of(op[3]), op[4], buf_of[op[5]])
            )
        elif tag == "gc":
            lowered.append((3, op[1], op[2], buf_of[op[3]]))
        elif tag == "gf":
            lowered.append((4, op[1], op[2], op[3], buf_of[op[4]]))
        elif tag == "sc":
            lowered.append((5, call, op[1], op[2], ref_of(op[3])))
            call += 1
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown tape op {tag!r}")

    codes = [op[0] for op in lowered]
    report = TapeReport(
        variant=variant,
        ops_recorded=len(ops),
        ops_live=len(live_ops),
        dce_removed=len(ops) - len(live_ops),
        folded_scalars=recorder.folded_scalars,
        gather_reuses=recorder.gather_reuses,
        scatter_calls=len(recorder.scatter_calls),
        buffers_live=nbufs,
        binary_ops=codes.count(0),
        unary_ops=codes.count(1),
        select_ops=codes.count(2),
        gather_ops=codes.count(3) + codes.count(4),
    )
    return TapeProgram(
        variant=variant,
        params_key=tuple(params_key),
        ops=tuple(lowered),
        nbufs=nbufs,
        scatter_calls=tuple(recorder.scatter_calls),
        report=report,
        nnode_per_element=recorder.ctx.nnode_per_element,
    )


def record_program(
    variant_name: str,
    kernel_params: Dict[str, float],
    nnode_per_element: int = 4,
) -> TapeProgram:
    """Record a variant once and compile it to a :class:`TapeProgram`.

    The recording runs against a dummy single-lane context: kernels are
    straight-line code whose only data-dependent control flow reads the
    runtime flags in ``kernel_params``, so the captured tape is valid for
    any element group of any mesh.
    """
    variant = get_variant(variant_name)
    ctx = KernelContext(
        connectivity=np.zeros((1, nnode_per_element), dtype=np.int64),
        coords=np.zeros((1, 3)),
        fields={"velocity": np.zeros((1, 3))},
        rhs=np.zeros((1, 3)),
        params=dict(kernel_params),
        nnode_per_element=nnode_per_element,
    )
    params_key = tuple(sorted(kernel_params.items()))
    with get_tracer().span("tape.record", variant=variant.name):
        recorder = RecordingBackend(ctx)
        variant.kernel(recorder, ctx)
        program = compile_tape(recorder, variant.name, params_key)
    registry = get_registry()
    registry.counter("tape.records").inc()
    registry.gauge(f"tape.buffers_live.{variant.name}").set(program.nbufs)
    return program


# ---------------------------------------------------------------------------
# Stacked whole-mesh executor
# ---------------------------------------------------------------------------


class CompiledTape:
    """Executable tape bound to one ``(plan, packing)`` pair.

    All element groups are stacked into one ``L = ngroups * vector_dim``
    lane axis; each tape op is a single ufunc call over the whole mesh.
    Scatter values land in a preallocated ``(ngroups, ncalls, vector_dim)``
    buffer whose C-order flattening reproduces the per-group temporal
    order of the interpreted :class:`~repro.fem.plan.ScatterAccumulator`,
    so the final ``bincount`` flush is bit-identical to it (and hence to
    the seed ``np.add.at`` path).

    The scatter index pattern is shared with the accumulator through
    ``plan`` under the same ``(variant, vector_dim, permutation)`` key;
    an interpreted sweep and a compiled sweep of the same configuration
    therefore build the pattern once between them.
    """

    def __init__(
        self,
        program: TapeProgram,
        plan,
        packing,
        perm_key=None,
        tracer=NULL_TRACER,
    ):
        self.program = program
        self.plan = plan
        self.packing = packing
        self.tracer = tracer
        self.profiler = NULL_PROFILER
        mesh = plan.mesh
        self.nnode = int(mesh.nnode)
        self.ncomp = 3
        groups = packing.groups()
        self.ngroups = len(groups)
        self.vector_dim = int(packing.vector_dim)
        nlane = self.ngroups * self.vector_dim
        self.nlane = nlane
        nnpe = program.nnode_per_element

        conn3 = np.stack([g.connectivity for g in groups])  # (G, vd, nnpe)
        conn_all = conn3.reshape(nlane, nnpe)
        self._idx = [
            np.ascontiguousarray(conn_all[:, s], dtype=np.int64)
            for s in range(nnpe)
        ]
        self._ccols = [
            np.ascontiguousarray(mesh.coords[:, c]) for c in range(3)
        ]
        # velocity columns are refreshed (copied, not reallocated) per call
        self._vcols = np.empty((3, self.nnode))

        # -- shared scatter index pattern --------------------------------
        ncalls = len(program.scatter_calls)
        self._ncalls = ncalls
        trash = self.nnode * self.ncomp
        signature = tuple(
            (g, slot, comp)
            for g in range(self.ngroups)
            for (slot, comp) in program.scatter_calls
        )
        for op in program.ops:
            if op[0] == 4 and op[1] != "velocity":
                raise ValueError(
                    f"compiled tape gathers unknown field {op[1]!r}; the "
                    "stacked executor only binds 'velocity'"
                )
        key = (program.variant, self.vector_dim, perm_key)
        pattern = plan.scatter_pattern(key)
        registry = get_registry()
        if pattern is None:
            from ..fem.plan import seed_flush_order

            active3 = np.stack([g.active for g in groups])  # (G, vd)
            indices = np.empty(
                (self.ngroups, ncalls, self.vector_dim), dtype=np.int64
            )
            for c, (slot, comp) in enumerate(program.scatter_calls):
                icol = conn3[:, :, slot] * self.ncomp + comp
                np.copyto(indices[:, c, :], np.where(active3, icol, trash))
            order = None
            seed_ids = mesh.seed_element_ids
            if seed_ids is not None:
                lane_seed = np.concatenate(
                    [seed_ids[g.element_ids] for g in groups]
                )
                order = seed_flush_order(
                    lane_seed, active3.reshape(-1), ncalls, self.vector_dim
                )
            pattern = plan.store_scatter_pattern(
                key, indices.reshape(-1), signature, order=order
            )
            registry.counter("scatter.pattern_builds").inc()
        else:
            if pattern.signature != signature:
                raise RuntimeError(
                    "scatter pattern mismatch: cached plan pattern does not "
                    "match the compiled tape's call order"
                )
            registry.counter("scatter.pattern_reuses").inc()
        self._pattern = pattern

        # -- preallocated arena ------------------------------------------
        self._arena = np.empty((max(program.nbufs, 1), nlane))
        self._mask = np.empty(nlane, dtype=bool)
        self._values = np.empty((self.ngroups, ncalls, self.vector_dim))
        self._values_flat = self._values.reshape(-1)
        self._ufuncs = {name: _ufunc(name) for name in _UFUNC_NAMES.values()}

    @property
    def report(self) -> TapeReport:
        return self.program.report

    def _execute_ops_slice(
        self, g0: int, g1: int, arena: np.ndarray, mask: np.ndarray
    ) -> None:
        """Replay the tape over groups ``[g0, g1)`` into ``arena``.

        Scatter values land in the chunk's rows of the shared
        ``self._values`` buffer -- disjoint slices per chunk, so
        concurrent chunk executions never write the same memory.  All
        other shared state (gather indices, coordinate/velocity columns)
        is read-only during a sweep, which is what makes the threaded
        executor race-free.
        """
        vd = self.vector_dim
        lo = g0 * vd
        n = (g1 - g0) * vd
        nrows = g1 - g0
        lanes = slice(lo, lo + n)
        A = arena if arena.shape[1] == n else arena[:, :n]
        m = mask if mask.shape[0] == n else mask[:n]
        values = self._values
        ufuncs = self._ufuncs
        ccols = self._ccols
        vcols = self._vcols
        idx = self._idx
        for op in self.program.ops:
            code = op[0]
            if code == 0:
                _, uf, a, b, out = op
                ufuncs[uf](
                    a if _is_scalar(a) else A[a],
                    b if _is_scalar(b) else A[b],
                    out=A[out],
                )
            elif code == 1:
                _, uf, a, out = op
                ufuncs[uf](a if _is_scalar(a) else A[a], out=A[out])
            elif code == 2:
                _, x, a, b, thresh, out = op
                # mask first (x-aliasing safe), then b, then a-over-mask
                np.greater(A[x], thresh, out=m)
                dst = A[out]
                if _is_scalar(b):
                    dst[...] = b
                else:
                    dst[...] = A[b]
                np.copyto(dst, a if _is_scalar(a) else A[a], where=m)
            elif code == 3:
                _, slot, comp, out = op
                np.take(ccols[comp], idx[slot][lanes], out=A[out])
            elif code == 4:
                _, field, slot, comp, out = op
                np.take(vcols[comp], idx[slot][lanes], out=A[out])
            else:  # code == 5: deferred scatter into the values buffer
                _, call, slot, comp, src = op
                dst = values[g0:g1, call, :]
                if _is_scalar(src):
                    dst[...] = src
                else:
                    np.copyto(dst, A[src].reshape(nrows, vd))

    def _execute_ops_slice_timed(
        self, g0: int, g1: int, arena: np.ndarray, mask: np.ndarray, profile
    ) -> None:
        """Profiled twin of :meth:`_execute_ops_slice`.

        Issues the *identical* op stream into the identical buffers (so
        the result stays bitwise equal to the unprofiled replay) with one
        ``perf_counter`` read around each op, recorded into ``profile``.
        Kept as a separate loop so the unprofiled hot path carries no
        per-op branch or callable indirection -- the overhead-guard
        microbenchmark pins that property.
        """
        vd = self.vector_dim
        lo = g0 * vd
        n = (g1 - g0) * vd
        nrows = g1 - g0
        lanes = slice(lo, lo + n)
        A = arena if arena.shape[1] == n else arena[:, :n]
        m = mask if mask.shape[0] == n else mask[:n]
        values = self._values
        ufuncs = self._ufuncs
        ccols = self._ccols
        vcols = self._vcols
        idx = self._idx
        clock = time.perf_counter
        for i, op in enumerate(self.program.ops):
            code = op[0]
            t0 = clock()
            if code == 0:
                _, uf, a, b, out = op
                ufuncs[uf](
                    a if _is_scalar(a) else A[a],
                    b if _is_scalar(b) else A[b],
                    out=A[out],
                )
            elif code == 1:
                _, uf, a, out = op
                ufuncs[uf](a if _is_scalar(a) else A[a], out=A[out])
            elif code == 2:
                _, x, a, b, thresh, out = op
                np.greater(A[x], thresh, out=m)
                dst = A[out]
                if _is_scalar(b):
                    dst[...] = b
                else:
                    dst[...] = A[b]
                np.copyto(dst, a if _is_scalar(a) else A[a], where=m)
            elif code == 3:
                _, slot, comp, out = op
                np.take(ccols[comp], idx[slot][lanes], out=A[out])
            elif code == 4:
                _, field, slot, comp, out = op
                np.take(vcols[comp], idx[slot][lanes], out=A[out])
            else:
                _, call, slot, comp, src = op
                dst = values[g0:g1, call, :]
                if _is_scalar(src):
                    dst[...] = src
                else:
                    np.copyto(dst, A[src].reshape(nrows, vd))
            profile.record(i, clock() - t0, n)

    def _flush(self, rhs: np.ndarray, profile=None) -> None:
        from ..fem.plan import flush_pattern

        with self.tracer.span("scatter.flush", variant=self.program.variant):
            t0 = time.perf_counter()
            flush_pattern(
                self._pattern, self._values_flat, rhs, self.nnode, self.ncomp
            )
            if profile is not None:
                # values read + int64 index read + rhs accumulate traffic
                moved = 2.0 * self._values_flat.nbytes + rhs.nbytes
                profile.record_flush(time.perf_counter() - t0, moved)

    def _check_velocity(self, velocity: np.ndarray) -> np.ndarray:
        velocity = np.asarray(velocity, dtype=np.float64)
        if velocity.shape != (self.nnode, 3):
            raise ValueError(
                f"velocity must be ({self.nnode}, 3), got {velocity.shape}"
            )
        return velocity

    def execute(
        self, velocity: np.ndarray, rhs: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Assemble the momentum RHS, accumulating into ``rhs`` in place."""
        velocity = self._check_velocity(velocity)
        if rhs is None:
            rhs = np.zeros((self.nnode, self.ncomp))
        with self.tracer.span(
            "tape.execute",
            variant=self.program.variant,
            vector_dim=self.vector_dim,
            nlane=self.nlane,
        ):
            np.copyto(self._vcols, velocity.T)
            if self.profiler.enabled:
                profile = self.profiler.for_program(
                    self.program, self.vector_dim, "serial"
                )
                self._execute_ops_slice_timed(
                    0, self.ngroups, self._arena, self._mask, profile
                )
                self._flush(rhs, profile)
                profile.finish_execution()
            else:
                self._execute_ops_slice(0, self.ngroups, self._arena, self._mask)
                self._flush(rhs)
        registry = get_registry()
        registry.counter("tape.executions").inc()
        registry.counter("tape.lanes_executed").inc(self.nlane)
        return rhs

    def _run_chunk(self, g0: int, g1: int, slabs, profile=None) -> None:
        arena, mask = slabs.acquire()
        try:
            if profile is None:
                self._execute_ops_slice(g0, g1, arena, mask)
            else:
                self._execute_ops_slice_timed(g0, g1, arena, mask, profile)
        finally:
            slabs.release(arena, mask)

    def execute_chunked(
        self,
        velocity: np.ndarray,
        rhs: Optional[np.ndarray] = None,
        num_threads: Optional[int] = None,
        chunk_groups: Optional[int] = None,
    ) -> np.ndarray:
        """Assemble via cache-sized group chunks on a thread pool.

        The lane axis is split into chunks of ``chunk_groups`` element
        groups; each chunk replays the tape into a per-thread arena slab
        (numpy ufuncs drop the GIL, so chunks genuinely overlap) and
        writes its scatter values into a disjoint slice of the shared
        values buffer.  The final ``bincount`` flush runs serially on the
        full buffer afterwards, so the result is **bitwise identical** to
        :meth:`execute` regardless of thread count or scheduling order.

        ``chunk_groups`` resolves explicit argument > the plan's autotuned
        winner (:func:`repro.core.autotune.autotune_chunk_groups`) > a
        cache-footprint heuristic; ``num_threads`` defaults to the CPU
        count.
        """
        from ..parallel import threads as _threads

        velocity = self._check_velocity(velocity)
        if rhs is None:
            rhs = np.zeros((self.nnode, self.ncomp))
        nthreads = _threads.resolve_num_threads(num_threads)
        cg = chunk_groups
        if cg is None:
            cg = self.plan.tuned_chunk_groups(self.program.variant)
        if cg is None:
            cg = _threads.default_chunk_groups(
                self.program.nbufs, self.vector_dim, self.ngroups, nthreads
            )
        cg = max(1, min(int(cg), self.ngroups))
        bounds = list(range(0, self.ngroups, cg)) + [self.ngroups]
        chunks = list(zip(bounds[:-1], bounds[1:]))
        with self.tracer.span(
            "tape.execute_chunked",
            variant=self.program.variant,
            vector_dim=self.vector_dim,
            nlane=self.nlane,
            chunks=len(chunks),
            threads=nthreads,
            chunk_groups=cg,
        ):
            np.copyto(self._vcols, velocity.T)
            profile = None
            if self.profiler.enabled:
                profile = self.profiler.for_program(
                    self.program, self.vector_dim, "threads"
                )
            threaded = nthreads > 1 and len(chunks) > 1
            if not threaded:
                if profile is None:
                    for g0, g1 in chunks:
                        self._execute_ops_slice(g0, g1, self._arena, self._mask)
                else:
                    for g0, g1 in chunks:
                        self._execute_ops_slice_timed(
                            g0, g1, self._arena, self._mask, profile
                        )
            else:
                slabs = _threads.SlabPool(
                    max(self.program.nbufs, 1),
                    cg * self.vector_dim,
                    min(nthreads, len(chunks)),
                )
                pool = _threads.get_thread_pool(nthreads)
                for future in [
                    pool.submit(self._run_chunk, g0, g1, slabs, profile)
                    for g0, g1 in chunks
                ]:
                    future.result()
            self._flush(rhs, profile)
            if profile is not None:
                profile.finish_execution()
        registry = get_registry()
        registry.counter("tape.executions").inc()
        registry.counter("tape.lanes_executed").inc(self.nlane)
        registry.counter("locality.chunks_executed").inc(len(chunks))
        if threaded:
            registry.counter("locality.threaded_executions").inc()
        return rhs


# ---------------------------------------------------------------------------
# Elemental executor (multiprocess workers)
# ---------------------------------------------------------------------------


class ElementalTape:
    """Replay a :class:`TapeProgram` against packed per-element arrays.

    This is the worker-side flavour: instead of mesh-wide gathers it reads
    slices of the shared-memory-packed ``xel``/``uel`` arrays the
    multiprocess runner already distributes, and instead of a deferred
    global scatter it accumulates ``(n, nnode_per_element, 3)`` elemental
    contributions (the parent performs the global reduction).  The arena
    is lazily (re)bound to the chunk size and reused across repeats.
    """

    def __init__(self, program: TapeProgram) -> None:
        self.program = program
        #: set to a :class:`repro.obs.profiler.TapeProfile` to time ops
        self.profile = None
        self._n = -1
        self._arena: Optional[np.ndarray] = None
        self._mask: Optional[np.ndarray] = None

    def _bind(self, n: int) -> None:
        self._arena = np.empty((max(self.program.nbufs, 1), n))
        self._mask = np.empty(n, dtype=bool)
        self._n = n

    def __call__(self, xel: np.ndarray, uel: np.ndarray) -> np.ndarray:
        n = xel.shape[0]
        if n != self._n:
            self._bind(n)
        arena = self._arena
        mask = self._mask
        nnpe = self.program.nnode_per_element
        out_rhs = np.zeros((n, nnpe, 3))
        if self.profile is not None:
            self._call_timed(xel, uel, arena, mask, out_rhs, n)
            return out_rhs
        for op in self.program.ops:
            code = op[0]
            if code == 0:
                _, uf, a, b, out = op
                _ufunc(uf)(
                    a if _is_scalar(a) else arena[a],
                    b if _is_scalar(b) else arena[b],
                    out=arena[out],
                )
            elif code == 1:
                _, uf, a, out = op
                _ufunc(uf)(a if _is_scalar(a) else arena[a], out=arena[out])
            elif code == 2:
                _, x, a, b, thresh, out = op
                np.greater(arena[x], thresh, out=mask)
                dst = arena[out]
                if _is_scalar(b):
                    dst[...] = b
                else:
                    dst[...] = arena[b]
                np.copyto(dst, a if _is_scalar(a) else arena[a], where=mask)
            elif code == 3:
                _, slot, comp, out = op
                np.copyto(arena[out], xel[:, slot, comp])
            elif code == 4:
                _, field, slot, comp, out = op
                np.copyto(arena[out], uel[:, slot, comp])
            else:  # code == 5
                _, call, slot, comp, src = op
                out_rhs[:, slot, comp] += src if _is_scalar(src) else arena[src]
        return out_rhs

    def _call_timed(self, xel, uel, arena, mask, out_rhs, n) -> None:
        """Profiled twin of :meth:`__call__`'s op loop (identical op
        stream into identical buffers; one clock read per op)."""
        profile = self.profile
        clock = time.perf_counter
        for i, op in enumerate(self.program.ops):
            code = op[0]
            t0 = clock()
            if code == 0:
                _, uf, a, b, out = op
                _ufunc(uf)(
                    a if _is_scalar(a) else arena[a],
                    b if _is_scalar(b) else arena[b],
                    out=arena[out],
                )
            elif code == 1:
                _, uf, a, out = op
                _ufunc(uf)(a if _is_scalar(a) else arena[a], out=arena[out])
            elif code == 2:
                _, x, a, b, thresh, out = op
                np.greater(arena[x], thresh, out=mask)
                dst = arena[out]
                if _is_scalar(b):
                    dst[...] = b
                else:
                    dst[...] = arena[b]
                np.copyto(dst, a if _is_scalar(a) else arena[a], where=mask)
            elif code == 3:
                _, slot, comp, out = op
                np.copyto(arena[out], xel[:, slot, comp])
            elif code == 4:
                _, field, slot, comp, out = op
                np.copyto(arena[out], uel[:, slot, comp])
            else:  # code == 5
                _, call, slot, comp, src = op
                out_rhs[:, slot, comp] += src if _is_scalar(src) else arena[src]
            profile.record(i, clock() - t0, n)
        profile.finish_execution()


# ---------------------------------------------------------------------------
# Scenario-batched compilation and execution
# ---------------------------------------------------------------------------

#: rank lattice of a batched tape value.  ``srow`` is a per-scenario
#: ``(S, 1)`` parameter row, ``vec`` a rank-1 ``(lanes,)`` vector shared
#: by all scenarios, ``full`` a per-scenario ``(S, lanes)`` matrix.
#: ``join(vec, srow) = full``; scalars are rank-neutral.
_RANKS = ("srow", "vec", "full")


def _infer_ranks(ops, velocity_rank: str) -> Dict[int, str]:
    """Rank of every SSA value: srow / vec / full."""
    rank: Dict[int, str] = {}
    for op in ops:
        tag = op[0]
        if tag == "rp":
            rank[op[2]] = "srow"
        elif tag == "gc":
            rank[op[3]] = "vec"
        elif tag == "gf":
            rank[op[4]] = velocity_rank
        elif tag in ("bin", "un", "sel"):
            rs = {
                rank[r] for r in _op_inputs(op) if not _is_scalar(r)
            }
            if rs <= {"srow"}:
                rank[op[-1]] = "srow"
            elif rs == {"vec"}:
                rank[op[-1]] = "vec"
            else:
                rank[op[-1]] = "full"
    return rank


@dataclasses.dataclass(frozen=True)
class BatchTapeProgram:
    """A compiled scenario-batched tape.

    The op stream is split by rank: ``param_ops`` is the tiny
    scenario-row stage (all-``srow`` chains, evaluated once per execute
    into ``nq`` persistent ``(S, 1)`` buffers ``Q``); ``ops`` is the
    lane-wide body.  Body operands are tagged: a folded ``np.float64``
    scalar, ``("q", k)`` for param row ``Q[k]``, ``("v", row)`` for a
    rank-1 arena row or ``("f", row)`` for an ``(S, lanes)`` arena row.

    Body op forms (last element is always the tagged output)::

        ("bin", ufunc_name, a, b, out)
        ("un",  ufunc_name, a, out)
        ("sel", x, a, b, thresh, out)
        ("gc",  node_slot, component, out)      # coordinate gather (vec)
        ("gf",  node_slot, component, out)      # velocity gather
        ("sc",  call, node_slot, component, src)

    Param-stage op forms (refs are ``np.float64`` scalars or ``Q``
    indices)::

        ("rp",  name, out)                      # refresh from the batch
        ("bin", ufunc_name, a, b, out)
        ("un",  ufunc_name, a, out)
        ("sel", x, a, b, thresh, out)
    """

    variant: str
    batch_key: tuple
    scenarios: int
    velocity_rank: str
    param_ops: Tuple[tuple, ...]
    nq: int
    ops: Tuple[tuple, ...]
    nbufs_vec: int
    nbufs_full: int
    scatter_calls: Tuple[Tuple[int, int], ...]
    report: TapeReport
    nnode_per_element: int = 4


def _eval_param_stage(program: BatchTapeProgram, param_rows, Q) -> None:
    """Evaluate the ``(S, 1)`` scenario-row stage in place.

    Elementwise ``np.float64`` ufuncs over per-scenario rows -- each row
    computes exactly the scalar chain a serial recording would have
    folded for that scenario, so batched results stay bit-identical.
    """
    for op in program.param_ops:
        tag = op[0]
        if tag == "rp":
            np.copyto(Q[op[2]], param_rows[op[1]])
        elif tag == "bin":
            _, uf, a, b, out = op
            _ufunc(uf)(
                a if _is_scalar(a) else Q[a],
                b if _is_scalar(b) else Q[b],
                out=Q[out],
            )
        elif tag == "un":
            _, uf, a, out = op
            _ufunc(uf)(a if _is_scalar(a) else Q[a], out=Q[out])
        else:  # sel: x is srow (scalar x folds at record time)
            _, x, a, b, thresh, out = op
            m = np.greater(Q[x], thresh)
            dst = Q[out]
            if _is_scalar(b):
                dst[...] = b
            else:
                dst[...] = Q[b]
            np.copyto(dst, a if _is_scalar(a) else Q[a], where=m)


def compile_batch_tape(
    recorder: BatchRecordingBackend,
    variant: str,
    batch_key: tuple,
    scenarios: int,
    velocity_rank: str = "vec",
) -> BatchTapeProgram:
    """Lower a batch-recorded tape: rank split, DCE, two-pool liveness."""
    if velocity_rank not in ("vec", "full"):
        raise ValueError(
            f"velocity_rank must be 'vec' or 'full', got {velocity_rank!r}"
        )
    ops = recorder.ops
    rank = _infer_ranks(ops, velocity_rank)

    # -- DCE backwards from the scatter roots (rp has no inputs) ---------
    needed: set = set()
    keep = [False] * len(ops)
    for i in range(len(ops) - 1, -1, -1):
        op = ops[i]
        if op[0] == "sc" or (not _is_scalar(op[-1]) and op[-1] in needed):
            keep[i] = True
            for ref in _op_inputs(op):
                if not _is_scalar(ref):
                    needed.add(ref)
    live_ops = [op for op, k in zip(ops, keep) if k]

    # -- split off the (S, 1) scenario-row stage -------------------------
    # srow ops are closed under their inputs (scalar/srow only), so the
    # whole stage is a tiny straight-line prefix evaluated once per
    # execute; every srow value gets its own persistent Q row.
    q_of: Dict[int, int] = {}
    param_ops: List[tuple] = []
    body: List[tuple] = []
    for op in live_ops:
        tag = op[0]
        is_param = tag == "rp" or (
            tag in ("bin", "un", "sel") and rank[op[-1]] == "srow"
        )
        if is_param:
            out = op[-1]
            q_of[out] = len(q_of)

            def qref(r):
                return r if _is_scalar(r) else q_of[r]

            if tag == "rp":
                param_ops.append(("rp", op[1], q_of[out]))
            elif tag == "bin":
                param_ops.append(
                    ("bin", _UFUNC_NAMES[op[1]], qref(op[2]), qref(op[3]),
                     q_of[out])
                )
            elif tag == "un":
                param_ops.append(
                    ("un", _UFUNC_NAMES[op[1]], qref(op[2]), q_of[out])
                )
            else:
                param_ops.append(
                    ("sel", qref(op[1]), qref(op[2]), qref(op[3]), op[4],
                     q_of[out])
                )
        else:
            body.append(op)

    # -- liveness over the body (srow refs are external, never freed) ----
    last_use: Dict[int, int] = {}
    for j, op in enumerate(body):
        for ref in _op_inputs(op):
            if not _is_scalar(ref) and ref not in q_of:
                last_use[ref] = j

    buf_of: Dict[int, int] = {}
    free = {"vec": [], "full": []}
    nbufs = {"vec": 0, "full": 0}
    for j, op in enumerate(body):
        protected = None
        if op[0] == "sel" and not _is_scalar(op[2]) and op[2] not in q_of:
            protected = op[2]
        deferred = None
        for ref in set(_op_inputs(op)):
            if (
                _is_scalar(ref)
                or ref in q_of
                or last_use.get(ref) != j
            ):
                continue
            if ref == protected:
                deferred = ref
            else:
                free[rank[ref]].append(buf_of[ref])
        if op[0] != "sc":
            out = op[-1]
            pool = rank[out]
            if free[pool]:
                buf_of[out] = free[pool].pop()
            else:
                buf_of[out] = nbufs[pool]
                nbufs[pool] += 1
        if deferred is not None:
            free[rank[deferred]].append(buf_of[deferred])

    # -- lower body ops with tagged operands ------------------------------
    def ref_of(r: Ref):
        if _is_scalar(r):
            return r
        if r in q_of:
            return ("q", q_of[r])
        return ("f" if rank[r] == "full" else "v", buf_of[r])

    lowered: List[tuple] = []
    call = 0
    nfull = 0
    for op in body:
        tag = op[0]
        if tag == "bin":
            lowered.append(
                ("bin", _UFUNC_NAMES[op[1]], ref_of(op[2]), ref_of(op[3]),
                 ref_of(op[4]))
            )
        elif tag == "un":
            lowered.append(
                ("un", _UFUNC_NAMES[op[1]], ref_of(op[2]), ref_of(op[3]))
            )
        elif tag == "sel":
            lowered.append(
                ("sel", ref_of(op[1]), ref_of(op[2]), ref_of(op[3]), op[4],
                 ref_of(op[5]))
            )
        elif tag == "gc":
            lowered.append(("gc", op[1], op[2], ref_of(op[3])))
        elif tag == "gf":
            if op[1] != "velocity":
                raise ValueError(
                    f"batched tape gathers unknown field {op[1]!r}; the "
                    "batched executor only binds 'velocity'"
                )
            lowered.append(("gf", op[2], op[3], ref_of(op[4])))
        elif tag == "sc":
            lowered.append(("sc", call, op[1], op[2], ref_of(op[3])))
            call += 1
        else:  # pragma: no cover - defensive
            raise ValueError(f"unexpected body op {tag!r}")
        if tag != "sc" and rank.get(op[-1]) == "full":
            nfull += 1

    nvec_ops = sum(
        1 for op in body if op[0] != "sc" and rank.get(op[-1]) == "vec"
    )
    tags = [op[0] for op in lowered]
    report = TapeReport(
        variant=variant,
        ops_recorded=len(ops),
        ops_live=len(live_ops),
        dce_removed=len(ops) - len(live_ops),
        folded_scalars=recorder.folded_scalars,
        gather_reuses=recorder.gather_reuses,
        scatter_calls=len(recorder.scatter_calls),
        buffers_live=nbufs["vec"] + nbufs["full"],
        binary_ops=tags.count("bin"),
        unary_ops=tags.count("un"),
        select_ops=tags.count("sel"),
        gather_ops=tags.count("gc") + tags.count("gf"),
        srow_ops=len(param_ops),
        vec_ops=nvec_ops,
        full_ops=nfull,
        scenarios=scenarios,
    )
    return BatchTapeProgram(
        variant=variant,
        batch_key=tuple(batch_key),
        scenarios=int(scenarios),
        velocity_rank=velocity_rank,
        param_ops=tuple(param_ops),
        nq=len(q_of),
        ops=tuple(lowered),
        nbufs_vec=nbufs["vec"],
        nbufs_full=nbufs["full"],
        scatter_calls=tuple(recorder.scatter_calls),
        report=report,
        nnode_per_element=recorder.ctx.nnode_per_element,
    )


def record_batch_program(
    variant_name: str,
    batch,
    velocity_rank: str = "vec",
    nnode_per_element: int = 4,
) -> BatchTapeProgram:
    """Record a variant once for a scenario batch and compile it.

    Like :func:`record_program`, but runtime parameters that vary across
    the batch stay symbolic (per-scenario rows) instead of folding.
    """
    variant = get_variant(variant_name)
    ctx = KernelContext(
        connectivity=np.zeros((1, nnode_per_element), dtype=np.int64),
        coords=np.zeros((1, 3)),
        fields={"velocity": np.zeros((1, 3))},
        rhs=np.zeros((1, 3)),
        params=dict(batch.recording_params()),
        nnode_per_element=nnode_per_element,
    )
    with get_tracer().span(
        "tape.record_batch", variant=variant.name, scenarios=batch.size
    ):
        recorder = BatchRecordingBackend(ctx, batch.varying)
        variant.kernel(recorder, ctx)
        program = compile_batch_tape(
            recorder, variant.name, batch.cache_key(), batch.size,
            velocity_rank,
        )
    registry = get_registry()
    registry.counter("tape.batch_records").inc()
    registry.gauge(f"tape.batch_full_ops.{variant.name}").set(
        program.report.full_ops
    )
    return program


class BatchedTape:
    """Replay a :class:`BatchTapeProgram` over ``S`` scenarios at once.

    Shares the serial tape's gather indices, coordinate columns and
    scatter index pattern (same plan key), so a batch pays plan setup
    once.  Rank-1 (``vec``) ops run once per batch over the stacked lane
    axis; only ``full`` ops -- chains downstream of a varying parameter
    or of per-scenario velocities -- run over ``(S, lanes)``.  Scatter
    values land in an ``(S, ngroups, ncalls, vector_dim)`` buffer flushed
    by **one** offset ``bincount`` (:func:`repro.fem.plan.flush_batch`),
    bit-identical per scenario to the serial flush.

    Execution is chunked over element groups (like the generated kernels)
    so the ``(S, lanes)`` arena stays cache-sized; every chunk's operand
    arrays are resolved once into prebound op tuples, cached per
    ``(chunk_groups, nslabs)``, so steady-state replay does no Python-
    level ref resolution.
    """

    #: target bytes per arena slab for the default chunk size
    TARGET_SLAB_BYTES = 8 << 20

    def __init__(
        self,
        program: BatchTapeProgram,
        plan,
        packing,
        perm_key=None,
        tracer=NULL_TRACER,
    ):
        self.program = program
        self.plan = plan
        self.packing = packing
        self.tracer = tracer
        self.profiler = NULL_PROFILER
        self.S = program.scenarios
        mesh = plan.mesh
        self.nnode = int(mesh.nnode)
        self.ncomp = 3
        groups = packing.groups()
        self.ngroups = len(groups)
        self.vector_dim = int(packing.vector_dim)
        self.nlane = self.ngroups * self.vector_dim
        nnpe = program.nnode_per_element

        conn3 = np.stack([g.connectivity for g in groups])
        conn_all = conn3.reshape(self.nlane, nnpe)
        self._idx = [
            np.ascontiguousarray(conn_all[:, s], dtype=np.int64)
            for s in range(nnpe)
        ]
        self._ccols = [
            np.ascontiguousarray(mesh.coords[:, c]) for c in range(3)
        ]
        if program.velocity_rank == "full":
            self._vcols = np.empty((3, self.S, self.nnode))
        else:
            self._vcols = np.empty((3, self.nnode))

        # -- scatter pattern: shared with the serial tape ----------------
        ncalls = len(program.scatter_calls)
        self._ncalls = ncalls
        signature = tuple(
            (g, slot, comp)
            for g in range(self.ngroups)
            for (slot, comp) in program.scatter_calls
        )
        key = (program.variant, self.vector_dim, perm_key)
        pattern = plan.scatter_pattern(key)
        registry = get_registry()
        if pattern is None:
            from ..fem.plan import seed_flush_order

            trash = self.nnode * self.ncomp
            active3 = np.stack([g.active for g in groups])
            indices = np.empty(
                (self.ngroups, ncalls, self.vector_dim), dtype=np.int64
            )
            for c, (slot, comp) in enumerate(program.scatter_calls):
                icol = conn3[:, :, slot] * self.ncomp + comp
                np.copyto(indices[:, c, :], np.where(active3, icol, trash))
            order = None
            seed_ids = mesh.seed_element_ids
            if seed_ids is not None:
                lane_seed = np.concatenate(
                    [seed_ids[g.element_ids] for g in groups]
                )
                order = seed_flush_order(
                    lane_seed, active3.reshape(-1), ncalls, self.vector_dim
                )
            pattern = plan.store_scatter_pattern(
                key, indices.reshape(-1), signature, order=order
            )
            registry.counter("scatter.pattern_builds").inc()
        else:
            if pattern.signature != signature:
                raise RuntimeError(
                    "scatter pattern mismatch: cached plan pattern does "
                    "not match the batched tape's call order"
                )
            registry.counter("scatter.pattern_reuses").inc()
        self._pattern = pattern

        # -- persistent buffers ------------------------------------------
        from ..fem.plan import batch_flush_indices

        self._batch_indices = batch_flush_indices(
            pattern, self.S, self.nnode, self.ncomp
        )
        self._values = np.empty(
            (self.S, self.ngroups, ncalls, self.vector_dim)
        )
        self._values2d = self._values.reshape(self.S, -1)
        self._Q = [np.empty((self.S, 1)) for _ in range(program.nq)]
        #: current per-scenario parameter rows (name -> (S, 1) array);
        #: refreshed by the plan wrapper on every cache hit
        self.param_rows: Dict[str, np.ndarray] = {}
        self._ufuncs = {name: _ufunc(name) for name in _UFUNC_NAMES.values()}
        self._closure_cache: Dict[tuple, list] = {}

    @property
    def report(self) -> TapeReport:
        return self.program.report

    # -- chunk planning ---------------------------------------------------

    def _default_chunk_groups(self) -> int:
        """Largest chunk whose two arena slabs fit the byte target."""
        per_lane = 8 * (
            self.program.nbufs_vec + 1
            + (self.program.nbufs_full + 1) * self.S
        )
        cg = self.TARGET_SLAB_BYTES // max(per_lane * self.vector_dim, 1)
        return max(1, min(int(cg), self.ngroups))

    def _resolve_cg(self, chunk_groups) -> int:
        if chunk_groups is not None:
            return max(1, min(int(chunk_groups), self.ngroups))
        cg = self.plan.tuned_chunk_groups(self.program.variant)
        if cg is not None:
            return max(1, min(int(cg), self.ngroups))
        return self._default_chunk_groups()

    def _bind_chunk(self, g0: int, g1: int, slab) -> Tuple[list, list]:
        """Resolve one chunk's ops to prebound ``(code, arrays...)``.

        Returns the op list and a parallel per-op lane-count list (honest
        work: ``n`` lanes for rank-1 ops, ``S * n`` for full-rank ones).
        """
        arena_v, arena_f_flat, mask_v, mask_f_flat, mask_q = slab
        vd = self.vector_dim
        lo = g0 * vd
        n = (g1 - g0) * vd
        nrows = g1 - g0
        S = self.S
        lanes = slice(lo, lo + n)
        Q = self._Q

        def arr(ref):
            tag = ref[0]
            if tag == "v":
                return arena_v[ref[1], :n]
            if tag == "f":
                return arena_f_flat[ref[1], : S * n].reshape(S, n)
            return Q[ref[1]]  # "q"

        # lowered operands are tagged tuples or folded np.float64 scalars
        # (never plain ints, so tuple-ness is the whole scalar test here)
        def operand(ref):
            return arr(ref) if isinstance(ref, tuple) else ref

        def lanes_of(ref) -> int:
            if not isinstance(ref, tuple) or ref[0] == "q":
                return S
            return S * n if ref[0] == "f" else n

        ops: List[tuple] = []
        nlanes: List[int] = []
        for op in self.program.ops:
            tag = op[0]
            if tag == "bin":
                ops.append((0, self._ufuncs[op[1]], operand(op[2]),
                            operand(op[3]), arr(op[4])))
                nlanes.append(lanes_of(op[4]))
            elif tag == "un":
                ops.append((1, self._ufuncs[op[1]], operand(op[2]),
                            arr(op[3])))
                nlanes.append(lanes_of(op[3]))
            elif tag == "sel":
                x = op[1]
                if not isinstance(x, tuple) or x[0] == "q":
                    m = mask_q
                elif x[0] == "f":
                    m = mask_f_flat[: S * n].reshape(S, n)
                else:
                    m = mask_v[:n]
                ops.append((2, operand(x), operand(op[2]), operand(op[3]),
                            op[4], arr(op[5]), m))
                nlanes.append(lanes_of(op[5]))
            elif tag == "gc":
                ops.append((3, self._ccols[op[2]], self._idx[op[1]][lanes],
                            arr(op[3])))
                nlanes.append(n)
            elif tag == "gf":
                if self.program.velocity_rank == "full":
                    ops.append((4, self._vcols[op[2]],
                                self._idx[op[1]][lanes], arr(op[3])))
                    nlanes.append(S * n)
                else:
                    ops.append((3, self._vcols[op[2]],
                                self._idx[op[1]][lanes], arr(op[3])))
                    nlanes.append(n)
            else:  # sc
                _, call, slot, comp, src = op
                dst = self._values[:, g0:g1, call, :]
                if not isinstance(src, tuple):
                    ops.append((6, dst, src))
                    nlanes.append(S * n)
                elif src[0] == "q":
                    ops.append((5, dst, Q[src[1]].reshape(S, 1, 1)))
                    nlanes.append(S * n)
                elif src[0] == "f":
                    ops.append((5, dst, arr(src).reshape(S, nrows, vd)))
                    nlanes.append(S * n)
                else:
                    ops.append((5, dst, arr(src).reshape(nrows, vd)))
                    nlanes.append(S * n)
        return ops, nlanes

    def _closures(self, cg: int, nslabs: int) -> list:
        """Per-slab lists of prebound chunks, cached per (cg, nslabs)."""
        cached = self._closure_cache.get((cg, nslabs))
        if cached is not None:
            return cached
        bounds = list(range(0, self.ngroups, cg)) + [self.ngroups]
        chunks = list(zip(bounds[:-1], bounds[1:]))
        nslabs = max(1, min(nslabs, len(chunks)))
        cgw = cg * self.vector_dim
        S = self.S
        slabs = [
            (
                np.empty((max(self.program.nbufs_vec, 1), cgw)),
                np.empty((max(self.program.nbufs_full, 1), S * cgw)),
                np.empty(cgw, dtype=bool),
                np.empty(S * cgw, dtype=bool),
                np.empty((S, 1), dtype=bool),
            )
            for _ in range(nslabs)
        ]
        per_slab: List[list] = [[] for _ in range(nslabs)]
        for i, (g0, g1) in enumerate(chunks):
            per_slab[i % nslabs].append(self._bind_chunk(g0, g1, slabs[i % nslabs]))
        self._closure_cache[(cg, nslabs)] = per_slab
        return per_slab

    # -- op execution -----------------------------------------------------

    @staticmethod
    def _run_ops(ops: list) -> None:
        for op in ops:
            code = op[0]
            if code == 0:
                op[1](op[2], op[3], out=op[4])
            elif code == 1:
                op[1](op[2], out=op[3])
            elif code == 2:
                _, x, a, b, thresh, out, m = op
                np.greater(x, thresh, out=m)
                out[...] = b
                np.copyto(out, a, where=m)
            elif code == 3:
                np.take(op[1], op[2], out=op[3])
            elif code == 4:
                np.take(op[1], op[2], axis=1, out=op[3])
            elif code == 5:
                np.copyto(op[1], op[2])
            else:  # code == 6
                op[1][...] = op[2]

    @staticmethod
    def _run_ops_timed(ops: list, nlanes: list, profile) -> None:
        clock = time.perf_counter
        for i, op in enumerate(ops):
            code = op[0]
            t0 = clock()
            if code == 0:
                op[1](op[2], op[3], out=op[4])
            elif code == 1:
                op[1](op[2], out=op[3])
            elif code == 2:
                _, x, a, b, thresh, out, m = op
                np.greater(x, thresh, out=m)
                out[...] = b
                np.copyto(out, a, where=m)
            elif code == 3:
                np.take(op[1], op[2], out=op[3])
            elif code == 4:
                np.take(op[1], op[2], axis=1, out=op[3])
            elif code == 5:
                np.copyto(op[1], op[2])
            else:
                op[1][...] = op[2]
            profile.record(i, clock() - t0, nlanes[i])

    def _run_slab(self, chunks: list, profile=None) -> None:
        if profile is None:
            for ops, _ in chunks:
                self._run_ops(ops)
        else:
            for ops, nlanes in chunks:
                self._run_ops_timed(ops, nlanes, profile)

    # -- public API -------------------------------------------------------

    def _check_velocity(self, velocity: np.ndarray) -> np.ndarray:
        velocity = np.asarray(velocity, dtype=np.float64)
        if self.program.velocity_rank == "full":
            want = (self.S, self.nnode, 3)
        else:
            want = (self.nnode, 3)
        if velocity.shape != want:
            raise ValueError(
                f"velocity must be {want} for velocity_rank="
                f"{self.program.velocity_rank!r}, got {velocity.shape}"
            )
        return velocity

    def _refresh_inputs(self, velocity: np.ndarray) -> None:
        if self.program.velocity_rank == "full":
            np.copyto(self._vcols, np.moveaxis(velocity, -1, 0))
        else:
            np.copyto(self._vcols, velocity.T)
        _eval_param_stage(self.program, self.param_rows, self._Q)

    def _flush(self, rhs: np.ndarray, profile=None) -> None:
        from ..fem.plan import flush_batch

        with self.tracer.span(
            "scatter.flush_batch",
            variant=self.program.variant,
            scenarios=self.S,
        ):
            t0 = time.perf_counter()
            flush_batch(
                self._pattern, self._batch_indices, self._values2d, rhs,
                self.nnode, self.ncomp,
            )
            if profile is not None:
                moved = 2.0 * self._values2d.nbytes + rhs.nbytes
                profile.record_flush(time.perf_counter() - t0, moved)

    def _profile(self):
        if not self.profiler.enabled:
            return None
        return self.profiler.for_batch_program(
            self.program, self.vector_dim,
            "threads" if getattr(self, "_threaded", False) else "serial",
        )

    def execute(
        self,
        velocity: np.ndarray,
        rhs: Optional[np.ndarray] = None,
        chunk_groups: Optional[int] = None,
    ) -> np.ndarray:
        """Assemble all ``S`` scenario RHS vectors: ``(S, nnode, 3)``."""
        velocity = self._check_velocity(velocity)
        if rhs is None:
            rhs = np.zeros((self.S, self.nnode, self.ncomp))
        cg = self._resolve_cg(chunk_groups)
        self._threaded = False
        with self.tracer.span(
            "tape.execute_batch",
            variant=self.program.variant,
            scenarios=self.S,
            vector_dim=self.vector_dim,
            nlane=self.nlane,
        ):
            self._refresh_inputs(velocity)
            profile = self._profile()
            per_slab = self._closures(cg, 1)
            self._run_slab(per_slab[0], profile)
            self._flush(rhs, profile)
            if profile is not None:
                profile.finish_execution()
        registry = get_registry()
        registry.counter("tape.batch_executions").inc()
        registry.counter("tape.batch_scenarios").inc(self.S)
        registry.counter("tape.lanes_executed").inc(self.nlane)
        return rhs

    def execute_chunked(
        self,
        velocity: np.ndarray,
        rhs: Optional[np.ndarray] = None,
        num_threads: Optional[int] = None,
        chunk_groups: Optional[int] = None,
    ) -> np.ndarray:
        """Threaded batched assembly; bitwise identical to :meth:`execute`.

        Chunks write disjoint slices of the shared values buffer and the
        offset-``bincount`` flush runs serially afterwards, so thread
        count and scheduling order cannot change a bit.
        """
        from ..parallel import threads as _threads

        velocity = self._check_velocity(velocity)
        if rhs is None:
            rhs = np.zeros((self.S, self.nnode, self.ncomp))
        nthreads = _threads.resolve_num_threads(num_threads)
        cg = self._resolve_cg(chunk_groups)
        nchunks = -(-self.ngroups // cg)
        threaded = nthreads > 1 and nchunks > 1
        self._threaded = threaded
        with self.tracer.span(
            "tape.execute_batch_chunked",
            variant=self.program.variant,
            scenarios=self.S,
            vector_dim=self.vector_dim,
            chunks=nchunks,
            threads=nthreads,
        ):
            self._refresh_inputs(velocity)
            profile = self._profile()
            per_slab = self._closures(
                cg, min(nthreads, nchunks) if threaded else 1
            )
            if not threaded:
                self._run_slab(per_slab[0], profile)
            else:
                pool = _threads.get_thread_pool(nthreads)
                for future in [
                    pool.submit(self._run_slab, chunks, profile)
                    for chunks in per_slab
                ]:
                    future.result()
            self._flush(rhs, profile)
            if profile is not None:
                profile.finish_execution()
        registry = get_registry()
        registry.counter("tape.batch_executions").inc()
        registry.counter("tape.batch_scenarios").inc(self.S)
        registry.counter("tape.lanes_executed").inc(self.nlane)
        registry.counter("locality.chunks_executed").inc(nchunks)
        if threaded:
            registry.counter("locality.threaded_executions").inc()
        return rhs


# ---------------------------------------------------------------------------
# Plan-level cache
# ---------------------------------------------------------------------------


def tape_cache_key(
    variant_name: str,
    vector_dim: int,
    permutation: Optional[np.ndarray],
    kernel_params: Dict[str, float],
) -> tuple:
    perm_key = None if permutation is None else np.asarray(
        permutation, dtype=np.int64
    ).tobytes()
    return (
        variant_name.upper(),
        int(vector_dim),
        perm_key,
        tuple(sorted(kernel_params.items())),
    )


def compiled_tape(
    plan,
    variant_name: str,
    vector_dim: int,
    permutation: Optional[np.ndarray] = None,
    kernel_params: Optional[Dict[str, float]] = None,
    tracer=None,
    profiler=None,
) -> CompiledTape:
    """The plan-cached :class:`CompiledTape` for one configuration.

    Tapes are recorded once per ``(variant, vector_dim, permutation,
    kernel params)`` and cached on the :class:`~repro.fem.plan.AssemblyPlan`;
    mesh reorientation invalidates the plan (and with it every tape), so
    the effective key is ``(variant, vector_dim, mesh version)`` as the
    tape contract requires.
    """
    kernel_params = dict(kernel_params or {})
    key = tape_cache_key(variant_name, vector_dim, permutation, kernel_params)
    tape = plan.cached_tape(key)
    registry = get_registry()
    if tape is None:
        with get_tracer().span(
            "tape.compile", variant=key[0], vector_dim=int(vector_dim)
        ):
            program = record_program(key[0], kernel_params)
            packing = plan.packing(int(vector_dim), permutation=permutation)
            tape = CompiledTape(program, plan, packing, perm_key=key[2])
        plan.store_tape(key, tape)
        registry.counter("tape.compiles").inc()
    else:
        registry.counter("tape.cache_hits").inc()
    if tracer is not None:
        tape.tracer = tracer
    # Always (re)set the profiler: tapes are plan-cached and shared across
    # assemblers, so a stale profiler must never leak into an unprofiled
    # sweep (unlike the tracer, which is additive and harmless to keep).
    tape.profiler = profiler if profiler is not None else NULL_PROFILER
    return tape


def batch_tape_cache_key(
    variant_name: str,
    vector_dim: int,
    permutation: Optional[np.ndarray],
    batch,
    velocity_rank: str,
) -> tuple:
    perm_key = None if permutation is None else np.asarray(
        permutation, dtype=np.int64
    ).tobytes()
    return (
        variant_name.upper(),
        int(vector_dim),
        perm_key,
        "batch",
        batch.cache_key(),
        velocity_rank,
    )


def batched_tape(
    plan,
    variant_name: str,
    vector_dim: int,
    batch,
    permutation: Optional[np.ndarray] = None,
    velocity_rank: str = "vec",
    tracer=None,
    profiler=None,
) -> BatchedTape:
    """The plan-cached :class:`BatchedTape` for one batch configuration.

    Keyed on everything baked into the recording -- variant, group size,
    permutation, batch size, *which* parameters vary, every folded
    constant and flag, and the velocity rank.  The varying parameter
    *values* live outside the tape: they are refreshed from ``batch`` on
    every call, so sweeping a campaign over new values of the same
    parameters re-records nothing.
    """
    key = batch_tape_cache_key(
        variant_name, vector_dim, permutation, batch, velocity_rank
    )
    tape = plan.cached_tape(key)
    registry = get_registry()
    if tape is None:
        with get_tracer().span(
            "tape.compile_batch",
            variant=key[0],
            vector_dim=int(vector_dim),
            scenarios=batch.size,
        ):
            program = record_batch_program(
                key[0], batch, velocity_rank=velocity_rank
            )
            packing = plan.packing(int(vector_dim), permutation=permutation)
            tape = BatchedTape(program, plan, packing, perm_key=key[2])
        plan.store_tape(key, tape)
        registry.counter("tape.batch_compiles").inc()
    else:
        registry.counter("tape.batch_cache_hits").inc()
    tape.param_rows = batch.param_rows()
    if tracer is not None:
        tape.tracer = tracer
    tape.profiler = profiler if profiler is not None else NULL_PROFILER
    return tape
