"""Unified assembly driver: run any kernel variant over a whole mesh.

This is the "one code base, two paths" layer: it chunks the mesh into
``VECTOR_DIM`` element groups (:class:`repro.fem.packing.ElementPacking`),
builds a :class:`~repro.core.dsl.KernelContext` per group and executes the
chosen variant with the numpy backend.  The CPU path uses small groups (the
paper's ``VECTOR_DIM=16``); the GPU path uses one huge group per "kernel
launch" (``VECTOR_DIM=2048k``).

The driver also validates specialization compatibility: dispatching a
*specialized* variant with runtime parameters that contradict its
compile-time constants raises :class:`SpecializationError` -- the paper's
"our current implementation can not cover the full range of problems the
original code could handle" made explicit.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from ..fem.mesh import TetMesh
from ..fem.packing import ElementPacking
from ..fem.plan import get_plan
from ..obs.spans import NULL_TRACER
from ..physics.momentum import AssemblyParams
from ..physics.convection import ConvectiveForm
from ..physics.turbulence import TurbulenceModel
from .dsl import (
    KernelContext,
    NumpyBackend,
    ProfilingNumpyBackend,
    TracingBackend,
    TraceReport,
)
from .restructured import SPEC_DENSITY, SPEC_VISCOSITY, SPEC_VREMAN_C
from .tape import compiled_tape
from .variants import Variant, get_variant

__all__ = [
    "SpecializationError",
    "UnifiedAssembler",
    "CPU_VECTOR_DIM",
    "GPU_VECTOR_DIM",
]

#: The paper's CPU vector length ("VECTOR_DIM=16 to be fastest for both
#: AVX256 and AVX512").
CPU_VECTOR_DIM = 16

#: The paper's GPU vector length (2048k elements per kernel launch).
GPU_VECTOR_DIM = 2048 * 1024


class SpecializationError(ValueError):
    """A specialized kernel was dispatched with incompatible parameters."""


def _check_specialization(variant: Variant, params: AssemblyParams) -> None:
    if not variant.specialized:
        return
    problems = []
    if params.density != SPEC_DENSITY:
        problems.append(
            f"density {params.density} != specialized constant {SPEC_DENSITY}"
        )
    if params.viscosity != SPEC_VISCOSITY:
        problems.append(
            f"viscosity {params.viscosity} != specialized constant "
            f"{SPEC_VISCOSITY}"
        )
    if params.vreman_c != SPEC_VREMAN_C:
        problems.append(
            f"vreman_c {params.vreman_c} != specialized constant "
            f"{SPEC_VREMAN_C}"
        )
    if params.turbulence_model is not TurbulenceModel.VREMAN:
        problems.append(
            "specialized kernels hard-wire the Vreman model "
            f"(got {params.turbulence_model.name})"
        )
    if params.convective_form is not ConvectiveForm.ADVECTIVE:
        problems.append(
            "specialized kernels hard-wire the advective form "
            f"(got {params.convective_form.name})"
        )
    if problems:
        raise SpecializationError(
            f"variant {variant.name} was specialized away from this problem: "
            + "; ".join(problems)
            + ". Build a matching kernel with make_specialized_kernel(...) "
            "or use the baseline variant."
        )


@dataclasses.dataclass
class UnifiedAssembler:
    """Assemble the momentum RHS with a selected variant.

    Parameters
    ----------
    mesh:
        The tetrahedral mesh.
    params:
        Physical parameters; must be compatible with the variant's
        specialization.
    vector_dim:
        Element-group size.  ``None`` (default) resolves per variant at
        assembly time: the plan's autotuned winner when one was recorded
        (see :func:`repro.core.autotune.autotune_vector_dim`), else the
        paper's CPU choice :data:`CPU_VECTOR_DIM`.  Pass
        :data:`GPU_VECTOR_DIM` to emulate the GPU launch configuration.
    mode:
        ``"interpreted"`` (default) runs the seed per-group
        :class:`~repro.core.dsl.NumpyBackend` path; ``"compiled"`` replays
        the plan-cached kernel tape (:mod:`repro.core.tape`) -- same op
        order, same dtype, bit-identical RHS, several times faster.
        ``"codegen"`` executes generated fused source
        (:mod:`repro.core.codegen`): the tape lowered to exec-compiled
        Python with CSE, invariant hoisting and expression fusion --
        still bit-identical, with the per-op dispatch overhead gone.
        Compiled and codegen modes require ``use_plan=True``.
    tracer:
        Optional :class:`repro.obs.Tracer`; assemblies and kernel traces
        are recorded as ``assemble`` / ``kernel_trace`` spans.  Defaults to
        the no-op tracer (zero overhead).
    permutation:
        Optional element processing order handed to the packing.
    use_plan:
        When true (default) the assembler reuses the mesh's
        :class:`~repro.fem.plan.AssemblyPlan`: element groups are
        gathered once per mesh lifetime and the RHS scatter is deferred
        into a single precomputed ``bincount`` reduction.  Disable to run
        the seed per-call ``np.add.at`` path (bit-identical results; the
        equivalence tests rely on this switch).
    executor:
        ``"serial"`` (default) replays the whole lane axis in one sweep;
        ``"threads"`` (compiled/codegen modes only) splits element groups
        into cache-sized chunks executed on a shared
        :class:`~concurrent.futures.ThreadPoolExecutor` with per-thread
        arena slabs (:meth:`~repro.core.tape.CompiledTape.execute_chunked`
        / :meth:`~repro.core.codegen.GeneratedKernel.execute_chunked`).
        The threaded reduction order is fixed, so results stay bitwise
        identical to the serial executor.
    num_threads:
        Thread count for ``executor="threads"``; defaults to the CPU
        count (``REPRO_NUM_THREADS`` overrides).
    chunk_groups:
        Chunk size (element groups per chunk) for the threaded executor;
        ``None`` resolves to the plan's autotuned winner
        (:func:`repro.core.autotune.autotune_chunk_groups`) or a cache
        heuristic.
    fault_plan:
        Optional :class:`~repro.resilience.faults.FaultPlan`; an
        ``("assembler", "nan"/"inf")`` fault corrupts one lane of the
        assembled RHS so the chaos suite can force a degradation of
        :class:`~repro.resilience.ladders.ResilientAssembler`.
    profile:
        When true, assemblies record op-level software counters (wall
        time, derived bytes and Flops per tape op) into ``profiler`` --
        the reproduction's LIKWID.  Results are bitwise identical to an
        unprofiled assembly; when false (default) no profiling code runs
        at all (the zero-cost :data:`repro.obs.profiler.NULL_PROFILER`
        path).
    profiler:
        Optional :class:`repro.obs.profiler.TapeProfiler` to collect
        into; one is created lazily when ``profile=True``.  Pass a shared
        instance to aggregate several assemblers/variants into one
        report.
    """

    mesh: TetMesh
    params: AssemblyParams = dataclasses.field(default_factory=AssemblyParams)
    vector_dim: Optional[int] = None
    tracer: object = dataclasses.field(default=NULL_TRACER, repr=False)
    permutation: Optional[np.ndarray] = dataclasses.field(default=None, repr=False)
    use_plan: bool = True
    mode: str = "interpreted"
    fault_plan: Optional[object] = dataclasses.field(default=None, repr=False)
    executor: str = "serial"
    num_threads: Optional[int] = None
    chunk_groups: Optional[int] = None
    profile: bool = False
    profiler: Optional[object] = dataclasses.field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.profile and self.profiler is None:
            from ..obs.profiler import TapeProfiler

            self.profiler = TapeProfiler()
        if self.profiler is not None:
            self.profile = True
        if self.mode not in ("interpreted", "compiled", "codegen"):
            raise ValueError(
                f"unknown assembly mode {self.mode!r}; "
                "expected 'interpreted', 'compiled' or 'codegen'"
            )
        if self.mode in ("compiled", "codegen") and not self.use_plan:
            raise ValueError(
                f"mode={self.mode!r} requires use_plan=True: the kernel "
                "tape / generated kernel is cached on the mesh's "
                "AssemblyPlan"
            )
        if self.executor not in ("serial", "threads"):
            raise ValueError(
                f"unknown executor {self.executor!r}; "
                "expected 'serial' or 'threads'"
            )
        if self.executor == "threads" and self.mode not in (
            "compiled", "codegen"
        ):
            raise ValueError(
                "executor='threads' requires mode='compiled' or "
                "'codegen': only those drop the GIL inside numpy ufuncs; "
                "the interpreted per-group backend would serialize on it"
            )
        self._mesh_version = getattr(self.mesh, "_version", 0)
        if self.use_plan:
            self.plan = get_plan(self.mesh)
        else:
            self.plan = None
        self._kernel_params = self.params.as_kernel_params()
        perm = self.permutation
        self._perm_key = None if perm is None else np.asarray(
            perm, dtype=np.int64
        ).tobytes()
        self._packings: dict = {}
        #: lazy per-scenario serial assemblers (interpreted batch path)
        self._scenario_assemblers: dict = {}
        #: telemetry of the most recent :meth:`run_batch` call
        self.last_batch: Optional[dict] = None
        #: packing at the init-time group size (explicit or the CPU
        #: default); variants with a differing autotuned winner resolve
        #: their own packing at assembly time.
        self.packing = self._packing(
            int(self.vector_dim)
            if self.vector_dim is not None
            else CPU_VECTOR_DIM
        )

    def _refresh_caches(self) -> None:
        """Re-resolve plan/packing when the mesh numbering changed.

        Any in-place mutation (:meth:`~repro.fem.mesh.TetMesh.mutate`,
        e.g. a renumbering or reorientation) bumps the mesh's structural
        version; an assembler constructed before the mutation must never
        replay scatter patterns, tapes or packed groups gathered against
        the old numbering.
        """
        version = getattr(self.mesh, "_version", 0)
        if version == self._mesh_version:
            return
        self._mesh_version = version
        self.plan = get_plan(self.mesh) if self.use_plan else None
        self._packings.clear()
        self.packing = self._packing(self.packing.vector_dim)

    def resolve_vector_dim(
        self, variant_name: str, scenarios: Optional[int] = None
    ) -> int:
        """The group size a variant assembles with.

        Explicit ``vector_dim`` wins; otherwise the plan's autotuned
        winner for ``(variant, mode)`` -- batched assemblies first try
        the batch-specific ``"<mode>@S<scenarios>"`` winner (see
        :func:`repro.core.autotune.autotune_vector_dim` with a batch) --
        otherwise the paper's CPU default of :data:`CPU_VECTOR_DIM`.
        """
        if self.vector_dim is not None:
            return int(self.vector_dim)
        if self.plan is not None:
            if scenarios is not None:
                tuned = self.plan.tuned_vector_dim(
                    variant_name, f"{self.mode}@S{int(scenarios)}"
                )
                if tuned is not None:
                    return int(tuned)
            tuned = self.plan.tuned_vector_dim(variant_name, self.mode)
            if tuned is not None:
                return int(tuned)
        return CPU_VECTOR_DIM

    def _packing(self, vector_dim: int) -> ElementPacking:
        if self.plan is not None:
            return self.plan.packing(vector_dim, permutation=self.permutation)
        packing = self._packings.get(vector_dim)
        if packing is None:
            packing = ElementPacking(
                self.mesh,
                vector_dim=vector_dim,
                permutation=self.permutation,
            )
            self._packings[vector_dim] = packing
        return packing

    def _context(
        self, group, velocity: np.ndarray, rhs: np.ndarray, scatter=None
    ) -> KernelContext:
        return KernelContext(
            connectivity=group.connectivity,
            coords=self.mesh.coords,
            fields={"velocity": velocity},
            rhs=rhs,
            params=self._kernel_params,
            nnode_per_element=4,
            active=None if group.nactive == group.vector_dim else group.active,
            scatter=scatter,
        )

    def _maybe_corrupt(self, rhs: np.ndarray) -> None:
        if self.fault_plan is not None:
            self.fault_plan.corrupt("assembler", rhs)

    def assemble(
        self, variant_name: str, velocity: np.ndarray
    ) -> np.ndarray:
        """Assemble the global momentum RHS ``(nnode, 3)`` with a variant."""
        variant = get_variant(variant_name)
        _check_specialization(variant, self.params)
        velocity = np.asarray(velocity, dtype=np.float64)
        if velocity.shape != (self.mesh.nnode, 3):
            raise ValueError(
                f"velocity must be ({self.mesh.nnode}, 3), got {velocity.shape}"
            )
        rhs = np.zeros((self.mesh.nnode, 3))
        self._refresh_caches()
        vector_dim = self.resolve_vector_dim(variant.name)
        with self.tracer.span(
            "assemble",
            variant=variant.name,
            nelem=int(self.mesh.nelem),
            vector_dim=vector_dim,
            mode=self.mode,
            plan=bool(self.use_plan),
            executor=self.executor,
        ):
            if self.mode in ("compiled", "codegen"):
                if self.mode == "codegen":
                    from .codegen import generated_kernel

                    runner = generated_kernel(
                        self.plan,
                        variant.name,
                        vector_dim,
                        permutation=self.permutation,
                        kernel_params=self._kernel_params,
                        tracer=self.tracer,
                        profiler=self.profiler if self.profile else None,
                    )
                else:
                    runner = compiled_tape(
                        self.plan,
                        variant.name,
                        vector_dim,
                        permutation=self.permutation,
                        kernel_params=self._kernel_params,
                        tracer=self.tracer,
                        profiler=self.profiler if self.profile else None,
                    )
                if self.executor == "threads":
                    rhs = runner.execute_chunked(
                        velocity,
                        rhs,
                        num_threads=self.num_threads,
                        chunk_groups=self.chunk_groups,
                    )
                elif self.mode == "codegen":
                    rhs = runner.execute(
                        velocity, rhs, chunk_groups=self.chunk_groups
                    )
                else:
                    rhs = runner.execute(velocity, rhs)
                self._maybe_corrupt(rhs)
                return rhs
            packing = (
                self.packing
                if vector_dim == self.packing.vector_dim
                else self._packing(vector_dim)
            )
            acc = None
            if self.plan is not None:
                acc = self.plan.accumulator(
                    key=(variant.name, vector_dim, self._perm_key)
                )
            kprofile = None
            if self.profile:
                kprofile = self.profiler.for_kernel(variant.name, vector_dim)
            for group in packing:
                if acc is not None:
                    acc.begin_group(group)
                ctx = self._context(group, velocity, rhs, scatter=acc)
                if kprofile is not None:
                    bk = ProfilingNumpyBackend(ctx, kprofile)
                else:
                    bk = NumpyBackend(ctx)
                variant.kernel(bk, ctx)
            if kprofile is not None:
                kprofile.finish_execution()
            if acc is not None:
                with self.tracer.span("scatter.flush", variant=variant.name):
                    acc.finalize(rhs)
            self._maybe_corrupt(rhs)
        return rhs

    def _scenario_assembler(self, params: AssemblyParams) -> "UnifiedAssembler":
        """Serial assembler for one scenario's params (interpreted batches)."""
        asm = self._scenario_assemblers.get(params)
        if asm is None:
            asm = UnifiedAssembler(
                self.mesh,
                params,
                vector_dim=self.vector_dim,
                tracer=self.tracer,
                permutation=self.permutation,
                use_plan=self.use_plan,
                mode=self.mode,
                executor=self.executor,
                num_threads=self.num_threads,
                chunk_groups=self.chunk_groups,
            )
            self._scenario_assemblers[params] = asm
        return asm

    def _isolate_scenario(
        self,
        variant: Variant,
        params: AssemblyParams,
        velocity: np.ndarray,
        vector_dim: int,
    ) -> np.ndarray:
        """Re-assemble one corrupted scenario on the resilience ladder.

        The scenario leaves the batch alone: it climbs down the usual
        ``mode -> ... -> reference`` degradation ladder (validated against
        the vectorized reference on first sweep) while the surviving
        scenarios' batched results are returned untouched.
        """
        from ..resilience.ladders import ResilientAssembler, record_escalation

        record_escalation(
            "BatchIsolation",
            "resilience.batch_isolations",
            self.tracer,
            None,
            variant=variant.name,
            mode=self.mode,
        )
        modes = ResilientAssembler.MODES
        start = modes.index(self.mode) if self.mode in modes else 0
        ladder = ResilientAssembler(
            self.mesh,
            params,
            variant=variant.name,
            modes=modes[start:],
            tracer=self.tracer,
            vector_dim=vector_dim,
        )
        return ladder(self.mesh, velocity, params)

    def run_batch(
        self, variant_name: str, batch, velocity: np.ndarray
    ) -> np.ndarray:
        """Assemble ``S`` scenarios in one batched sweep -> ``(S, nnode, 3)``.

        Parameters
        ----------
        variant_name:
            DSL variant; specialization compatibility is checked against
            *every* scenario's params.
        batch:
            A :class:`~repro.core.batch.ScenarioBatch` (or a sequence of
            :class:`AssemblyParams`, batched on the fly).
        velocity:
            Either one shared ``(nnode, 3)`` field (broadcast to all
            scenarios) or per-scenario ``(S, nnode, 3)`` fields.

        In ``compiled`` / ``codegen`` modes all scenarios run through one
        batched tape replay / generated kernel with ``(S, lanes)`` buffers
        and a single scatter flush; ``interpreted`` mode is the reference
        serial loop.  Results are bit-identical per scenario to ``S``
        independent :meth:`assemble` calls with the same configuration.

        A scenario whose assembled RHS comes back non-finite (e.g. an
        injected ``"assembler"`` fault) is re-assembled alone on the
        resilience ladder; the other scenarios' batched results are
        returned untouched.  Per-scenario telemetry lands in
        :attr:`last_batch`.
        """
        from .batch import ScenarioBatch

        if not isinstance(batch, ScenarioBatch):
            batch = ScenarioBatch(batch)
        variant = get_variant(variant_name)
        for params in batch:
            _check_specialization(variant, params)
        S = batch.size
        nnode = self.mesh.nnode
        velocity = np.asarray(velocity, dtype=np.float64)
        if velocity.shape == (nnode, 3):
            velocity_rank = "vec"
        elif velocity.shape == (S, nnode, 3):
            velocity_rank = "full"
        else:
            raise ValueError(
                f"velocity must be ({nnode}, 3) shared or "
                f"({S}, {nnode}, 3) per-scenario, got {velocity.shape}"
            )
        self._refresh_caches()
        vector_dim = self.resolve_vector_dim(variant.name, scenarios=S)
        with self.tracer.span(
            "run_batch",
            variant=variant.name,
            scenarios=S,
            vector_dim=vector_dim,
            mode=self.mode,
            executor=self.executor,
            velocity_rank=velocity_rank,
        ):
            rhs = np.zeros((S, nnode, 3))
            if self.mode == "interpreted":
                for s in range(S):
                    sub = self._scenario_assembler(batch[s])
                    v_s = velocity if velocity_rank == "vec" else velocity[s]
                    rhs[s] = sub.assemble(variant.name, v_s)
            else:
                if self.mode == "codegen":
                    from .codegen import batched_generated_kernel

                    runner = batched_generated_kernel(
                        self.plan,
                        variant.name,
                        vector_dim,
                        batch,
                        permutation=self.permutation,
                        velocity_rank=velocity_rank,
                        tracer=self.tracer,
                        profiler=self.profiler if self.profile else None,
                    )
                else:
                    from .tape import batched_tape

                    runner = batched_tape(
                        self.plan,
                        variant.name,
                        vector_dim,
                        batch,
                        permutation=self.permutation,
                        velocity_rank=velocity_rank,
                        tracer=self.tracer,
                        profiler=self.profiler if self.profile else None,
                    )
                if self.executor == "threads":
                    rhs = runner.execute_chunked(
                        velocity,
                        rhs,
                        num_threads=self.num_threads,
                        chunk_groups=self.chunk_groups,
                    )
                else:
                    rhs = runner.execute(
                        velocity, rhs, chunk_groups=self.chunk_groups
                    )
            if self.fault_plan is not None:
                for s in range(S):
                    self.fault_plan.corrupt("assembler", rhs[s])
            finite = [bool(np.isfinite(rhs[s]).all()) for s in range(S)]
            isolated = []
            for s in range(S):
                if finite[s]:
                    continue
                v_s = velocity if velocity_rank == "vec" else velocity[s]
                rhs[s] = self._isolate_scenario(
                    variant, batch[s], v_s, vector_dim
                )
                isolated.append(s)
            self.last_batch = {
                "variant": variant.name,
                "scenarios": S,
                "mode": self.mode,
                "executor": self.executor,
                "vector_dim": vector_dim,
                "velocity_rank": velocity_rank,
                "isolated": tuple(isolated),
                "per_scenario": [
                    {
                        "scenario": s,
                        "finite_on_fast_path": finite[s],
                        "isolated": s in isolated,
                    }
                    for s in range(S)
                ],
            }
        return rhs

    def trace(
        self,
        variant_name: str,
        velocity: Optional[np.ndarray] = None,
        group_index: int = 0,
    ) -> TraceReport:
        """Trace one element group of a variant (per-element counters)."""
        variant = get_variant(variant_name)
        _check_specialization(variant, self.params)
        if velocity is None:
            velocity = np.zeros((self.mesh.nnode, 3))
        self._refresh_caches()
        group = self.packing.group(group_index)
        rhs = np.zeros((self.mesh.nnode, 3))
        with self.tracer.span(
            "kernel_trace", variant=variant.name, group=int(group_index)
        ):
            ctx = self._context(group, np.asarray(velocity, dtype=np.float64), rhs)
            bk = TracingBackend(ctx)
            variant.kernel(bk, ctx)
            return bk.finalize()
