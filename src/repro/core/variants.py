"""Registry of the paper's kernel variants.

Variants are named with the paper's letters:

=======  ============================================================  =======
name     description                                                   targets
=======  ============================================================  =======
``B``    baseline: generic, elemental matrices, global temporaries    CPU+GPU
``P``    baseline + privatization only (isolated-P study, Sec. V-C)   GPU
``RS``   restructured + specialized, global temporaries               CPU+GPU
``RSP``  restructured + specialized + privatized                      CPU+GPU
``RSPR`` RSP + immediate scatter (second restructuring, Sec. V-D)     GPU
=======  ============================================================  =======

``RSPR`` "is not transferable to the CPU, as it breaks the concept of a
single vectorization loop and a scalar scatter loop" -- reflected in the
``targets`` metadata, which the study driver honours.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Tuple

from .baseline import make_baseline_kernel
from .restructured import make_specialized_kernel
from .dsl import Backend, KernelContext
from .storage import Storage

__all__ = ["Variant", "VARIANTS", "get_variant", "variant_names"]

Kernel = Callable[[Backend, KernelContext], None]


@dataclasses.dataclass(frozen=True)
class Variant:
    """A kernel variant and its metadata."""

    name: str
    description: str
    kernel: Kernel
    restructured: bool
    specialized: bool
    privatized: bool
    immediate_scatter: bool
    targets: Tuple[str, ...]

    def supports(self, target: str) -> bool:
        return target in self.targets


def _build_registry() -> Dict[str, Variant]:
    return {
        "B": Variant(
            name="B",
            description="Baseline: generic vectorized assembly, elemental "
            "matrices, global temporaries",
            kernel=make_baseline_kernel(Storage.GLOBAL_TEMP),
            restructured=False,
            specialized=False,
            privatized=False,
            immediate_scatter=False,
            targets=("cpu", "gpu"),
        ),
        "P": Variant(
            name="P",
            description="Baseline + privatization only (temporaries in "
            "local memory)",
            kernel=make_baseline_kernel(Storage.PRIVATE),
            restructured=False,
            specialized=False,
            privatized=True,
            immediate_scatter=False,
            targets=("gpu",),
        ),
        "RS": Variant(
            name="RS",
            description="Restructured + specialized (TET04, constant "
            "properties, Vreman-on-the-fly), global temporaries",
            kernel=make_specialized_kernel(Storage.GLOBAL_TEMP),
            restructured=True,
            specialized=True,
            privatized=False,
            immediate_scatter=False,
            targets=("cpu", "gpu"),
        ),
        "RSP": Variant(
            name="RSP",
            description="Restructured + specialized + privatized "
            "(register-resident temporaries)",
            kernel=make_specialized_kernel(Storage.PRIVATE),
            restructured=True,
            specialized=True,
            privatized=True,
            immediate_scatter=False,
            targets=("cpu", "gpu"),
        ),
        "RSPR": Variant(
            name="RSPR",
            description="RSP + immediate scatter of RHS entries "
            "(GPU-only second restructuring)",
            kernel=make_specialized_kernel(
                Storage.PRIVATE, immediate_scatter=True
            ),
            restructured=True,
            specialized=True,
            privatized=True,
            immediate_scatter=True,
            targets=("gpu",),
        ),
    }


VARIANTS: Dict[str, Variant] = _build_registry()


def get_variant(name: str) -> Variant:
    """Look up a variant by paper letter (case-insensitive)."""
    try:
        return VARIANTS[name.upper()]
    except KeyError:
        raise KeyError(
            f"unknown variant {name!r}; available: {sorted(VARIANTS)}"
        ) from None


def variant_names(target: str | None = None) -> Tuple[str, ...]:
    """Variant names, optionally filtered by target (``"cpu"``/``"gpu"``)."""
    if target is None:
        return tuple(VARIANTS)
    return tuple(n for n, v in VARIANTS.items() if v.supports(target))
