"""Finite element substrate: reference elements, quadrature, meshes,
geometry, vectorized packing, boundaries and fields."""

from .reference import ELEMENTS, ReferenceElement, element, TET04, HEX08, PEN06, PYR05
from .quadrature import QuadratureRule, rule_for, available_rules
from .mesh import TetMesh, MeshStatistics, MeshValidationError
from .meshgen import box_tet_mesh, bolund_like_mesh, channel_mesh, perturbed_box_mesh
from .geometry import (
    ElementGeometry,
    GeometryError,
    generic_geometry,
    tet4_geometry,
    tet4_gradients,
)
from .packing import ElementGroup, ElementPacking, scatter_add
from .plan import (
    AssemblyPlan,
    GeometryCache,
    ScatterAccumulator,
    ScatterPlan,
    get_plan,
    segment_scatter,
)
from .reorder import (
    STRATEGIES,
    ReorderResult,
    bandwidth_stats,
    rcm_node_permutation,
    reorder_mesh,
)
from .boundary import BoundaryRegion, DirichletBC, BoundaryClassifier, classify_box_boundaries
from .fields import NodalField, ElementField, lumped_mass

__all__ = [
    "ELEMENTS",
    "ReferenceElement",
    "element",
    "TET04",
    "HEX08",
    "PEN06",
    "PYR05",
    "QuadratureRule",
    "rule_for",
    "available_rules",
    "TetMesh",
    "MeshStatistics",
    "MeshValidationError",
    "box_tet_mesh",
    "bolund_like_mesh",
    "channel_mesh",
    "perturbed_box_mesh",
    "ElementGeometry",
    "GeometryError",
    "generic_geometry",
    "tet4_geometry",
    "tet4_gradients",
    "ElementGroup",
    "ElementPacking",
    "scatter_add",
    "AssemblyPlan",
    "GeometryCache",
    "ScatterAccumulator",
    "ScatterPlan",
    "get_plan",
    "segment_scatter",
    "STRATEGIES",
    "ReorderResult",
    "bandwidth_stats",
    "rcm_node_permutation",
    "reorder_mesh",
    "BoundaryRegion",
    "DirichletBC",
    "BoundaryClassifier",
    "classify_box_boundaries",
    "NodalField",
    "ElementField",
    "lumped_mass",
]
