"""Boundary extraction and boundary-condition containers.

The LES examples (Bolund hill, channel) need wall / inflow / outflow / top
boundary conditions.  This module classifies boundary faces of a
:class:`~repro.fem.mesh.TetMesh` by geometric predicates and stores simple
Dirichlet/Neumann sets that the time integrator applies.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List

import numpy as np

from .mesh import TetMesh

__all__ = [
    "BoundaryRegion",
    "DirichletBC",
    "BoundaryClassifier",
    "classify_box_boundaries",
]


@dataclasses.dataclass(frozen=True)
class BoundaryRegion:
    """A named set of boundary faces and the nodes they touch."""

    name: str
    faces: np.ndarray  # (nfaces, 3) node ids
    nodes: np.ndarray  # sorted unique node ids

    @property
    def nfaces(self) -> int:
        return self.faces.shape[0]


@dataclasses.dataclass
class DirichletBC:
    """Fixed-value velocity boundary condition on a node set.

    ``value`` is either a constant ``(ncomp,)`` vector or a callable
    ``f(coords) -> (nnodes, ncomp)`` evaluated on the BC nodes.
    """

    nodes: np.ndarray
    value: np.ndarray | Callable[[np.ndarray], np.ndarray]
    components: tuple[int, ...] | None = None

    def apply(self, field: np.ndarray, coords: np.ndarray) -> None:
        """Overwrite ``field[nodes]`` (or selected components) in place."""
        if callable(self.value):
            vals = np.asarray(self.value(coords[self.nodes]))
        else:
            vals = np.broadcast_to(
                np.asarray(self.value, dtype=np.float64),
                (len(self.nodes), field.shape[1]),
            )
        if self.components is None:
            field[self.nodes] = vals
        else:
            for c in self.components:
                field[self.nodes, c] = vals[:, c]


class BoundaryClassifier:
    """Classify boundary faces of a mesh into named regions.

    Predicates are evaluated on face *centroids*; the first matching
    predicate wins, remaining faces fall into the ``"other"`` region.
    """

    def __init__(self, mesh: TetMesh) -> None:
        self.mesh = mesh
        self._faces = mesh.boundary_faces()
        self._centroids = mesh.coords[self._faces].mean(axis=1)
        self._predicates: List[tuple[str, Callable[[np.ndarray], np.ndarray]]] = []

    @property
    def nfaces(self) -> int:
        return self._faces.shape[0]

    def add_region(
        self, name: str, predicate: Callable[[np.ndarray], np.ndarray]
    ) -> "BoundaryClassifier":
        """Register a region; ``predicate(centroids) -> bool mask``."""
        self._predicates.append((name, predicate))
        return self

    def build(self) -> Dict[str, BoundaryRegion]:
        """Assign every boundary face to the first matching region."""
        unassigned = np.ones(self.nfaces, dtype=bool)
        regions: Dict[str, BoundaryRegion] = {}
        for name, pred in self._predicates:
            mask = np.asarray(pred(self._centroids), dtype=bool) & unassigned
            faces = self._faces[mask]
            regions[name] = BoundaryRegion(
                name=name, faces=faces, nodes=np.unique(faces)
            )
            unassigned &= ~mask
        faces = self._faces[unassigned]
        regions["other"] = BoundaryRegion(
            name="other", faces=faces, nodes=np.unique(faces)
        )
        return regions


def classify_box_boundaries(
    mesh: TetMesh, tol: float = 1e-9
) -> Dict[str, BoundaryRegion]:
    """Classify the six sides of an axis-aligned box mesh.

    Regions: ``xmin/xmax/ymin/ymax/zmin/zmax`` (ground is ``zmin``).  For
    terrain meshes the ground follows the terrain, so ``zmin`` is defined as
    "faces whose normal is predominantly vertical and which are not the top".
    """
    lo = mesh.coords.min(axis=0)
    hi = mesh.coords.max(axis=0)
    span = np.maximum(hi - lo, 1e-300)
    eps = tol * span

    clf = BoundaryClassifier(mesh)
    clf.add_region("xmin", lambda c: c[:, 0] < lo[0] + eps[0])
    clf.add_region("xmax", lambda c: c[:, 0] > hi[0] - eps[0])
    clf.add_region("ymin", lambda c: c[:, 1] < lo[1] + eps[1])
    clf.add_region("ymax", lambda c: c[:, 1] > hi[1] - eps[1])
    clf.add_region("zmax", lambda c: c[:, 2] > hi[2] - eps[2])
    # Whatever remains on the bottom (flat or terrain-following) is ground.
    clf.add_region("zmin", lambda c: np.ones(len(c), dtype=bool))
    return clf.build()
