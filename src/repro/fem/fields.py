"""Field containers: nodal and per-element data bound to a mesh.

Thin, validated wrappers that keep shape bookkeeping (nnode vs nelem,
component counts) out of the physics code.  Fields support the arithmetic
the time integrator needs and norm/statistics helpers used by tests and
examples.
"""

from __future__ import annotations

import numpy as np

from .mesh import TetMesh

__all__ = ["NodalField", "ElementField", "lumped_mass"]


class _FieldBase:
    """Shared behaviour of nodal and element fields."""

    data: np.ndarray
    name: str

    def __array__(self, dtype=None, copy=None) -> np.ndarray:
        if copy:
            return np.array(self.data, dtype=dtype)
        return self.data if dtype is None else self.data.astype(dtype)

    @property
    def ncomp(self) -> int:
        return 1 if self.data.ndim == 1 else self.data.shape[1]

    def norm(self, kind: str = "l2") -> float:
        """``l2`` (Euclidean), ``max`` or ``rms`` norm of the raw data."""
        if kind == "l2":
            return float(np.linalg.norm(self.data))
        if kind == "max":
            return float(np.abs(self.data).max()) if self.data.size else 0.0
        if kind == "rms":
            return float(np.sqrt(np.mean(self.data**2))) if self.data.size else 0.0
        raise ValueError(f"unknown norm kind {kind!r}")

    def copy(self):
        out = type(self).__new__(type(self))
        out.mesh = self.mesh  # type: ignore[attr-defined]
        out.data = self.data.copy()
        out.name = self.name
        return out


class NodalField(_FieldBase):
    """A field with one value (or vector) per mesh node.

    Parameters
    ----------
    mesh:
        The owning mesh.
    ncomp:
        Components per node (3 for velocity, 1 for pressure).
    data:
        Optional initial data ``(nnode,)`` or ``(nnode, ncomp)``; zeros by
        default.
    """

    def __init__(
        self,
        mesh: TetMesh,
        ncomp: int = 1,
        data: np.ndarray | None = None,
        name: str = "field",
    ) -> None:
        self.mesh = mesh
        self.name = name
        shape = (mesh.nnode,) if ncomp == 1 else (mesh.nnode, ncomp)
        if data is None:
            self.data = np.zeros(shape, dtype=np.float64)
        else:
            arr = np.asarray(data, dtype=np.float64)
            if arr.shape != shape:
                raise ValueError(
                    f"nodal field {name!r}: expected shape {shape}, "
                    f"got {arr.shape}"
                )
            self.data = arr.copy()

    def interpolate(self, func) -> "NodalField":
        """Fill from ``func(coords) -> (nnode,[ncomp])`` and return self."""
        vals = np.asarray(func(self.mesh.coords), dtype=np.float64)
        if vals.shape != self.data.shape:
            raise ValueError(
                f"interpolant returned {vals.shape}, expected {self.data.shape}"
            )
        self.data[...] = vals
        return self

    def element_means(self) -> np.ndarray:
        """Average nodal values over each element's 4 nodes."""
        return self.data[self.mesh.connectivity].mean(axis=1)


class ElementField(_FieldBase):
    """A field with one value (or vector) per element."""

    def __init__(
        self,
        mesh: TetMesh,
        ncomp: int = 1,
        data: np.ndarray | None = None,
        name: str = "element_field",
    ) -> None:
        self.mesh = mesh
        self.name = name
        shape = (mesh.nelem,) if ncomp == 1 else (mesh.nelem, ncomp)
        if data is None:
            self.data = np.zeros(shape, dtype=np.float64)
        else:
            arr = np.asarray(data, dtype=np.float64)
            if arr.shape != shape:
                raise ValueError(
                    f"element field {name!r}: expected shape {shape}, "
                    f"got {arr.shape}"
                )
            self.data = arr.copy()

    def to_nodal(self) -> NodalField:
        """Volume-weighted projection to nodes (for output/diagnostics)."""
        from .plan import get_plan

        mesh = self.mesh
        plan = get_plan(mesh)
        vols = plan.element_volumes()
        if self.data.ndim == 1:
            contrib = (self.data * vols)[:, None].repeat(4, axis=1)
        else:
            contrib = (self.data * vols[:, None])[:, None, :].repeat(4, axis=1)
        acc = plan.scatter.scatter(contrib.reshape(-1, *contrib.shape[2:]))
        wsum = plan.scatter.scatter(np.repeat(vols, 4))
        wsum = np.maximum(wsum, 1e-300)
        data = acc / (wsum if acc.ndim == 1 else wsum[:, None])
        out = NodalField(mesh, ncomp=1 if data.ndim == 1 else data.shape[1])
        out.data[...] = data
        out.name = self.name + "_nodal"
        return out


def lumped_mass(mesh: TetMesh) -> np.ndarray:
    """Row-sum (lumped) mass matrix diagonal, ``(nnode,)``.

    For P1 tets the consistent-mass row sum assigns each node a quarter of
    the volume of each adjacent element.  The lumped mass is what the
    explicit fractional-step update divides by.

    Cached per mesh on the :class:`~repro.fem.plan.AssemblyPlan`; a copy
    is returned so callers keep the historical mutable-array contract.
    """
    from .plan import get_plan

    return get_plan(mesh).lumped_mass().copy()
