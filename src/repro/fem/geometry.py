"""Element geometry: Jacobians, Cartesian shape-function gradients, volumes.

Two code paths mirror the paper's two assembly styles:

* :func:`generic_geometry` evaluates the isoparametric map at every Gauss
  point of an arbitrary element type -- the *baseline* path, where the
  gradients differ per Gauss point and must be stored as intermediates
  (part of the 430 temporary values per element the paper counts).
* :func:`tet4_geometry` exploits the linear tetrahedron's *constant*
  Jacobian: one inverse 3x3 solve per element, one gradient matrix shared by
  all Gauss points -- the *specialized* path ("the gradients are the same at
  all Gauss points, contrary to what happens for other elements").

Both operate on *element groups* (leading dimension = number of elements in
the group), the vectorized data layout the whole paper is about.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

import numpy as np

from .quadrature import QuadratureRule
from .reference import TET04_GRAD, ReferenceElement

__all__ = [
    "GeometryError",
    "ElementGeometry",
    "tet4_geometry",
    "tet4_gradients",
    "generic_geometry",
]


class GeometryError(ValueError):
    """Raised for invalid (non-positive-Jacobian) element geometry."""


@dataclasses.dataclass(frozen=True)
class ElementGeometry:
    """Geometric factors of an element group at its Gauss points.

    Attributes
    ----------
    cartesian_gradients:
        ``(nelem, ngauss, nnode, 3)`` derivatives of the shape functions
        with respect to physical coordinates.  For TET04 the ngauss panels
        are identical; the specialized path stores only one
        (``(nelem, 1, nnode, 3)``) and broadcasting handles the rest.
    jacobian_dets:
        ``(nelem, ngauss)`` Jacobian determinants (or ``(nelem, 1)`` for the
        constant-Jacobian path).
    weights:
        ``(ngauss,)`` quadrature weights; ``w_g * |J|_g`` gives physical
        integration measures.
    """

    cartesian_gradients: np.ndarray
    jacobian_dets: np.ndarray
    weights: np.ndarray

    @property
    def measures(self) -> np.ndarray:
        """Physical quadrature measures ``w_g |J|_g``: ``(nelem, ngauss)``."""
        return self.jacobian_dets * self.weights[None, :]

    def volumes(self) -> np.ndarray:
        """Element volumes, ``(nelem,)``."""
        meas = self.measures
        if meas.shape[1] == 1:
            # constant-Jacobian path carries a single panel; total weight is
            # the reference volume.
            return meas[:, 0] / self.weights[0] * self.weights.sum()
        return meas.sum(axis=1)


def tet4_gradients(xel: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Constant Cartesian gradients and Jacobian dets of linear tets.

    Parameters
    ----------
    xel:
        ``(nelem, 4, 3)`` element node coordinates.

    Returns
    -------
    (grads, dets):
        ``(nelem, 4, 3)`` gradients ``dN_a/dx_i`` and ``(nelem,)`` Jacobian
        determinants (``6 * volume``).

    Notes
    -----
    The Jacobian of the map from the reference tet is
    ``J_ij = sum_a x_a,i * dN_a/ds_j`` which for TET04 is the constant edge
    matrix ``[x1-x0, x2-x0, x3-x0]``.  Gradients follow from
    ``dN/dx = dN/ds @ J^{-1}``; we solve instead of inverting for accuracy.
    """
    xel = np.asarray(xel, dtype=np.float64)
    if xel.ndim != 3 or xel.shape[1:] != (4, 3):
        raise GeometryError(f"expected (nelem, 4, 3) coords, got {xel.shape}")
    jac = xel[:, 1:, :] - xel[:, :1, :]  # (nelem, 3, 3): rows are edges
    dets = np.linalg.det(jac)
    if not (dets > 0).all():
        nbad = int((dets <= 0).sum())
        raise GeometryError(
            f"{nbad} element(s) with non-positive Jacobian determinant"
        )
    # jac rows are d x_j / d s_i.  Chain rule gives, for each shape a,
    # jac @ dN_a/dx = dN_a/ds, so one 3x3 solve per (element, node).
    grads = np.linalg.solve(
        jac[:, None, :, :],
        np.broadcast_to(TET04_GRAD[None, :, :, None], (xel.shape[0], 4, 3, 1)),
    )[..., 0]
    return grads, dets


def tet4_geometry(xel: np.ndarray, rule: QuadratureRule) -> ElementGeometry:
    """Specialized TET04 geometry: one gradient panel per element."""
    grads, dets = tet4_gradients(xel)
    return ElementGeometry(
        cartesian_gradients=grads[:, None, :, :],
        jacobian_dets=dets[:, None],
        weights=rule.weights,
    )


def generic_geometry(
    xel: np.ndarray, ref: ReferenceElement, rule: QuadratureRule
) -> ElementGeometry:
    """Generic isoparametric geometry at every Gauss point.

    Works for any supported element type; this is the baseline (``B``) path.

    Parameters
    ----------
    xel:
        ``(nelem, nnode, 3)`` node coordinates.
    ref:
        The reference element.
    rule:
        Quadrature rule on the same element.
    """
    xel = np.asarray(xel, dtype=np.float64)
    if xel.ndim != 3 or xel.shape[1] != ref.nnode or xel.shape[2] != 3:
        raise GeometryError(
            f"expected (nelem, {ref.nnode}, 3) coords, got {xel.shape}"
        )
    if rule.element_name != ref.name:
        raise GeometryError(
            f"quadrature rule for {rule.element_name} used with {ref.name}"
        )
    _, dref = ref.evaluate(rule.points)  # (nnode, 3, ngauss)
    # J[e, g, i, j] = sum_a dref[a, i, g] * x[e, a, j]
    jac = np.einsum("aig,eaj->egij", dref, xel)
    dets = np.linalg.det(jac)
    if not (dets > 0).all():
        nbad = int((dets <= 0).sum())
        raise GeometryError(
            f"{nbad} Gauss-point Jacobian(s) with non-positive determinant"
        )
    # dN/dx[e, g, a, i]: jac rows are d x_j / d s_i, so solve
    # jac @ dN_a/dx = dN_a/ds at each (element, gauss, node).
    rhs = np.moveaxis(dref, 2, 0)  # (ngauss, nnode, 3)
    rhs = np.broadcast_to(
        rhs[None, :, :, :, None],
        (xel.shape[0], rule.ngauss, ref.nnode, 3, 1),
    )
    grads = np.linalg.solve(jac[:, :, None, :, :], rhs)[..., 0]
    return ElementGeometry(
        cartesian_gradients=grads,
        jacobian_dets=dets,
        weights=rule.weights,
    )
