"""Unstructured tetrahedral mesh container.

The test case in the paper is a tetrahedral mesh of the Bolund cliff with
5.6M nodes and 32M elements.  This module holds the in-memory representation
used by every other subsystem: node coordinates, element connectivity,
derived adjacency structures and validation/statistics helpers.

The mesh is deliberately *flat* (structure-of-arrays): ``coords`` is
``(nnode, 3)`` float64 and ``connectivity`` is ``(nelem, 4)`` int32/int64,
matching both Alya's layout and what the vectorized element packing in
:mod:`repro.fem.packing` consumes.
"""

from __future__ import annotations

import contextlib
import dataclasses
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

__all__ = ["TetMesh", "MeshStatistics", "MeshValidationError"]

# The four faces of a tetrahedron, as local node triples with outward
# orientation for a positively-oriented element.
TET_FACES = np.array(
    [
        [0, 2, 1],
        [0, 1, 3],
        [1, 2, 3],
        [0, 3, 2],
    ],
    dtype=np.int64,
)

TET_EDGES = np.array(
    [[0, 1], [0, 2], [0, 3], [1, 2], [1, 3], [2, 3]], dtype=np.int64
)


class MeshValidationError(ValueError):
    """Raised when a mesh fails a structural validity check."""


@dataclasses.dataclass(frozen=True)
class MeshStatistics:
    """Summary statistics of a :class:`TetMesh`."""

    nnode: int
    nelem: int
    volume: float
    min_element_volume: float
    max_element_volume: float
    min_quality: float
    mean_quality: float
    bounding_box: Tuple[np.ndarray, np.ndarray]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        lo, hi = self.bounding_box
        return (
            f"TetMesh: {self.nnode} nodes, {self.nelem} elements, "
            f"volume {self.volume:.6g}, element volume "
            f"[{self.min_element_volume:.3g}, {self.max_element_volume:.3g}], "
            f"quality min/mean {self.min_quality:.3f}/{self.mean_quality:.3f}, "
            f"bbox {lo} -- {hi}"
        )


class TetMesh:
    """An unstructured mesh of linear tetrahedra.

    Parameters
    ----------
    coords:
        ``(nnode, 3)`` node coordinates.
    connectivity:
        ``(nelem, 4)`` node indices per element.  Elements must be
        positively oriented (positive Jacobian determinant); use
        :meth:`fix_orientation` to repair.
    validate:
        When true (default) run structural checks on construction.
    """

    def __init__(
        self,
        coords: np.ndarray,
        connectivity: np.ndarray,
        validate: bool = True,
    ) -> None:
        # Private copies, frozen: every permutation-sensitive cache
        # (AssemblyPlan scatter patterns, compiled tapes, packed groups)
        # keys on the mesh arrays, so out-of-band writes would silently
        # replay stale patterns.  All mutation goes through
        # :meth:`mutate`, which bumps the structural version.
        self._coords = np.array(coords, dtype=np.float64, order="C")
        self._connectivity = np.array(connectivity, dtype=np.int64, order="C")
        self._coords.flags.writeable = False
        self._connectivity.flags.writeable = False
        if self._coords.ndim != 2 or self._coords.shape[1] != 3:
            raise MeshValidationError(
                f"coords must be (nnode, 3), got {self._coords.shape}"
            )
        if self._connectivity.ndim != 2 or self._connectivity.shape[1] != 4:
            raise MeshValidationError(
                f"connectivity must be (nelem, 4), got "
                f"{self._connectivity.shape}"
            )
        self._node_to_elem: Dict[int, np.ndarray] | None = None
        # Structural version: bumped whenever coords/connectivity change
        # in place, so mesh-lifetime caches (repro.fem.plan) can
        # invalidate.
        self._version = 0
        self._seed_element_ids: Optional[np.ndarray] = None
        if validate:
            self.validate()

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def coords(self) -> np.ndarray:
        """``(nnode, 3)`` node coordinates (read-only; see :meth:`mutate`)."""
        return self._coords

    @property
    def connectivity(self) -> np.ndarray:
        """``(nelem, 4)`` element node ids (read-only; see :meth:`mutate`)."""
        return self._connectivity

    @property
    def seed_element_ids(self) -> Optional[np.ndarray]:
        """Element provenance of a reordered mesh, or ``None``.

        ``seed_element_ids[k]`` is the position element ``k`` occupied in
        the *seed* (pre-reordering) mesh.  The deferred-scatter paths use
        this to flush RHS contributions in canonical seed order, making
        assembly on a reordered mesh bit-consistent with the seed mesh
        (see :mod:`repro.fem.reorder`).
        """
        return self._seed_element_ids

    def _set_seed_element_ids(self, ids: np.ndarray) -> None:
        ids = np.ascontiguousarray(ids, dtype=np.int64)
        ids.flags.writeable = False
        self._seed_element_ids = ids

    @contextlib.contextmanager
    def mutate(self):
        """Context manager granting in-place write access to the arrays.

        On exit the arrays are re-frozen, derived adjacency caches are
        dropped and the structural version is bumped -- so any
        :class:`~repro.fem.plan.AssemblyPlan` (and every scatter pattern,
        packing and compiled tape cached on it) built against the old
        numbering can never be replayed against the new one.
        """
        self._coords.flags.writeable = True
        self._connectivity.flags.writeable = True
        try:
            yield self
        finally:
            self._coords.flags.writeable = False
            self._connectivity.flags.writeable = False
            self._node_to_elem = None
            self._version += 1

    @property
    def nnode(self) -> int:
        """Number of nodes."""
        return self._coords.shape[0]

    @property
    def nelem(self) -> int:
        """Number of tetrahedral elements."""
        return self._connectivity.shape[0]

    def element_coords(self, elems: np.ndarray | slice | None = None) -> np.ndarray:
        """Gather node coordinates per element: ``(nelem_sel, 4, 3)``."""
        conn = self.connectivity if elems is None else self.connectivity[elems]
        return self.coords[conn]

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def element_volumes(self) -> np.ndarray:
        """Signed volumes of all elements, ``(nelem,)``.

        Positive for correctly oriented tetrahedra.
        """
        x = self.element_coords()
        d1 = x[:, 1] - x[:, 0]
        d2 = x[:, 2] - x[:, 0]
        d3 = x[:, 3] - x[:, 0]
        return np.einsum("ei,ei->e", np.cross(d1, d2), d3) / 6.0

    def total_volume(self) -> float:
        """Total mesh volume (sum of signed element volumes)."""
        return float(self.element_volumes().sum())

    def element_quality(self) -> np.ndarray:
        """Radius-ratio-like quality in (0, 1]; 1 is the regular tet.

        Uses the normalized volume/rms-edge measure
        ``q = 6*sqrt(2) V / l_rms^3`` which is 1 for the regular
        tetrahedron and approaches 0 for slivers.
        """
        x = self.element_coords()
        vol = np.abs(self.element_volumes())
        edges = x[:, TET_EDGES[:, 1]] - x[:, TET_EDGES[:, 0]]
        l2 = np.einsum("eij,eij->ei", edges, edges)
        lrms = np.sqrt(l2.mean(axis=1))
        with np.errstate(divide="ignore", invalid="ignore"):
            q = 6.0 * np.sqrt(2.0) * vol / lrms**3
        return np.nan_to_num(q, nan=0.0)

    def fix_orientation(self) -> int:
        """Flip negatively-oriented elements in place.

        Returns the number of elements that were flipped.
        """
        vols = self.element_volumes()
        bad = vols < 0.0
        nbad = int(bad.sum())
        if nbad:
            with self.mutate():
                conn = self._connectivity
                conn[bad, 1], conn[bad, 2] = (
                    conn[bad, 2].copy(),
                    conn[bad, 1].copy(),
                )
        return nbad

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def node_element_adjacency(self) -> Tuple[np.ndarray, np.ndarray]:
        """CSR-style node-to-element adjacency.

        Returns ``(offsets, elements)`` with elements adjacent to node ``n``
        at ``elements[offsets[n]:offsets[n+1]]``.
        """
        conn = self.connectivity
        flat_nodes = conn.ravel()
        flat_elems = np.repeat(np.arange(self.nelem, dtype=np.int64), 4)
        order = np.argsort(flat_nodes, kind="stable")
        sorted_nodes = flat_nodes[order]
        sorted_elems = flat_elems[order]
        counts = np.bincount(sorted_nodes, minlength=self.nnode)
        offsets = np.zeros(self.nnode + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        return offsets, sorted_elems

    def boundary_faces(self) -> np.ndarray:
        """Faces appearing in exactly one element: ``(nbfaces, 3)`` node ids.

        Faces are returned with the original (outward) orientation.
        """
        conn = self.connectivity
        faces = conn[:, TET_FACES].reshape(-1, 3)  # (nelem*4, 3)
        key = np.sort(faces, axis=1)
        # Lexicographic unique with counts.
        order = np.lexsort((key[:, 2], key[:, 1], key[:, 0]))
        skey = key[order]
        new = np.ones(len(skey), dtype=bool)
        new[1:] = (skey[1:] != skey[:-1]).any(axis=1)
        group_ids = np.cumsum(new) - 1
        counts = np.bincount(group_ids)
        singleton_groups = np.flatnonzero(counts == 1)
        first_of_group = np.flatnonzero(new)
        boundary_rows = order[first_of_group[singleton_groups]]
        return faces[boundary_rows]

    def boundary_nodes(self) -> np.ndarray:
        """Sorted unique node ids lying on the boundary."""
        return np.unique(self.boundary_faces())

    def node_neighbours(self) -> Tuple[np.ndarray, np.ndarray]:
        """CSR node-to-node adjacency (via shared edges)."""
        e = self.connectivity[:, TET_EDGES]  # (nelem, 6, 2)
        pairs = e.reshape(-1, 2)
        both = np.vstack([pairs, pairs[:, ::-1]])
        order = np.lexsort((both[:, 1], both[:, 0]))
        sorted_pairs = both[order]
        keep = np.ones(len(sorted_pairs), dtype=bool)
        keep[1:] = (sorted_pairs[1:] != sorted_pairs[:-1]).any(axis=1)
        uniq = sorted_pairs[keep]
        counts = np.bincount(uniq[:, 0], minlength=self.nnode)
        offsets = np.zeros(self.nnode + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        return offsets, uniq[:, 1].copy()

    # ------------------------------------------------------------------
    # Validation and statistics
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Run structural checks; raise :class:`MeshValidationError` on failure."""
        conn = self.connectivity
        if conn.size:
            if conn.min() < 0 or conn.max() >= self.nnode:
                raise MeshValidationError(
                    "connectivity references node ids outside [0, nnode)"
                )
            # No repeated node within an element.
            s = np.sort(conn, axis=1)
            if (s[:, 1:] == s[:, :-1]).any():
                raise MeshValidationError(
                    "degenerate element: repeated node within an element"
                )
        if not np.isfinite(self.coords).all():
            raise MeshValidationError("non-finite node coordinates")

    def statistics(self) -> MeshStatistics:
        """Compute summary statistics."""
        vols = self.element_volumes()
        q = self.element_quality()
        return MeshStatistics(
            nnode=self.nnode,
            nelem=self.nelem,
            volume=float(vols.sum()),
            min_element_volume=float(vols.min()) if vols.size else 0.0,
            max_element_volume=float(vols.max()) if vols.size else 0.0,
            min_quality=float(q.min()) if q.size else 0.0,
            mean_quality=float(q.mean()) if q.size else 0.0,
            bounding_box=(self.coords.min(axis=0), self.coords.max(axis=0)),
        )

    # ------------------------------------------------------------------
    # Manipulation
    # ------------------------------------------------------------------
    def subset(self, element_ids: Iterable[int]) -> Tuple["TetMesh", np.ndarray]:
        """Extract the sub-mesh of ``element_ids``.

        Returns ``(submesh, node_map)`` where ``node_map[i]`` is the original
        node id of local node ``i``.
        """
        ids = np.asarray(list(element_ids), dtype=np.int64)
        conn = self.connectivity[ids]
        node_map, local = np.unique(conn, return_inverse=True)
        sub = TetMesh(
            self.coords[node_map], local.reshape(conn.shape), validate=False
        )
        return sub, node_map

    def renumber_nodes(self, permutation: np.ndarray) -> "TetMesh":
        """Return a mesh with nodes renumbered: new id = permutation[old id]."""
        perm = np.asarray(permutation, dtype=np.int64)
        if perm.shape != (self.nnode,) or not np.array_equal(
            np.sort(perm), np.arange(self.nnode)
        ):
            raise MeshValidationError("permutation must be a bijection on nodes")
        inv = np.empty_like(perm)
        inv[perm] = np.arange(self.nnode)
        out = TetMesh(
            self.coords[inv], perm[self.connectivity], validate=False
        )
        # Pure node relabelling keeps element order, so seed provenance
        # (and with it bit-consistency of the deferred scatter) carries over.
        if self._seed_element_ids is not None:
            out._set_seed_element_ids(self._seed_element_ids)
        return out

    def reordered(self, strategy: str = "hilbert+rcm", bits: int = 10):
        """Locality-improving reordering; see :func:`repro.fem.reorder.reorder_mesh`.

        Returns a :class:`~repro.fem.reorder.ReorderResult` whose ``mesh``
        has elements visited in space-filling-curve order and/or nodes
        renumbered by reverse Cuthill-McKee, plus the permutations mapping
        fields between the two numberings.  Assembly on the reordered mesh
        is bit-consistent with this mesh after mapping the result back.
        """
        from .reorder import reorder_mesh

        return reorder_mesh(self, strategy, bits=bits)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TetMesh(nnode={self.nnode}, nelem={self.nelem})"
