"""Mesh generators.

The paper's benchmark is a 32M-element tetrahedral mesh of the Bolund cliff,
a well-known atmospheric-boundary-layer test hill.  We cannot ship that mesh,
so this module generates synthetic equivalents:

* :func:`box_tet_mesh` -- a structured box split into tetrahedra (the
  work-horse for unit tests and benchmarks; per-element assembly cost is
  mesh-independent for P1 tets, so counters measured here transfer).
* :func:`bolund_like_mesh` -- a terrain-following mesh over a Gaussian
  cliff profile mimicking the Bolund hill geometry (isolated steep hill in a
  flat fetch), used by the LES example.
* :func:`channel_mesh` -- a periodic-channel-shaped box with wall-normal
  grading, used by the channel-flow example.

Each hexahedral cell of the structured grid is split into **six** tetrahedra
using the standard Kuhn (Freudenthal) subdivision, which tiles space
conformally: neighbouring cells share identical face diagonals, so the
resulting mesh is a valid conforming tetrahedralization.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .mesh import TetMesh

__all__ = [
    "box_tet_mesh",
    "bolund_like_mesh",
    "channel_mesh",
    "structured_grid",
    "KUHN_TETS",
]

#: Kuhn subdivision of the unit cube into 6 tets.  Corner ids use the
#: (i, j, k)-bit convention: id = i + 2*j + 4*k.
KUHN_TETS = np.array(
    [
        [0, 1, 3, 7],
        [0, 1, 5, 7],
        [0, 2, 3, 7],
        [0, 2, 6, 7],
        [0, 4, 5, 7],
        [0, 4, 6, 7],
    ],
    dtype=np.int64,
)


def structured_grid(
    nx: int, ny: int, nz: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Unit-cube structured grid: node coords and hex connectivity.

    Parameters
    ----------
    nx, ny, nz:
        Number of *cells* in each direction (nodes are ``n+1`` each way).

    Returns
    -------
    (coords, hexes):
        ``((nx+1)(ny+1)(nz+1), 3)`` nodes on the unit cube and
        ``(nx*ny*nz, 8)`` hexahedral connectivity in bit-corner order.
    """
    if min(nx, ny, nz) < 1:
        raise ValueError("grid needs at least one cell per direction")
    xs = np.linspace(0.0, 1.0, nx + 1)
    ys = np.linspace(0.0, 1.0, ny + 1)
    zs = np.linspace(0.0, 1.0, nz + 1)
    X, Y, Z = np.meshgrid(xs, ys, zs, indexing="ij")
    coords = np.stack([X.ravel(), Y.ravel(), Z.ravel()], axis=1)

    def nid(i, j, k):
        return (i * (ny + 1) + j) * (nz + 1) + k

    i, j, k = np.meshgrid(
        np.arange(nx), np.arange(ny), np.arange(nz), indexing="ij"
    )
    i, j, k = i.ravel(), j.ravel(), k.ravel()
    corners = np.stack(
        [
            nid(i, j, k),
            nid(i + 1, j, k),
            nid(i, j + 1, k),
            nid(i + 1, j + 1, k),
            nid(i, j, k + 1),
            nid(i + 1, j, k + 1),
            nid(i, j + 1, k + 1),
            nid(i + 1, j + 1, k + 1),
        ],
        axis=1,
    )
    return coords, corners


def box_tet_mesh(
    nx: int,
    ny: int,
    nz: int,
    lengths: Tuple[float, float, float] = (1.0, 1.0, 1.0),
    origin: Tuple[float, float, float] = (0.0, 0.0, 0.0),
) -> TetMesh:
    """Structured tetrahedral mesh of a box.

    ``nx * ny * nz * 6`` tetrahedra on ``[origin, origin + lengths]``.
    """
    coords, hexes = structured_grid(nx, ny, nz)
    coords = coords * np.asarray(lengths, dtype=np.float64) + np.asarray(
        origin, dtype=np.float64
    )
    conn = hexes[:, KUHN_TETS].reshape(-1, 4)
    mesh = TetMesh(coords, conn, validate=False)
    mesh.fix_orientation()
    mesh.validate()
    return mesh


def _bolund_height(
    x: np.ndarray, y: np.ndarray, hill_height: float, hill_radius: float
) -> np.ndarray:
    """Synthetic Bolund-like terrain elevation.

    The Bolund hill is a small isolated cliff with a steep westward
    escarpment.  We model it as a Gaussian bump multiplied by a smoothed
    step to create the escarpment on the upwind (negative x) side.
    """
    r2 = (x / hill_radius) ** 2 + (y / hill_radius) ** 2
    bump = np.exp(-r2)
    # Escarpment: steeper drop for x < 0 via a logistic factor.
    edge = 1.0 / (1.0 + np.exp(-8.0 * (x / hill_radius + 0.6)))
    return hill_height * bump * (0.35 + 0.65 * edge)


def bolund_like_mesh(
    nx: int = 24,
    ny: int = 16,
    nz: int = 10,
    domain: Tuple[float, float, float] = (12.0, 8.0, 4.0),
    hill_height: float = 1.2,
    hill_radius: float = 1.5,
    grading: float = 1.6,
) -> TetMesh:
    """Terrain-following tetrahedral mesh over a Bolund-like hill.

    The domain is ``[-Lx/2, Lx/2] x [-Ly/2, Ly/2] x [terrain, Lz]`` with the
    hill centred at the origin.  Vertical node spacing is graded towards the
    ground (``grading > 1`` concentrates points near the terrain, resolving
    the boundary layer as an LES mesh would).
    """
    Lx, Ly, Lz = domain
    coords, hexes = structured_grid(nx, ny, nz)
    x = (coords[:, 0] - 0.5) * Lx
    y = (coords[:, 1] - 0.5) * Ly
    s = coords[:, 2] ** grading  # graded vertical parameter in [0, 1]
    zsurf = _bolund_height(x, y, hill_height, hill_radius)
    z = zsurf + s * (Lz - zsurf)
    mesh = TetMesh(
        np.stack([x, y, z], axis=1),
        hexes[:, KUHN_TETS].reshape(-1, 4),
        validate=False,
    )
    mesh.fix_orientation()
    mesh.validate()
    return mesh


def channel_mesh(
    nx: int = 16,
    ny: int = 12,
    nz: int = 12,
    lengths: Tuple[float, float, float] = (6.0, 3.0, 2.0),
    wall_grading: float = 1.8,
) -> TetMesh:
    """Channel-flow box with symmetric wall-normal (z) grading.

    Node spacing is clustered at ``z = 0`` and ``z = Lz`` using a tanh-like
    symmetric grading controlled by ``wall_grading``.
    """
    coords, hexes = structured_grid(nx, ny, nz)
    Lx, Ly, Lz = lengths
    t = coords[:, 2] * 2.0 - 1.0  # [-1, 1]
    z = np.tanh(wall_grading * t) / np.tanh(wall_grading)  # still [-1, 1]
    mesh = TetMesh(
        np.stack(
            [coords[:, 0] * Lx, coords[:, 1] * Ly, (z + 1.0) * 0.5 * Lz],
            axis=1,
        ),
        hexes[:, KUHN_TETS].reshape(-1, 4),
        validate=False,
    )
    mesh.fix_orientation()
    mesh.validate()
    return mesh


def perturbed_box_mesh(
    nx: int,
    ny: int,
    nz: int,
    amplitude: float = 0.15,
    seed: int = 0,
) -> TetMesh:
    """Box mesh with random interior-node jitter (for robustness tests).

    Boundary nodes are kept fixed; the jitter amplitude is a fraction of the
    local cell size, small enough to preserve positive element volumes.
    """
    mesh = box_tet_mesh(nx, ny, nz)
    rng = np.random.default_rng(seed)
    h = np.array([1.0 / nx, 1.0 / ny, 1.0 / nz])
    interior = np.ones(mesh.nnode, dtype=bool)
    interior[mesh.boundary_nodes()] = False
    jitter = (rng.random((mesh.nnode, 3)) - 0.5) * 2.0 * amplitude * h
    coords = mesh.coords.copy()
    coords[interior] += jitter[interior]
    out = TetMesh(coords, mesh.connectivity.copy(), validate=False)
    if (out.element_volumes() <= 0).any():
        raise ValueError(
            "perturbation amplitude too large: inverted elements produced"
        )
    return out
