"""Vectorized element packing (the ``VECTOR_DIM`` data layout).

Alya's assembly "loops over *groups* of elements" instead of single
elements: every per-element quantity gets an extra leading dimension of
length ``VECTOR_DIM`` so that CPU SIMD lanes / GPU threads each own one
element of the group.  The paper tunes ``VECTOR_DIM = 16`` on the CPU (a
small multiple of the AVX-512 width, keeping all temporaries L1/L2 resident)
and ``VECTOR_DIM = 2048k`` on the GPU (many waves of ~10^6 concurrent
threads).

This module turns a :class:`~repro.fem.mesh.TetMesh` into a sequence of
:class:`ElementGroup` packs with gathered node coordinates/velocities and
provides the scatter-add that accumulates per-group elemental RHS values
into the global RHS.  The final group is padded with repeated dummy elements
(weight zero) so every group has exactly ``VECTOR_DIM`` lanes -- the same
trick Alya uses.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, List

import numpy as np

from .mesh import TetMesh

__all__ = ["ElementGroup", "ElementPacking", "scatter_add"]


@dataclasses.dataclass(frozen=True)
class ElementGroup:
    """One ``VECTOR_DIM``-sized pack of elements.

    Attributes
    ----------
    index:
        Group ordinal within the packing.
    element_ids:
        ``(vector_dim,)`` global element ids (padding lanes repeat the last
        real element).
    connectivity:
        ``(vector_dim, 4)`` global node ids per lane.
    coords:
        ``(vector_dim, 4, 3)`` gathered node coordinates.
    active:
        ``(vector_dim,)`` bool mask; False on padding lanes.
    """

    index: int
    element_ids: np.ndarray
    connectivity: np.ndarray
    coords: np.ndarray
    active: np.ndarray

    @property
    def vector_dim(self) -> int:
        return self.element_ids.shape[0]

    @property
    def nactive(self) -> int:
        return int(self.active.sum())

    def gather_nodal(self, field: np.ndarray) -> np.ndarray:
        """Gather a nodal field into the group layout.

        ``field`` is ``(nnode,)`` or ``(nnode, ncomp)``; the result is
        ``(vector_dim, 4)`` or ``(vector_dim, 4, ncomp)``.
        """
        return field[self.connectivity]


class ElementPacking:
    """Partition of a mesh's elements into ``VECTOR_DIM`` groups.

    Parameters
    ----------
    mesh:
        The tetrahedral mesh.
    vector_dim:
        Lanes per group.  16 is the paper's CPU choice; the GPU path uses a
        very large value so a single "group" spans the whole kernel launch.
    permutation:
        Optional element processing order (e.g. from a partitioner or a
        locality-improving reordering).  Defaults to natural order.
    """

    def __init__(
        self,
        mesh: TetMesh,
        vector_dim: int = 16,
        permutation: np.ndarray | None = None,
        cache: bool = False,
    ) -> None:
        if vector_dim < 1:
            raise ValueError("vector_dim must be >= 1")
        self.mesh = mesh
        self.vector_dim = int(vector_dim)
        if permutation is None:
            self._order = np.arange(mesh.nelem, dtype=np.int64)
        else:
            perm = np.asarray(permutation, dtype=np.int64)
            if perm.shape != (mesh.nelem,) or not np.array_equal(
                np.sort(perm), np.arange(mesh.nelem)
            ):
                raise ValueError("permutation must be a bijection on elements")
            self._order = perm
        # One shared all-true mask serves every full group; the padded
        # final group (if any) is always memoized -- rebuilding it per
        # assemble was pure waste.  With ``cache=True`` every group's
        # gathered connectivity/coords are kept for the mesh's lifetime.
        self._active_full = np.ones(self.vector_dim, dtype=bool)
        self._active_full.flags.writeable = False
        self._final_group: ElementGroup | None = None
        self._cache: dict[int, ElementGroup] | None = {} if cache else None

    @property
    def ngroups(self) -> int:
        """Number of groups (last one possibly padded)."""
        return -(-self.mesh.nelem // self.vector_dim)

    @property
    def npad(self) -> int:
        """Number of padding lanes in the final group."""
        rem = self.mesh.nelem % self.vector_dim
        return 0 if rem == 0 else self.vector_dim - rem

    def group(self, index: int) -> ElementGroup:
        """Build (or fetch the memoized) ``index``-th element group."""
        if not 0 <= index < self.ngroups:
            raise IndexError(
                f"group index {index} out of range [0, {self.ngroups})"
            )
        if self._cache is not None:
            cached = self._cache.get(index)
            if cached is not None:
                return cached
        start = index * self.vector_dim
        stop = min(start + self.vector_dim, self.mesh.nelem)
        if stop - start < self.vector_dim:
            if self._final_group is not None:
                return self._final_group
            ids = self._order[start:stop]
            pad = self.vector_dim - (stop - start)
            ids = np.concatenate([ids, np.repeat(ids[-1:], pad)])
            active = np.ones(self.vector_dim, dtype=bool)
            active[stop - start:] = False
            active.flags.writeable = False
        else:
            ids = self._order[start:stop]
            active = self._active_full
        conn = self.mesh.connectivity[ids]
        group = ElementGroup(
            index=index,
            element_ids=ids,
            connectivity=conn,
            coords=self.mesh.coords[conn],
            active=active,
        )
        if stop - start < self.vector_dim:
            self._final_group = group
        if self._cache is not None:
            self._cache[index] = group
        return group

    def __iter__(self) -> Iterator[ElementGroup]:
        for i in range(self.ngroups):
            yield self.group(i)

    def __len__(self) -> int:
        return self.ngroups

    def groups(self) -> List[ElementGroup]:
        """Materialize all groups (convenience for small meshes)."""
        return list(self)


def scatter_add(
    global_rhs: np.ndarray,
    group: ElementGroup,
    elemental: np.ndarray,
) -> None:
    """Accumulate elemental contributions into the global RHS.

    This is the reduction step that the CPU path keeps in "a separate,
    unvectorized loop ... to avoid lost updates": different lanes of a group
    may share mesh nodes, so a plain fancy-index ``+=`` would silently drop
    updates.  The reduction runs through
    :func:`repro.fem.plan.segment_scatter` (``np.bincount``), which keeps
    the unbuffered sequential-in-input-order semantics of ``np.add.at``
    (bit-for-bit when accumulating into a zero array) while being roughly
    an order of magnitude faster.

    Parameters
    ----------
    global_rhs:
        ``(nnode, ncomp)`` or ``(nnode,)`` array updated in place.
    group:
        The element group the contributions belong to.
    elemental:
        ``(vector_dim, 4, ncomp)`` or ``(vector_dim, 4)`` per-lane elemental
        RHS.  Padding lanes are masked out.
    """
    elemental = np.asarray(elemental)
    if elemental.shape[0] != group.vector_dim:
        raise ValueError(
            f"elemental leading dim {elemental.shape[0]} != vector_dim "
            f"{group.vector_dim}"
        )
    if group.nactive == group.vector_dim:
        conn = group.connectivity
        vals = elemental
    else:
        conn = group.connectivity[group.active]
        vals = elemental[group.active]
    from .plan import segment_scatter  # runtime import: plan imports packing

    global_rhs += segment_scatter(
        conn.ravel(),
        vals.reshape(-1, *vals.shape[2:]),
        global_rhs.shape[0],
    )
