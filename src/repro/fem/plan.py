"""Mesh-lifetime assembly plans: precomputed scatter, cached packing/geometry.

The paper's R/RSPR transformations are about shrinking intermediate
lifetime and scattering elemental RHS entries straight into the global
RHS.  The Python substrate pays the opposite cost when left naive: every
assembly re-gathers coordinates, re-derives the (time-invariant) P1
geometry and reduces through ``np.add.at`` -- one of numpy's slowest
primitives.  This module hoists all of that mesh-lifetime setup out of
the hot loop:

* :class:`ScatterPlan` -- a precomputed reduction plan over a fixed index
  pattern (the raveled connectivity).  The default ``"bincount"``
  strategy is **bit-identical** to ``np.add.at`` into a zero array
  (both accumulate sequentially in input order), while running an order
  of magnitude faster.  The ``"sort"`` strategy (stable argsort +
  ``np.add.reduceat`` segment reduction) is deterministic and fastest
  for repeated many-component scatters, but uses pairwise summation
  inside segments, so it reproduces ``np.add.at`` only to rounding.
* :class:`GeometryCache` -- Jacobians, Cartesian shape gradients and
  volumes of the P1 mesh, computed once and shared by the momentum
  assembly, the pressure-Poisson assembly and the divergence
  diagnostics.
* :class:`ScatterAccumulator` -- the deferred scatter used by the DSL
  execution backend: every ``scatter_add_rhs`` call appends its lane
  values to a buffer whose *index pattern* is computed once per
  (mesh, vector_dim, variant) and cached; the final reduction is a
  single ``bincount`` in the exact temporal order the per-call
  ``np.add.at`` path would have used -- hence bit-identical results.
* :class:`AssemblyPlan` / :func:`get_plan` -- the per-mesh cache tying
  it together (weakly keyed, invalidated when the mesh is reoriented).

Telemetry flows through :mod:`repro.obs`: plan construction records a
``plan.build`` span, and the ``plan.*`` / ``scatter.*`` counters track
cache hits, strategy use and reduced value counts.
"""

from __future__ import annotations

import dataclasses
import weakref
from typing import Dict, Optional, Tuple

import numpy as np

from ..obs.metrics import get_registry
from ..obs.spans import get_tracer
from .geometry import tet4_gradients
from .mesh import TetMesh
from .packing import ElementGroup, ElementPacking

__all__ = [
    "segment_scatter",
    "flush_pattern",
    "flush_batch",
    "batch_flush_indices",
    "seed_flush_order",
    "ScatterPlan",
    "GeometryCache",
    "ScatterAccumulator",
    "AssemblyPlan",
    "get_plan",
]


def _readonly(arr: np.ndarray) -> np.ndarray:
    arr.flags.writeable = False
    return arr


def segment_scatter(
    indices: np.ndarray, values: np.ndarray, nbins: int
) -> np.ndarray:
    """Sum ``values`` into ``nbins`` bins, bit-identical to ``np.add.at``.

    ``np.bincount`` accumulates weights sequentially in input order --
    exactly the unbuffered semantics of ``np.add.at`` on a zero target --
    so for any duplicate pattern the result matches the naive scatter to
    the last bit, at a fraction of the cost.

    Parameters
    ----------
    indices:
        ``(n,)`` non-negative bin ids.
    values:
        ``(n,)`` or ``(n, ncomp)`` contributions.
    nbins:
        Size of the output's leading dimension.
    """
    indices = np.asarray(indices)
    values = np.asarray(values, dtype=np.float64)
    registry = get_registry()
    registry.counter("scatter.bincount_calls").inc()
    registry.counter("scatter.values_reduced").inc(values.size)
    if values.ndim == 1:
        return np.bincount(indices, weights=values, minlength=nbins)[:nbins]
    out = np.empty((nbins, values.shape[1]), dtype=np.float64)
    for c in range(values.shape[1]):
        out[:, c] = np.bincount(
            indices, weights=values[:, c], minlength=nbins
        )[:nbins]
    return out


class ScatterPlan:
    """Precomputed reduction plan for a fixed scatter-index pattern.

    Parameters
    ----------
    indices:
        ``(n,)`` target bin of each contribution (e.g. the raveled element
        connectivity).  Copied and frozen.
    nbins:
        Number of output bins (e.g. ``nnode``).
    """

    def __init__(self, indices: np.ndarray, nbins: int) -> None:
        self.indices = _readonly(
            np.ascontiguousarray(indices, dtype=np.int64).copy()
        )
        if self.indices.size and self.indices.min() < 0:
            raise ValueError("scatter indices must be non-negative")
        self.nbins = int(nbins)
        # sort-strategy artifacts, built on first use
        self._order: Optional[np.ndarray] = None
        self._starts: Optional[np.ndarray] = None
        self._bins: Optional[np.ndarray] = None

    @property
    def nvalues(self) -> int:
        return self.indices.shape[0]

    def _build_sort(self) -> None:
        order = np.argsort(self.indices, kind="stable")
        sorted_idx = self.indices[order]
        if sorted_idx.size:
            new = np.ones(sorted_idx.size, dtype=bool)
            new[1:] = sorted_idx[1:] != sorted_idx[:-1]
            starts = np.flatnonzero(new)
            bins = sorted_idx[starts]
        else:
            starts = np.zeros(0, dtype=np.int64)
            bins = np.zeros(0, dtype=np.int64)
        self._order = _readonly(order)
        self._starts = _readonly(starts)
        self._bins = _readonly(bins)
        get_registry().counter("scatter.sort_plan_builds").inc()

    def scatter(self, values: np.ndarray, strategy: str = "bincount") -> np.ndarray:
        """Reduce ``values`` (aligned with ``indices``) into the bins.

        ``strategy="bincount"`` (default) is bit-identical to the
        ``np.add.at`` reduction the seed code used.  ``strategy="sort"``
        uses the precomputed stable argsort and ``np.add.reduceat``; it is
        deterministic but sums segments pairwise, so it matches only to
        rounding.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.shape[0] != self.nvalues:
            raise ValueError(
                f"values leading dim {values.shape[0]} != plan size "
                f"{self.nvalues}"
            )
        if strategy == "bincount":
            return segment_scatter(self.indices, values, self.nbins)
        if strategy != "sort":
            raise ValueError(f"unknown scatter strategy {strategy!r}")
        if self._order is None:
            self._build_sort()
        registry = get_registry()
        registry.counter("scatter.sort_calls").inc()
        registry.counter("scatter.values_reduced").inc(values.size)
        shape = (self.nbins,) + values.shape[1:]
        out = np.zeros(shape, dtype=np.float64)
        if self.nvalues:
            seg = np.add.reduceat(values[self._order], self._starts, axis=0)
            out[self._bins] = seg
        return out


@dataclasses.dataclass(frozen=True)
class GeometryCache:
    """Time-invariant P1 geometry of a whole mesh.

    Attributes
    ----------
    gradients:
        ``(nelem, 4, 3)`` constant Cartesian shape gradients.
    dets:
        ``(nelem,)`` Jacobian determinants (``6 * volume``).
    volumes:
        ``(nelem,)`` element volumes (``dets / 6``).
    """

    gradients: np.ndarray
    dets: np.ndarray
    volumes: np.ndarray


@dataclasses.dataclass(frozen=True)
class _ScatterPattern:
    """Cached index pattern of one full DSL assembly sweep.

    ``order``, when present, is the canonical *seed-order* flush
    permutation of a reordered mesh (see :func:`seed_flush_order`):
    ``indices`` are then stored already permuted and the flush gathers
    ``values[order]`` so contributions reduce in the exact temporal order
    the seed-mesh assembly would have used -- bit-identical per node.
    """

    indices: np.ndarray  # (total,) flattened (node*ncomp + comp) + trash bin
    signature: Tuple[Tuple[int, int, int], ...]  # (group, slot, comp) per call
    length: int
    order: Optional[np.ndarray] = None  # flush permutation (seed order)


def seed_flush_order(
    lane_seed: np.ndarray,
    active: np.ndarray,
    ncalls: int,
    vector_dim: int,
) -> Optional[np.ndarray]:
    """Flush permutation restoring a reordered mesh's seed scatter order.

    A sweep's scatter values are laid out ``(ngroups, ncalls, vector_dim)``
    and reduced by a single sequential ``bincount``; per global-RHS bin,
    float summation order -- hence the last-ulp rounding -- follows that
    layout.  Element reordering permutes lanes, so a reordered mesh's
    natural flush would fold each node's contributions in a different
    order than the seed mesh's.

    Elemental values themselves are bit-exact under reordering (every DSL
    op is an elementwise float64 ufunc), so replaying the *seed* flush
    order is sufficient for bitwise identity: lane ``l`` holding seed
    element ``s = lane_seed[l]`` contributed, in the seed sweep at the
    same ``vector_dim``, its call-``c`` value at flat position
    ``(s // vd) * ncalls * vd + c * vd + (s % vd)``.  The stable argsort
    of those positions is the permutation; padding lanes sort to the end
    (their contributions go to the trash bin regardless).

    Returns ``None`` when the order is already canonical (seed meshes,
    pure node renumberings) so the common path pays nothing.
    """
    lane_seed = np.asarray(lane_seed, dtype=np.int64)
    active = np.asarray(active, dtype=bool)
    vd = int(vector_dim)
    ncalls = int(ncalls)
    nlane = lane_seed.shape[0]
    if nlane == 0 or ncalls == 0:
        return None
    ngroups = nlane // vd
    base = (lane_seed // vd) * (ncalls * vd) + (lane_seed % vd)
    pos = base.reshape(ngroups, 1, vd) + (
        np.arange(ncalls, dtype=np.int64) * vd
    ).reshape(1, ncalls, 1)
    pos = np.where(
        active.reshape(ngroups, 1, vd), pos, np.iinfo(np.int64).max
    )
    order = np.argsort(pos.reshape(-1), kind="stable")
    if np.array_equal(order, np.arange(order.shape[0])):
        return None
    return _readonly(order)


def flush_pattern(
    pattern: _ScatterPattern,
    values: np.ndarray,
    rhs: np.ndarray,
    nnode: int,
    ncomp: int = 3,
) -> None:
    """Reduce one sweep's buffered scatter ``values`` into ``rhs``.

    The single shared flush of the deferred-scatter paths (the interpreted
    :class:`ScatterAccumulator` and the compiled tape executor): one
    ``bincount`` over the precomputed index pattern, sequential in buffer
    order -- bit-identical to per-call ``np.add.at`` on a zero target.
    The trash bin (one slot past the real ``nnode * ncomp`` bins) absorbs
    padding-lane contributions.  Patterns carrying a seed-order ``order``
    (reordered meshes) gather the values through it first, reducing in
    the seed mesh's temporal order instead -- see :func:`seed_flush_order`.
    """
    registry = get_registry()
    registry.counter("scatter.bincount_calls").inc()
    registry.counter("scatter.values_reduced").inc(values.size)
    if pattern.order is not None:
        values = values[pattern.order]
        registry.counter("scatter.seed_order_flushes").inc()
    trash = int(nnode) * int(ncomp)
    out = np.bincount(pattern.indices, weights=values, minlength=trash + 1)
    rhs += out[:trash].reshape(nnode, ncomp)


def batch_flush_indices(
    pattern: _ScatterPattern, scenarios: int, nnode: int, ncomp: int = 3
) -> np.ndarray:
    """Offset scatter indices for an ``S``-scenario batched flush.

    Scenario ``s`` reduces into bins ``[s * stride, (s + 1) * stride)``
    with ``stride = nnode * ncomp + 1`` (each scenario keeps its own
    trash bin for padding lanes), so one ``bincount`` over the tiled
    indices reduces all scenarios at once.  Built once per batched tape
    and reused every flush.
    """
    stride = int(nnode) * int(ncomp) + 1
    offsets = (np.arange(int(scenarios), dtype=np.int64) * stride)
    return _readonly(
        (pattern.indices[None, :] + offsets[:, None]).reshape(-1)
    )


def flush_batch(
    pattern: _ScatterPattern,
    batch_indices: np.ndarray,
    values2d: np.ndarray,
    rhs: np.ndarray,
    nnode: int,
    ncomp: int = 3,
) -> None:
    """Reduce a batched sweep's ``(S, length)`` values into ``(S, nnode,
    ncomp)`` -- one ``bincount``, bit-identical per scenario.

    ``batch_indices`` comes from :func:`batch_flush_indices` for the same
    pattern and ``S = values2d.shape[0]``.  Within each scenario's bin
    range the weights appear in exactly the buffer order the serial
    :func:`flush_pattern` would have reduced, so every scenario's RHS
    matches its serial solve to the last bit.  Patterns carrying a
    seed-order permutation (reordered meshes) gather each scenario's
    values through it first, same as the serial flush.
    """
    registry = get_registry()
    registry.counter("scatter.bincount_calls").inc()
    registry.counter("scatter.values_reduced").inc(values2d.size)
    registry.counter("scatter.batch_flushes").inc()
    if pattern.order is not None:
        values2d = values2d[:, pattern.order]
        registry.counter("scatter.seed_order_flushes").inc()
    S = values2d.shape[0]
    trash = int(nnode) * int(ncomp)
    stride = trash + 1
    out = np.bincount(
        batch_indices, weights=values2d.reshape(-1),
        minlength=S * stride,
    )
    rhs += out[: S * stride].reshape(S, stride)[:, :trash].reshape(
        S, nnode, ncomp
    )


class ScatterAccumulator:
    """Deferred global-RHS scatter for the DSL execution backend.

    The seed path issued one ``np.add.at`` per (node slot, component) per
    element group -- ``12 * ngroups`` unbuffered scatters per assembly.
    The accumulator instead buffers every call's lane values in temporal
    order and reduces **once** with a single ``bincount`` over the
    flattened ``(node, component)`` bins.  Because ``bincount`` sums
    sequentially in buffer order -- the same order the per-call
    ``np.add.at`` would have applied -- the result is bit-identical.

    Padding lanes are routed to a trash bin (one extra slot past the real
    bins) so no runtime masking is needed.  The index pattern of a full
    sweep depends only on (mesh, packing, kernel call order), so it is
    built during the first assembly and cached on the owning
    :class:`AssemblyPlan` for every later timestep.
    """

    def __init__(
        self,
        plan: "AssemblyPlan",
        key: Tuple,
        nnode: int,
        ncomp: int = 3,
    ) -> None:
        self._plan = plan
        self._key = key
        self._nnode = int(nnode)
        self._ncomp = int(ncomp)
        self._trash = self._nnode * self._ncomp
        self._group: Optional[ElementGroup] = None
        self._signature: list = []
        self._pattern: Optional[_ScatterPattern] = plan._patterns.get(key)
        if self._pattern is None:
            self._idx_chunks: list = []
            self._val_chunks: list = []
            # Seed provenance of a reordered mesh: collect per-group lane
            # seeds so finalize can build the canonical flush order.
            self._seed_ids = plan.mesh.seed_element_ids
            self._lane_seed_chunks: list = []
            self._active_chunks: list = []
            self._vector_dim = 0
        else:
            self._values = np.empty(self._pattern.length, dtype=np.float64)
        self._pos = 0

    def begin_group(self, group: ElementGroup) -> None:
        """Declare the element group subsequent :meth:`add` calls belong to."""
        self._group = group
        if self._pattern is None and self._seed_ids is not None:
            self._lane_seed_chunks.append(self._seed_ids[group.element_ids])
            self._active_chunks.append(group.active)
            self._vector_dim = group.vector_dim

    def add(self, node_slot: int, component: int, payload) -> None:
        """Record one lane-wide scatter call (values in lane order)."""
        group = self._group
        if group is None:
            raise RuntimeError("ScatterAccumulator.add before begin_group")
        vals = np.broadcast_to(payload, (group.vector_dim,))
        self._signature.append((group.index, node_slot, component))
        if self._pattern is None:
            idx = group.connectivity[:, node_slot] * self._ncomp + component
            if group.nactive != group.vector_dim:
                idx = np.where(group.active, idx, self._trash)
            self._idx_chunks.append(np.ascontiguousarray(idx, dtype=np.int64))
            self._val_chunks.append(np.array(vals, dtype=np.float64))
            self._pos += vals.shape[0]
        else:
            n = vals.shape[0]
            if self._pos + n > self._pattern.length:
                raise RuntimeError(
                    "scatter pattern mismatch: kernel issued more scatter "
                    "values than the cached plan"
                )
            self._values[self._pos:self._pos + n] = vals
            self._pos += n

    def finalize(self, rhs: np.ndarray) -> None:
        """Reduce the buffered contributions into ``rhs`` (``(nnode, ncomp)``)."""
        registry = get_registry()
        if self._pattern is None:
            if self._idx_chunks:
                indices = np.concatenate(self._idx_chunks)
                values = np.concatenate(self._val_chunks)
            else:
                indices = np.zeros(0, dtype=np.int64)
                values = np.zeros(0, dtype=np.float64)
            order = None
            if self._lane_seed_chunks and self._signature:
                ngroups = self._signature[-1][0] + 1
                order = seed_flush_order(
                    np.concatenate(self._lane_seed_chunks),
                    np.concatenate(self._active_chunks),
                    len(self._signature) // ngroups,
                    self._vector_dim,
                )
            if order is not None:
                indices = np.ascontiguousarray(indices[order])
            pattern = _ScatterPattern(
                indices=_readonly(indices),
                signature=tuple(self._signature),
                length=int(indices.shape[0]),
                order=order,
            )
            self._plan._patterns[self._key] = pattern
            registry.counter("scatter.pattern_builds").inc()
        else:
            pattern = self._pattern
            if self._pos != pattern.length or (
                tuple(self._signature) != pattern.signature
            ):
                raise RuntimeError(
                    "scatter pattern mismatch: kernel call order changed "
                    "between assemblies of the same plan key"
                )
            values = self._values
            registry.counter("scatter.pattern_reuses").inc()
        flush_pattern(pattern, values, rhs, self._nnode, self._ncomp)


class AssemblyPlan:
    """Everything about a mesh the assembly can precompute once.

    Instances are created through :func:`get_plan`, which caches one plan
    per live mesh (weakly referenced; reorienting the mesh with
    :meth:`~repro.fem.mesh.TetMesh.fix_orientation` invalidates it).
    """

    def __init__(self, mesh: TetMesh) -> None:
        with get_tracer().span(
            "plan.build", nnode=int(mesh.nnode), nelem=int(mesh.nelem)
        ):
            self.mesh = mesh
            #: mesh-level scatter plan over the raveled connectivity
            self.scatter = ScatterPlan(mesh.connectivity.ravel(), mesh.nnode)
        self._geometry: Optional[GeometryCache] = None
        self._element_volumes: Optional[np.ndarray] = None
        self._lumped_mass: Optional[np.ndarray] = None
        self._packed_coords: Optional[np.ndarray] = None
        self._packings: Dict[Tuple, ElementPacking] = {}
        self._patterns: Dict[Tuple, _ScatterPattern] = {}
        self._tapes: Dict[Tuple, object] = {}
        self._codegen: Dict[Tuple, object] = {}
        self._tuned_vector_dim: Dict[Tuple[str, str], int] = {}
        self._tuned_chunk_groups: Dict[str, int] = {}
        get_registry().counter("plan.builds").inc()

    # -- cached geometry -------------------------------------------------
    def geometry(self) -> GeometryCache:
        """Cached P1 gradients / Jacobian dets / volumes of the mesh."""
        if self._geometry is None:
            with get_tracer().span("plan.geometry", nelem=int(self.mesh.nelem)):
                grads, dets = tet4_gradients(self.packed_coords())
                self._geometry = GeometryCache(
                    gradients=_readonly(grads),
                    dets=_readonly(dets),
                    volumes=_readonly(dets / 6.0),
                )
            get_registry().counter("plan.geometry_builds").inc()
        return self._geometry

    def element_volumes(self) -> np.ndarray:
        """Cached signed element volumes.

        Same triple-product formula as
        :meth:`~repro.fem.mesh.TetMesh.element_volumes` (which differs
        from :attr:`GeometryCache.volumes` -- the determinant route -- in
        the last ulp), so callers that historically used the mesh helper
        keep bit-identical values.
        """
        if self._element_volumes is None:
            self._element_volumes = _readonly(self.mesh.element_volumes())
        return self._element_volumes

    def lumped_mass(self) -> np.ndarray:
        """Cached lumped-mass diagonal, bit-identical to the seed
        ``np.add.at`` version in :func:`repro.fem.fields.lumped_mass`."""
        if self._lumped_mass is None:
            vols = self.element_volumes()
            self._lumped_mass = _readonly(
                self.scatter.scatter(np.repeat(vols / 4.0, 4))
            )
        return self._lumped_mass

    def packed_coords(self) -> np.ndarray:
        """Cached ``(nelem, 4, 3)`` gathered element node coordinates."""
        if self._packed_coords is None:
            self._packed_coords = _readonly(self.mesh.element_coords())
        return self._packed_coords

    # -- cached packing ----------------------------------------------------
    def packing(
        self,
        vector_dim: int,
        permutation: Optional[np.ndarray] = None,
    ) -> ElementPacking:
        """Cached, group-memoizing :class:`ElementPacking` for this mesh."""
        perm_key = None if permutation is None else np.asarray(
            permutation, dtype=np.int64
        ).tobytes()
        key = (int(vector_dim), perm_key)
        packing = self._packings.get(key)
        if packing is None:
            packing = ElementPacking(
                self.mesh,
                vector_dim=vector_dim,
                permutation=permutation,
                cache=True,
            )
            self._packings[key] = packing
            get_registry().counter("plan.packing_builds").inc()
        return packing

    # -- scatter patterns ---------------------------------------------------
    def scatter_pattern(self, key: Tuple) -> Optional[_ScatterPattern]:
        """Cached scatter index pattern for a sweep key, or ``None``."""
        return self._patterns.get(key)

    def store_scatter_pattern(
        self,
        key: Tuple,
        indices: np.ndarray,
        signature: Tuple[Tuple[int, int, int], ...],
        order: Optional[np.ndarray] = None,
    ) -> _ScatterPattern:
        """Register a sweep's scatter index pattern and return it.

        Used by the compiled tape executor, which builds the pattern
        vectorized instead of call-by-call; the stored pattern is the same
        object the interpreted :class:`ScatterAccumulator` would have
        built (same key, same signature, same flattened index order), so
        interpreted and compiled sweeps of one configuration share it.
        ``order``, when given (reordered meshes), is the seed flush
        permutation; ``indices`` must be in *buffer* order and are stored
        permuted through it.
        """
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        if order is not None:
            indices = np.ascontiguousarray(indices[order])
        pattern = _ScatterPattern(
            indices=_readonly(indices),
            signature=tuple(signature),
            length=int(indices.shape[0]),
            order=order,
        )
        self._patterns[key] = pattern
        return pattern

    # -- compiled tapes -----------------------------------------------------
    def cached_tape(self, key: Tuple):
        """Cached compiled kernel tape for ``key``, or ``None``.

        Tapes live on the plan so mesh reorientation (which invalidates
        the plan through :func:`get_plan`) invalidates every tape with it.
        """
        return self._tapes.get(key)

    def store_tape(self, key: Tuple, tape) -> None:
        self._tapes[key] = tape

    # -- generated (codegen) kernels ----------------------------------------
    def cached_codegen(self, key: Tuple):
        """Cached generated kernel for ``key``, or ``None``.

        Generated kernels share the tape cache key and lifecycle: mesh
        reorientation invalidates the plan, and with it every generated
        source module bound to the old node numbering.
        """
        return self._codegen.get(key)

    def store_codegen(self, key: Tuple, kern) -> None:
        self._codegen[key] = kern

    # -- autotuned vector_dim -----------------------------------------------
    def tuned_vector_dim(
        self, variant: str, mode: str = "compiled"
    ) -> Optional[int]:
        """Autotuned ``VECTOR_DIM`` winner for ``(variant, mode)``.

        Winners are keyed per execution mode (and, for batched runs, per
        ``"<mode>@S<scenarios>"``) so a batched codegen sweep and a
        serial compiled sweep never evict each other's tuned lane width.
        """
        return self._tuned_vector_dim.get((variant.upper(), str(mode)))

    def set_tuned_vector_dim(
        self, variant: str, vector_dim: int, mode: str = "compiled"
    ) -> None:
        """Persist an autotuned ``VECTOR_DIM`` winner on the plan."""
        self._tuned_vector_dim[(variant.upper(), str(mode))] = int(vector_dim)
        get_registry().gauge(
            f"tape.tuned_vector_dim.{variant.upper()}.{mode}"
        ).set(int(vector_dim))

    # -- autotuned threaded chunk size ---------------------------------------
    def tuned_chunk_groups(self, variant: str) -> Optional[int]:
        """Autotuned threaded-executor chunk size (groups), if recorded."""
        return self._tuned_chunk_groups.get(variant.upper())

    def set_tuned_chunk_groups(self, variant: str, chunk_groups: int) -> None:
        """Persist an autotuned threaded chunk size on the plan."""
        self._tuned_chunk_groups[variant.upper()] = int(chunk_groups)
        get_registry().gauge(
            f"locality.tuned_chunk_groups.{variant.upper()}"
        ).set(int(chunk_groups))

    # -- deferred DSL scatter ---------------------------------------------
    def accumulator(self, key: Tuple, ncomp: int = 3) -> ScatterAccumulator:
        """New deferred-scatter accumulator for one assembly sweep.

        ``key`` identifies the sweep's index pattern (variant name,
        vector_dim, permutation); the pattern is cached after the first
        sweep with that key.
        """
        return ScatterAccumulator(self, key, self.mesh.nnode, ncomp=ncomp)


# -- per-mesh plan cache ------------------------------------------------------

_PLANS: "weakref.WeakKeyDictionary[TetMesh, Tuple[int, AssemblyPlan]]" = (
    weakref.WeakKeyDictionary()
)


def get_plan(mesh: TetMesh) -> AssemblyPlan:
    """The (cached) :class:`AssemblyPlan` of ``mesh``.

    Plans are weakly keyed on the mesh object and invalidated when the
    mesh's structural version changes (``fix_orientation``).
    """
    version = getattr(mesh, "_version", 0)
    entry = _PLANS.get(mesh)
    if entry is not None and entry[0] == version:
        get_registry().counter("plan.cache_hits").inc()
        return entry[1]
    plan = AssemblyPlan(mesh)
    _PLANS[mesh] = (version, plan)
    return plan
