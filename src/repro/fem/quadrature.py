"""Gauss quadrature rules for the supported reference elements.

The paper's baseline assembly takes the number of Gauss integration points as
a *runtime* function parameter; the specialized variants fix the linear
tetrahedron with its standard 4-point rule at compile time ("the number of
four nodes per element and four Gauss integration points [become] compile
time parameters").  This module provides the closed quadrature catalogue both
paths draw from.

Every rule records its polynomial ``degree`` of exactness, which the test
suite verifies by integrating random polynomials (hypothesis property tests).
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Dict, Tuple

import numpy as np

from .reference import ReferenceElement, element

__all__ = ["QuadratureRule", "rule_for", "available_rules", "TET04_RULES"]


@dataclasses.dataclass(frozen=True)
class QuadratureRule:
    """A fixed quadrature rule on a reference element.

    Attributes
    ----------
    element_name:
        Name of the reference element the rule integrates over.
    points:
        ``(ngauss, dim)`` parametric coordinates.
    weights:
        ``(ngauss,)`` weights summing to the reference volume.
    degree:
        Highest total polynomial degree integrated exactly.
    """

    element_name: str
    points: np.ndarray
    weights: np.ndarray
    degree: int

    @property
    def ngauss(self) -> int:
        return self.points.shape[0]

    def integrate(self, values: np.ndarray) -> np.ndarray:
        """Integrate per-point values: ``sum_g w_g * values[..., g]``."""
        return np.tensordot(np.asarray(values), self.weights, axes=([-1], [0]))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QuadratureRule({self.element_name}, ngauss={self.ngauss}, "
            f"degree={self.degree})"
        )


def _tet_rules() -> Dict[int, QuadratureRule]:
    rules: Dict[int, QuadratureRule] = {}

    # 1 point, degree 1 (centroid)
    rules[1] = QuadratureRule(
        "TET04",
        np.array([[0.25, 0.25, 0.25]]),
        np.array([1.0 / 6.0]),
        degree=1,
    )

    # 4 points, degree 2 -- the rule Alya uses for linear tets and the one
    # the paper's specialization hard-wires.
    a = (5.0 - np.sqrt(5.0)) / 20.0
    b = (5.0 + 3.0 * np.sqrt(5.0)) / 20.0
    pts4 = np.full((4, 3), a)
    for i in range(3):
        pts4[i + 1, i] = b
    rules[4] = QuadratureRule(
        "TET04", pts4, np.full(4, 1.0 / 24.0), degree=2
    )

    # 5 points, degree 3 (centroid + 4 with negative centroid weight)
    pts5 = np.vstack([[0.25, 0.25, 0.25], np.full((4, 3), 1.0 / 6.0)])
    for i in range(3):
        pts5[i + 1, i] = 0.5
    pts5[4] = [1.0 / 6.0] * 3
    w5 = np.array([-4.0 / 30.0, 9.0 / 120.0, 9.0 / 120.0, 9.0 / 120.0, 9.0 / 120.0])
    rules[5] = QuadratureRule("TET04", pts5, w5, degree=3)

    # 11 points, degree 4 (Keast)
    a1 = 0.25
    w1 = -74.0 / 5625.0
    a2, b2 = 11.0 / 14.0, 1.0 / 14.0
    w2 = 343.0 / 45000.0
    a3 = (1.0 + np.sqrt(5.0 / 14.0)) / 4.0
    b3 = (1.0 - np.sqrt(5.0 / 14.0)) / 4.0
    w3 = 28.0 / 1125.0
    pts = [[a1, a1, a1]]
    wts = [w1]
    perms2 = {(a2, b2, b2), (b2, a2, b2), (b2, b2, a2), (b2, b2, b2)}
    # permutations of (a2, b2, b2, b2) barycentric -> drop 4th coordinate
    bary = set(itertools.permutations([a2, b2, b2, b2]))
    for p in sorted(bary):
        pts.append(list(p[:3]))
        wts.append(w2)
    bary3 = set(itertools.permutations([a3, a3, b3, b3]))
    for p in sorted(bary3):
        pts.append(list(p[:3]))
        wts.append(w3)
    del perms2
    rules[11] = QuadratureRule(
        "TET04", np.array(pts), np.array(wts), degree=4
    )
    return rules


def _gauss_legendre_1d(n: int) -> Tuple[np.ndarray, np.ndarray]:
    x, w = np.polynomial.legendre.leggauss(n)
    return x, w


def _hex_rules() -> Dict[int, QuadratureRule]:
    rules: Dict[int, QuadratureRule] = {}
    for n1d in (1, 2, 3):
        x, w = _gauss_legendre_1d(n1d)
        pts = np.array(list(itertools.product(x, repeat=3)))
        wts = np.array([w[i] * w[j] * w[k] for i, j, k in
                        itertools.product(range(n1d), repeat=3)])
        rules[n1d ** 3] = QuadratureRule(
            "HEX08", pts, wts, degree=2 * n1d - 1
        )
    return rules


_TRI3 = (
    np.array([[1.0 / 6.0, 1.0 / 6.0], [2.0 / 3.0, 1.0 / 6.0],
              [1.0 / 6.0, 2.0 / 3.0]]),
    np.full(3, 1.0 / 6.0),
)


def _pen_rules() -> Dict[int, QuadratureRule]:
    rules: Dict[int, QuadratureRule] = {}
    tri_pts, tri_w = _TRI3
    for n1d in (1, 2):
        x, w = _gauss_legendre_1d(n1d)
        pts = []
        wts = []
        for (tp, tw) in zip(tri_pts, tri_w):
            for (xx, ww) in zip(x, w):
                pts.append([tp[0], tp[1], xx])
                wts.append(tw * ww)
        rules[3 * n1d] = QuadratureRule(
            "PEN06", np.array(pts), np.array(wts), degree=2 if n1d == 1 else 2
        )
    return rules


def _pyr_rules() -> Dict[int, QuadratureRule]:
    # Conical product rule: Gauss-Legendre in (s, t), Gauss-Jacobi (alpha=2)
    # in u direction to absorb the (1-u)^2 volume factor.
    rules: Dict[int, QuadratureRule] = {}
    for n1d in (2,):
        x, w = _gauss_legendre_1d(n1d)
        # Gauss-Jacobi with weight (1-u)^2 on [0, 1]: use roots of Jacobi
        # P_n^(2,0) mapped from [-1,1].
        from scipy.special import roots_jacobi

        xj, wj = roots_jacobi(n1d, 2.0, 0.0)
        uj = 0.5 * (xj + 1.0)
        # weight: integral of (1-u)^2 over [0,1] is 1/3; roots_jacobi weights
        # integrate f(x)(1-x)^2 on [-1,1]; mapping gives factor (1/2)^3.
        wu = wj * 0.125
        pts = []
        wts = []
        # Volume integral: int_0^1 du (1-u)^2 int_{[-1,1]^2} dxs dxt
        # f(xs (1-u), xt (1-u), u); the (1-u)^2 factor is the Jacobi weight.
        for (u, wuu) in zip(uj, wu):
            scale = 1.0 - u
            for (xs, ws) in zip(x, w):
                for (xt, wt) in zip(x, w):
                    pts.append([xs * scale, xt * scale, u])
                    wts.append(ws * wt * wuu)
        rules[4 * n1d] = QuadratureRule(
            "PYR05", np.array(pts), np.array(wts), degree=2
        )
    return rules


_CATALOGUE: Dict[str, Dict[int, QuadratureRule]] = {
    "TET04": _tet_rules(),
    "HEX08": _hex_rules(),
    "PEN06": _pen_rules(),
    "PYR05": _pyr_rules(),
}

#: Shorthand used throughout the core kernels.
TET04_RULES = _CATALOGUE["TET04"]


def available_rules(element_name: str) -> Tuple[int, ...]:
    """Gauss-point counts available for ``element_name``."""
    return tuple(sorted(_CATALOGUE[element_name.upper()]))


def rule_for(element_name: str, ngauss: int | None = None) -> QuadratureRule:
    """Return a quadrature rule for an element.

    Parameters
    ----------
    element_name:
        Alya-style element name.
    ngauss:
        Number of Gauss points.  ``None`` selects the default rule matching
        Alya's choice for assembly (``ngauss == nnode`` where available,
        which for TET04 is the 4-point degree-2 rule the paper specializes
        to).
    """
    name = element_name.upper()
    try:
        rules = _CATALOGUE[name]
    except KeyError:
        raise KeyError(f"no quadrature catalogue for element {element_name!r}") from None
    if ngauss is None:
        ref: ReferenceElement = element(name)
        ngauss = ref.nnode if ref.nnode in rules else min(rules)
    try:
        return rules[ngauss]
    except KeyError:
        raise KeyError(
            f"{name}: no {ngauss}-point rule; available {sorted(rules)}"
        ) from None
