"""Reference finite elements.

Alya supports mixed meshes with tetrahedral, hexahedral, prismatic and
pyramidal elements; the paper's *specialization* step fixes the element type
to the linear tetrahedron (``TET04``), for which the shape-function gradients
are constant over the element.  The baseline assembly variant (``B``) keeps
the element type a *runtime* parameter and therefore needs the generic
machinery in this module: shape functions and their parametric derivatives
evaluated at arbitrary points for every supported element type.

The element naming follows Alya's convention (``TET04``, ``PYR05``,
``PEN06``, ``HEX08`` -- name plus node count).

All arrays are laid out ``(node, point)`` for values and
``(node, dim, point)`` for derivatives so that a single element evaluated at
``ngauss`` points produces contiguous per-point panels.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Tuple

import numpy as np

__all__ = [
    "ReferenceElement",
    "ELEMENTS",
    "element",
    "TET04",
    "PYR05",
    "PEN06",
    "HEX08",
]


@dataclasses.dataclass(frozen=True)
class ReferenceElement:
    """Immutable description of a reference (parent) element.

    Attributes
    ----------
    name:
        Alya-style identifier, e.g. ``"TET04"``.
    dim:
        Parametric dimension (3 for all volume elements here).
    nnode:
        Number of nodes / shape functions.
    node_coords:
        ``(nnode, dim)`` coordinates of the element nodes in parametric
        space.  Shape functions are nodal: ``N_a(x_b) = delta_ab``.
    shape:
        Callable mapping ``(npts, dim)`` parametric points to ``(nnode,
        npts)`` shape-function values.
    shape_grad:
        Callable mapping ``(npts, dim)`` parametric points to ``(nnode, dim,
        npts)`` parametric derivatives.
    linear_gradient:
        True when the shape-function gradients are constant over the element
        (only the linear tetrahedron here).  This is precisely the property
        the paper's specialization exploits: "the gradients of the shape
        functions are constant for tetrahedral elements".
    reference_volume:
        Volume of the reference element (used by sanity checks and
        quadrature-weight normalization tests).
    """

    name: str
    dim: int
    nnode: int
    node_coords: np.ndarray
    shape: Callable[[np.ndarray], np.ndarray]
    shape_grad: Callable[[np.ndarray], np.ndarray]
    linear_gradient: bool
    reference_volume: float

    def evaluate(self, points: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Evaluate shape functions and gradients at ``points``.

        Parameters
        ----------
        points:
            ``(npts, dim)`` array of parametric coordinates.

        Returns
        -------
        (values, gradients):
            ``(nnode, npts)`` and ``(nnode, dim, npts)`` arrays.
        """
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if pts.shape[1] != self.dim:
            raise ValueError(
                f"{self.name}: expected points with dim {self.dim}, "
                f"got shape {pts.shape}"
            )
        return self.shape(pts), self.shape_grad(pts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ReferenceElement({self.name}, nnode={self.nnode})"


# ---------------------------------------------------------------------------
# TET04 -- linear tetrahedron
# ---------------------------------------------------------------------------

_TET_NODES = np.array(
    [
        [0.0, 0.0, 0.0],
        [1.0, 0.0, 0.0],
        [0.0, 1.0, 0.0],
        [0.0, 0.0, 1.0],
    ]
)


def _tet_shape(pts: np.ndarray) -> np.ndarray:
    s, t, u = pts[:, 0], pts[:, 1], pts[:, 2]
    return np.stack([1.0 - s - t - u, s, t, u])


# Constant gradient matrix of the linear tet, (nnode, dim).
TET04_GRAD = np.array(
    [
        [-1.0, -1.0, -1.0],
        [1.0, 0.0, 0.0],
        [0.0, 1.0, 0.0],
        [0.0, 0.0, 1.0],
    ]
)


def _tet_shape_grad(pts: np.ndarray) -> np.ndarray:
    npts = pts.shape[0]
    return np.repeat(TET04_GRAD[:, :, None], npts, axis=2)


TET04 = ReferenceElement(
    name="TET04",
    dim=3,
    nnode=4,
    node_coords=_TET_NODES,
    shape=_tet_shape,
    shape_grad=_tet_shape_grad,
    linear_gradient=True,
    reference_volume=1.0 / 6.0,
)


# ---------------------------------------------------------------------------
# HEX08 -- trilinear hexahedron on [-1, 1]^3
# ---------------------------------------------------------------------------

_HEX_SIGNS = np.array(
    [
        [-1, -1, -1],
        [1, -1, -1],
        [1, 1, -1],
        [-1, 1, -1],
        [-1, -1, 1],
        [1, -1, 1],
        [1, 1, 1],
        [-1, 1, 1],
    ],
    dtype=np.float64,
)


def _hex_shape(pts: np.ndarray) -> np.ndarray:
    # N_a = 1/8 (1 + sa s)(1 + ta t)(1 + ua u)
    terms = 1.0 + _HEX_SIGNS[:, None, :] * pts[None, :, :]
    return 0.125 * terms.prod(axis=2)


def _hex_shape_grad(pts: np.ndarray) -> np.ndarray:
    terms = 1.0 + _HEX_SIGNS[:, None, :] * pts[None, :, :]  # (8, npts, 3)
    grads = np.empty((8, 3, pts.shape[0]))
    for d in range(3):
        others = [k for k in range(3) if k != d]
        grads[:, d, :] = (
            0.125 * _HEX_SIGNS[:, d, None] * terms[:, :, others].prod(axis=2)
        )
    return grads


HEX08 = ReferenceElement(
    name="HEX08",
    dim=3,
    nnode=8,
    node_coords=_HEX_SIGNS.copy(),
    shape=_hex_shape,
    shape_grad=_hex_shape_grad,
    linear_gradient=False,
    reference_volume=8.0,
)


# ---------------------------------------------------------------------------
# PEN06 -- linear prism (wedge): triangle (s, t) x line u in [-1, 1]
# ---------------------------------------------------------------------------

_PEN_NODES = np.array(
    [
        [0.0, 0.0, -1.0],
        [1.0, 0.0, -1.0],
        [0.0, 1.0, -1.0],
        [0.0, 0.0, 1.0],
        [1.0, 0.0, 1.0],
        [0.0, 1.0, 1.0],
    ]
)


def _pen_shape(pts: np.ndarray) -> np.ndarray:
    s, t, u = pts[:, 0], pts[:, 1], pts[:, 2]
    lam = np.stack([1.0 - s - t, s, t])  # (3, npts) triangle coordinates
    lo = 0.5 * (1.0 - u)
    hi = 0.5 * (1.0 + u)
    return np.concatenate([lam * lo, lam * hi], axis=0)


def _pen_shape_grad(pts: np.ndarray) -> np.ndarray:
    s, t, u = pts[:, 0], pts[:, 1], pts[:, 2]
    npts = pts.shape[0]
    lam = np.stack([1.0 - s - t, s, t])
    dlam = np.array([[-1.0, -1.0], [1.0, 0.0], [0.0, 1.0]])  # (3, 2)
    lo = 0.5 * (1.0 - u)
    hi = 0.5 * (1.0 + u)
    grads = np.empty((6, 3, npts))
    for a in range(3):
        grads[a, 0, :] = dlam[a, 0] * lo
        grads[a, 1, :] = dlam[a, 1] * lo
        grads[a, 2, :] = -0.5 * lam[a]
        grads[a + 3, 0, :] = dlam[a, 0] * hi
        grads[a + 3, 1, :] = dlam[a, 1] * hi
        grads[a + 3, 2, :] = 0.5 * lam[a]
    return grads


PEN06 = ReferenceElement(
    name="PEN06",
    dim=3,
    nnode=6,
    node_coords=_PEN_NODES,
    shape=_pen_shape,
    shape_grad=_pen_shape_grad,
    linear_gradient=False,
    reference_volume=1.0,
)


# ---------------------------------------------------------------------------
# PYR05 -- linear pyramid, base [-1,1]^2 at u=0, apex at (0,0,1)
# ---------------------------------------------------------------------------
# Rational shape functions (standard 5-node pyramid).  The singularity at the
# apex (u = 1) is handled by clipping; quadrature rules never place points
# there.

_PYR_NODES = np.array(
    [
        [-1.0, -1.0, 0.0],
        [1.0, -1.0, 0.0],
        [1.0, 1.0, 0.0],
        [-1.0, 1.0, 0.0],
        [0.0, 0.0, 1.0],
    ]
)

_PYR_EPS = 1e-14


def _pyr_shape(pts: np.ndarray) -> np.ndarray:
    s, t, u = pts[:, 0], pts[:, 1], pts[:, 2]
    w = np.where(np.abs(1.0 - u) < _PYR_EPS, _PYR_EPS, 1.0 - u)
    ratio = (s * t * u) / w
    n = np.empty((5, pts.shape[0]))
    n[0] = 0.25 * ((1.0 - s) * (1.0 - t) - u + ratio)
    n[1] = 0.25 * ((1.0 + s) * (1.0 - t) - u - ratio)
    n[2] = 0.25 * ((1.0 + s) * (1.0 + t) - u + ratio)
    n[3] = 0.25 * ((1.0 - s) * (1.0 + t) - u - ratio)
    n[4] = u
    return n


def _pyr_shape_grad(pts: np.ndarray) -> np.ndarray:
    s, t, u = pts[:, 0], pts[:, 1], pts[:, 2]
    w = np.where(np.abs(1.0 - u) < _PYR_EPS, _PYR_EPS, 1.0 - u)
    tu_w = (t * u) / w
    su_w = (s * u) / w
    st_w2 = (s * t) / (w * w)
    g = np.empty((5, 3, pts.shape[0]))
    g[0, 0] = 0.25 * (-(1.0 - t) + tu_w)
    g[0, 1] = 0.25 * (-(1.0 - s) + su_w)
    g[0, 2] = 0.25 * (-1.0 + st_w2)
    g[1, 0] = 0.25 * ((1.0 - t) - tu_w)
    g[1, 1] = 0.25 * (-(1.0 + s) - su_w)
    g[1, 2] = 0.25 * (-1.0 - st_w2)
    g[2, 0] = 0.25 * ((1.0 + t) + tu_w)
    g[2, 1] = 0.25 * ((1.0 + s) + su_w)
    g[2, 2] = 0.25 * (-1.0 + st_w2)
    g[3, 0] = 0.25 * (-(1.0 + t) - tu_w)
    g[3, 1] = 0.25 * ((1.0 - s) - su_w)
    g[3, 2] = 0.25 * (-1.0 - st_w2)
    g[4, 0] = 0.0
    g[4, 1] = 0.0
    g[4, 2] = 1.0
    return g


PYR05 = ReferenceElement(
    name="PYR05",
    dim=3,
    nnode=5,
    node_coords=_PYR_NODES,
    shape=_pyr_shape,
    shape_grad=_pyr_shape_grad,
    linear_gradient=False,
    reference_volume=4.0 / 3.0,
)


ELEMENTS: Dict[str, ReferenceElement] = {
    e.name: e for e in (TET04, PYR05, PEN06, HEX08)
}


def element(name: str) -> ReferenceElement:
    """Look up a reference element by Alya-style name (case-insensitive)."""
    key = name.upper()
    try:
        return ELEMENTS[key]
    except KeyError:
        raise KeyError(
            f"unknown element type {name!r}; available: {sorted(ELEMENTS)}"
        ) from None
