"""Locality-improving mesh orderings: SFC element orders + RCM node numbering.

The RS/RSP/RSPR variants are memory-bandwidth bound: their wall clock is
set by the coordinate/velocity gathers and the RHS scatter, i.e. by how
well consecutive elements reuse cached node data.  Two classic orderings
attack that locality:

* **Space-filling-curve element ordering** (Morton / Hilbert): elements
  are visited in the order of their centroid's position along a
  space-filling curve, so consecutive lanes of a ``VECTOR_DIM`` group
  touch spatially adjacent -- hence cache-resident -- nodes.
* **Reverse Cuthill-McKee node renumbering**: nodes are relabelled by a
  reversed breadth-first sweep of the node adjacency graph, shrinking
  the connectivity bandwidth ``max |i - j|`` over element edges so the
  gathered node ids of one element group span a narrow index window.

:func:`reorder_mesh` (exposed as :meth:`repro.fem.mesh.TetMesh.reordered`)
combines both and returns a :class:`ReorderResult` carrying the permuted
mesh plus the forward/inverse maps needed to transport nodal fields
between the two numberings.  The reordered mesh records its elements'
positions in the *seed* ordering (``TetMesh.seed_element_ids``); the
deferred-scatter paths use that provenance to flush contributions in
canonical seed order, which keeps assembled RHS values **bit-identical**
(after mapping through :meth:`ReorderResult.to_seed_nodal`) to the
seed-order assembly -- see ``seed_flush_order`` in :mod:`repro.fem.plan`.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np

from .mesh import TetMesh

__all__ = [
    "STRATEGIES",
    "ReorderResult",
    "bandwidth_stats",
    "hilbert_keys",
    "morton_keys",
    "element_order",
    "rcm_node_permutation",
    "reorder_mesh",
]

#: supported strategy atoms; combine as ``"<sfc>+rcm"`` (e.g. ``"hilbert+rcm"``)
STRATEGIES = ("none", "morton", "hilbert", "rcm", "morton+rcm", "hilbert+rcm")

_ONE = np.uint64(1)


# ---------------------------------------------------------------------------
# Space-filling-curve keys
# ---------------------------------------------------------------------------


def _part1by2(x: np.ndarray) -> np.ndarray:
    """Spread the low 21 bits of ``x`` so each lands every third bit."""
    x = x.astype(np.uint64)
    x = (x | (x << np.uint64(32))) & np.uint64(0x1F00000000FFFF)
    x = (x | (x << np.uint64(16))) & np.uint64(0x1F0000FF0000FF)
    x = (x | (x << np.uint64(8))) & np.uint64(0x100F00F00F00F00F)
    x = (x | (x << np.uint64(4))) & np.uint64(0x10C30C30C30C30C3)
    x = (x | (x << np.uint64(2))) & np.uint64(0x1249249249249249)
    return x


def morton_keys(ixyz: np.ndarray) -> np.ndarray:
    """Morton (Z-curve) keys of integer grid coordinates ``(n, 3)``.

    Bit ``3k + axis`` of the key is bit ``k`` of that axis, so sorting by
    the key visits the grid in Z order.  Coordinates must fit in 21 bits.
    """
    ixyz = np.asarray(ixyz, dtype=np.uint64)
    return (
        _part1by2(ixyz[:, 0])
        | (_part1by2(ixyz[:, 1]) << _ONE)
        | (_part1by2(ixyz[:, 2]) << np.uint64(2))
    )


def hilbert_keys(ixyz: np.ndarray, bits: int) -> np.ndarray:
    """Hilbert-curve keys of integer grid coordinates ``(n, 3)``.

    Vectorized Skilling transform ("Programming the Hilbert curve", AIP
    2004): axes are converted to the transposed Hilbert representation in
    place, then bit-interleaved (most significant axis first) into a
    single sortable key.  Unlike Morton order, consecutive keys are
    face-adjacent grid cells -- the property the locality tests assert.
    """
    x = np.array(ixyz, dtype=np.uint64, copy=True)
    if x.ndim != 2 or x.shape[1] != 3:
        raise ValueError(f"ixyz must be (n, 3), got {x.shape}")
    if bits < 1 or 3 * bits > 63:
        raise ValueError("bits must be in [1, 21]")
    n = 3
    # AxesToTranspose: inverse-undo sweep from the top bit down.
    q = _ONE << np.uint64(bits - 1)
    while q > _ONE:
        p = q - _ONE
        for i in range(n):
            hi = (x[:, i] & q) != 0
            # invert low bits of axis 0 where bit q of axis i is set ...
            x[hi, 0] ^= p
            # ... else exchange the low bits of axes 0 and i.
            lo = ~hi
            t = (x[lo, 0] ^ x[lo, i]) & p
            x[lo, 0] ^= t
            x[lo, i] ^= t
        q >>= _ONE
    # Gray encode.
    for i in range(1, n):
        x[:, i] ^= x[:, i - 1]
    t = np.zeros(x.shape[0], dtype=np.uint64)
    q = _ONE << np.uint64(bits - 1)
    while q > _ONE:
        sel = (x[:, n - 1] & q) != 0
        t[sel] ^= q - _ONE
        q >>= _ONE
    for i in range(n):
        x[:, i] ^= t
    # Interleave transposed axes, axis 0 supplying the MSB of each level.
    return (
        _part1by2(x[:, 2])
        | (_part1by2(x[:, 1]) << _ONE)
        | (_part1by2(x[:, 0]) << np.uint64(2))
    )


def _quantize(points: np.ndarray, bits: int) -> np.ndarray:
    """Scale ``(n, 3)`` points to the ``[0, 2**bits)`` integer grid."""
    points = np.asarray(points, dtype=np.float64)
    lo = points.min(axis=0)
    span = points.max(axis=0) - lo
    span[span <= 0.0] = 1.0  # degenerate axis: everything maps to cell 0
    side = (1 << bits) - 1
    return np.minimum(
        (points - lo) / span * side, side
    ).astype(np.uint64)


def element_order(
    mesh: TetMesh, strategy: str = "hilbert", bits: int = 10
) -> np.ndarray:
    """SFC visiting order of the elements: position ``k`` holds the id of
    the ``k``-th element along the curve of its centroid.

    Ties (centroids quantized to the same cell) break by element id, so
    the order is a deterministic function of the mesh alone.
    """
    if strategy not in ("morton", "hilbert"):
        raise ValueError(
            f"unknown SFC strategy {strategy!r}; expected 'morton' or 'hilbert'"
        )
    centroids = mesh.coords[mesh.connectivity].mean(axis=1)
    grid = _quantize(centroids, bits)
    keys = morton_keys(grid) if strategy == "morton" else hilbert_keys(grid, bits)
    return np.argsort(keys, kind="stable").astype(np.int64)


# ---------------------------------------------------------------------------
# Reverse Cuthill-McKee
# ---------------------------------------------------------------------------


def _csr_neighbours(
    offsets: np.ndarray, adj: np.ndarray, frontier: np.ndarray
) -> np.ndarray:
    """All CSR neighbours of ``frontier`` (with repetitions)."""
    starts = offsets[frontier]
    counts = offsets[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=adj.dtype)
    shift = np.repeat(starts - np.concatenate(
        ([0], np.cumsum(counts)[:-1])
    ), counts)
    return adj[np.arange(total, dtype=np.int64) + shift]


def _bfs_order(
    offsets: np.ndarray,
    adj: np.ndarray,
    start: int,
    visited: np.ndarray,
    degree: np.ndarray,
) -> np.ndarray:
    """Level-set BFS from ``start``; each level sorted by (degree, id)."""
    visited[start] = True
    frontier = np.array([start], dtype=np.int64)
    levels = [frontier]
    while frontier.size:
        nbrs = np.unique(_csr_neighbours(offsets, adj, frontier))
        nbrs = nbrs[~visited[nbrs]]
        if nbrs.size == 0:
            break
        frontier = nbrs[np.lexsort((nbrs, degree[nbrs]))]
        visited[frontier] = True
        levels.append(frontier)
    return np.concatenate(levels)


def rcm_node_permutation(mesh: TetMesh) -> np.ndarray:
    """Reverse Cuthill-McKee node permutation: ``perm[old id] = new id``.

    Per connected component, a pseudo-peripheral start node is located
    with the usual double-BFS sweep (min-degree seed, then the minimum-
    degree node of the last BFS level), nodes are visited level by level
    with each level sorted by ``(degree, id)``, and the whole visiting
    sequence is reversed.  Deterministic: ties always break by node id.
    """
    offsets, adj = mesh.node_neighbours()
    n = mesh.nnode
    degree = np.diff(offsets)
    visited = np.zeros(n, dtype=bool)
    # Component seeds scanned in (degree, id) order.
    seeds = np.lexsort((np.arange(n), degree))
    sequences = []
    for seed in seeds:
        if visited[seed]:
            continue
        # Pseudo-peripheral refinement: one extra BFS from the far end.
        probe = np.zeros(n, dtype=bool)
        far = _bfs_order(offsets, adj, int(seed), probe, degree)[-1]
        sequences.append(
            _bfs_order(offsets, adj, int(far), visited, degree)
        )
    order = np.concatenate(sequences)[::-1] if sequences else np.empty(
        0, dtype=np.int64
    )
    perm = np.empty(n, dtype=np.int64)
    perm[order] = np.arange(n, dtype=np.int64)
    return perm


def bandwidth_stats(mesh: TetMesh) -> Tuple[int, float]:
    """``(max, mean)`` node-index distance over within-element node pairs.

    The locality proxy RCM minimizes: gathered node ids of one element
    span at most ``max`` rows of the nodal arrays.
    """
    conn = mesh.connectivity
    if conn.shape[0] == 0:
        return 0, 0.0
    d = np.abs(conn[:, :, None] - conn[:, None, :])
    iu = np.triu_indices(conn.shape[1], k=1)
    pair = d[:, iu[0], iu[1]]
    return int(pair.max()), float(pair.mean())


# ---------------------------------------------------------------------------
# Combined reordering
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ReorderResult:
    """A permuted mesh plus the maps between the two numberings.

    Attributes
    ----------
    mesh:
        The reordered mesh.  Carries ``seed_element_ids`` provenance so
        its assembly plans flush scatters in canonical seed order
        (bit-consistent with the source mesh's assembly).
    strategy:
        The strategy string the result was built with.
    element_perm:
        ``(nelem,)`` -- position ``k`` of the new mesh holds source
        element ``element_perm[k]``.
    node_perm:
        ``(nnode,)`` -- source node ``i`` became new node ``node_perm[i]``.
    node_inverse:
        ``(nnode,)`` -- new node ``j`` was source node ``node_inverse[j]``.
    """

    mesh: TetMesh
    strategy: str
    element_perm: np.ndarray
    node_perm: np.ndarray
    node_inverse: np.ndarray

    def to_reordered_nodal(self, field: np.ndarray) -> np.ndarray:
        """Transport a source-numbered nodal field to the reordered mesh."""
        return np.asarray(field)[self.node_inverse]

    def to_seed_nodal(self, field: np.ndarray) -> np.ndarray:
        """Transport a reordered-mesh nodal field back to source numbering."""
        return np.asarray(field)[self.node_perm]

    def to_seed_elemental(self, field: np.ndarray) -> np.ndarray:
        """Transport a reordered-mesh elemental field back to source order."""
        field = np.asarray(field)
        out = np.empty_like(field)
        out[self.element_perm] = field
        return out


def _parse_strategy(strategy: str) -> Tuple[Optional[str], bool]:
    parts = [p.strip() for p in strategy.lower().split("+") if p.strip()]
    sfc: Optional[str] = None
    rcm = False
    for part in parts:
        if part in ("morton", "hilbert"):
            if sfc is not None:
                raise ValueError(
                    f"strategy {strategy!r} names more than one curve"
                )
            sfc = part
        elif part == "rcm":
            rcm = True
        elif part != "none":
            raise ValueError(
                f"unknown reordering strategy {strategy!r}; "
                f"expected a combination of {STRATEGIES}"
            )
    return sfc, rcm


def reorder_mesh(
    mesh: TetMesh, strategy: str = "hilbert+rcm", bits: int = 10
) -> ReorderResult:
    """Reorder ``mesh`` elements (SFC) and/or renumber its nodes (RCM).

    The returned mesh is geometrically identical to the input; only the
    storage order of elements and the labelling of nodes change.  Its
    ``seed_element_ids`` compose through chained reorderings, so any mesh
    in a reorder chain assembles bit-consistently with the ultimate seed.
    """
    from ..obs.metrics import get_registry
    from ..obs.spans import get_tracer

    sfc, rcm = _parse_strategy(strategy)
    with get_tracer().span(
        "reorder", strategy=strategy, nelem=int(mesh.nelem),
        nnode=int(mesh.nnode),
    ):
        if sfc is None:
            element_perm = np.arange(mesh.nelem, dtype=np.int64)
        else:
            element_perm = element_order(mesh, sfc, bits=bits)
        if rcm:
            node_perm = rcm_node_permutation(mesh)
        else:
            node_perm = np.arange(mesh.nnode, dtype=np.int64)
        node_inverse = np.empty_like(node_perm)
        node_inverse[node_perm] = np.arange(mesh.nnode, dtype=np.int64)

        out = TetMesh(
            mesh.coords[node_inverse],
            node_perm[mesh.connectivity[element_perm]],
            validate=False,
        )
        parent_seed = mesh.seed_element_ids
        if parent_seed is None:
            parent_seed = np.arange(mesh.nelem, dtype=np.int64)
        out._set_seed_element_ids(parent_seed[element_perm])
    registry = get_registry()
    registry.counter("locality.reorders").inc()
    registry.counter("locality.elements_reordered").inc(int(mesh.nelem))
    return ReorderResult(
        mesh=out,
        strategy=strategy,
        element_perm=element_perm,
        node_perm=node_perm,
        node_inverse=node_inverse,
    )
