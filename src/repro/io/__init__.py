"""I/O: legacy-VTK output, paper-comparison reports, perf artifacts."""

from .vtk import write_vtk
from .report import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE3,
    comparison_table_cpu,
    comparison_table_gpu,
)
from .artifacts import (
    DEFAULT_ARTIFACT_NAMES,
    write_bench_artifacts,
    write_profile_artifacts,
)

__all__ = [
    "write_vtk",
    "PAPER_TABLE1", "PAPER_TABLE2", "PAPER_TABLE3",
    "comparison_table_cpu", "comparison_table_gpu",
    "DEFAULT_ARTIFACT_NAMES", "write_bench_artifacts",
    "write_profile_artifacts",
]
