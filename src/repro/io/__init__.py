"""I/O: legacy-VTK output and paper-comparison reports."""

from .vtk import write_vtk
from .report import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE3,
    comparison_table_cpu,
    comparison_table_gpu,
)

__all__ = [
    "write_vtk",
    "PAPER_TABLE1", "PAPER_TABLE2", "PAPER_TABLE3",
    "comparison_table_cpu", "comparison_table_gpu",
]
