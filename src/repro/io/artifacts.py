"""Perf-artifact writers: the ``BENCH_*`` files of one measurement session.

One call -- :func:`write_bench_artifacts` -- turns a finished
:class:`~repro.core.study.OptimizationStudy` session into the repo's
machine-readable perf trajectory:

* ``BENCH_variants.json`` -- flat per-variant summary (wall clock + model
  runtimes + metric registry snapshot), schema ``repro-bench/1``
  (:data:`repro.obs.BENCH_SCHEMA`).
* ``BENCH_trace.json`` -- Chrome trace-event timeline of every span the
  session recorded (open in ``chrome://tracing`` or Perfetto).
* ``BENCH_spans.jsonl`` -- lossless JSON-lines span log.

A profiled session (``REPRO_BENCH_PROFILE=1``, the default) adds the
attribution set via :func:`write_profile_artifacts`:

* ``BENCH_roofline_attrib.json`` -- measured per-variant roofline
  placement (intensity, attainable, efficiency, limiting roof) plus the
  ASCII Figure-3 render, schema ``repro-roofline-attrib/1``.
* ``BENCH_flamegraph.txt`` -- collapsed-stack (folded) per-op profile,
  loadable by speedscope / ``flamegraph.pl``.
* ``BENCH_prometheus.prom`` -- Prometheus text-exposition snapshot of
  the metrics registry.

The benchmark harness (``benchmarks/conftest.py``) calls this at session
exit; ``benchmarks/check_regression.py`` compares the summary against the
committed baseline and (``--drift``) the ``BENCH_history.jsonl`` session
log appended by ``benchmarks/history.py``.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

from ..obs.export import (
    write_bench_json,
    write_chrome_trace,
    write_flamegraph,
    write_prometheus,
    write_spans_jsonl,
)
from ..obs.metrics import MetricsRegistry
from ..obs.spans import NULL_TRACER

__all__ = [
    "write_bench_artifacts",
    "write_profile_artifacts",
    "DEFAULT_ARTIFACT_NAMES",
]

DEFAULT_ARTIFACT_NAMES = {
    "bench": "BENCH_variants.json",
    "trace": "BENCH_trace.json",
    "spans": "BENCH_spans.jsonl",
    "roofline": "BENCH_roofline_attrib.json",
    "flamegraph": "BENCH_flamegraph.txt",
    "prometheus": "BENCH_prometheus.prom",
    "history": "BENCH_history.jsonl",
}


def write_bench_artifacts(
    outdir: str,
    entries: List[Dict[str, Any]],
    tracer=None,
    metrics: Optional[MetricsRegistry] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> Dict[str, str]:
    """Write the BENCH_* artifact set; returns ``{kind: path}``.

    ``entries`` are bench.json rows (e.g. from
    :meth:`~repro.core.study.OptimizationStudy.bench_summary`); the trace
    and span-log files are only written when ``tracer`` has recorded spans.
    """
    tracer = NULL_TRACER if tracer is None else tracer
    os.makedirs(outdir, exist_ok=True)
    paths: Dict[str, str] = {}

    bench_path = os.path.join(outdir, DEFAULT_ARTIFACT_NAMES["bench"])
    write_bench_json(bench_path, entries, metrics=metrics, meta=meta)
    paths["bench"] = bench_path

    spans = tracer.export()
    if spans:
        trace_path = os.path.join(outdir, DEFAULT_ARTIFACT_NAMES["trace"])
        write_chrome_trace(spans, trace_path, metadata=meta)
        paths["trace"] = trace_path

        spans_path = os.path.join(outdir, DEFAULT_ARTIFACT_NAMES["spans"])
        write_spans_jsonl(spans, spans_path)
        paths["spans"] = spans_path
    return paths


def write_profile_artifacts(
    outdir: str,
    attribution: Optional[Dict[str, Any]] = None,
    collapsed: Optional[Dict[str, float]] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> Dict[str, str]:
    """Write the profiled-session artifact set; returns ``{kind: path}``.

    ``attribution`` is a
    :meth:`~repro.core.study.OptimizationStudy.roofline_attribution`
    document, ``collapsed`` a folded-stack mapping (e.g.
    :meth:`~repro.obs.profiler.TapeProfiler.collapsed`).  Each artifact
    is only written when its input is present, so an unprofiled session
    never leaves stale attribution files behind.
    """
    os.makedirs(outdir, exist_ok=True)
    paths: Dict[str, str] = {}

    if attribution:
        roofline_path = os.path.join(
            outdir, DEFAULT_ARTIFACT_NAMES["roofline"]
        )
        with open(roofline_path, "w", encoding="utf-8") as fh:
            json.dump(attribution, fh, indent=2, sort_keys=True)
            fh.write("\n")
        paths["roofline"] = roofline_path

    if collapsed:
        flame_path = os.path.join(outdir, DEFAULT_ARTIFACT_NAMES["flamegraph"])
        write_flamegraph(collapsed, flame_path)
        paths["flamegraph"] = flame_path

    if metrics is not None:
        prom_path = os.path.join(outdir, DEFAULT_ARTIFACT_NAMES["prometheus"])
        write_prometheus(metrics, prom_path)
        paths["prometheus"] = prom_path
    return paths
