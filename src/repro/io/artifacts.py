"""Perf-artifact writers: the ``BENCH_*`` files of one measurement session.

One call -- :func:`write_bench_artifacts` -- turns a finished
:class:`~repro.core.study.OptimizationStudy` session into the repo's
machine-readable perf trajectory:

* ``BENCH_variants.json`` -- flat per-variant summary (wall clock + model
  runtimes + metric registry snapshot), schema ``repro-bench/1``
  (:data:`repro.obs.BENCH_SCHEMA`).
* ``BENCH_trace.json`` -- Chrome trace-event timeline of every span the
  session recorded (open in ``chrome://tracing`` or Perfetto).
* ``BENCH_spans.jsonl`` -- lossless JSON-lines span log.

The benchmark harness (``benchmarks/conftest.py``) calls this at session
exit; ``benchmarks/check_regression.py`` compares the summary against the
committed baseline.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional

from ..obs.export import write_bench_json, write_chrome_trace, write_spans_jsonl
from ..obs.metrics import MetricsRegistry
from ..obs.spans import NULL_TRACER

__all__ = ["write_bench_artifacts", "DEFAULT_ARTIFACT_NAMES"]

DEFAULT_ARTIFACT_NAMES = {
    "bench": "BENCH_variants.json",
    "trace": "BENCH_trace.json",
    "spans": "BENCH_spans.jsonl",
}


def write_bench_artifacts(
    outdir: str,
    entries: List[Dict[str, Any]],
    tracer=None,
    metrics: Optional[MetricsRegistry] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> Dict[str, str]:
    """Write the BENCH_* artifact set; returns ``{kind: path}``.

    ``entries`` are bench.json rows (e.g. from
    :meth:`~repro.core.study.OptimizationStudy.bench_summary`); the trace
    and span-log files are only written when ``tracer`` has recorded spans.
    """
    tracer = NULL_TRACER if tracer is None else tracer
    os.makedirs(outdir, exist_ok=True)
    paths: Dict[str, str] = {}

    bench_path = os.path.join(outdir, DEFAULT_ARTIFACT_NAMES["bench"])
    write_bench_json(bench_path, entries, metrics=metrics, meta=meta)
    paths["bench"] = bench_path

    spans = tracer.export()
    if spans:
        trace_path = os.path.join(outdir, DEFAULT_ARTIFACT_NAMES["trace"])
        write_chrome_trace(spans, trace_path, metadata=meta)
        paths["trace"] = trace_path

        spans_path = os.path.join(outdir, DEFAULT_ARTIFACT_NAMES["spans"])
        write_spans_jsonl(spans, spans_path)
        paths["spans"] = spans_path
    return paths
