"""Paper-style experiment reports.

Renders the reproduction's measurements side by side with the paper's
published values, including the ratio columns EXPERIMENTS.md quotes.  The
published numbers are transcribed from the paper's Tables I-III.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..machine.counters import CpuCounters, GpuCounters, format_table

__all__ = [
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "comparison_table_gpu",
    "comparison_table_cpu",
]

#: Table I of the paper (CPU, per element).
PAPER_TABLE1: Dict[str, Dict[str, float]] = {
    "B": {
        "loadstore": 6055, "flops": 6316, "l1_volume": 48440,
        "l1_effectiveness": 0.74, "l23_volume": 12716,
        "l23_effectiveness": 0.98, "dram_volume": 261,
        "gflops_1c": 13.8, "gbs_1c": 0.53,
        "runtime_1c_ms": 44047, "runtime_multicore_ms": 785,
    },
    "RS": {
        "loadstore": 2516, "flops": 1760, "l1_volume": 20128,
        "l1_effectiveness": 0.94, "l23_volume": 1120,
        "l23_effectiveness": 0.80, "dram_volume": 218,
        "gflops_1c": 11.9, "gbs_1c": 1.3,
        "runtime_1c_ms": 15429, "runtime_multicore_ms": 244,
    },
    "RSP": {
        "loadstore": 639, "flops": 1249, "l1_volume": 5112,
        "l1_effectiveness": 0.82, "l23_volume": 932,
        "l23_effectiveness": 0.74, "dram_volume": 241,
        "gflops_1c": 14.2, "gbs_1c": 2.5,
        "runtime_1c_ms": 8400, "runtime_multicore_ms": 122,
    },
}

#: Table II of the paper (GPU, per element).
PAPER_TABLE2: Dict[str, Dict[str, float]] = {
    "B": {
        "global_loadstore": 6218, "local_loadstore": 24, "flops": 6293,
        "l1_volume": 49936, "l1_effectiveness": 0.29,
        "l2_volume": 35507, "l2_effectiveness": 0.34,
        "dram_volume": 23331, "registers": 255,
        "gflops": 163, "gbs": 608, "runtime_ms": 3773,
    },
    "P": {
        "global_loadstore": 483, "local_loadstore": 2593, "flops": 6148,
        "l1_volume": 24616, "l1_effectiveness": 0.03,
        "l2_volume": 23837, "l2_effectiveness": 0.21,
        "dram_volume": 18721, "registers": 255,
        "gflops": 393, "gbs": 1200, "runtime_ms": 1536,
    },
    "RS": {
        "global_loadstore": 960, "local_loadstore": 0, "flops": 1663,
        "l1_volume": 7680, "l1_effectiveness": 0.60,
        "l2_volume": 3052, "l2_effectiveness": 0.61,
        "dram_volume": 1170, "registers": 184,
        "gflops": 829, "gbs": 583, "runtime_ms": 197,
    },
    "RSP": {
        "global_loadstore": 50, "local_loadstore": 71, "flops": 1391,
        "l1_volume": 968, "l1_effectiveness": 0.0,
        "l2_volume": 1304, "l2_effectiveness": 0.66,
        "dram_volume": 442, "registers": 148,
        "gflops": 2020, "gbs": 646, "runtime_ms": 68,
    },
    "RSPR": {
        "global_loadstore": 71, "local_loadstore": 30, "flops": 1333,
        "l1_volume": 808, "l1_effectiveness": 0.0,
        "l2_volume": 968, "l2_effectiveness": 0.84,
        "dram_volume": 150, "registers": 128,
        "gflops": 2575, "gbs": 289, "runtime_ms": 51,
    },
}

#: Table III of the paper (privatization micro-study, per thread).
PAPER_TABLE3: Dict[str, Dict[str, float]] = {
    "global": {
        "local_stores": 0, "global_stores": 9,
        "l2_store_bytes": 72, "dram_store_bytes": 72,
    },
    "local": {
        "local_stores": 8, "global_stores": 1,
        "l2_store_bytes": 72, "dram_store_bytes": 8,
    },
    "registers": {
        "local_stores": 0, "global_stores": 1,
        "l2_store_bytes": 8, "dram_store_bytes": 8,
    },
}


def comparison_table_gpu(measured: Sequence[GpuCounters]) -> str:
    """Measured-vs-paper Table II as text."""
    rows: List[Dict[str, object]] = []
    for c in measured:
        paper = PAPER_TABLE2.get(c.variant, {})
        rows.append(
            {
                "variant": c.variant,
                "flops (meas/paper)": f"{c.flops:.0f}/{paper.get('flops', '-')}",
                "dram B": f"{c.dram_volume:.0f}/{paper.get('dram_volume', '-')}",
                "regs": f"{c.registers}/{paper.get('registers', '-')}",
                "GF/s": f"{c.gflops:.0f}/{paper.get('gflops', '-')}",
                "runtime ms": f"{c.runtime_ms:.0f}/{paper.get('runtime_ms', '-')}",
            }
        )
    return format_table(rows, list(rows[0].keys()), title="GPU: measured/paper")


def comparison_table_cpu(measured: Sequence[CpuCounters]) -> str:
    """Measured-vs-paper Table I as text."""
    rows: List[Dict[str, object]] = []
    for c in measured:
        paper = PAPER_TABLE1.get(c.variant, {})
        rows.append(
            {
                "variant": c.variant,
                "flops": f"{c.flops:.0f}/{paper.get('flops', '-')}",
                "ld/st": f"{c.loadstore:.0f}/{paper.get('loadstore', '-')}",
                "t 1c ms": f"{c.runtime_1c_ms:.0f}/{paper.get('runtime_1c_ms', '-')}",
                "t multicore ms": (
                    f"{c.runtime_multicore_ms:.0f}/"
                    f"{paper.get('runtime_multicore_ms', '-')}"
                ),
            }
        )
    return format_table(rows, list(rows[0].keys()), title="CPU: measured/paper")
