"""Legacy-VTK (ASCII) writer for meshes and fields.

Enough of the legacy ``.vtk`` unstructured-grid format for ParaView/VisIt
to open the example outputs: points, tetrahedral cells, and any number of
point/cell data arrays (scalars or 3-vectors).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..fem.mesh import TetMesh

__all__ = ["write_vtk"]


def _write_data_section(
    fh, data: Dict[str, np.ndarray], n_expected: int, kind: str
) -> None:
    fh.write(f"{kind} {n_expected}\n")
    for name, arr in data.items():
        arr = np.asarray(arr, dtype=np.float64)
        if arr.shape[0] != n_expected:
            raise ValueError(
                f"{kind.lower()} array {name!r}: expected leading dim "
                f"{n_expected}, got {arr.shape}"
            )
        if arr.ndim == 1:
            fh.write(f"SCALARS {name} double 1\nLOOKUP_TABLE default\n")
            for v in arr:
                fh.write(f"{v:.9g}\n")
        elif arr.ndim == 2 and arr.shape[1] == 3:
            fh.write(f"VECTORS {name} double\n")
            for row in arr:
                fh.write(f"{row[0]:.9g} {row[1]:.9g} {row[2]:.9g}\n")
        else:
            raise ValueError(
                f"array {name!r} must be (n,) or (n, 3), got {arr.shape}"
            )


def write_vtk(
    path: str,
    mesh: TetMesh,
    point_data: Optional[Dict[str, np.ndarray]] = None,
    cell_data: Optional[Dict[str, np.ndarray]] = None,
    title: str = "repro output",
) -> None:
    """Write a tetrahedral mesh with optional point/cell data arrays."""
    with open(path, "w") as fh:
        fh.write("# vtk DataFile Version 3.0\n")
        fh.write(title[:255] + "\n")
        fh.write("ASCII\nDATASET UNSTRUCTURED_GRID\n")
        fh.write(f"POINTS {mesh.nnode} double\n")
        for p in mesh.coords:
            fh.write(f"{p[0]:.9g} {p[1]:.9g} {p[2]:.9g}\n")
        fh.write(f"CELLS {mesh.nelem} {mesh.nelem * 5}\n")
        for c in mesh.connectivity:
            fh.write(f"4 {c[0]} {c[1]} {c[2]} {c[3]}\n")
        fh.write(f"CELL_TYPES {mesh.nelem}\n")
        fh.write("".join("10\n" for _ in range(mesh.nelem)))
        if point_data:
            _write_data_section(fh, point_data, mesh.nnode, "POINT_DATA")
        if cell_data:
            _write_data_section(fh, cell_data, mesh.nelem, "CELL_DATA")
