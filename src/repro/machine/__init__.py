"""Hardware simulation substrate: machine specs, cache simulators, GPU and
CPU execution models, roofline and energy models."""

from .spec import A100_SXM4_40GB, ICELAKE_8360Y, CpuSpec, GpuSpec
from .cache import CacheStats, LruCache, SetAssociativeCache
from .counters import CpuCounters, GpuCounters, format_table
from .gpu import GpuModel, StorageMapping, GPU_SWEEPS_PER_STEP
from .cpu import CpuModel, CPU_SWEEPS_PER_STEP
from .roofline import Roofline, RooflinePoint, gpu_roofline, render_ascii
from .energy import EnergyEstimate, energy_comparison
from .traffic import cold_mesh_dram_bytes, BOLUND_NODE_ELEMENT_RATIO

__all__ = [
    "A100_SXM4_40GB", "ICELAKE_8360Y", "CpuSpec", "GpuSpec",
    "CacheStats", "LruCache", "SetAssociativeCache",
    "CpuCounters", "GpuCounters", "format_table",
    "GpuModel", "StorageMapping", "GPU_SWEEPS_PER_STEP",
    "CpuModel", "CPU_SWEEPS_PER_STEP",
    "Roofline", "RooflinePoint", "gpu_roofline", "render_ascii",
    "EnergyEstimate", "energy_comparison",
    "cold_mesh_dram_bytes", "BOLUND_NODE_ELEMENT_RATIO",
]
