"""Cache simulators.

Two interchangeable models:

* :class:`LruCache` -- fully-associative LRU over line ids (an
  ``OrderedDict`` move-to-front).  This is the work-horse: at the line
  granularities we simulate, full associativity is an adequate model of the
  high-associativity L1/L2 caches on both machines, and it is the fastest
  thing Python can do per access.
* :class:`SetAssociativeCache` -- set-associative LRU for studies where
  conflict misses matter (used by the cache-model ablation bench).

Both expose the same protocol: ``access(line, store) -> hit`` plus dirty
line tracking with an eviction callback, and ``invalidate`` used by the GPU
model to drop *local-memory* lines of finished threads without writeback
(the mechanism behind Table III's "local stores are not always written back
to DRAM").
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, List, Optional

__all__ = ["LruCache", "SetAssociativeCache", "CacheStats"]


class CacheStats:
    """Hit/miss/writeback accounting for one cache level.

    ``*_units`` fields accumulate the *weights* of accesses (the GPU model
    uses one weight unit per 32-byte sector, so a coalesced 256-byte warp
    access carries weight 8 while a scattered sector carries weight 1).
    """

    __slots__ = (
        "hits",
        "misses",
        "store_hits",
        "store_misses",
        "writebacks",
        "invalidated_dirty",
        "hit_units",
        "miss_units",
        "writeback_units",
    )

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.store_hits = 0
        self.store_misses = 0
        self.writebacks = 0
        self.invalidated_dirty = 0
        self.hit_units = 0
        self.miss_units = 0
        self.writeback_units = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        n = self.accesses
        return self.hits / n if n else 0.0

    def as_dict(self) -> Dict[str, int]:
        return {k: getattr(self, k) for k in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"hit_rate={self.hit_rate:.3f}, writebacks={self.writebacks})"
        )


class LruCache:
    """Fully-associative LRU cache over integer line ids.

    Parameters
    ----------
    capacity_lines:
        Number of lines the cache holds (capacity / line size).
    on_evict:
        Optional callback ``(line, dirty) -> None`` fired on every eviction
        (used to chain levels and count writebacks).
    """

    def __init__(
        self,
        capacity_lines: int,
        on_evict: Optional[Callable[[int, bool], None]] = None,
    ) -> None:
        if capacity_lines < 1:
            raise ValueError("cache needs at least one line")
        self.capacity = int(capacity_lines)
        self.on_evict = on_evict
        self.stats = CacheStats()
        # line -> [dirty, weight]
        self._lines: "OrderedDict[int, list]" = OrderedDict()
        self._weight = 0

    def __len__(self) -> int:
        return len(self._lines)

    @property
    def weight(self) -> int:
        """Total resident weight (equals len() for unit-weight use)."""
        return self._weight

    def access(self, line: int, store: bool = False, weight: int = 1) -> bool:
        """Touch a line; returns True on hit.  Misses allocate (write-allocate).

        ``weight`` is the line's footprint in capacity units and is also
        what the ``*_units`` statistics accumulate.
        """
        lines = self._lines
        stats = self.stats
        entry = lines.get(line)
        if entry is not None:
            lines.move_to_end(line)
            if store:
                entry[0] = True
                stats.store_hits += 1
            stats.hits += 1
            stats.hit_units += entry[1]
            return True
        stats.misses += 1
        stats.miss_units += weight
        if store:
            stats.store_misses += 1
        lines[line] = [store, weight]
        self._weight += weight
        while self._weight > self.capacity:
            old, (dirty, w) = lines.popitem(last=False)
            self._weight -= w
            if dirty:
                stats.writebacks += 1
                stats.writeback_units += w
            if self.on_evict is not None:
                self.on_evict(old, dirty)
        return False

    def contains(self, line: int) -> bool:
        return line in self._lines

    def invalidate(self, lines) -> int:
        """Drop lines without writeback; returns how many were present."""
        n = 0
        for line in lines:
            entry = self._lines.pop(line, None)
            if entry is not None:
                n += 1
                self._weight -= entry[1]
                if entry[0]:
                    self.stats.invalidated_dirty += 1
        return n

    def invalidate_where(self, predicate: Callable[[int], bool]) -> int:
        """Drop all lines matching a predicate without writeback."""
        doomed = [l for l in self._lines if predicate(l)]
        return self.invalidate(doomed)

    def dirty_weight(self) -> int:
        """Total weight of resident dirty lines."""
        return sum(e[1] for e in self._lines.values() if e[0])

    def flush(self) -> int:
        """Evict everything; returns the number of dirty writebacks."""
        n = 0
        while self._lines:
            line, (dirty, w) = self._lines.popitem(last=False)
            self._weight -= w
            if dirty:
                n += 1
                self.stats.writebacks += 1
                self.stats.writeback_units += w
            if self.on_evict is not None:
                self.on_evict(line, dirty)
        return n


class SetAssociativeCache:
    """Set-associative LRU cache (for the conflict-miss ablation).

    Same protocol as :class:`LruCache`.
    """

    def __init__(
        self,
        capacity_lines: int,
        ways: int = 8,
        on_evict: Optional[Callable[[int, bool], None]] = None,
    ) -> None:
        if ways < 1 or capacity_lines < ways:
            raise ValueError("need capacity >= ways >= 1")
        self.ways = int(ways)
        self.num_sets = max(1, int(capacity_lines) // self.ways)
        self.capacity = self.num_sets * self.ways
        self.on_evict = on_evict
        self.stats = CacheStats()
        self._sets: List["OrderedDict[int, bool]"] = [
            OrderedDict() for _ in range(self.num_sets)
        ]

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)

    def access(self, line: int, store: bool = False) -> bool:
        s = self._sets[line % self.num_sets]
        stats = self.stats
        if line in s:
            s.move_to_end(line)
            if store:
                s[line] = True
                stats.store_hits += 1
            stats.hits += 1
            return True
        stats.misses += 1
        if store:
            stats.store_misses += 1
        s[line] = store
        if len(s) > self.ways:
            old, dirty = s.popitem(last=False)
            if dirty:
                stats.writebacks += 1
            if self.on_evict is not None:
                self.on_evict(old, dirty)
        return False

    def contains(self, line: int) -> bool:
        return line in self._sets[line % self.num_sets]

    def invalidate(self, lines) -> int:
        n = 0
        for line in lines:
            s = self._sets[line % self.num_sets]
            dirty = s.pop(line, None)
            if dirty is not None:
                n += 1
                if dirty:
                    self.stats.invalidated_dirty += 1
        return n

    def invalidate_where(self, predicate: Callable[[int], bool]) -> int:
        doomed = [l for s in self._sets for l in s if predicate(l)]
        return self.invalidate(doomed)

    def flush(self) -> int:
        n = 0
        for s in self._sets:
            while s:
                line, dirty = s.popitem(last=False)
                if dirty:
                    n += 1
                    self.stats.writebacks += 1
                if self.on_evict is not None:
                    self.on_evict(line, dirty)
        return n
