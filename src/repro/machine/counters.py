"""Counter-report structures mirroring the paper's Tables I and II.

These are the machine-model analogues of what the paper measures with
Nsight Compute (GPU) and LIKWID (CPU): per-element operation counts, cache
volumes and effectiveness, register/occupancy data and derived rates.

Conventions follow the table captions exactly:

* 1 FMA = 2 Flop;
* "operations per element" are executed instructions x SIMD/warp length /
  element count;
* L1 volume is load/store operations x 8 B;
* cache effectiveness is the percentage of traffic *requested from* a cache
  that hits in it, so ``volume(level+1) = volume(level) x (1 - eff)``.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

__all__ = ["GpuCounters", "CpuCounters", "format_table"]


@dataclasses.dataclass
class GpuCounters:
    """One column of Table II (a GPU variant)."""

    variant: str
    global_loadstore: float
    local_loadstore: float
    flops: float
    l1_volume: float
    l1_effectiveness: float
    l2_volume: float
    l2_effectiveness: float
    dram_volume: float
    registers: int
    warps_per_sm: int
    occupancy: float
    gflops: float
    gbs: float
    runtime_ms: float
    memory_ilp: float = 1.0
    spilled_arrays: tuple = ()

    @property
    def dram_intensity(self) -> float:
        """Arithmetic intensity vs DRAM traffic (Flop/B) -- Fig. 3 x-axis."""
        return self.flops / self.dram_volume if self.dram_volume else float("inf")

    @property
    def l2_intensity(self) -> float:
        """Arithmetic intensity vs L2 traffic (Flop/B)."""
        return self.flops / self.l2_volume if self.l2_volume else float("inf")


@dataclasses.dataclass
class CpuCounters:
    """One column of Table I (a CPU variant)."""

    variant: str
    loadstore: float
    flops: float
    l1_volume: float
    l1_effectiveness: float
    l23_volume: float
    l23_effectiveness: float
    dram_volume: float
    gflops_1c: float
    gbs_1c: float
    runtime_1c_ms: float
    runtime_multicore_ms: float
    multicore_workers: int

    @property
    def dram_intensity(self) -> float:
        return self.flops / self.dram_volume if self.dram_volume else float("inf")


def format_table(
    rows: List[Dict[str, object]],
    columns: List[str],
    title: Optional[str] = None,
    float_fmt: str = "{:.4g}",
) -> str:
    """Render a list of row dicts as a fixed-width text table."""
    header = columns
    body: List[List[str]] = []
    for row in rows:
        line = []
        for c in columns:
            v = row.get(c, "")
            if isinstance(v, float):
                line.append(float_fmt.format(v))
            else:
                line.append(str(v))
        body.append(line)
    widths = [
        max(len(header[i]), *(len(b[i]) for b in body)) if body else len(header[i])
        for i in range(len(header))
    ]
    out = []
    if title:
        out.append(title)
    out.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    out.append("  ".join("-" * w for w in widths))
    for b in body:
        out.append("  ".join(v.ljust(w) for v, w in zip(b, widths)))
    return "\n".join(out)
