"""CPU execution model (the paper's dual-Icelake measurements, simulated).

The LIKWID-counter analogue of :mod:`repro.machine.gpu`: consumes a kernel
trace and produces Table I's per-element columns plus the Figure 2 scaling
curves.

Model summary
-------------

* **Vector execution**: one core processes an element group of
  ``VECTOR_DIM = 16`` lanes; every DSL statement is two AVX-512 vector
  operations (16 lanes / 8 doubles), and -- as the paper observed from the
  generated assembly -- 512-bit loads/stores are *split* into two 256-bit
  halves, doubling the load/store instruction count.
* **Register mapping**: the CPU has 32 ZMM registers; a handful are needed
  as working registers, leaving ``register_slots`` (default 24) lane-wide
  slots for privatized temporaries.  Whole arrays are promoted by access
  density until the budget is spent; remaining private arrays live on the
  stack but benefit from compiler store-to-load forwarding within a short
  window.  Global-temp arrays always round-trip through the cache
  hierarchy (the baseline behaviour the paper describes).
* **Cache simulation**: write-back, write-allocate L1/L2/L3 LRU caches with
  64-byte lines; a vector statement touches two consecutive lines, mesh
  gathers touch the per-lane lines of the real connectivity.  The paper
  reports L2 and L3 together, and so do we.
* **Timing**: port-throughput model
  ``cycles = max(ldst / ldst_ports, fma / fma_ports, total / issue_width)``
  plus amortized miss penalties, at the turbo frequency of the active-core
  count.  Multi-core runtime adds the socket bandwidth ceiling (which the
  paper notes is *not* reached -- linear scaling apart from turbo bins).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.dsl import TraceReport
from ..core.storage import MemoryEvent, Storage
from .cache import LruCache
from .counters import CpuCounters
from .spec import ICELAKE_8360Y, CpuSpec
from .traffic import cold_mesh_dram_bytes

__all__ = ["CpuModel", "CPU_SWEEPS_PER_STEP"]

#: Same convention as the GPU model: reported runtimes cover three assembly
#: sweeps (Runge-Kutta substeps) over the 32.6M-element mesh.
CPU_SWEEPS_PER_STEP = 3

# Amortized out-of-order miss penalties (cycles per missed line); fitted so
# the baseline lands in the paper's single-core performance regime.
_L1_MISS_CYCLES = 2.0
_L2_MISS_CYCLES = 8.0
_L3_MISS_CYCLES = 28.0


@dataclasses.dataclass
class CpuStorageMapping:
    """Where each temp array lives on the CPU path."""

    register_arrays: Tuple[str, ...]
    stack_arrays: Tuple[str, ...]
    global_arrays: Tuple[str, ...]


class CpuModel:
    """Icelake execution model; see module docstring."""

    def __init__(
        self,
        spec: CpuSpec = ICELAKE_8360Y,
        vector_dim: int = 16,
        register_slots: int = 24,
        forward_window: int = 8,
        sim_groups: int = 256,
    ) -> None:
        self.spec = spec
        self.vector_dim = int(vector_dim)
        self.register_slots = int(register_slots)
        self.forward_window = int(forward_window)
        self.sim_groups = int(sim_groups)

    # ------------------------------------------------------------------
    def map_storage(self, report: TraceReport) -> CpuStorageMapping:
        """Promote private arrays to vector registers by access density."""
        counts: Dict[str, int] = {}
        for ev in report.pattern:
            if ev.storage is Storage.PRIVATE:
                counts[ev.array] = counts.get(ev.array, 0) + 1
        regs: List[str] = []
        stack: List[str] = []
        budget = self.register_slots
        candidates = [
            (name, counts.get(name, 0) / max(1, spec.size))
            for name, spec in report.temps.items()
            if spec.storage is Storage.PRIVATE and spec.static
        ]
        candidates.sort(key=lambda kv: kv[1], reverse=True)
        for name, _density in candidates:
            size = report.temps[name].size
            if size <= budget:
                regs.append(name)
                budget -= size
            else:
                stack.append(name)
        for name, spec in report.temps.items():
            if spec.storage is Storage.PRIVATE and not spec.static:
                stack.append(name)
        glob = [
            name
            for name, spec in report.temps.items()
            if spec.storage is Storage.GLOBAL_TEMP
        ]
        return CpuStorageMapping(
            register_arrays=tuple(regs),
            stack_arrays=tuple(stack),
            global_arrays=tuple(glob),
        )

    # ------------------------------------------------------------------
    def filter_pattern(
        self, report: TraceReport, mapping: CpuStorageMapping
    ) -> List[Tuple[str, MemoryEvent]]:
        """Apply register promotion and store-to-load forwarding."""
        regs = set(mapping.register_arrays)
        stack = set(mapping.stack_arrays)
        out: List[Tuple[str, MemoryEvent]] = []
        last_touch: Dict[Tuple[str, int], int] = {}
        for i, ev in enumerate(report.pattern):
            if ev.storage is Storage.MESH:
                out.append(("mesh", ev))
                continue
            if ev.array in regs:
                continue
            if ev.array in stack:
                key = (ev.array, ev.offset)
                prev = last_touch.get(key)
                last_touch[key] = i
                if prev is not None and i - prev <= self.forward_window:
                    continue
                out.append(("stack", ev))
            else:
                out.append(("global", ev))
        return out

    # ------------------------------------------------------------------
    def simulate_caches(
        self,
        filtered: List[Tuple[str, MemoryEvent]],
        connectivity: np.ndarray,
    ) -> Dict[str, float]:
        """Single-core cache replay over ``sim_groups`` element groups."""
        spec = self.spec
        vdim = self.vector_dim
        line = spec.line_bytes
        nelem_needed = self.sim_groups * vdim
        if connectivity.shape[0] < nelem_needed:
            reps = -(-nelem_needed // connectivity.shape[0])
            connectivity = np.tile(connectivity, (reps, 1))

        l3_stats = {"miss_units": 0, "wb_units": 0}

        l3 = LruCache(max(8, spec.l3_bytes // line))
        l2 = LruCache(max(8, spec.l2_bytes // line))
        l1 = LruCache(max(8, spec.l1_bytes // line))

        # write-back chaining: L1 evict dirty -> L2 access(store); etc.
        def l1_evict(ln: int, dirty: bool) -> None:
            if dirty:
                l2.access(ln, store=True, weight=1)

        def l2_evict(ln: int, dirty: bool) -> None:
            if dirty:
                l3.access(ln, store=True, weight=1)

        def l3_evict(ln: int, dirty: bool) -> None:
            if dirty:
                l3_stats["wb_units"] += 1

        l1.on_evict = l1_evict
        l2.on_evict = l2_evict
        l3.on_evict = l3_evict

        array_base: Dict[Tuple[str, str], int] = {}

        def base_of(region: str, array: str) -> int:
            key = (region, array)
            b = array_base.get(key)
            if b is None:
                b = (len(array_base) + 1) << 44
                array_base[key] = b
            return b

        def probe(ln: int, store: bool) -> None:
            if l1.access(ln, store=store, weight=1):
                return
            if l2.access(ln, store=False, weight=1):
                return
            l3.access(ln, store=False, weight=1)

        ops = 0
        mesh_ops = 0
        for g in range(self.sim_groups):
            e0 = g * vdim
            lanes = np.arange(e0, e0 + vdim)
            for region, ev in filtered:
                store = ev.is_store()
                if region == "mesh":
                    mesh_ops += 1
                    nodes = connectivity[e0 : e0 + vdim, ev.node_slot]
                    addrs = base_of("mesh", ev.array) + (
                        nodes * 3 + ev.component
                    ) * 8
                    for ln in np.unique(addrs // line):
                        probe(int(ln), store)
                else:
                    ops += 1
                    # stack arrays are reused across groups (same virtual
                    # address every call); global temps are distinct per
                    # group in the Alya allocation style.
                    if region == "stack":
                        addr0 = base_of(region, ev.array) + ev.offset * vdim * 8
                    else:
                        addr0 = base_of(region, ev.array) + (
                            ev.offset * vdim + 0
                        ) * 8
                    ln0 = addr0 // line
                    ln1 = (addr0 + vdim * 8 - 1) // line
                    for ln in range(ln0, ln1 + 1):
                        probe(ln, store)

        ngroups = float(self.sim_groups)
        nelem = ngroups * vdim
        # One event is a vector statement over all vdim lanes: each element
        # sees one 8-byte lane-op per event, so per-element op count equals
        # events per group and the L1 volume is ops x 8 B (the paper's
        # convention).
        events_per_elem = (ops + mesh_ops) / ngroups
        l1_volume = events_per_elem * 8.0

        l2_requests = l2.stats.hits + l2.stats.misses
        l3_requests = l3.stats.hits + l3.stats.misses
        l23_volume = l2_requests * line / nelem
        dram_volume = (l3.stats.misses + l3_stats["wb_units"]) * line / nelem
        return {
            "events_per_elem": events_per_elem,
            "l1_volume": l1_volume,
            "l23_volume": l23_volume,
            "dram_volume": dram_volume,
            "l1_miss_lines_per_elem": l1.stats.misses / nelem,
            "l2_miss_lines_per_elem": l2.stats.misses / nelem,
            "l3_miss_lines_per_elem": l3.stats.misses / nelem,
        }

    # ------------------------------------------------------------------
    def cycles_per_element(
        self, report: TraceReport, sim: Dict[str, float]
    ) -> float:
        """Port-throughput + miss-penalty cycle estimate per element."""
        spec = self.spec
        lanes_per_vec = spec.simd_width
        # per-element lane-op counts
        ldst_ops = sim["events_per_elem"]
        flop_ops = report.flops
        ldst_instr = ldst_ops / lanes_per_vec * (2.0 if spec.split_loads else 1.0)
        fma_instr = flop_ops / 2.0 / lanes_per_vec
        total_instr = ldst_instr + fma_instr * 1.5  # arithmetic + overhead
        cyc = max(
            ldst_instr / spec.load_store_ports,
            fma_instr / spec.fma_ports,
            total_instr / spec.issue_width,
        )
        cyc += sim["l1_miss_lines_per_elem"] * _L1_MISS_CYCLES
        cyc += sim["l2_miss_lines_per_elem"] * _L2_MISS_CYCLES
        cyc += sim["l3_miss_lines_per_elem"] * _L3_MISS_CYCLES
        return float(cyc)

    # ------------------------------------------------------------------
    def multicore_runtime(
        self,
        cycles_per_elem: float,
        dram_bytes_per_elem: float,
        workers: int,
        nelem_total: float,
        sweeps: int = CPU_SWEEPS_PER_STEP,
    ) -> float:
        """Wall time (s) for ``workers`` MPI worker processes.

        Workers are distributed round-robin over the two sockets; the
        per-socket active core count selects the turbo bin; the socket
        memory bandwidth caps the aggregate (the paper notes it never binds
        for this kernel).
        """
        spec = self.spec
        if workers < 1:
            raise ValueError("need at least one worker")
        workers = int(workers)
        per_socket = [
            workers // spec.sockets + (1 if s < workers % spec.sockets else 0)
            for s in range(spec.sockets)
        ]
        # elements are distributed evenly over workers
        elems_per_worker = nelem_total * sweeps / workers
        times = []
        for cores in per_socket:
            if cores == 0:
                continue
            freq = self.spec.frequency(cores)
            t_compute = elems_per_worker * cycles_per_elem / freq
            socket_elems = elems_per_worker * cores
            t_mem = socket_elems * dram_bytes_per_elem / spec.socket_bandwidth
            times.append(max(t_compute, t_mem))
        return max(times)

    # ------------------------------------------------------------------
    def run(
        self,
        variant: str,
        report: TraceReport,
        connectivity: np.ndarray,
        nelem_total: float = 32.6e6,
        sweeps: int = CPU_SWEEPS_PER_STEP,
        multicore_workers: int = 71,
    ) -> CpuCounters:
        """Full pipeline to one Table I column."""
        mapping = self.map_storage(report)
        filtered = self.filter_pattern(report, mapping)
        sim = self.simulate_caches(filtered, connectivity)
        cyc = self.cycles_per_element(report, sim)
        freq1 = self.spec.frequency(1)
        t_elem = cyc / freq1
        runtime_1c = t_elem * nelem_total * sweeps
        cold = cold_mesh_dram_bytes()
        l1v = sim["l1_volume"]
        l23v = sim["l23_volume"] + cold
        dram = sim["dram_volume"] + cold
        runtime_mc = self.multicore_runtime(
            cyc, dram, multicore_workers, nelem_total, sweeps
        )
        return CpuCounters(
            variant=variant,
            loadstore=sim["events_per_elem"],
            flops=float(report.flops),
            l1_volume=l1v,
            l1_effectiveness=max(0.0, 1.0 - l23v / l1v) if l1v else 0.0,
            l23_volume=l23v,
            l23_effectiveness=max(0.0, 1.0 - dram / l23v) if l23v else 0.0,
            dram_volume=dram,
            gflops_1c=report.flops / t_elem / 1e9,
            gbs_1c=dram / t_elem / 1e9,
            runtime_1c_ms=runtime_1c * 1e3,
            runtime_multicore_ms=runtime_mc * 1e3,
            multicore_workers=multicore_workers,
        )

    # ------------------------------------------------------------------
    def scaling_curve(
        self,
        report: TraceReport,
        connectivity: np.ndarray,
        worker_counts: Optional[List[int]] = None,
        nelem_total: float = 32.6e6,
        sweeps: int = CPU_SWEEPS_PER_STEP,
    ) -> List[Dict[str, float]]:
        """Figure 2 data: Melem/s and wall time vs worker count."""
        mapping = self.map_storage(report)
        filtered = self.filter_pattern(report, mapping)
        sim = self.simulate_caches(filtered, connectivity)
        cyc = self.cycles_per_element(report, sim)
        dram = sim["dram_volume"] + cold_mesh_dram_bytes()
        if worker_counts is None:
            worker_counts = [1, 2, 4, 8, 12, 17, 18, 24, 32, 48, 60, 71]
        rows = []
        for w in worker_counts:
            t = self.multicore_runtime(cyc, dram, w, nelem_total, sweeps)
            rows.append(
                {
                    "workers": w,
                    "wall_ms": t * 1e3,
                    "melem_per_s": nelem_total * sweeps / t / 1e6,
                }
            )
        return rows
