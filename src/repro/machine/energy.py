"""Energy-efficiency estimate (Section VI of the paper).

The paper estimates power from the clusters' TOP500 entries -- 421 W per
Alex A100 GPU (including host share) and 683 W per Fritz CPU node -- and
multiplies by kernel runtime: the fastest GPU variant (51 ms) consumes 21 J
against 82 J for the fastest full-node CPU run (122 ms), a ~4x advantage
that flips to a *disadvantage* for the baseline (where the GPU is 4-5x
slower than the CPU node).
"""

from __future__ import annotations

import dataclasses
from typing import Dict

__all__ = ["EnergyEstimate", "energy_comparison"]


@dataclasses.dataclass(frozen=True)
class EnergyEstimate:
    """Energy of one device executing one kernel variant."""

    device: str
    variant: str
    runtime_ms: float
    power_watts: float

    @property
    def joules(self) -> float:
        return self.runtime_ms * 1e-3 * self.power_watts


def energy_comparison(
    gpu_runtimes_ms: Dict[str, float],
    cpu_runtimes_ms: Dict[str, float],
    gpu_power: float = 421.0,
    cpu_power: float = 683.0,
) -> Dict[str, Dict[str, float]]:
    """Per-variant energy table plus GPU/CPU efficiency ratios.

    Parameters are variant->runtime(ms) maps for the GPU and the CPU node.
    The ratio uses the fastest variant available on each device (the paper
    compares best-vs-best) and additionally reports the baseline-vs-baseline
    ratio, which favours the CPU.
    """
    out: Dict[str, Dict[str, float]] = {"gpu": {}, "cpu": {}, "ratios": {}}
    for v, t in gpu_runtimes_ms.items():
        out["gpu"][v] = EnergyEstimate("gpu", v, t, gpu_power).joules
    for v, t in cpu_runtimes_ms.items():
        out["cpu"][v] = EnergyEstimate("cpu", v, t, cpu_power).joules
    best_gpu = min(out["gpu"].values())
    best_cpu = min(out["cpu"].values())
    out["ratios"]["best_cpu_over_best_gpu"] = best_cpu / best_gpu
    if "B" in out["gpu"] and "B" in out["cpu"]:
        out["ratios"]["baseline_cpu_over_baseline_gpu"] = (
            out["cpu"]["B"] / out["gpu"]["B"]
        )
    return out
