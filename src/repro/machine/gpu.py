"""GPU execution model (the paper's A100 measurements, simulated).

There is no GPU in this reproduction environment, so this module *is* the
substitute for OpenACC + A100 + Nsight Compute: it consumes the
instruction/memory trace a kernel variant produced under the
:class:`~repro.core.dsl.TracingBackend` and derives the quantities of the
paper's Table II -- per-element global/local load-store and FP operation
counts, L1/L2/DRAM volumes and effectiveness, register allocation,
occupancy, and a roofline-with-latency runtime estimate.

The model has four stages:

1. **Register allocation / storage mapping** (Sec. V-C of the paper,
   Table III):  private arrays with compile-time-constant indices are
   register candidates; their *liveness-weighted* footprint plus the
   expression-temporary high-water mark gives the register demand.  If the
   demand exceeds the 255-register limit, the largest arrays spill to local
   memory.  Private arrays with runtime indices always live in local
   memory.  Global-temp kernels pay a fitted address-generation overhead
   which drives them to the 255-register ceiling, as both paper baselines
   do.  (Constants fitted to Table II: see ``_REG_*`` below.)
2. **Register forwarding**: for private (register/local) values the
   compiler can keep a just-written value in a register for a short while;
   accesses that re-touch a slot accessed fewer than ``forward_window``
   events ago are eliminated.  Global temporaries get no forwarding -- the
   paper observed both compilers reloading even just-stored zeros.
3. **Cache simulation**: the filtered pattern is replayed warp-by-warp
   (each warp owns 32 consecutive elements) over an LRU L1 per SM and a
   shared LRU L2 scaled to the number of simulated SMs.  Mesh accesses use
   real mesh connectivity so nodal reuse between neighbouring elements is
   captured; atomically-reduced RHS updates are serviced at the L2 (as on
   the A100); local-memory lines of finished warps are invalidated without
   writeback (Table III's mechanism).
4. **Timing**: ``T = max(T_flop, T_L2, T_DRAM)`` with the DRAM term limited
   by a Little's-law concurrency bound ``BW_eff = min(BW, inflight bytes /
   latency)`` where the in-flight bytes grow with occupancy and with the
   memory ILP measured on the trace.  This reproduces the paper's central
   observation that the baseline cannot saturate DRAM bandwidth (608 of
   1381 GB/s) while the privatized variant can.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..core.dsl import TraceReport
from ..core.storage import AccessKind, MemoryEvent, Storage
from .cache import LruCache
from .counters import GpuCounters
from .spec import A100_SXM4_40GB, GpuSpec
from .traffic import cold_mesh_dram_bytes

__all__ = ["GpuModel", "StorageMapping", "GPU_SWEEPS_PER_STEP"]

#: The paper's reported runtimes correspond to three assembly sweeps per
#: time step (explicit Runge-Kutta substeps): e.g. Table II's baseline at
#: 163 GFlop/s and 6293 Flop/element over 3773 ms implies ~98M element
#: assemblies on the 32.6M-element mesh.
GPU_SWEEPS_PER_STEP = 3

# -- register-model constants, fitted to Table II (documented in DESIGN.md) --
_REG_BASE = 33  # bookkeeping registers of any kernel
_REG_LIVE = 2.0  # per peak live expression temporary
_REG_PRIVATE = 5.0 / 3.0  # per liveness-peak private slot (alloc slack)
_REG_PER_ARRAY = 7  # address registers per memory-resident temp array
_REG_GENERIC = 62  # generic-indexing overhead when temp arrays are in memory


@dataclasses.dataclass
class StorageMapping:
    """Outcome of stage 1: where every temp array lives, and the register
    allocation / occupancy it implies."""

    registers: int
    warps_per_sm: int
    occupancy: float
    region_of: Dict[str, str]  # array -> "register" | "local" | "global"
    spilled_arrays: Tuple[str, ...]
    peak_private_live: int


def _private_liveness_peak(report: TraceReport, arrays: Sequence[str]) -> int:
    """Peak simultaneous footprint (slots) of the given arrays.

    Liveness of an array spans from its first to its last event in the
    pattern; the peak is the largest sum of sizes of simultaneously live
    arrays.
    """
    first: Dict[str, int] = {}
    last: Dict[str, int] = {}
    for i, ev in enumerate(report.pattern):
        if ev.array in arrays:
            first.setdefault(ev.array, i)
            last[ev.array] = i
    if not first:
        return 0
    points = sorted({*first.values(), *last.values()})
    peak = 0
    for p in points:
        live = sum(
            report.temps[a].size
            for a in first
            if first[a] <= p <= last[a]
        )
        peak = max(peak, live)
    return peak


class GpuModel:
    """A100 execution model; see module docstring for the staged design."""

    def __init__(
        self,
        spec: GpuSpec = A100_SXM4_40GB,
        sim_sms: int = 4,
        batches_per_warp: int = 2,
        forward_window: int = 8,
        interleave_events: int = 8,
        l2_efficiency: float = 0.45,
    ) -> None:
        if sim_sms < 1 or batches_per_warp < 1:
            raise ValueError("need at least one SM and one batch")
        self.spec = spec
        self.sim_sms = int(sim_sms)
        self.batches = int(batches_per_warp)
        self.forward_window = int(forward_window)
        self.interleave = int(interleave_events)
        self.l2_efficiency = float(l2_efficiency)

    # ------------------------------------------------------------------
    # Stage 1: registers / storage mapping
    # ------------------------------------------------------------------
    def map_storage(self, report: TraceReport) -> StorageMapping:
        region: Dict[str, str] = {}
        reg_candidates: List[str] = []
        for name, spec in report.temps.items():
            if spec.storage is Storage.PRIVATE and spec.static:
                reg_candidates.append(name)
                region[name] = "register"
            elif spec.storage is Storage.PRIVATE:
                region[name] = "local"
            else:
                region[name] = "global"

        peak_priv = _private_liveness_peak(report, reg_candidates)
        memory_arrays = [a for a, r in region.items() if r != "register"]

        def demand(priv_peak: int) -> float:
            d = _REG_BASE + _REG_LIVE * report.peak_live_values
            d += _REG_PRIVATE * priv_peak
            if memory_arrays:
                d += _REG_PER_ARRAY * len(memory_arrays) + _REG_GENERIC
            return d

        spilled: List[str] = []
        # Spill largest register-candidate arrays until the demand fits.
        cands = sorted(
            reg_candidates, key=lambda a: report.temps[a].size, reverse=True
        )
        cur_peak = peak_priv
        while cands and demand(cur_peak) > self.spec.max_registers_per_thread:
            victim = cands.pop(0)
            region[victim] = "local"
            spilled.append(victim)
            memory_arrays.append(victim)
            cur_peak = _private_liveness_peak(report, cands)

        registers = int(
            min(self.spec.max_registers_per_thread, round(demand(cur_peak)))
        )
        warps = self.spec.warps_for_registers(registers)
        return StorageMapping(
            registers=registers,
            warps_per_sm=warps,
            occupancy=warps / self.spec.max_warps_per_sm,
            region_of=region,
            spilled_arrays=tuple(spilled),
            peak_private_live=cur_peak,
        )

    # ------------------------------------------------------------------
    # Stage 2: register forwarding filter
    # ------------------------------------------------------------------
    def filter_pattern(
        self, report: TraceReport, mapping: StorageMapping
    ) -> List[Tuple[str, MemoryEvent]]:
        """Return ``(region, event)`` pairs surviving register forwarding.

        Register-resident array accesses vanish entirely (they are the
        registers).  Local/private accesses within ``forward_window`` events
        of the previous access to the same slot are forwarded (eliminated).
        Global temporaries and mesh traffic always survive.
        """
        out: List[Tuple[str, MemoryEvent]] = []
        last_touch: Dict[Tuple[str, int], int] = {}
        for i, ev in enumerate(report.pattern):
            if ev.storage is Storage.MESH:
                out.append(("mesh", ev))
                continue
            region = mapping.region_of.get(ev.array, "global")
            if region == "register":
                continue
            if region == "local":
                key = (ev.array, ev.offset)
                prev = last_touch.get(key)
                last_touch[key] = i
                if prev is not None and i - prev <= self.forward_window:
                    continue
            out.append((region, ev))
        return out

    # ------------------------------------------------------------------
    # Stage 3: cache simulation
    # ------------------------------------------------------------------
    def simulate_caches(
        self,
        filtered: List[Tuple[str, MemoryEvent]],
        mapping: StorageMapping,
        connectivity: np.ndarray,
        vector_dim: Optional[int] = None,
    ) -> Dict[str, float]:
        """Replay the pattern warp-by-warp through L1/L2 (see class doc).

        Accounting is in 32-byte sectors (the A100's transfer granularity):
        a coalesced warp access to a ``VECTOR_DIM``-strided temporary is one
        aligned 256-byte block (weight 8), a scattered mesh access touches
        the distinct sectors of its 32 lanes (weight 1 each).  Stores write
        through to the L2 and evict the L1 copy; mesh traffic bypasses the
        L1 entirely; local-memory lines of finished warps are invalidated
        without DRAM writeback.

        Returns per-element byte volumes and op counts.
        """
        spec = self.spec
        warp = spec.warp_size
        warps_per_sm = mapping.warps_per_sm
        nwarps = self.sim_sms * warps_per_sm
        nelem_needed = nwarps * warp * self.batches
        nelem_avail = connectivity.shape[0]
        if nelem_avail < nelem_needed:
            reps = -(-nelem_needed // nelem_avail)
            connectivity = np.tile(connectivity, (reps, 1))
        nelem_sim = nelem_needed
        vdim = vector_dim if vector_dim is not None else nelem_sim

        sector = 32
        block = warp * 8  # one coalesced warp access
        l1_sectors = max(8, spec.l1_bytes_per_sm // sector)
        l2_sectors = max(
            64, int(spec.l2_bytes * self.sim_sms / spec.num_sms) // sector
        )

        l2 = LruCache(l2_sectors)
        l1s = [LruCache(l1_sectors) for _ in range(self.sim_sms)]

        array_base: Dict[Tuple[str, str], int] = {}

        def base_of(region: str, array: str) -> int:
            key = (region, array)
            b = array_base.get(key)
            if b is None:
                b = (len(array_base) + 1) << 44
                array_base[key] = b
            return b

        events = filtered
        nev = len(events)
        l1_hit_units = 0
        l1_miss_units = 0
        atomic_ops = 0
        ops_global = 0
        ops_local = 0

        for batch in range(self.batches):
            cursors = [0] * nwarps
            local_blocks: List[Set[int]] = [set() for _ in range(nwarps)]
            done = 0
            base_elem = batch * nwarps * warp
            while done < nwarps:
                done = 0
                for w in range(nwarps):
                    cur = cursors[w]
                    if cur >= nev:
                        done += 1
                        continue
                    sm = w % self.sim_sms
                    l1 = l1s[sm]
                    e0 = base_elem + w * warp
                    stop = min(nev, cur + self.interleave)
                    for idx in range(cur, stop):
                        region, ev = events[idx]
                        store = ev.is_store()
                        if region == "mesh":
                            # Scattered indirect accesses touch the distinct
                            # 32-byte sectors of their 32 lanes.  Loads go
                            # through the L1; atomic RHS reductions are
                            # serviced at the L2 (as on the A100), where
                            # cross-warp nodal reuse lives.
                            if ev.kind is AccessKind.ATOMIC_ADD:
                                atomic_ops += 1
                            ops_global += 1
                            nodes = connectivity[e0 : e0 + warp, ev.node_slot]
                            addrs = base_of("mesh", ev.array) + (
                                nodes * 3 + ev.component
                            ) * 8
                            for sec in np.unique(addrs // sector):
                                sec = int(sec)
                                if store:
                                    if l1.contains(sec):
                                        l1.invalidate((sec,))
                                    l2.access(sec, store=True, weight=1)
                                elif l1.access(sec, store=False, weight=1):
                                    l1_hit_units += 1
                                else:
                                    l1_miss_units += 1
                                    l2.access(sec, store=False, weight=1)
                        else:
                            if region == "local":
                                ops_local += 1
                            else:
                                ops_global += 1
                            blk = (
                                base_of(region, ev.array)
                                + (ev.offset * vdim + e0) * 8
                            ) // block
                            if region == "local":
                                local_blocks[w].add(blk)
                            if store:
                                # write-through to L2, write-evict in L1
                                if l1.contains(blk):
                                    l1.invalidate((blk,))
                                l2.access(blk, store=True, weight=8)
                            elif l1.access(blk, store=False, weight=8):
                                l1_hit_units += 8
                            else:
                                l1_miss_units += 8
                                l2.access(blk, store=False, weight=8)
                    cursors[w] = stop
                    if stop >= nev:
                        done += 1
            # threads of this batch finish: local lines are invalidated
            # without DRAM writeback (Table III mechanism).
            for w in range(nwarps):
                if local_blocks[w]:
                    l1s[w % self.sim_sms].invalidate(local_blocks[w])
                    l2.invalidate(local_blocks[w])

        # remaining dirty global data eventually reaches DRAM
        dram_units = (
            l2.stats.miss_units + l2.stats.writeback_units + l2.dirty_weight()
        )
        l2_units = l2.stats.hit_units + l2.stats.miss_units

        denom = float(nelem_sim)
        passes = nwarps * self.batches
        return {
            "nelem_sim": nelem_sim,
            # each warp event is one instruction executed by every lane, so
            # ops per element equals pattern events per warp pass
            "global_ops_per_elem": ops_global / passes,
            "local_ops_per_elem": ops_local / passes,
            "l1_hit_units": l1_hit_units,
            "l1_miss_units": l1_miss_units,
            "l2_volume_bytes_per_elem": l2_units * sector / denom,
            "dram_volume_bytes_per_elem": dram_units * sector / denom,
        }

    # ------------------------------------------------------------------
    # Stage 4: timing + assembled counters
    # ------------------------------------------------------------------
    def run(
        self,
        variant: str,
        report: TraceReport,
        connectivity: np.ndarray,
        nelem_total: float = 32.6e6,
        sweeps: int = GPU_SWEEPS_PER_STEP,
    ) -> GpuCounters:
        """Full pipeline: mapping, filtering, cache sim, timing."""
        spec = self.spec
        mapping = self.map_storage(report)
        filtered = self.filter_pattern(report, mapping)
        sim = self.simulate_caches(filtered, mapping, connectivity)

        ops_g = sim["global_ops_per_elem"]
        ops_l = sim["local_ops_per_elem"]
        l1_volume = (ops_g + ops_l) * 8.0
        # compulsory full-size-mesh traffic the small simulated mesh hides
        cold = cold_mesh_dram_bytes()
        l2_volume = sim["l2_volume_bytes_per_elem"] + cold
        dram_volume = sim["dram_volume_bytes_per_elem"] + cold
        l1_eff = max(0.0, 1.0 - l2_volume / l1_volume) if l1_volume else 0.0
        l2_eff = max(0.0, 1.0 - dram_volume / l2_volume) if l2_volume else 0.0

        flops = float(report.flops)
        # Forwarding shortens dependent load/use chains: scale the traced
        # memory ILP by the access-elimination ratio.
        n_orig = max(1, len(report.pattern))
        n_filt = max(1, len(filtered))
        mlp = max(1.0, report.memory_ilp * n_orig / n_filt)

        # Little's-law DRAM bandwidth bound
        inflight = (
            spec.num_sms
            * mapping.warps_per_sm
            * mlp
            * spec.warp_size
            * 8.0
        )
        bw_eff = min(spec.dram_bandwidth, inflight / spec.dram_latency)

        t_flop = flops / spec.instruction_mix_roof
        # L2 bandwidth needs request concurrency: the achievable fraction of
        # the fitted peak scales with resident warps (16/SM saturate it).
        l2_bw_eff = (
            spec.l2_bandwidth
            * self.l2_efficiency
            * min(1.0, mapping.warps_per_sm / 16.0)
        )
        t_l2 = l2_volume / l2_bw_eff
        t_dram = dram_volume / bw_eff
        t_elem = max(t_flop, t_l2, t_dram)
        runtime_s = t_elem * nelem_total * sweeps

        return GpuCounters(
            variant=variant,
            global_loadstore=ops_g,
            local_loadstore=ops_l,
            flops=flops,
            l1_volume=l1_volume,
            l1_effectiveness=l1_eff,
            l2_volume=l2_volume,
            l2_effectiveness=l2_eff,
            dram_volume=dram_volume,
            registers=mapping.registers,
            warps_per_sm=mapping.warps_per_sm,
            occupancy=mapping.occupancy,
            gflops=flops / t_elem / 1e9,
            gbs=dram_volume / t_elem / 1e9,
            runtime_ms=runtime_s * 1e3,
            memory_ilp=mlp,
            spilled_arrays=mapping.spilled_arrays,
        )
