"""Roofline model (Williams et al.) and the paper's Figure 3 series.

Figure 3 plots every GPU variant twice -- against DRAM arithmetic intensity
and against L2 arithmetic intensity -- under three roofs: the DRAM
bandwidth diagonal (1381 GB/s), the FP64 peak (9.7 TF/s) and the
application instruction-mix roof (7.4 TF/s).  The paper's punchline is that
the final variant **RSPR sits past the roofline knee**: its DRAM intensity
exceeds the machine balance, so DRAM bandwidth no longer limits it (the L2
does instead).
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, Optional, Sequence

__all__ = ["Roofline", "RooflinePoint", "gpu_roofline", "render_ascii"]


@dataclasses.dataclass(frozen=True)
class RooflinePoint:
    """One kernel placed on the roofline."""

    label: str
    intensity: float  # Flop/B
    performance: float  # Flop/s

    def limited_by(self, roofline: "Roofline") -> str:
        """Which roof binds at this intensity."""
        mem = roofline.bandwidth * self.intensity
        return "memory" if mem < roofline.peak else "compute"


@dataclasses.dataclass(frozen=True)
class Roofline:
    """A single-bandwidth roofline."""

    name: str
    bandwidth: float  # B/s
    peak: float  # Flop/s
    secondary_peak: Optional[float] = None  # e.g. instruction-mix roof

    @property
    def knee(self) -> float:
        """Machine balance (Flop/B) where the roofs intersect."""
        return self.peak / self.bandwidth

    def attainable(self, intensity: float) -> float:
        """Attainable performance at an arithmetic intensity."""
        if intensity < 0:
            raise ValueError("arithmetic intensity must be non-negative")
        roof = self.peak
        if self.secondary_peak is not None:
            roof = min(roof, self.secondary_peak)
        return min(self.bandwidth * intensity, roof)

    def efficiency(self, point: RooflinePoint) -> float:
        """Fraction of the attainable performance the point achieves."""
        att = self.attainable(point.intensity)
        return point.performance / att if att > 0 else 0.0

    def series(
        self, intensities: Sequence[float]
    ) -> List[tuple]:
        """(intensity, attainable) pairs for plotting the roof."""
        return [(x, self.attainable(x)) for x in intensities]

    def to_dict(self) -> dict:
        """JSON-ready description (for ``BENCH_roofline_attrib.json``)."""
        return {
            "name": self.name,
            "bandwidth": self.bandwidth,
            "peak": self.peak,
            "secondary_peak": self.secondary_peak,
            "knee": self.knee,
        }

    def attribution(self, point: RooflinePoint) -> dict:
        """One measured point's placement under this roofline."""
        return {
            "label": point.label,
            "intensity": point.intensity,
            "performance": point.performance,
            "attainable": self.attainable(point.intensity),
            "efficiency": self.efficiency(point),
            "limited_by": point.limited_by(self),
        }


def gpu_roofline(
    dram_bandwidth: float = 1381e9,
    fp64_peak: float = 9.7e12,
    instruction_mix_roof: float = 7.4e12,
) -> Roofline:
    """The paper's A100 roofline (Fig. 3 roofs)."""
    return Roofline(
        name="A100 DRAM roofline",
        bandwidth=dram_bandwidth,
        peak=fp64_peak,
        secondary_peak=instruction_mix_roof,
    )


def render_ascii(
    roofline: Roofline,
    points: Iterable[RooflinePoint],
    width: int = 68,
    height: int = 20,
    x_range: tuple = (0.1, 100.0),
) -> str:
    """Log-log ASCII roofline diagram (the text-mode Figure 3)."""
    import math

    points = list(points)
    x_lo, x_hi = x_range
    y_hi = roofline.peak * 2.0
    y_lo = roofline.attainable(x_lo) / 4.0

    def to_col(x: float) -> int:
        t = (math.log10(x) - math.log10(x_lo)) / (
            math.log10(x_hi) - math.log10(x_lo)
        )
        return min(width - 1, max(0, int(round(t * (width - 1)))))

    def to_row(y: float) -> int:
        t = (math.log10(y) - math.log10(y_lo)) / (
            math.log10(y_hi) - math.log10(y_lo)
        )
        return min(height - 1, max(0, height - 1 - int(round(t * (height - 1)))))

    grid = [[" "] * width for _ in range(height)]
    for c in range(width):
        x = 10 ** (
            math.log10(x_lo)
            + c / (width - 1) * (math.log10(x_hi) - math.log10(x_lo))
        )
        grid[to_row(roofline.attainable(x))][c] = "."
    for p in points:
        r, c = to_row(max(p.performance, y_lo)), to_col(
            min(max(p.intensity, x_lo), x_hi)
        )
        grid[r][c] = p.label[0]
    knee_c = to_col(roofline.knee)
    grid[0][knee_c] = "v"

    lines = ["".join(row) for row in grid]
    legend = ", ".join(
        f"{p.label}=({p.intensity:.2g} F/B, {p.performance/1e12:.2f} TF/s)"
        for p in points
    )
    header = (
        f"{roofline.name}: BW={roofline.bandwidth/1e9:.0f} GB/s, "
        f"peak={roofline.peak/1e12:.1f} TF/s, knee at {roofline.knee:.1f} F/B (v)"
    )
    return "\n".join([header, *lines, legend])
