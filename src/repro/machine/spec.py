"""Machine specifications of the paper's two test systems.

All numbers come from Section III of the paper (or the referenced cluster
documentation where the paper is silent):

* **GPU**: NVIDIA A100-SXM4-40GB from NHR@FAU's *Alex* cluster -- measured
  Scale-kernel bandwidth 1381 GB/s, FP64 peak 9.7 TFlop/s, machine balance
  7 Flop/B, 40 MB L2, 192 kB combined L1/shared per SM, 108 SMs, 255-register
  limit, 64 warps/SM occupancy ceiling.  The paper's Figure 3 adds an
  instruction-mix roof of 7.4 TFlop/s.
* **CPU**: dual-socket Intel Xeon Platinum 8360Y "Icelake" (2 x 36 cores)
  from NHR@FAU's *Fritz* cluster -- measured single-socket load bandwidth
  179 GB/s, single-socket AVX-512 FMA peak 2705 GFlop/s, machine balance
  15 Flop/B.  Turbo bins (Figure 2): 3.4 GHz up to 17 active cores, then
  3.1 GHz, then 2.6 GHz.

Energy figures (Section VI): 421 W per Alex GPU including its host share,
683 W per Fritz node, estimated from the systems' TOP500 entries.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

__all__ = ["GpuSpec", "CpuSpec", "A100_SXM4_40GB", "ICELAKE_8360Y"]


@dataclasses.dataclass(frozen=True)
class GpuSpec:
    """A GPU execution-model specification."""

    name: str
    num_sms: int
    warp_size: int
    max_warps_per_sm: int
    registers_per_sm: int
    max_registers_per_thread: int
    #: warp-allocation granularity of the register file
    register_allocation_granularity: int
    l1_bytes_per_sm: int
    l2_bytes: int
    sector_bytes: int
    dram_bandwidth: float  # B/s (measured Scale kernel)
    l2_bandwidth: float  # B/s
    fp64_peak: float  # Flop/s
    instruction_mix_roof: float  # Flop/s (Fig. 3 lower roof)
    dram_latency: float  # s
    power_watts: float

    @property
    def machine_intensity(self) -> float:
        """Machine balance in Flop/B (the roofline knee)."""
        return self.fp64_peak / self.dram_bandwidth

    def warps_for_registers(self, regs_per_thread: int) -> int:
        """Occupancy: warps/SM that fit the register file.

        Rounded down to the allocation granularity, clamped to the hardware
        maximum.  With the A100 numbers this reproduces the paper's +33%
        occupancy step from 148 to 128 registers.
        """
        regs_per_thread = max(1, int(regs_per_thread))
        raw = self.registers_per_sm // (regs_per_thread * self.warp_size)
        g = self.register_allocation_granularity
        fitted = (raw // g) * g
        return int(max(g, min(self.max_warps_per_sm, fitted)))


@dataclasses.dataclass(frozen=True)
class CpuSpec:
    """A CPU execution-model specification (one socket unless noted)."""

    name: str
    cores_per_socket: int
    sockets: int
    simd_width: int  # doubles per vector register (AVX-512: 8)
    #: 512-bit loads are emitted as two 256-bit halves by the compiler
    #: observed in the paper ("256bit split loads"), doubling ld/st counts.
    split_loads: bool
    l1_bytes: int
    l2_bytes: int
    l3_bytes: int  # shared per socket
    line_bytes: int
    load_store_ports: int
    fma_ports: int
    issue_width: int
    socket_bandwidth: float  # B/s (measured load bandwidth)
    socket_fp_peak: float  # Flop/s (measured AVX-512 FMA peak)
    turbo_bins: Tuple[Tuple[int, float], ...]  # (max active cores, GHz)
    node_power_watts: float

    @property
    def machine_intensity(self) -> float:
        return self.socket_fp_peak / self.socket_bandwidth

    @property
    def total_cores(self) -> int:
        return self.cores_per_socket * self.sockets

    def frequency(self, active_cores: int) -> float:
        """Turbo frequency in Hz for a number of active cores per socket."""
        for max_cores, ghz in self.turbo_bins:
            if active_cores <= max_cores:
                return ghz * 1e9
        return self.turbo_bins[-1][1] * 1e9

    @property
    def core_fp_peak(self) -> float:
        """Per-core FP64 peak at the measured all-core rate."""
        return self.socket_fp_peak / self.cores_per_socket

    @property
    def core_bandwidth(self) -> float:
        """Naive per-core share of socket bandwidth."""
        return self.socket_bandwidth / self.cores_per_socket


A100_SXM4_40GB = GpuSpec(
    name="NVIDIA A100-SXM4-40GB",
    num_sms=108,
    warp_size=32,
    max_warps_per_sm=64,
    registers_per_sm=65536,
    max_registers_per_thread=255,
    register_allocation_granularity=4,
    l1_bytes_per_sm=192 * 1024,
    l2_bytes=40 * 1024 * 1024,
    sector_bytes=32,
    dram_bandwidth=1381e9,
    l2_bandwidth=4500e9,
    fp64_peak=9.7e12,
    instruction_mix_roof=7.4e12,
    dram_latency=430e-9,
    power_watts=421.0,
)

ICELAKE_8360Y = CpuSpec(
    name="Intel Xeon Platinum 8360Y (Icelake)",
    cores_per_socket=36,
    sockets=2,
    simd_width=8,
    split_loads=True,
    l1_bytes=48 * 1024,
    l2_bytes=1280 * 1024,
    l3_bytes=54 * 1024 * 1024,
    line_bytes=64,
    load_store_ports=2,
    fma_ports=2,
    issue_width=4,
    socket_bandwidth=179e9,
    socket_fp_peak=2705e9,
    turbo_bins=((17, 3.4), (24, 3.1), (36, 2.6)),
    node_power_watts=683.0,
)
