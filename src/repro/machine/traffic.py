"""Cold-mesh traffic correction.

The cache simulators replay a few thousand elements, so the mesh fields
(coordinates, velocity, RHS, connectivity) fit in the simulated caches --
but the paper's mesh has 5.6M nodes and 32M elements: per assembly sweep
every node line must stream from DRAM at least once, and imperfect element
ordering multiplies that compulsory traffic.  This module provides the
analytic correction both machine models add to their simulated DRAM (and
last-level) volumes.

Per element, using the Bolund mesh's node/element ratio (5.6M / 32M =
0.175):

* connectivity: 4 node indices x 8 B = 32 B;
* nodal loads: (coordinates 24 B + velocity 24 B) x ratio x locality;
* RHS update: 24 B write-allocate + 24 B writeback x ratio x locality;

with ``locality`` > 1 accounting for nodes whose cached copy is evicted
between the element groups that share them.
"""

from __future__ import annotations

__all__ = ["cold_mesh_dram_bytes", "BOLUND_NODE_ELEMENT_RATIO"]

#: 5.6M nodes / 32M elements of the paper's Bolund mesh.
BOLUND_NODE_ELEMENT_RATIO = 5.6 / 32.0


def cold_mesh_dram_bytes(
    node_element_ratio: float = BOLUND_NODE_ELEMENT_RATIO,
    locality_factor: float = 3.0,
    connectivity_bytes: float = 32.0,
) -> float:
    """Compulsory per-element DRAM bytes for a full-size mesh sweep."""
    nodal_loads = (24.0 + 24.0) * node_element_ratio * locality_factor
    rhs_update = 48.0 * node_element_ratio * locality_factor
    return connectivity_bytes + nodal_loads + rhs_update
