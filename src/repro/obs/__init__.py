"""Telemetry substrate: hierarchical spans, metric registry, exporters.

Dependency-free observability for the reproduction's hot paths.  The
default everywhere is the no-op :data:`NULL_TRACER`, so instrumentation
costs nothing until a caller opts in::

    from repro.obs import Tracer, get_registry, write_chrome_trace

    tracer = Tracer()
    study = OptimizationStudy(tracer=tracer)
    study.gpu_table()
    write_chrome_trace(tracer.finished, "trace.json")
    print(get_registry().snapshot())
"""

from .spans import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from .export import (
    BENCH_SCHEMA,
    chrome_trace_events,
    read_bench_json,
    read_spans_jsonl,
    write_bench_json,
    write_chrome_trace,
    write_spans_jsonl,
)

__all__ = [
    "NULL_TRACER", "NullTracer", "Span", "Tracer", "get_tracer", "set_tracer",
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "get_registry", "set_registry",
    "BENCH_SCHEMA", "chrome_trace_events",
    "read_bench_json", "read_spans_jsonl",
    "write_bench_json", "write_chrome_trace", "write_spans_jsonl",
]
