"""Telemetry substrate: spans, metrics, op-level profiler, exporters.

Dependency-free observability for the reproduction's hot paths.  The
default everywhere is the no-op :data:`NULL_TRACER` /
:data:`NULL_PROFILER`, so instrumentation costs nothing until a caller
opts in::

    from repro.obs import Tracer, TapeProfiler, get_registry

    tracer = Tracer()
    study = OptimizationStudy(tracer=tracer)
    study.gpu_table()
    write_chrome_trace(tracer.finished, "trace.json")
    print(get_registry().snapshot())

The profiler is the op-level layer (the reproduction's LIKWID): attach a
:class:`TapeProfiler` via ``UnifiedAssembler(..., profile=True)`` and
read per-op/per-phase wall time, derived bytes and Flops, roofline
points and folded flamegraphs back out of it.
"""

from .spans import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from .profiler import (
    NULL_PROFILER,
    NullProfiler,
    TapeProfile,
    TapeProfiler,
    op_costs_from_program,
)
from .export import (
    BENCH_SCHEMA,
    PrometheusExporter,
    chrome_trace_events,
    collapse_spans,
    profile_trace_events,
    prometheus_text,
    read_bench_json,
    read_spans_jsonl,
    write_bench_json,
    write_chrome_trace,
    write_flamegraph,
    write_prometheus,
    write_spans_jsonl,
)

__all__ = [
    "NULL_TRACER", "NullTracer", "Span", "Tracer", "get_tracer", "set_tracer",
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "get_registry", "set_registry",
    "NULL_PROFILER", "NullProfiler", "TapeProfile", "TapeProfiler",
    "op_costs_from_program",
    "BENCH_SCHEMA", "chrome_trace_events", "profile_trace_events",
    "collapse_spans", "write_flamegraph",
    "prometheus_text", "write_prometheus", "PrometheusExporter",
    "read_bench_json", "read_spans_jsonl",
    "write_bench_json", "write_chrome_trace", "write_spans_jsonl",
]
