"""Exporters: JSON-lines span logs, Chrome trace-event files, bench.json.

Three machine-readable artifact formats, all dependency-free:

* **JSON lines** (``*.jsonl``): one span dict per line, the lossless
  archival format -- :func:`read_spans_jsonl` round-trips exactly.
* **Chrome trace events** (``*.json``): complete-event (``"ph": "X"``)
  records openable in ``chrome://tracing`` / Perfetto; one process row per
  recorded ``pid`` (rank), microsecond timestamps.
* **bench.json**: the flat perf-trajectory summary
  (``BENCH_variants.json``).  Schema (``repro-bench/1``)::

      {
        "schema": "repro-bench/1",
        "created_unix": <float, epoch seconds>,
        "entries": [            # one per benchmarked variant
          {"variant": "RSP", "wall_ms": 12.3,
           "gpu_model_runtime_ms": 512.0, "cpu_model_runtime_ms": 8400.0,
           "melem_per_s": 0.84, "nelem": 10368, ...}
        ],
        "metrics": { "<name>": {"kind": ..., ...} }   # registry snapshot
      }
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, Iterable, List, Optional, Union

from .metrics import MetricsRegistry
from .spans import Span

__all__ = [
    "BENCH_SCHEMA",
    "write_spans_jsonl",
    "read_spans_jsonl",
    "chrome_trace_events",
    "write_chrome_trace",
    "write_bench_json",
    "read_bench_json",
]

BENCH_SCHEMA = "repro-bench/1"

_SpanLike = Union[Span, Dict[str, Any]]


def _as_dicts(spans: Iterable[_SpanLike]) -> List[Dict[str, Any]]:
    return [s.to_dict() if isinstance(s, Span) else dict(s) for s in spans]


# ---------------------------------------------------------------------------
# JSON lines
# ---------------------------------------------------------------------------


def write_spans_jsonl(spans: Iterable[_SpanLike], path: str) -> int:
    """Write one span dict per line; returns the number written."""
    dicts = _as_dicts(spans)
    with open(path, "w", encoding="utf-8") as fh:
        for d in dicts:
            fh.write(json.dumps(d, sort_keys=True) + "\n")
    return len(dicts)


def read_spans_jsonl(path: str) -> List[Span]:
    """Read spans back from a JSON-lines file."""
    out: List[Span] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(Span.from_dict(json.loads(line)))
    return out


# ---------------------------------------------------------------------------
# Chrome trace events
# ---------------------------------------------------------------------------


def chrome_trace_events(spans: Iterable[_SpanLike]) -> List[Dict[str, Any]]:
    """Convert spans to Chrome complete events (``ph: "X"``, ts/dur in us).

    Timestamps are re-based so the earliest span starts at ts=0, which
    keeps the timeline readable regardless of the epoch anchor.
    """
    dicts = [d for d in _as_dicts(spans) if d.get("end") is not None]
    if not dicts:
        return []
    t0 = min(float(d["start"]) for d in dicts)
    events = []
    for d in sorted(dicts, key=lambda d: (d["start"], -float(d["end"]))):
        events.append(
            {
                "name": d["name"],
                "ph": "X",
                "ts": (float(d["start"]) - t0) * 1e6,
                "dur": (float(d["end"]) - float(d["start"])) * 1e6,
                "pid": int(d.get("pid", 0)),
                "tid": int(d.get("tid", 0)),
                "args": dict(d.get("attributes", {})),
            }
        )
    return events


def write_chrome_trace(
    spans: Iterable[_SpanLike],
    path: str,
    metadata: Optional[Dict[str, Any]] = None,
) -> int:
    """Write a ``chrome://tracing`` JSON object file; returns event count."""
    events = chrome_trace_events(spans)
    doc: Dict[str, Any] = {"traceEvents": events, "displayTimeUnit": "ms"}
    if metadata:
        doc["otherData"] = dict(metadata)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    return len(events)


# ---------------------------------------------------------------------------
# bench.json
# ---------------------------------------------------------------------------


def write_bench_json(
    path: str,
    entries: Iterable[Dict[str, Any]],
    metrics: Optional[Union[MetricsRegistry, Dict[str, Any]]] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Write the flat ``bench.json`` summary; returns the written document."""
    snap: Dict[str, Any] = {}
    if isinstance(metrics, MetricsRegistry):
        snap = metrics.snapshot()
    elif metrics:
        snap = dict(metrics)
    doc: Dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "created_unix": time.time(),
        "entries": [dict(e) for e in entries],
        "metrics": snap,
    }
    if meta:
        doc["meta"] = dict(meta)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return doc


def read_bench_json(path: str) -> Dict[str, Any]:
    """Read a bench.json document, validating the schema marker."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"{path}: unexpected bench schema {doc.get('schema')!r} "
            f"(want {BENCH_SCHEMA!r})"
        )
    return doc
