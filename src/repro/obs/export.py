"""Exporters: span logs, Chrome traces, bench.json, flamegraphs, Prometheus.

Machine-readable artifact formats, all dependency-free:

* **JSON lines** (``*.jsonl``): one span dict per line, the lossless
  archival format -- :func:`read_spans_jsonl` round-trips exactly.
* **Chrome trace events** (``*.json``): complete-event (``"ph": "X"``)
  records openable in ``chrome://tracing`` / Perfetto; one process row per
  recorded ``pid`` (rank), microsecond timestamps.  Profiled runs append
  per-tape-op slices (:func:`profile_trace_events`) on their own process
  row.
* **bench.json**: the flat perf-trajectory summary
  (``BENCH_variants.json``).  Schema (``repro-bench/1``)::

      {
        "schema": "repro-bench/1",
        "created_unix": <float, epoch seconds>,
        "entries": [            # one per benchmarked variant
          {"variant": "RSP", "wall_ms": 12.3,
           "gpu_model_runtime_ms": 512.0, "cpu_model_runtime_ms": 8400.0,
           "melem_per_s": 0.84, "nelem": 10368, ...}
        ],
        "metrics": { "<name>": {"kind": ..., ...} }   # registry snapshot
      }
* **Folded flamegraph** (``*.txt``): Brendan Gregg collapsed-stack lines
  (``frame;frame;leaf weight``), importable by speedscope and
  ``flamegraph.pl`` -- from spans (:func:`collapse_spans`) or from tape
  profiles (:meth:`repro.obs.profiler.TapeProfiler.collapsed`).
* **Prometheus text exposition** (``*.prom``): counters/gauges/summaries
  from a :class:`MetricsRegistry`, refreshed periodically by long
  campaigns via :class:`PrometheusExporter` (atomic tmp+rename, so a
  node-exporter-style textfile collector never reads a torn file).
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, Iterable, List, Optional, Union

from .metrics import MetricsRegistry
from .spans import Span

__all__ = [
    "BENCH_SCHEMA",
    "write_spans_jsonl",
    "read_spans_jsonl",
    "chrome_trace_events",
    "profile_trace_events",
    "write_chrome_trace",
    "write_bench_json",
    "read_bench_json",
    "collapse_spans",
    "write_flamegraph",
    "prometheus_text",
    "write_prometheus",
    "PrometheusExporter",
]

BENCH_SCHEMA = "repro-bench/1"

_SpanLike = Union[Span, Dict[str, Any]]


def _as_dicts(spans: Iterable[_SpanLike]) -> List[Dict[str, Any]]:
    return [s.to_dict() if isinstance(s, Span) else dict(s) for s in spans]


# ---------------------------------------------------------------------------
# JSON lines
# ---------------------------------------------------------------------------


def write_spans_jsonl(spans: Iterable[_SpanLike], path: str) -> int:
    """Write one span dict per line; returns the number written."""
    dicts = _as_dicts(spans)
    with open(path, "w", encoding="utf-8") as fh:
        for d in dicts:
            fh.write(json.dumps(d, sort_keys=True) + "\n")
    return len(dicts)


def read_spans_jsonl(path: str) -> List[Span]:
    """Read spans back from a JSON-lines file."""
    out: List[Span] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(Span.from_dict(json.loads(line)))
    return out


# ---------------------------------------------------------------------------
# Chrome trace events
# ---------------------------------------------------------------------------


def chrome_trace_events(spans: Iterable[_SpanLike]) -> List[Dict[str, Any]]:
    """Convert spans to Chrome complete events (``ph: "X"``, ts/dur in us).

    Timestamps are re-based so the earliest span starts at ts=0, which
    keeps the timeline readable regardless of the epoch anchor.
    """
    dicts = [d for d in _as_dicts(spans) if d.get("end") is not None]
    if not dicts:
        return []
    t0 = min(float(d["start"]) for d in dicts)
    events = []
    for d in sorted(dicts, key=lambda d: (d["start"], -float(d["end"]))):
        events.append(
            {
                "name": d["name"],
                "ph": "X",
                "ts": (float(d["start"]) - t0) * 1e6,
                "dur": (float(d["end"]) - float(d["start"])) * 1e6,
                "pid": int(d.get("pid", 0)),
                "tid": int(d.get("tid", 0)),
                "args": dict(d.get("attributes", {})),
            }
        )
    return events


def profile_trace_events(
    profile_dicts: Iterable[Dict[str, Any]], pid: int = 1000
) -> List[Dict[str, Any]]:
    """Per-tape-op Chrome slices from profiler snapshots.

    Tape ops execute back-to-back inside one ``tape.execute`` span, so
    each profile's ops are laid out sequentially from ts=0 with their
    *accumulated* durations -- a time-proportional op breakdown row (one
    ``tid`` per profiled configuration on a dedicated profiler ``pid``),
    not a wall-clock alignment with the span rows.

    ``profile_dicts`` is what :meth:`repro.obs.profiler.TapeProfiler.snapshot`
    returns.
    """
    events: List[Dict[str, Any]] = []
    for tid, prof in enumerate(profile_dicts):
        label = (
            f"{prof['variant']}@vd{prof['vector_dim']}"
            f"[{prof['mode']}/{prof.get('executor', 'serial')}]"
        )
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": f"profile {label}"},
            }
        )
        cursor = 0.0
        for i, seconds in enumerate(prof["seconds"]):
            dur = float(seconds) * 1e6
            if dur <= 0:
                continue
            events.append(
                {
                    "name": f"{prof['labels'][i]}#{i}",
                    "ph": "X",
                    "ts": cursor,
                    "dur": dur,
                    "pid": pid,
                    "tid": tid,
                    "args": {
                        "kind": prof["kinds"][i],
                        "calls": prof["calls"][i],
                        "lanes": prof["lanes"][i],
                    },
                }
            )
            cursor += dur
        flush = float(prof.get("flush_seconds", 0.0)) * 1e6
        if flush > 0:
            events.append(
                {
                    "name": "flush#bincount",
                    "ph": "X",
                    "ts": cursor,
                    "dur": flush,
                    "pid": pid,
                    "tid": tid,
                    "args": {"kind": "flush"},
                }
            )
    return events


def write_chrome_trace(
    spans: Iterable[_SpanLike],
    path: str,
    metadata: Optional[Dict[str, Any]] = None,
    extra_events: Optional[Iterable[Dict[str, Any]]] = None,
) -> int:
    """Write a ``chrome://tracing`` JSON object file; returns event count.

    ``extra_events`` (e.g. :func:`profile_trace_events` output) are
    appended verbatim after the span-derived events.
    """
    events = chrome_trace_events(spans)
    if extra_events:
        events.extend(extra_events)
    doc: Dict[str, Any] = {"traceEvents": events, "displayTimeUnit": "ms"}
    if metadata:
        doc["otherData"] = dict(metadata)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    return len(events)


# ---------------------------------------------------------------------------
# bench.json
# ---------------------------------------------------------------------------


def write_bench_json(
    path: str,
    entries: Iterable[Dict[str, Any]],
    metrics: Optional[Union[MetricsRegistry, Dict[str, Any]]] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Write the flat ``bench.json`` summary; returns the written document."""
    snap: Dict[str, Any] = {}
    if isinstance(metrics, MetricsRegistry):
        snap = metrics.snapshot()
    elif metrics:
        snap = dict(metrics)
    doc: Dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "created_unix": time.time(),
        "entries": [dict(e) for e in entries],
        "metrics": snap,
    }
    if meta:
        doc["meta"] = dict(meta)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return doc


def read_bench_json(path: str) -> Dict[str, Any]:
    """Read a bench.json document, validating the schema marker."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"{path}: unexpected bench schema {doc.get('schema')!r} "
            f"(want {BENCH_SCHEMA!r})"
        )
    return doc


# ---------------------------------------------------------------------------
# Folded flamegraph (collapsed stacks)
# ---------------------------------------------------------------------------


def collapse_spans(spans: Iterable[_SpanLike]) -> Dict[str, int]:
    """Collapse completed spans into folded-stack lines.

    Each span contributes its *self time* (duration minus completed
    children) at the stack ``rank<pid>;ancestors...;name``, in integer
    microseconds.  The result is the textual flamegraph format
    (``stack;frames weight``) speedscope and ``flamegraph.pl`` import.
    """
    dicts = [d for d in _as_dicts(spans) if d.get("end") is not None]
    by_id = {int(d["span_id"]): d for d in dicts}
    child_time: Dict[int, float] = {}
    for d in dicts:
        parent = d.get("parent_id")
        if parent is not None and int(parent) in by_id:
            dur = float(d["end"]) - float(d["start"])
            child_time[int(parent)] = child_time.get(int(parent), 0.0) + dur

    def stack_of(d: Dict[str, Any]) -> str:
        frames = [d["name"]]
        seen = {int(d["span_id"])}
        parent = d.get("parent_id")
        while parent is not None and int(parent) in by_id and int(parent) not in seen:
            p = by_id[int(parent)]
            frames.append(p["name"])
            seen.add(int(parent))
            parent = p.get("parent_id")
        frames.append(f"rank{int(d.get('pid', 0))}")
        return ";".join(reversed(frames))

    out: Dict[str, int] = {}
    for d in dicts:
        total = float(d["end"]) - float(d["start"])
        self_time = total - child_time.get(int(d["span_id"]), 0.0)
        usec = int(round(max(self_time, 0.0) * 1e6))
        if usec <= 0:
            continue
        stack = stack_of(d)
        out[stack] = out.get(stack, 0) + usec
    return out


def write_flamegraph(collapsed: Dict[str, int], path: str) -> int:
    """Write folded-stack lines (sorted for determinism); returns count."""
    with open(path, "w", encoding="utf-8") as fh:
        for stack in sorted(collapsed):
            weight = int(collapsed[stack])
            if weight > 0:
                fh.write(f"{stack} {weight}\n")
    return sum(1 for w in collapsed.values() if int(w) > 0)


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------


def _prom_name(name: str) -> str:
    """Dotted registry name -> Prometheus metric name (``repro_`` prefix)."""
    safe = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    return f"repro_{safe}"


def prometheus_text(
    metrics: Union[MetricsRegistry, Dict[str, Dict[str, Any]]],
) -> str:
    """Render a registry snapshot in the Prometheus text-exposition format.

    Counters map to ``counter``, gauges to ``gauge``, histograms to a
    summary-style triplet (``_count``/``_sum`` plus ``{quantile=...}``
    sample lines from the reservoir percentiles).
    """
    snap = metrics.snapshot() if isinstance(metrics, MetricsRegistry) else metrics
    lines: List[str] = []
    for name in sorted(snap):
        data = snap[name]
        kind = data.get("kind")
        pname = _prom_name(name)
        if kind == "counter":
            lines.append(f"# TYPE {pname} counter")
            lines.append(f"{pname} {float(data.get('value') or 0.0):g}")
        elif kind == "gauge":
            value = data.get("value")
            if value is None:
                continue
            lines.append(f"# TYPE {pname} gauge")
            lines.append(f"{pname} {float(value):g}")
        elif kind == "histogram":
            lines.append(f"# TYPE {pname} summary")
            for q, key in ((0.5, "p50"), (0.95, "p95"), (0.99, "p99")):
                v = data.get(key)
                if v is not None:
                    lines.append(f'{pname}{{quantile="{q}"}} {float(v):g}')
            lines.append(f"{pname}_count {int(data.get('count', 0))}")
            lines.append(f"{pname}_sum {float(data.get('sum', 0.0)):g}")
        else:
            raise ValueError(f"metric {name!r}: unknown kind {kind!r}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(
    metrics: Union[MetricsRegistry, Dict[str, Dict[str, Any]]], path: str
) -> str:
    """Atomically write the text exposition (tmp + rename); returns it."""
    text = prometheus_text(metrics)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(text)
    os.replace(tmp, path)
    return text


class PrometheusExporter:
    """Interval-gated textfile refresher for long-running campaigns.

    Call :meth:`maybe_write` from inside a measurement loop; the file is
    rewritten at most once per ``interval`` seconds (plus on
    :meth:`flush`), so hot loops can call it unconditionally.  Writes are
    atomic, matching the node-exporter textfile-collector contract.
    """

    def __init__(
        self,
        path: str,
        metrics: Union[MetricsRegistry, None] = None,
        interval: float = 5.0,
    ) -> None:
        from .metrics import get_registry

        self.path = path
        self.metrics = metrics if metrics is not None else get_registry()
        self.interval = float(interval)
        self._last = float("-inf")
        self.writes = 0

    def maybe_write(self, now: Optional[float] = None) -> bool:
        now = time.monotonic() if now is None else now
        if now - self._last < self.interval:
            return False
        self._last = now
        write_prometheus(self.metrics, self.path)
        self.writes += 1
        return True

    def flush(self) -> None:
        write_prometheus(self.metrics, self.path)
        self.writes += 1
