"""Process-wide metric registry: counters, gauges and histograms.

The registry is the reproduction's analogue of a LIKWID counter group --
named, monotonically accumulated quantities (CG iterations, halo bytes
exchanged, elements assembled) that the exporters flatten into
``bench.json``.  Names are dotted paths (``"cg.iterations"``,
``"halo.bytes_exchanged"``); the registry creates instruments lazily on
first use so call sites stay one-liners::

    get_registry().counter("cg.iterations").inc(result.iterations)

Registries from worker processes merge with :meth:`MetricsRegistry.merge`
(counters/histograms add, gauges keep the latest value), mirroring an MPI
reduction of per-rank counter sets.
"""

from __future__ import annotations

import random
import threading
import zlib
from typing import Any, Dict, List, Optional, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
]


class Counter:
    """Monotonic accumulator."""

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self.value += amount

    def snapshot(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """Last-written value (e.g. current residual norm)."""

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value}


class Histogram:
    """Streaming distribution summary (count/sum/min/max + reservoir).

    Keeps at most ``max_samples`` raw observations via Vitter's
    reservoir sampling (Algorithm R), so a bounded sample stays uniform
    over the *whole* stream -- a first-N cap would freeze the sample on
    the earliest observations and bias long-run quantiles toward warmup
    behaviour.  The reservoir RNG is seeded from the instrument name, so
    two runs recording the same stream keep identical samples.  The
    scalar summary (count/sum/min/max/mean) is always exact; the
    p50/p95/p99 quantiles in :meth:`snapshot` are reservoir estimates.
    """

    kind = "histogram"

    def __init__(self, name: str, max_samples: int = 512) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.max_samples = int(max_samples)
        self.samples: List[float] = []
        self._rng = random.Random(zlib.crc32(name.encode("utf-8")))

    def record(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if len(self.samples) < self.max_samples:
            self.samples.append(value)
        else:
            # Algorithm R: element i of the stream replaces a reservoir
            # slot with probability max_samples / i.
            j = self._rng.randrange(self.count)
            if j < self.max_samples:
                self.samples[j] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> Optional[float]:
        """Nearest-rank percentile (``q`` in [0, 100]) of the reservoir."""
        if not self.samples:
            return None
        ordered = sorted(self.samples)
        rank = max(0, min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1)))))
        return ordered[rank]

    def snapshot(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "p99": self.percentile(99.0),
            "samples": list(self.samples),
        }


_Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named instruments, created lazily, snapshot/merge-able."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, _Instrument] = {}

    def _get(self, name: str, factory) -> _Instrument:
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = factory(name)
                self._instruments[name] = inst
            return inst

    def counter(self, name: str) -> Counter:
        inst = self._get(name, Counter)
        if not isinstance(inst, Counter):
            raise TypeError(f"metric {name!r} is a {inst.kind}, not a counter")
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._get(name, Gauge)
        if not isinstance(inst, Gauge):
            raise TypeError(f"metric {name!r} is a {inst.kind}, not a gauge")
        return inst

    def histogram(self, name: str) -> Histogram:
        inst = self._get(name, Histogram)
        if not isinstance(inst, Histogram):
            raise TypeError(f"metric {name!r} is a {inst.kind}, not a histogram")
        return inst

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._instruments)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """JSON-ready ``{name: {kind, ...}}`` view of every instrument."""
        with self._lock:
            return {n: i.snapshot() for n, i in sorted(self._instruments.items())}

    def merge(self, other: Union["MetricsRegistry", Dict[str, Dict[str, Any]]]) -> None:
        """Fold another registry (or its :meth:`snapshot`) into this one.

        Counters and histograms accumulate; gauges take the incoming value
        (last writer wins) -- the natural reduction for per-rank metric
        sets returned through a multiprocessing boundary.
        """
        snap = other.snapshot() if isinstance(other, MetricsRegistry) else other
        for name, data in snap.items():
            kind = data.get("kind")
            if kind == "counter":
                self.counter(name).inc(float(data.get("value") or 0.0))
            elif kind == "gauge":
                if data.get("value") is not None:
                    self.gauge(name).set(data["value"])
            elif kind == "histogram":
                hist = self.histogram(name)
                n = int(data.get("count", 0))
                samples = list(data.get("samples", []))
                # incoming samples are a uniform reservoir of the source
                # stream; replaying them through record() folds them into
                # this instrument's reservoir with the right weighting.
                for v in samples:
                    hist.record(v)
                # account for clipped samples without losing the summary
                extra = n - len(samples)
                if extra > 0:
                    hist.count += extra
                    hist.total += float(data.get("sum", 0.0)) - sum(samples)
                    for bound in (data.get("min"), data.get("max")):
                        if bound is not None:
                            hist.min = bound if hist.min is None else min(hist.min, bound)
                            hist.max = bound if hist.max is None else max(hist.max, bound)
            else:
                raise ValueError(f"metric {name!r}: unknown kind {kind!r}")

    def reset(self) -> None:
        with self._lock:
            self._instruments.clear()


_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _default_registry


def set_registry(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Install a process-wide default registry (fresh one if ``None``);
    returns the installed registry."""
    global _default_registry
    _default_registry = registry if registry is not None else MetricsRegistry()
    return _default_registry
