"""Op-level tape profiler: the reproduction's software LIKWID.

The paper's performance argument is *measured*: LIKWID/Nsight counter
groups (Tables I-II) and measured roofline placement (Figure 3) are what
prove the restructured kernels reach the memory-bandwidth limit.  This
module plays that role for the Python reproduction.  A
:class:`TapeProfiler` attaches to the compiled-tape executors
(:class:`repro.core.tape.CompiledTape` / ``ElementalTape``) and to the
interpreted DSL path (:class:`repro.core.dsl.ProfilingNumpyBackend`) and
records, **per tape op**:

* wall time (``perf_counter`` around the exact same ufunc call the
  unprofiled executor makes -- results stay bitwise identical);
* derived bytes read/written and FLOPs from the op table and the lane
  width (float64 lanes, 8 B/element) -- software counters, since Python
  cannot read the memory controller.

From those, per-op and per-phase arithmetic intensity and achieved
GFlop/s / GB/s follow, which :meth:`TapeProfile.roofline_point` feeds
into :class:`repro.machine.roofline.Roofline` for measured roofline
attribution -- and the residual against the *predicted* traffic of
:meth:`repro.core.tape.TapeReport.predicted_bytes` is the calibration
bridge toward the predictive autotuner (ROADMAP item 4).

Zero-cost contract
------------------
The default everywhere is :data:`NULL_PROFILER` (``enabled = False``):
instrumented executors check one attribute and take the original code
path, exactly like :data:`repro.obs.spans.NULL_TRACER`.  When enabled,
the profiled replay issues the *identical* op stream into the identical
buffers, so profiled assemblies are bitwise equal to unprofiled ones.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "OP_PHASES",
    "NULL_PROFILER",
    "NullProfiler",
    "TapeProfile",
    "TapeProfiler",
    "op_costs_from_program",
    "op_costs_from_batch_program",
]

#: bytes per float64 lane element
_F8 = 8.0

#: profiler op kind -> attribution phase
OP_PHASES = {
    "bin": "compute",
    "un": "compute",
    "sel": "select",
    "gather": "gather",
    "scatter": "scatter",
    "store": "store",
    "flush": "flush",
}

#: phase ordering for stable reports
PHASE_ORDER = ("gather", "compute", "select", "store", "scatter", "flush")


def _is_vec(ref: Any) -> bool:
    """A lowered tape operand is a vector iff it is an arena row index."""
    import numpy as np

    return isinstance(ref, (int, np.integer)) and not isinstance(ref, bool)


def op_costs_from_program(program) -> List[Tuple[str, str, float, float, float]]:
    """Per-lane ``(kind, label, bytes_read, bytes_written, flops)`` for
    every lowered op of a :class:`repro.core.tape.TapeProgram`.

    The accounting mirrors what each executor op actually moves per lane:

    * binop: one 8 B read per *vector* operand (folded scalars live in
      registers), one 8 B write;
    * unop: as binop with one operand;
    * select: vector operands of ``(x, a, b)`` plus the 1 B boolean mask
      written by the compare and read back by the masked copy;
    * gather: the 8 B int64 index plus the 8 B gathered value read, one
      8 B write into the arena;
    * scatter: one 8 B read of the source (when vector), one 8 B write
      into the deferred values buffer.

    Every arithmetic op costs 1 Flop per lane (the DSL has no fused op),
    matching :data:`repro.core.dsl._FLOP_COST`.
    """
    costs: List[Tuple[str, str, float, float, float]] = []
    for op in program.ops:
        code = op[0]
        if code == 0:  # (0, ufunc, a, b, out)
            nvec = sum(1 for r in (op[2], op[3]) if _is_vec(r))
            costs.append(("bin", op[1], nvec * _F8, _F8, 1.0))
        elif code == 1:  # (1, ufunc, a, out)
            nvec = 1 if _is_vec(op[2]) else 0
            costs.append(("un", op[1], nvec * _F8, _F8, 1.0))
        elif code == 2:  # (2, x, a, b, thresh, out)
            nvec = sum(1 for r in (op[1], op[2], op[3]) if _is_vec(r))
            costs.append(("sel", "select", nvec * _F8 + 1.0, _F8 + 1.0, 1.0))
        elif code == 3:  # (3, slot, comp, out)
            costs.append(
                ("gather", f"coord[{op[1]},{op[2]}]", 2 * _F8, _F8, 0.0)
            )
        elif code == 4:  # (4, field, slot, comp, out)
            costs.append(
                ("gather", f"{op[1]}[{op[2]},{op[3]}]", 2 * _F8, _F8, 0.0)
            )
        elif code == 5:  # (5, call, slot, comp, src)
            nvec = 1 if _is_vec(op[4]) else 0
            costs.append(
                ("scatter", f"rhs[{op[2]},{op[3]}]", nvec * _F8, _F8, 0.0)
            )
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown lowered op code {code!r}")
    return costs


def _is_batch_vec(ref: Any) -> bool:
    """A batched-tape operand is lane-wide iff it is a tagged arena ref
    (``("v", row)`` rank-1 or ``("f", row)`` per-scenario).  Folded
    scalars and tiny ``("q", k)`` scenario rows are register/cache
    resident and cost no arena traffic."""
    return isinstance(ref, tuple) and ref[0] in ("v", "f")


def op_costs_from_batch_program(program) -> List[Tuple[str, str, float, float, float]]:
    """Per-lane costs for a :class:`repro.core.tape.BatchTapeProgram`.

    Same accounting as :func:`op_costs_from_program`, but lanes are
    *scenario-lanes*: the batched executor records ``n`` lanes for a
    rank-1 (shared) op and ``S * n`` for a full-rank one, so
    ``lanes * (rb + wb)`` stays the actual traffic either way.  The
    ``(S, 1)`` parameter-row operands are counted like folded scalars
    (0 B) -- they live in cache across the whole sweep.
    """
    costs: List[Tuple[str, str, float, float, float]] = []
    for op in program.ops:
        tag = op[0]
        if tag == "bin":
            nvec = sum(1 for r in (op[2], op[3]) if _is_batch_vec(r))
            costs.append(("bin", op[1], nvec * _F8, _F8, 1.0))
        elif tag == "un":
            nvec = 1 if _is_batch_vec(op[2]) else 0
            costs.append(("un", op[1], nvec * _F8, _F8, 1.0))
        elif tag == "sel":
            nvec = sum(
                1 for r in (op[1], op[2], op[3]) if _is_batch_vec(r)
            )
            costs.append(("sel", "select", nvec * _F8 + 1.0, _F8 + 1.0, 1.0))
        elif tag == "gc":
            costs.append(
                ("gather", f"coord[{op[1]},{op[2]}]", 2 * _F8, _F8, 0.0)
            )
        elif tag == "gf":
            costs.append(
                ("gather", f"velocity[{op[1]},{op[2]}]", 2 * _F8, _F8, 0.0)
            )
        elif tag == "sc":
            nvec = 1 if _is_batch_vec(op[4]) else 0
            costs.append(
                ("scatter", f"rhs[{op[2]},{op[3]}]", nvec * _F8, _F8, 0.0)
            )
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown batched op tag {tag!r}")
    return costs


class TapeProfile:
    """Per-op accumulators of one profiled tape configuration.

    One profile is keyed by ``(variant, vector_dim, mode, executor)`` and
    accumulates over every execution (and every chunk, in the threaded
    executor -- :meth:`record` takes a lock, profiling runs are not the
    hot path).  ``ops`` slots are fixed for compiled tapes
    (:func:`op_costs_from_program`) and grow on first sight for the
    interpreted backend, whose op stream is only known as it executes.
    """

    def __init__(
        self,
        variant: str,
        vector_dim: int,
        mode: str,
        executor: str = "serial",
        op_costs: Optional[List[Tuple[str, str, float, float, float]]] = None,
        report=None,
        scenarios: int = 1,
    ) -> None:
        self.variant = variant
        self.vector_dim = int(vector_dim)
        self.mode = mode
        self.executor = executor
        #: batch size of a scenario-batched profile (1 for serial tapes);
        #: part of the profile key so S=1 and S=16 runs never mix
        self.scenarios = int(scenarios)
        self.report = report  # TapeReport of the compiled program, if any
        self._lock = threading.Lock()
        self.kinds: List[str] = []
        self.labels: List[str] = []
        self._rb: List[float] = []  # per-lane bytes read
        self._wb: List[float] = []  # per-lane bytes written
        self._fl: List[float] = []  # per-lane flops
        self.seconds: List[float] = []
        self.lanes: List[float] = []
        self.calls: List[int] = []
        if op_costs:
            for kind, label, rb, wb, fl in op_costs:
                self._append_slot(kind, label, rb, wb, fl)
        self.executions = 0
        self.flush_seconds = 0.0
        self.flush_bytes = 0.0

    # -- recording -------------------------------------------------------
    def _append_slot(
        self, kind: str, label: str, rb: float, wb: float, fl: float
    ) -> None:
        self.kinds.append(kind)
        self.labels.append(label)
        self._rb.append(float(rb))
        self._wb.append(float(wb))
        self._fl.append(float(fl))
        self.seconds.append(0.0)
        self.lanes.append(0.0)
        self.calls.append(0)

    def record(self, index: int, seconds: float, lanes: int) -> None:
        """Accumulate one timed execution of op ``index`` over ``lanes``."""
        with self._lock:
            self.seconds[index] += seconds
            self.lanes[index] += lanes
            self.calls[index] += 1

    def record_dynamic(
        self,
        index: int,
        kind: str,
        label: str,
        seconds: float,
        lanes: int,
        bytes_read: float,
        bytes_written: float,
        flops: float,
    ) -> None:
        """Interpreted-path recording: slots appear as ops first execute.

        ``index`` is the op's position in the kernel's straight-line
        sequence; every element group replays the same sequence, so the
        slot table converges after the first group.
        """
        with self._lock:
            while index >= len(self.kinds):
                self._append_slot("?", "?", 0.0, 0.0, 0.0)
            if self.kinds[index] == "?":
                self.kinds[index] = kind
                self.labels[index] = label
                self._rb[index] = float(bytes_read)
                self._wb[index] = float(bytes_written)
                self._fl[index] = float(flops)
            self.seconds[index] += seconds
            self.lanes[index] += lanes
            self.calls[index] += 1

    def record_flush(self, seconds: float, bytes_moved: float = 0.0) -> None:
        with self._lock:
            self.flush_seconds += seconds
            self.flush_bytes += bytes_moved

    def finish_execution(self) -> None:
        with self._lock:
            self.executions += 1

    # -- totals ----------------------------------------------------------
    def op_bytes(self, index: int) -> float:
        return self.lanes[index] * (self._rb[index] + self._wb[index])

    def op_flops(self, index: int) -> float:
        return self.lanes[index] * self._fl[index]

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds) + self.flush_seconds

    @property
    def total_bytes(self) -> float:
        """Derived op traffic (excluding the scatter flush -- compared
        against :meth:`~repro.core.tape.TapeReport.predicted_bytes`)."""
        return sum(self.op_bytes(i) for i in range(len(self.kinds)))

    @property
    def total_flops(self) -> float:
        return sum(self.op_flops(i) for i in range(len(self.kinds)))

    @property
    def intensity(self) -> float:
        """Measured arithmetic intensity (Flop/B) over the op traffic."""
        b = self.total_bytes
        return self.total_flops / b if b else 0.0

    @property
    def gflops(self) -> float:
        s = self.total_seconds
        return self.total_flops / s / 1e9 if s else 0.0

    @property
    def gbs(self) -> float:
        s = self.total_seconds
        return (self.total_bytes + self.flush_bytes) / s / 1e9 if s else 0.0

    # -- aggregation -----------------------------------------------------
    def phases(self) -> Dict[str, Dict[str, float]]:
        """Per-phase seconds/bytes/flops/intensity (gather / compute /
        select / store / scatter / flush)."""
        agg: Dict[str, Dict[str, float]] = {}
        for i, kind in enumerate(self.kinds):
            phase = OP_PHASES.get(kind, "compute")
            row = agg.setdefault(
                phase, {"seconds": 0.0, "bytes": 0.0, "flops": 0.0, "ops": 0}
            )
            row["seconds"] += self.seconds[i]
            row["bytes"] += self.op_bytes(i)
            row["flops"] += self.op_flops(i)
            row["ops"] += 1
        if self.flush_seconds or self.flush_bytes:
            agg["flush"] = {
                "seconds": self.flush_seconds,
                "bytes": self.flush_bytes,
                "flops": 0.0,
                "ops": 1,
            }
        for row in agg.values():
            row["intensity"] = row["flops"] / row["bytes"] if row["bytes"] else 0.0
        return {p: agg[p] for p in PHASE_ORDER if p in agg}

    def op_rows(self, top: Optional[int] = None) -> List[Dict[str, Any]]:
        """Per-op rows sorted by accumulated wall time (hottest first)."""
        rows = []
        for i in range(len(self.kinds)):
            b = self.op_bytes(i)
            f = self.op_flops(i)
            rows.append(
                {
                    "index": i,
                    "kind": self.kinds[i],
                    "label": self.labels[i],
                    "phase": OP_PHASES.get(self.kinds[i], "compute"),
                    "calls": self.calls[i],
                    "seconds": self.seconds[i],
                    "bytes": b,
                    "flops": f,
                    "intensity": f / b if b else 0.0,
                }
            )
        rows.sort(key=lambda r: r["seconds"], reverse=True)
        return rows[:top] if top is not None else rows

    # -- roofline --------------------------------------------------------
    def roofline_point(self, label: Optional[str] = None):
        """The whole-tape measured point for :class:`Roofline` placement."""
        from ..machine.roofline import RooflinePoint

        s = self.total_seconds
        return RooflinePoint(
            label=label or self.variant,
            intensity=self.intensity,
            performance=self.total_flops / s if s else 0.0,
        )

    def phase_roofline_points(self) -> List:
        from ..machine.roofline import RooflinePoint

        pts = []
        for phase, row in self.phases().items():
            if row["seconds"] <= 0:
                continue
            pts.append(
                RooflinePoint(
                    label=f"{self.variant}:{phase}",
                    intensity=row["intensity"],
                    performance=row["flops"] / row["seconds"],
                )
            )
        return pts

    # -- flamegraph ------------------------------------------------------
    def collapsed(self, root: str = "tape") -> Dict[str, int]:
        """Collapsed-stack lines (folded flamegraph, microsecond weights).

        Stack shape: ``root;<variant>@vd<N>;<phase>;<label>#<index>``.
        The Brendan-Gregg folded format is importable by speedscope and
        every flamegraph renderer.
        """
        base = f"{root};{self.variant}@vd{self.vector_dim}[{self.mode}]"
        if self.scenarios > 1:
            base += f"xS{self.scenarios}"
        out: Dict[str, int] = {}
        for i in range(len(self.kinds)):
            usec = int(round(self.seconds[i] * 1e6))
            if usec <= 0:
                continue
            phase = OP_PHASES.get(self.kinds[i], "compute")
            stack = f"{base};{phase};{self.labels[i]}#{i}"
            out[stack] = out.get(stack, 0) + usec
        if self.flush_seconds > 0:
            out[f"{base};flush;bincount"] = int(round(self.flush_seconds * 1e6))
        return out

    def per_scenario_rows(self, top: Optional[int] = None) -> List[Dict[str, Any]]:
        """Per-op rows attributed to **one** scenario of a batched profile.

        Batched ops execute once for the whole batch, so each scenario is
        attributed ``1/S`` of every op's seconds/bytes/flops -- shared
        rank-1 work is amortized, full-rank work divides back to exactly
        what a serial solve of one scenario would have moved.  For a
        serial profile (``scenarios == 1``) this is :meth:`op_rows`.
        """
        rows = self.op_rows(top)
        s = float(max(self.scenarios, 1))
        for row in rows:
            row["seconds"] /= s
            row["bytes"] /= s
            row["flops"] /= s
            row["scenarios"] = self.scenarios
        return rows

    # -- serialization / merge ------------------------------------------
    def key(self) -> Tuple:
        """Profile identity.  Serial profiles keep the historical
        4-tuple; batched profiles append their batch size so S=1 and
        S=16 runs of the same configuration never merge."""
        base = (self.variant, self.vector_dim, self.mode, self.executor)
        return base if self.scenarios == 1 else base + (self.scenarios,)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "variant": self.variant,
            "vector_dim": self.vector_dim,
            "mode": self.mode,
            "executor": self.executor,
            "scenarios": self.scenarios,
            "kinds": list(self.kinds),
            "labels": list(self.labels),
            "rb": list(self._rb),
            "wb": list(self._wb),
            "fl": list(self._fl),
            "seconds": list(self.seconds),
            "lanes": list(self.lanes),
            "calls": list(self.calls),
            "executions": self.executions,
            "flush_seconds": self.flush_seconds,
            "flush_bytes": self.flush_bytes,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "TapeProfile":
        prof = cls(
            d["variant"],
            d["vector_dim"],
            d["mode"],
            d.get("executor", "serial"),
            op_costs=list(
                zip(d["kinds"], d["labels"], d["rb"], d["wb"], d["fl"])
            ),
            scenarios=int(d.get("scenarios", 1)),
        )
        prof.seconds = [float(x) for x in d["seconds"]]
        prof.lanes = [float(x) for x in d["lanes"]]
        prof.calls = [int(x) for x in d["calls"]]
        prof.executions = int(d.get("executions", 0))
        prof.flush_seconds = float(d.get("flush_seconds", 0.0))
        prof.flush_bytes = float(d.get("flush_bytes", 0.0))
        return prof

    def merge(self, other: "TapeProfile") -> None:
        """Fold another rank's profile of the *same* tape into this one."""
        if (self.kinds, self.labels) != (other.kinds, other.labels):
            raise ValueError(
                f"cannot merge profiles of different tapes: "
                f"{self.key()} vs {other.key()}"
            )
        with self._lock:
            for i in range(len(self.kinds)):
                self.seconds[i] += other.seconds[i]
                self.lanes[i] += other.lanes[i]
                self.calls[i] += other.calls[i]
            self.executions += other.executions
            self.flush_seconds += other.flush_seconds
            self.flush_bytes += other.flush_bytes

    def summary(self) -> str:
        batch = f" S={self.scenarios}" if self.scenarios > 1 else ""
        lines = [
            f"profile {self.variant} vd={self.vector_dim} "
            f"mode={self.mode} executor={self.executor}{batch}: "
            f"{self.executions} executions, "
            f"{self.total_seconds * 1e3:.2f} ms, "
            f"{self.total_bytes / 1e6:.1f} MB, "
            f"{self.total_flops / 1e6:.1f} MFlop "
            f"(AI {self.intensity:.3f} F/B, {self.gflops:.2f} GF/s)",
        ]
        for phase, row in self.phases().items():
            lines.append(
                f"  {phase:>8s}: {row['seconds'] * 1e3:8.2f} ms  "
                f"{row['bytes'] / 1e6:9.1f} MB  "
                f"AI {row['intensity']:.3f}"
            )
        return "\n".join(lines)


class TapeProfiler:
    """Collects :class:`TapeProfile` instances across executions.

    One profiler serves any number of tapes/variants; executors ask for
    their profile with :meth:`for_program` (compiled), :meth:`for_kernel`
    (interpreted) or :meth:`for_elemental` (multiprocess workers), keyed
    by ``(variant, vector_dim, mode, executor)``.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.profiles: Dict[Tuple, TapeProfile] = {}

    def _get(self, key, factory) -> TapeProfile:
        with self._lock:
            prof = self.profiles.get(key)
            if prof is None:
                prof = factory()
                self.profiles[key] = prof
            return prof

    def for_batch_program(
        self, program, vector_dim: int, executor: str = "serial"
    ) -> TapeProfile:
        """Profile of a scenario-batched replay.

        Keyed ``(variant, vector_dim, "compiled", executor, S)`` -- the
        batch size extends the serial key so S=1 and S=16 sweeps of the
        same configuration accumulate separately.  The batched executor
        records honest lane counts (``n`` for shared rank-1 ops,
        ``S * n`` for full-rank ones), and
        :meth:`TapeProfile.per_scenario_rows` divides back to one
        scenario's share.
        """
        key = (
            program.variant, int(vector_dim), "compiled", executor,
            program.scenarios,
        )
        return self._get(
            key,
            lambda: TapeProfile(
                program.variant,
                vector_dim,
                "compiled",
                executor,
                op_costs=op_costs_from_batch_program(program),
                report=program.report,
                scenarios=program.scenarios,
            ),
        )

    def for_batch_codegen(
        self, program, vector_dim: int, executor: str = "serial"
    ) -> TapeProfile:
        """Statement-level profile of a batched generated kernel."""
        key = (
            program.variant, int(vector_dim), "codegen", executor,
            program.scenarios,
        )
        return self._get(
            key,
            lambda: TapeProfile(
                program.variant,
                vector_dim,
                "codegen",
                executor,
                op_costs=list(program.stmt_costs),
                report=program.report,
                scenarios=program.scenarios,
            ),
        )

    def for_program(
        self, program, vector_dim: int, executor: str = "serial"
    ) -> TapeProfile:
        key = (program.variant, int(vector_dim), "compiled", executor)
        return self._get(
            key,
            lambda: TapeProfile(
                program.variant,
                vector_dim,
                "compiled",
                executor,
                op_costs=op_costs_from_program(program),
                report=program.report,
            ),
        )

    def for_kernel(self, variant: str, vector_dim: int) -> TapeProfile:
        """Dynamic-slot profile for the interpreted NumpyBackend path."""
        key = (variant, int(vector_dim), "interpreted", "serial")
        return self._get(
            key, lambda: TapeProfile(variant, vector_dim, "interpreted")
        )

    def for_elemental(self, program, nlane: int) -> TapeProfile:
        key = (program.variant, int(nlane), "elemental", "worker")
        return self._get(
            key,
            lambda: TapeProfile(
                program.variant,
                nlane,
                "elemental",
                "worker",
                op_costs=op_costs_from_program(program),
                report=program.report,
            ),
        )

    def for_codegen(
        self, program, vector_dim: int, executor: str = "serial"
    ) -> TapeProfile:
        """Statement-level profile for a generated kernel.

        ``program`` is a :class:`repro.core.codegen.CodegenProgram` or
        ``ElementalCodegenProgram``; its ``stmt_costs`` slots carry the
        *summed* bytes/FLOPs of each fused statement's constituent ops,
        so phase attribution stays comparable with the replayed tape of
        the same variant while the dispatch-overhead win shows up as
        fewer, longer op rows.
        """
        key = (program.variant, int(vector_dim), "codegen", executor)
        return self._get(
            key,
            lambda: TapeProfile(
                program.variant,
                vector_dim,
                "codegen",
                executor,
                op_costs=list(program.stmt_costs),
                report=program.report,
            ),
        )

    # -- merge / export --------------------------------------------------
    def snapshot(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [p.to_dict() for p in self.profiles.values()]

    def merge(self, other) -> None:
        """Fold another profiler (or its :meth:`snapshot`) into this one.

        This is the cross-process path: worker ranks return profile
        snapshots with their results and the parent folds them here, the
        same reduction shape :meth:`MetricsRegistry.merge` performs for
        counters.
        """
        dicts = other.snapshot() if isinstance(other, TapeProfiler) else other
        for d in dicts:
            incoming = TapeProfile.from_dict(d)
            key = incoming.key()
            with self._lock:
                mine = self.profiles.get(key)
                if mine is None:
                    self.profiles[key] = incoming
                    continue
            if mine is not None:
                mine.merge(incoming)

    def collapsed(self) -> Dict[str, int]:
        """Folded flamegraph lines over every collected profile."""
        out: Dict[str, int] = {}
        for prof in self.profiles.values():
            for stack, usec in prof.collapsed().items():
                out[stack] = out.get(stack, 0) + usec
        return out

    def publish(self, registry) -> None:
        """Publish mergeable totals into a :class:`MetricsRegistry`.

        Counters add across ranks, so per-rank profilers published into
        per-rank registries reduce correctly through the existing
        cross-process metrics merge.
        """
        for prof in self.profiles.values():
            tag = f"{prof.variant}.{prof.mode}"
            registry.counter(f"profile.seconds.{tag}").inc(prof.total_seconds)
            registry.counter(f"profile.bytes.{tag}").inc(
                prof.total_bytes + prof.flush_bytes
            )
            registry.counter(f"profile.flops.{tag}").inc(prof.total_flops)
            registry.counter(f"profile.executions.{tag}").inc(prof.executions)
            for phase, row in prof.phases().items():
                registry.counter(f"profile.phase_seconds.{tag}.{phase}").inc(
                    row["seconds"]
                )


class NullProfiler:
    """Disabled profiler: executors check ``enabled`` and take the
    original unwrapped code path -- zero clock reads, zero allocation."""

    enabled = False
    profiles: Dict = {}

    def for_program(self, program, vector_dim, executor="serial"):
        raise RuntimeError("NullProfiler cannot profile; check .enabled first")

    def for_kernel(self, variant, vector_dim):
        raise RuntimeError("NullProfiler cannot profile; check .enabled first")

    def for_elemental(self, program, nlane):
        raise RuntimeError("NullProfiler cannot profile; check .enabled first")

    def for_codegen(self, program, vector_dim, executor="serial"):
        raise RuntimeError("NullProfiler cannot profile; check .enabled first")

    def for_batch_program(self, program, vector_dim, executor="serial"):
        raise RuntimeError("NullProfiler cannot profile; check .enabled first")

    def for_batch_codegen(self, program, vector_dim, executor="serial"):
        raise RuntimeError("NullProfiler cannot profile; check .enabled first")

    def snapshot(self) -> List[Dict[str, Any]]:
        return []

    def merge(self, other) -> None:
        pass

    def collapsed(self) -> Dict[str, int]:
        return {}

    def publish(self, registry) -> None:
        pass


#: Process-wide disabled profiler (the default everywhere).
NULL_PROFILER = NullProfiler()
