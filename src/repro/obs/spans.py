"""Hierarchical span tracing.

The paper's analysis is measurement-driven: every optimization claim in
Tables I-III is backed by a counter readout.  This module gives the
reproduction the same discipline at runtime -- a :class:`Tracer` records
nested, attributed wall-clock spans (``with tracer.span("assemble",
variant="RSP"):``) that the exporters in :mod:`repro.obs.export` turn into
JSON-lines logs and ``chrome://tracing`` timelines.

Design points:

* **Zero overhead when off.**  The default is the :data:`NULL_TRACER`
  singleton whose ``span`` returns a shared no-op handle -- no allocation,
  no clock reads, no bookkeeping.  Instrumented code never needs an
  ``if tracer is not None`` guard.
* **Cross-process mergeable.**  Span timestamps are wall-clock epoch
  seconds derived from a ``perf_counter`` delta against an epoch anchor
  taken at tracer construction, so timelines recorded in worker processes
  (:class:`repro.parallel.runner.MultiprocessRunner`) can be merged into
  the parent trace and still line up.
* **Plain-dict serialization.**  :meth:`Span.to_dict` /
  :meth:`Span.from_dict` round-trip through JSON and ``pickle``-free
  multiprocessing returns.
"""

from __future__ import annotations

import dataclasses
import functools
import os
import threading
import time
from typing import Any, Callable, Dict, List, Optional

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
]


@dataclasses.dataclass
class Span:
    """One completed (or in-flight) span.

    ``start``/``end`` are epoch seconds (wall clock, sub-microsecond
    resolution within a process); ``pid``/``tid`` identify the recording
    process ("rank") and thread for the Chrome-trace rows.
    """

    name: str
    span_id: int
    parent_id: Optional[int]
    start: float
    end: Optional[float] = None
    attributes: Dict[str, Any] = dataclasses.field(default_factory=dict)
    pid: int = 0
    tid: int = 0

    @property
    def duration(self) -> float:
        """Span wall time in seconds (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "attributes": dict(self.attributes),
            "pid": self.pid,
            "tid": self.tid,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "Span":
        return cls(
            name=d["name"],
            span_id=int(d["span_id"]),
            parent_id=None if d.get("parent_id") is None else int(d["parent_id"]),
            start=float(d["start"]),
            end=None if d.get("end") is None else float(d["end"]),
            attributes=dict(d.get("attributes", {})),
            pid=int(d.get("pid", 0)),
            tid=int(d.get("tid", 0)),
        )


class _SpanHandle:
    """Context manager *and* decorator returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_name", "_attributes", "_span")

    def __init__(self, tracer: "Tracer", name: str, attributes: Dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._attributes = attributes
        self._span: Optional[Span] = None

    # -- context manager ------------------------------------------------
    def __enter__(self) -> Span:
        self._span = self._tracer._start(self._name, self._attributes)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        assert self._span is not None
        if exc_type is not None:
            self._span.attributes.setdefault("error", exc_type.__name__)
        self._tracer._finish(self._span)
        self._span = None
        return False

    # -- decorator ------------------------------------------------------
    def __call__(self, func: Callable) -> Callable:
        tracer, name, attributes = self._tracer, self._name, self._attributes

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            with tracer.span(name, **attributes):
                return func(*args, **kwargs)

        return wrapper


class Tracer:
    """Records nested spans with wall time and attributes.

    Thread-safe for concurrent recording: the open-span stack is kept in
    thread-local storage (so nesting is per-thread) and the finished list
    is guarded by a lock.
    """

    enabled = True

    def __init__(self, pid: Optional[int] = None) -> None:
        # epoch anchor: wall-clock origin + monotonic reference, so span
        # times are comparable across processes yet monotonic within one.
        self._epoch = time.time()
        self._pc0 = time.perf_counter()
        self.pid = int(os.getpid() if pid is None else pid)
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_id = 0
        self._finished: List[Span] = []

    # -- clock ----------------------------------------------------------
    def now(self) -> float:
        """Current epoch time from the monotonic clock."""
        return self._epoch + (time.perf_counter() - self._pc0)

    # -- recording ------------------------------------------------------
    def _stack(self) -> List[Span]:
        try:
            return self._local.stack
        except AttributeError:
            self._local.stack = []
            return self._local.stack

    def span(self, name: str, **attributes: Any) -> _SpanHandle:
        """Open a span: ``with tracer.span("assemble", variant="RSP"):``.

        The returned handle is also usable as a decorator:
        ``@tracer.span("solve")``.
        """
        return _SpanHandle(self, name, attributes)

    def _start(self, name: str, attributes: Dict[str, Any]) -> Span:
        stack = self._stack()
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        span = Span(
            name=name,
            span_id=span_id,
            parent_id=stack[-1].span_id if stack else None,
            start=self.now(),
            attributes=dict(attributes),
            pid=self.pid,
            tid=threading.get_ident() % 2**31,
        )
        stack.append(span)
        return span

    def _finish(self, span: Span) -> None:
        span.end = self.now()
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        else:  # out-of-order exit; drop it from wherever it sits
            try:
                stack.remove(span)
            except ValueError:
                pass
        with self._lock:
            self._finished.append(span)

    @property
    def current(self) -> Optional[Span]:
        """Innermost open span of the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -- access / merge -------------------------------------------------
    @property
    def finished(self) -> List[Span]:
        with self._lock:
            return list(self._finished)

    def export(self) -> List[Dict[str, Any]]:
        """Finished spans as JSON-ready dicts (sorted by start time)."""
        return [s.to_dict() for s in sorted(self.finished, key=lambda s: s.start)]

    def add_spans(
        self,
        spans: List[Dict[str, Any]],
        pid: Optional[int] = None,
    ) -> None:
        """Merge foreign span dicts (e.g. from a worker process).

        Foreign ``span_id``/``parent_id`` pairs are re-based onto this
        tracer's id space so merged traces stay collision-free; ``pid``
        overrides the recorded process id (useful to label ranks 0..n-1).
        """
        if not spans:
            return
        with self._lock:
            base = self._next_id
            self._next_id += max(int(s["span_id"]) for s in spans) + 1
        remap = {int(s["span_id"]): base + int(s["span_id"]) for s in spans}
        for d in spans:
            span = Span.from_dict(d)
            span.span_id = remap[span.span_id]
            if span.parent_id is not None:
                span.parent_id = remap.get(span.parent_id, None)
            if pid is not None:
                span.pid = int(pid)
            with self._lock:
                self._finished.append(span)

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()


class _NullHandle:
    """Shared no-op span handle: context manager and pass-through decorator."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def __call__(self, func: Callable) -> Callable:
        return func


_NULL_HANDLE = _NullHandle()


class NullTracer:
    """Disabled tracer: every operation is a no-op.

    Instrumented code calls ``tracer.span(...)`` unconditionally; with the
    null tracer that returns a shared handle without reading the clock or
    allocating, so telemetry-off runs behave byte-identically to
    uninstrumented code.
    """

    enabled = False
    pid = 0

    def span(self, name: str, **attributes: Any) -> _NullHandle:
        return _NULL_HANDLE

    @property
    def current(self) -> None:
        return None

    @property
    def finished(self) -> List[Span]:
        return []

    def export(self) -> List[Dict[str, Any]]:
        return []

    def add_spans(self, spans, pid=None) -> None:
        pass

    def clear(self) -> None:
        pass

    def now(self) -> float:
        return time.time()


#: Process-wide disabled tracer (the default everywhere).
NULL_TRACER = NullTracer()

_default_tracer = NULL_TRACER


def get_tracer():
    """The process-wide default tracer (:data:`NULL_TRACER` unless set)."""
    return _default_tracer


def set_tracer(tracer) -> None:
    """Install a process-wide default tracer; pass :data:`NULL_TRACER`
    (or ``None``) to disable."""
    global _default_tracer
    _default_tracer = NULL_TRACER if tracer is None else tracer
