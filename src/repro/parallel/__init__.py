"""MPI-style parallel substrate: simulated communicator, partitioning,
halo exchange and real multiprocessing scaling runs."""

from .comm import CommError, SimComm, run_ranks
from .partition import (
    element_adjacency,
    greedy_graph_partition,
    partition_quality,
    rcb_partition,
)
from .halo import SubdomainPlan, build_plans, post_interface, reduce_interface
from .runner import (
    MultiprocessRunner,
    ScalingPoint,
    WorkerPolicy,
    assemble_partitioned,
)

__all__ = [
    "CommError", "SimComm", "run_ranks",
    "element_adjacency", "greedy_graph_partition", "partition_quality",
    "rcb_partition",
    "SubdomainPlan", "build_plans", "post_interface", "reduce_interface",
    "MultiprocessRunner", "ScalingPoint", "WorkerPolicy",
    "assemble_partitioned",
]
