"""MPI-style parallel substrate: simulated communicator, partitioning,
halo exchange and real multiprocessing scaling runs."""

from .comm import CommError, SimComm, run_ranks
from .partition import (
    element_adjacency,
    greedy_graph_partition,
    partition_quality,
    rcb_partition,
    sfc_partition,
)
from .halo import SubdomainPlan, build_plans, post_interface, reduce_interface
from .runner import (
    MultiprocessRunner,
    ScalingPoint,
    WorkerPolicy,
    assemble_partitioned,
)
from .shutdown import (
    SHM_PREFIX,
    create_shared_memory,
    install_shutdown_handler,
    live_segment_names,
    purge_shared_memory,
    release_shared_memory,
)
from .threads import (
    SlabPool,
    default_chunk_groups,
    get_thread_pool,
    resolve_num_threads,
    shutdown_thread_pools,
)

__all__ = [
    "CommError", "SimComm", "run_ranks",
    "element_adjacency", "greedy_graph_partition", "partition_quality",
    "rcb_partition", "sfc_partition",
    "SubdomainPlan", "build_plans", "post_interface", "reduce_interface",
    "MultiprocessRunner", "ScalingPoint", "WorkerPolicy",
    "assemble_partitioned",
    "SHM_PREFIX", "create_shared_memory", "install_shutdown_handler",
    "live_segment_names", "purge_shared_memory", "release_shared_memory",
    "SlabPool", "default_chunk_groups", "get_thread_pool",
    "resolve_num_threads", "shutdown_thread_pools",
]
