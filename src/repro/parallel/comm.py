"""Simulated MPI communicator.

Alya is "a pure MPI code" with one master and N worker processes.  There is
no MPI in this environment, so this module provides an in-process
communicator with the collective/point-to-point surface the rest of the
parallel substrate needs.  Ranks execute *sequentially* inside
:func:`run_ranks` (deterministic, debuggable); the real-parallelism path for
the scaling study lives in :mod:`repro.parallel.runner`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

__all__ = ["SimComm", "run_ranks", "CommError"]


class CommError(RuntimeError):
    """Communication protocol misuse (mismatched send/recv, bad rank)."""


class SimComm:
    """One rank's view of a simulated communicator.

    The shared ``_world`` dictionaries hold in-flight messages; because rank
    functions run to completion one after another (send-before-recv
    ordering), every ``recv`` must find its message already posted --
    mirroring a buffered-send MPI program.  Collectives operate in two
    phases (contribute, then collect) driven by :func:`run_ranks`.
    """

    def __init__(self, rank: int, size: int, world: Dict[str, Any]) -> None:
        if not 0 <= rank < size:
            raise CommError(f"rank {rank} outside communicator of size {size}")
        self.rank = rank
        self.size = size
        self._world = world

    # -- point to point --------------------------------------------------
    def send(self, dest: int, tag: int, payload: Any) -> None:
        if not 0 <= dest < self.size:
            raise CommError(f"send to invalid rank {dest}")
        self._world.setdefault("mailbox", {}).setdefault(
            (self.rank, dest, tag), []
        ).append(payload)

    def recv(self, source: int, tag: int) -> Any:
        box = self._world.get("mailbox", {}).get((source, self.rank, tag), [])
        if not box:
            raise CommError(
                f"rank {self.rank}: no message from {source} with tag {tag}; "
                "simulated ranks must send before the receiver runs"
            )
        return box.pop(0)

    # -- collectives (contribute phase) -----------------------------------
    def _contribute(self, op: str, value: Any) -> None:
        self._world.setdefault(op, {})[self.rank] = value

    def allreduce_sum(self, value):
        """Two-phase allreduce: returns a handle resolved after all ranks ran."""
        self._contribute("allreduce_sum", value)
        return _Deferred(self._world, "allreduce_sum", self.rank, "sum")

    def allgather(self, value):
        self._contribute("allgather", value)
        return _Deferred(self._world, "allgather", self.rank, "gather")

    def barrier(self) -> None:
        self._contribute("barrier", True)


class _Deferred:
    """Handle to a collective result, resolved after the round completes."""

    def __init__(self, world, op, rank, kind) -> None:
        self._world = world
        self._op = op
        self._kind = kind

    def resolve(self):
        vals = self._world.get(self._op, {})
        ordered = [vals[r] for r in sorted(vals)]
        if self._kind == "sum":
            out = ordered[0]
            for v in ordered[1:]:
                out = out + v
            return out
        return ordered


def run_ranks(
    size: int,
    fn: Callable[[SimComm], Any],
    rounds: int = 1,
) -> List[Any]:
    """Execute ``fn(comm)`` for every rank of a simulated communicator.

    Single-phase programs (send-then-recv patterns consistent with
    sequential execution, or collectives resolved afterwards) run with
    ``rounds=1``.  Returns the per-rank results; any ``_Deferred`` results
    are resolved.
    """
    world: Dict[str, Any] = {}
    results: List[Any] = []
    for r in range(size):
        results.append(fn(SimComm(r, size, world)))
    resolved = []
    for res in results:
        if isinstance(res, _Deferred):
            resolved.append(res.resolve())
        elif isinstance(res, tuple):
            resolved.append(
                tuple(x.resolve() if isinstance(x, _Deferred) else x for x in res)
            )
        else:
            resolved.append(res)
    return resolved
