"""Interface (halo) classification and exchange plans.

With an element partition, nodes on subdomain interfaces receive RHS
contributions from elements owned by several ranks.  Alya's assembly is
"trivially parallel" per element; the reduction over interface nodes is the
only communication.  This module builds the per-rank interface plan and
performs the exchange over a :class:`~repro.parallel.comm.SimComm`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

import numpy as np

from ..fem.mesh import TetMesh
from .comm import SimComm

__all__ = ["SubdomainPlan", "build_plans", "post_interface", "reduce_interface"]


@dataclasses.dataclass
class SubdomainPlan:
    """One rank's subdomain: local mesh view and interface metadata.

    Attributes
    ----------
    rank:
        Owning rank.
    element_ids:
        Global element ids assigned to this rank.
    node_map:
        Local-to-global node ids (sorted unique over local elements).
    local_connectivity:
        Connectivity renumbered into local node ids.
    interface_local:
        Local indices of nodes shared with at least one other rank.
    neighbours:
        Ranks sharing interface nodes, mapped to the *local* indices of the
        nodes shared with each.
    halo_elements:
        Positions (into ``element_ids``) of elements touching at least one
        interface node -- the only elements whose contributions cross
        ranks.  Assembling them first lets the interface exchange overlap
        the interior work (see
        :func:`repro.parallel.runner.assemble_partitioned`).
    interior_elements:
        Positions of the remaining, purely local elements.
    """

    rank: int
    element_ids: np.ndarray
    node_map: np.ndarray
    local_connectivity: np.ndarray
    interface_local: np.ndarray
    neighbours: Dict[int, np.ndarray]
    halo_elements: np.ndarray = None  # type: ignore[assignment]
    interior_elements: np.ndarray = None  # type: ignore[assignment]


def build_plans(mesh: TetMesh, labels: np.ndarray) -> List[SubdomainPlan]:
    """Build per-rank subdomain plans from an element partition."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.shape != (mesh.nelem,):
        raise ValueError("labels must be one per element")
    nparts = int(labels.max()) + 1 if labels.size else 0

    node_owners: Dict[int, List[int]] = {}
    plans: List[SubdomainPlan] = []
    node_maps = []
    for rank in range(nparts):
        eids = np.flatnonzero(labels == rank)
        conn = mesh.connectivity[eids]
        node_map, local = np.unique(conn, return_inverse=True)
        node_maps.append(node_map)
        for nd in node_map:
            node_owners.setdefault(int(nd), []).append(rank)
        plans.append(
            SubdomainPlan(
                rank=rank,
                element_ids=eids,
                node_map=node_map,
                local_connectivity=local.reshape(conn.shape),
                interface_local=np.empty(0, dtype=np.int64),
                neighbours={},
            )
        )

    for rank, plan in enumerate(plans):
        g2l = {int(g): i for i, g in enumerate(plan.node_map)}
        shared_mask = np.array(
            [len(node_owners[int(g)]) > 1 for g in plan.node_map]
        )
        plan.interface_local = np.flatnonzero(shared_mask)
        nbrs: Dict[int, List[int]] = {}
        for li in plan.interface_local:
            g = int(plan.node_map[li])
            for other in node_owners[g]:
                if other != rank:
                    nbrs.setdefault(other, []).append(li)
        plan.neighbours = {
            r: np.asarray(v, dtype=np.int64) for r, v in sorted(nbrs.items())
        }
        # Halo/interior split: an element is "halo" iff it touches an
        # interface node.  np.flatnonzero keeps ascending element order,
        # which the overlap path in the runner relies on for bitwise
        # reproduction of the monolithic scatter.
        iface_mask = np.zeros(len(plan.node_map), dtype=bool)
        iface_mask[plan.interface_local] = True
        touches = iface_mask[plan.local_connectivity].any(axis=1)
        plan.halo_elements = np.flatnonzero(touches)
        plan.interior_elements = np.flatnonzero(~touches)
    return plans


def post_interface(
    comm: SimComm, plan: SubdomainPlan, local_field: np.ndarray, tag: int = 7
) -> None:
    """Phase 1 of the assembly reduction: post partial interface sums."""
    for nbr, locals_ in plan.neighbours.items():
        payload = (plan.node_map[locals_], local_field[locals_].copy())
        comm.send(nbr, tag, payload)


def reduce_interface(
    comm: SimComm, plan: SubdomainPlan, local_field: np.ndarray, tag: int = 7
) -> np.ndarray:
    """Phase 2: add the neighbours' partial sums to the local field.

    After this, every owner of an interface node holds the same global sum.
    The two-phase split matches the simulated communicator's
    send-before-recv discipline (all ranks run phase 1 before any runs
    phase 2); see :func:`repro.parallel.runner.assemble_partitioned`.
    """
    out = local_field.copy()
    g2l = {int(g): i for i, g in enumerate(plan.node_map)}
    for nbr in plan.neighbours:
        gids, vals = comm.recv(nbr, tag)
        idx = np.fromiter((g2l[int(g)] for g in gids), dtype=np.int64)
        out[idx] += vals
    return out
