"""Mesh partitioning for MPI-style domain decomposition.

Two partitioners:

* :func:`rcb_partition` -- recursive coordinate bisection on element
  centroids: geometric, deterministic, well-balanced for any part count.
* :func:`greedy_graph_partition` -- BFS graph growing over the element
  adjacency (optionally seeded via networkx's connected components), which
  produces more compact interfaces on unstructured meshes.
* :func:`sfc_partition` -- contiguous blocks along a space-filling curve
  (:mod:`repro.fem.reorder`): near-perfect balance by construction, and
  each part is a spatially compact curve segment.

All return an element->part label array; :func:`partition_quality` reports
balance and edge-cut metrics used by the tests and the partitioning bench.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..fem.mesh import TetMesh

__all__ = [
    "rcb_partition",
    "greedy_graph_partition",
    "sfc_partition",
    "partition_quality",
    "element_adjacency",
]


def sfc_partition(
    mesh: TetMesh, nparts: int, strategy: str = "hilbert"
) -> np.ndarray:
    """Partition into contiguous blocks of the SFC element order.

    Elements are sorted along the named space-filling curve
    (``"hilbert"`` or ``"morton"``) and split into ``nparts`` equal-size
    consecutive runs.  Part sizes differ by at most one element, and each
    part inherits the curve's spatial locality -- compact subdomains with
    short interfaces, at the cost of no explicit edge-cut optimization.
    """
    from ..fem.reorder import element_order

    if nparts < 1:
        raise ValueError("nparts must be >= 1")
    order = element_order(mesh, strategy)
    bounds = np.linspace(0, mesh.nelem, nparts + 1).astype(np.int64)
    labels = np.empty(mesh.nelem, dtype=np.int64)
    for part in range(nparts):
        labels[order[bounds[part] : bounds[part + 1]]] = part
    return labels


def rcb_partition(mesh: TetMesh, nparts: int) -> np.ndarray:
    """Recursive coordinate bisection on element centroids."""
    if nparts < 1:
        raise ValueError("nparts must be >= 1")
    centroids = mesh.element_coords().mean(axis=1)
    labels = np.zeros(mesh.nelem, dtype=np.int64)

    def bisect(ids: np.ndarray, parts: int, base: int) -> None:
        if parts == 1 or len(ids) == 0:
            labels[ids] = base
            return
        left_parts = parts // 2
        right_parts = parts - left_parts
        pts = centroids[ids]
        axis = int(np.argmax(pts.max(axis=0) - pts.min(axis=0)))
        order = np.argsort(pts[:, axis], kind="stable")
        split = int(round(len(ids) * left_parts / parts))
        bisect(ids[order[:split]], left_parts, base)
        bisect(ids[order[split:]], right_parts, base + left_parts)

    bisect(np.arange(mesh.nelem, dtype=np.int64), nparts, 0)
    return labels


def element_adjacency(mesh: TetMesh) -> Tuple[np.ndarray, np.ndarray]:
    """CSR element-to-element adjacency via shared faces."""
    from ..fem.mesh import TET_FACES

    conn = mesh.connectivity
    faces = np.sort(conn[:, TET_FACES].reshape(-1, 3), axis=1)
    owners = np.repeat(np.arange(mesh.nelem, dtype=np.int64), 4)
    order = np.lexsort((faces[:, 2], faces[:, 1], faces[:, 0]))
    sf = faces[order]
    so = owners[order]
    same = (sf[1:] == sf[:-1]).all(axis=1)
    a = so[:-1][same]
    b = so[1:][same]
    both = np.concatenate([np.stack([a, b], 1), np.stack([b, a], 1)])
    order2 = np.lexsort((both[:, 1], both[:, 0]))
    both = both[order2]
    counts = np.bincount(both[:, 0], minlength=mesh.nelem)
    offsets = np.zeros(mesh.nelem + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return offsets, both[:, 1].copy()


def greedy_graph_partition(
    mesh: TetMesh, nparts: int, seed: Optional[int] = None
) -> np.ndarray:
    """BFS graph-growing partition over the element adjacency."""
    if nparts < 1:
        raise ValueError("nparts must be >= 1")
    offsets, adj = element_adjacency(mesh)
    n = mesh.nelem
    target = n / nparts
    labels = np.full(n, -1, dtype=np.int64)
    rng = np.random.default_rng(seed)
    unassigned_ptr = 0
    for part in range(nparts):
        remaining = (
            int(round(target * (part + 1))) - int((labels != -1).sum())
        )
        if remaining <= 0:
            continue
        while unassigned_ptr < n and labels[unassigned_ptr] != -1:
            unassigned_ptr += 1
        if unassigned_ptr >= n:
            break
        frontier = [unassigned_ptr]
        labels[unassigned_ptr] = part
        count = 1
        while frontier and count < remaining:
            nxt = []
            for e in frontier:
                for nb in adj[offsets[e] : offsets[e + 1]]:
                    if labels[nb] == -1 and count < remaining:
                        labels[nb] = part
                        count += 1
                        nxt.append(int(nb))
            if not nxt:
                # grow from any unassigned element (disconnected pocket)
                pool = np.flatnonzero(labels == -1)
                if len(pool) == 0 or count >= remaining:
                    break
                pick = int(pool[0]) if seed is None else int(rng.choice(pool))
                labels[pick] = part
                count += 1
                nxt = [pick]
            frontier = nxt
    labels[labels == -1] = nparts - 1
    return labels


def partition_quality(mesh: TetMesh, labels: np.ndarray) -> Dict[str, float]:
    """Balance and interface metrics of an element partition."""
    labels = np.asarray(labels)
    if labels.shape != (mesh.nelem,):
        raise ValueError("labels must be one per element")
    nparts = int(labels.max()) + 1 if labels.size else 0
    counts = np.bincount(labels, minlength=nparts)
    offsets, adj = element_adjacency(mesh)
    src = np.repeat(np.arange(mesh.nelem), np.diff(offsets))
    cut = int((labels[src] != labels[adj]).sum()) // 2
    shared = 0
    node_parts: Dict[int, set] = {}
    for part in range(nparts):
        nodes = np.unique(mesh.connectivity[labels == part])
        for nd in nodes:
            node_parts.setdefault(int(nd), set()).add(part)
    shared = sum(1 for s in node_parts.values() if len(s) > 1)
    return {
        "nparts": float(nparts),
        "imbalance": float(counts.max() / max(1.0, counts.mean()))
        if nparts
        else 0.0,
        "edge_cut": float(cut),
        "interface_nodes": float(shared),
    }
