"""Parallel assembly drivers.

Two paths exercise the paper's pure-MPI execution shape:

* :func:`assemble_partitioned` -- deterministic simulated-MPI assembly: the
  mesh is partitioned, every "rank" assembles its subdomain RHS with the
  vectorized reference kernel, and interface nodes are reduced with the
  two-phase halo exchange.  Tests verify bit-level consistency with the
  serial assembly (no lost updates -- the failure mode Alya's scalar
  scatter loop protects against).
* :class:`MultiprocessRunner` -- real ``multiprocessing`` strong-scaling
  runs for the wall-clock analogue of Figure 2 (the simulated turbo-binned
  curve lives in :meth:`repro.machine.cpu.CpuModel.scaling_curve`).

The runner shares the read-only element arrays (packed coordinates and
velocities) with its workers through ``multiprocessing.shared_memory`` and
keeps **one** persistent spawn pool alive across all measured worker
counts: per measurement, only chunk *bounds* are pickled -- O(1) per task
instead of O(nelem) -- so the scaling curve measures assembly, not IPC.
"""

from __future__ import annotations

import dataclasses
import multiprocessing as mp
import time
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..fem.mesh import TetMesh
from ..fem.plan import get_plan, segment_scatter
from ..obs.metrics import MetricsRegistry, get_registry
from ..obs.spans import NULL_TRACER, Tracer
from ..physics.momentum import AssemblyParams, element_rhs
from .comm import SimComm
from .halo import build_plans, post_interface, reduce_interface
from .partition import rcb_partition

__all__ = ["assemble_partitioned", "MultiprocessRunner", "ScalingPoint"]


def assemble_partitioned(
    mesh: TetMesh,
    velocity: np.ndarray,
    params: AssemblyParams,
    nranks: int,
    labels: Optional[np.ndarray] = None,
    tracer=None,
    metrics: Optional[MetricsRegistry] = None,
) -> np.ndarray:
    """Assemble the momentum RHS over ``nranks`` simulated MPI ranks.

    Returns the *global* RHS gathered from the owning subdomains; interface
    nodes are reduced by halo exchange and must equal the serial assembly.
    Halo traffic is accounted in the ``halo.bytes_exchanged`` /
    ``halo.messages`` counters of ``metrics`` (process-wide registry by
    default); per-rank work is recorded as ``rank_assemble`` spans when a
    ``tracer`` is passed.
    """
    tracer = NULL_TRACER if tracer is None else tracer
    registry = get_registry() if metrics is None else metrics
    if labels is None:
        labels = rcb_partition(mesh, nranks)
    plans = build_plans(mesh, labels)
    packed_coords = get_plan(mesh).packed_coords()
    partials: List[np.ndarray] = [None] * len(plans)  # type: ignore[list-item]

    def phase(comm: SimComm):
        plan = plans[comm.rank]
        with tracer.span(
            "rank_assemble", rank=comm.rank, nelem=int(len(plan.element_ids))
        ):
            xel = packed_coords[plan.element_ids]
            uel = velocity[mesh.connectivity[plan.element_ids]]
            elem = element_rhs(xel, uel, params)
            local = segment_scatter(
                plan.local_connectivity.ravel(),
                elem.reshape(-1, 3),
                len(plan.node_map),
            )
            partials[comm.rank] = local
            post_interface(comm, plan, local)
        for idx in plan.neighbours.values():
            registry.counter("halo.bytes_exchanged").inc(idx.size * 3 * 8)
            registry.counter("halo.messages").inc()
        return None

    def phase2(comm: SimComm):
        plan = plans[comm.rank]
        partials[comm.rank] = reduce_interface(comm, plan, partials[comm.rank])
        return None

    world: Dict[str, object] = {}
    comms = [SimComm(r, len(plans), world) for r in range(len(plans))]
    for c in comms:
        phase(c)
    for c in comms:
        phase2(c)

    rhs = np.zeros((mesh.nnode, 3))
    filled = np.zeros(mesh.nnode, dtype=bool)
    for plan in plans:
        sel = ~filled[plan.node_map]
        rhs[plan.node_map[sel]] = partials[plan.rank][sel]
        filled[plan.node_map[sel]] = True
    return rhs


# ---------------------------------------------------------------------------
# Real multiprocessing scaling
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ScalingPoint:
    """One strong-scaling measurement.

    ``speedup``/``efficiency`` are normalized to the measurement at
    ``baseline_workers`` -- the *smallest* worker count in the sweep (the
    seed silently used whichever count came first in the list).
    """

    workers: int
    wall_seconds: float
    melem_per_s: float
    speedup: float
    efficiency: float
    baseline_workers: int = 1


def _assemble_chunk(
    rank: int,
    xel: np.ndarray,
    uel: np.ndarray,
    params: AssemblyParams,
    repeats: int,
    traced: bool,
    program=None,
) -> Tuple[float, List[dict]]:
    """Assemble one element chunk ``repeats`` times; returns (seconds, spans).

    With a compiled :class:`~repro.core.tape.TapeProgram` the chunk runs
    through an :class:`~repro.core.tape.ElementalTape` whose buffer arena
    is bound once and reused across all repeats; otherwise the vectorized
    reference :func:`~repro.physics.momentum.element_rhs` runs.
    """
    tracer = Tracer(pid=rank) if traced else NULL_TRACER
    tape = None
    if program is not None:
        from ..core.tape import ElementalTape

        tape = ElementalTape(program)
    t0 = time.perf_counter()
    with tracer.span("rank", rank=rank, nelem=int(len(xel)), repeats=repeats):
        for rep in range(repeats):
            with tracer.span("assemble_chunk", rep=rep):
                if tape is not None:
                    tape(xel, uel)
                else:
                    element_rhs(xel, uel, params)
    return time.perf_counter() - t0, tracer.export()


def _worker_assemble(args: Tuple) -> Tuple[float, List[dict]]:
    """Pool worker: map a zero-copy view of the shared element arrays and
    assemble the ``[start, stop)`` chunk (module-level for pickling).

    Only scalars cross the pickle boundary (plus, in compiled mode, the
    one-time picklable tape program); the O(nelem) coordinate and
    velocity packs live in ``multiprocessing.shared_memory``.
    """
    (
        rank,
        x_name,
        u_name,
        nelem,
        start,
        stop,
        params,
        repeats,
        traced,
        program,
    ) = args
    # Pool workers share the parent's resource-tracker process, so this
    # attach-side registration is an idempotent no-op and the parent's
    # single unlink keeps the tracker cache clean -- do NOT unregister
    # here (that would drop the parent's own registration).
    x_shm = shared_memory.SharedMemory(name=x_name)
    u_shm = shared_memory.SharedMemory(name=u_name)
    try:
        xall = np.ndarray((nelem, 4, 3), dtype=np.float64, buffer=x_shm.buf)
        uall = np.ndarray((nelem, 4, 3), dtype=np.float64, buffer=u_shm.buf)
        return _assemble_chunk(
            rank,
            xall[start:stop],
            uall[start:stop],
            params,
            repeats,
            traced,
            program,
        )
    finally:
        del xall, uall
        x_shm.close()
        u_shm.close()


def _worker_warmup(_rank: int) -> int:
    """Touch numpy in the pool worker so imports don't pollute timings."""
    return int(np.zeros(1)[0])


class MultiprocessRunner:
    """Real process-pool strong scaling of the elemental assembly.

    The elemental work is "trivially parallel" (the paper skips scalability
    tests for this reason); the runner measures the wall-clock curve on
    this machine for the Figure 2 analogue.

    One spawn pool (sized for the largest requested worker count) is
    created per :meth:`measure` sweep and reused for every point, and the
    packed element arrays are exposed to it through shared memory --
    ``runner.shm_bytes_shared`` / ``runner.pickle_bytes_saved`` counters
    record how much data stayed out of the pickle stream.

    ``assembly_mode="compiled"`` records the selected DSL ``variant``
    once in the parent and ships the picklable tape program to every
    worker, which replays it with a reusable buffer arena
    (:class:`~repro.core.tape.ElementalTape`) instead of running the
    reference einsum path.
    """

    def __init__(
        self,
        mesh: TetMesh,
        params: AssemblyParams,
        repeats: int = 3,
        seed: int = 0,
        tracer=None,
        metrics: Optional[MetricsRegistry] = None,
        assembly_mode: str = "reference",
        variant: str = "RSP",
    ) -> None:
        if assembly_mode not in ("reference", "compiled"):
            raise ValueError(
                f"unknown assembly_mode {assembly_mode!r}; "
                "expected 'reference' or 'compiled'"
            )
        self.mesh = mesh
        self.params = params
        self.repeats = int(repeats)
        self.tracer = NULL_TRACER if tracer is None else tracer
        self._metrics = metrics
        self.assembly_mode = assembly_mode
        self.variant = variant.upper()
        rng = np.random.default_rng(seed)
        self.velocity = 0.1 * rng.standard_normal((mesh.nnode, 3))

    def measure(self, worker_counts: List[int]) -> List[ScalingPoint]:
        if not worker_counts:
            return []
        registry = get_registry() if self._metrics is None else self._metrics
        xall = get_plan(self.mesh).packed_coords()
        uall = self.velocity[self.mesh.connectivity]
        traced = bool(self.tracer.enabled)
        nelem = self.mesh.nelem
        program = None
        if self.assembly_mode == "compiled":
            from ..core.tape import record_program

            program = record_program(
                self.variant, self.params.as_kernel_params()
            )

        x_shm = shared_memory.SharedMemory(create=True, size=xall.nbytes)
        u_shm = shared_memory.SharedMemory(create=True, size=uall.nbytes)
        pool = None
        raw: List[Tuple[int, float]] = []
        try:
            np.ndarray(xall.shape, dtype=np.float64, buffer=x_shm.buf)[...] = xall
            np.ndarray(uall.shape, dtype=np.float64, buffer=u_shm.buf)[...] = uall
            registry.counter("runner.shm_bytes_shared").inc(
                xall.nbytes + uall.nbytes
            )
            max_workers = max(worker_counts)
            if max_workers > 1:
                pool = mp.get_context("spawn").Pool(processes=max_workers)
                pool.map(_worker_warmup, range(max_workers))
            for w in worker_counts:
                bounds = np.linspace(0, nelem, w + 1).astype(np.int64)
                args = [
                    (
                        rank,
                        x_shm.name,
                        u_shm.name,
                        nelem,
                        int(bounds[rank]),
                        int(bounds[rank + 1]),
                        self.params,
                        self.repeats,
                        traced,
                        program,
                    )
                    for rank in range(w)
                ]
                with self.tracer.span("measure", workers=w) as span:
                    t0 = time.perf_counter()
                    if w == 1:
                        results = [
                            _assemble_chunk(
                                0,
                                xall,
                                uall,
                                self.params,
                                self.repeats,
                                traced,
                                program,
                            )
                        ]
                    else:
                        results = pool.map(_worker_assemble, args)
                    wall = time.perf_counter() - t0
                    if span is not None:
                        span.attributes["wall_seconds"] = wall
                registry.counter("runner.tasks").inc(w)
                registry.counter("runner.pickle_bytes_saved").inc(
                    (xall.nbytes + uall.nbytes) if w > 1 else 0
                )
                # merge per-rank timelines (worker pids relabelled to ranks)
                for rank, (_, rank_spans) in enumerate(results):
                    self.tracer.add_spans(rank_spans, pid=rank)
                raw.append((w, wall))
        finally:
            if pool is not None:
                pool.close()
                pool.join()
            x_shm.close()
            u_shm.close()
            x_shm.unlink()
            u_shm.unlink()

        base_workers, base_wall = min(raw, key=lambda p: p[0])
        points = []
        for w, wall in raw:
            speedup = base_wall / wall
            points.append(
                ScalingPoint(
                    workers=w,
                    wall_seconds=wall,
                    melem_per_s=nelem * self.repeats / wall / 1e6,
                    speedup=speedup,
                    efficiency=speedup * base_workers / w,
                    baseline_workers=base_workers,
                )
            )
        return points
