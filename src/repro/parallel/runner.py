"""Parallel assembly drivers.

Two paths exercise the paper's pure-MPI execution shape:

* :func:`assemble_partitioned` -- deterministic simulated-MPI assembly: the
  mesh is partitioned, every "rank" assembles its subdomain RHS with the
  vectorized reference kernel, and interface nodes are reduced with the
  two-phase halo exchange.  Tests verify bit-level consistency with the
  serial assembly (no lost updates -- the failure mode Alya's scalar
  scatter loop protects against).
* :class:`MultiprocessRunner` -- real ``multiprocessing`` strong-scaling
  runs for the wall-clock analogue of Figure 2 (the simulated turbo-binned
  curve lives in :meth:`repro.machine.cpu.CpuModel.scaling_curve`).
"""

from __future__ import annotations

import dataclasses
import multiprocessing as mp
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..fem.mesh import TetMesh
from ..obs.metrics import MetricsRegistry, get_registry
from ..obs.spans import NULL_TRACER, Tracer
from ..physics.momentum import AssemblyParams, element_rhs
from .comm import SimComm
from .halo import build_plans, post_interface, reduce_interface
from .partition import rcb_partition

__all__ = ["assemble_partitioned", "MultiprocessRunner", "ScalingPoint"]


def assemble_partitioned(
    mesh: TetMesh,
    velocity: np.ndarray,
    params: AssemblyParams,
    nranks: int,
    labels: Optional[np.ndarray] = None,
    tracer=None,
    metrics: Optional[MetricsRegistry] = None,
) -> np.ndarray:
    """Assemble the momentum RHS over ``nranks`` simulated MPI ranks.

    Returns the *global* RHS gathered from the owning subdomains; interface
    nodes are reduced by halo exchange and must equal the serial assembly.
    Halo traffic is accounted in the ``halo.bytes_exchanged`` /
    ``halo.messages`` counters of ``metrics`` (process-wide registry by
    default); per-rank work is recorded as ``rank_assemble`` spans when a
    ``tracer`` is passed.
    """
    tracer = NULL_TRACER if tracer is None else tracer
    registry = get_registry() if metrics is None else metrics
    if labels is None:
        labels = rcb_partition(mesh, nranks)
    plans = build_plans(mesh, labels)
    partials: List[np.ndarray] = [None] * len(plans)  # type: ignore[list-item]

    def phase(comm: SimComm):
        plan = plans[comm.rank]
        with tracer.span(
            "rank_assemble", rank=comm.rank, nelem=int(len(plan.element_ids))
        ):
            xel = mesh.coords[mesh.connectivity[plan.element_ids]]
            uel = velocity[mesh.connectivity[plan.element_ids]]
            elem = element_rhs(xel, uel, params)
            local = np.zeros((len(plan.node_map), 3))
            np.add.at(
                local,
                plan.local_connectivity.ravel(),
                elem.reshape(-1, 3),
            )
            partials[comm.rank] = local
            post_interface(comm, plan, local)
        for idx in plan.neighbours.values():
            registry.counter("halo.bytes_exchanged").inc(idx.size * 3 * 8)
            registry.counter("halo.messages").inc()
        return None

    def phase2(comm: SimComm):
        plan = plans[comm.rank]
        partials[comm.rank] = reduce_interface(comm, plan, partials[comm.rank])
        return None

    world: Dict[str, object] = {}
    comms = [SimComm(r, len(plans), world) for r in range(len(plans))]
    for c in comms:
        phase(c)
    for c in comms:
        phase2(c)

    rhs = np.zeros((mesh.nnode, 3))
    filled = np.zeros(mesh.nnode, dtype=bool)
    for plan in plans:
        sel = ~filled[plan.node_map]
        rhs[plan.node_map[sel]] = partials[plan.rank][sel]
        filled[plan.node_map[sel]] = True
    return rhs


# ---------------------------------------------------------------------------
# Real multiprocessing scaling
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ScalingPoint:
    """One strong-scaling measurement."""

    workers: int
    wall_seconds: float
    melem_per_s: float
    speedup: float
    efficiency: float


def _worker_assemble(args: Tuple) -> Tuple[float, List[dict]]:
    """Worker: assemble its element chunk ``repeats`` times (module-level
    for pickling).

    Returns the elapsed seconds plus the worker-local span timeline as
    plain dicts, so the parent can merge every rank into one trace.
    """
    rank, xel, uel, params, repeats, traced = args
    tracer = Tracer(pid=rank) if traced else NULL_TRACER
    t0 = time.perf_counter()
    with tracer.span("rank", rank=rank, nelem=int(len(xel)), repeats=repeats):
        for rep in range(repeats):
            with tracer.span("assemble_chunk", rep=rep):
                element_rhs(xel, uel, params)
    return time.perf_counter() - t0, tracer.export()


class MultiprocessRunner:
    """Real process-pool strong scaling of the elemental assembly.

    The elemental work is "trivially parallel" (the paper skips scalability
    tests for this reason); the runner measures the wall-clock curve on
    this machine for the Figure 2 analogue.
    """

    def __init__(
        self,
        mesh: TetMesh,
        params: AssemblyParams,
        repeats: int = 3,
        seed: int = 0,
        tracer=None,
    ) -> None:
        self.mesh = mesh
        self.params = params
        self.repeats = int(repeats)
        self.tracer = NULL_TRACER if tracer is None else tracer
        rng = np.random.default_rng(seed)
        self.velocity = 0.1 * rng.standard_normal((mesh.nnode, 3))

    def measure(self, worker_counts: List[int]) -> List[ScalingPoint]:
        xall = self.mesh.element_coords()
        uall = self.velocity[self.mesh.connectivity]
        traced = bool(self.tracer.enabled)
        base: Optional[float] = None
        points = []
        for w in worker_counts:
            chunks = np.array_split(np.arange(self.mesh.nelem), w)
            args = [
                (rank, xall[c], uall[c], self.params, self.repeats, traced)
                for rank, c in enumerate(chunks)
            ]
            with self.tracer.span("measure", workers=w) as span:
                t0 = time.perf_counter()
                if w == 1:
                    results = [_worker_assemble(args[0])]
                else:
                    with mp.get_context("spawn").Pool(processes=w) as pool:
                        results = pool.map(_worker_assemble, args)
                wall = time.perf_counter() - t0
                if span is not None:
                    span.attributes["wall_seconds"] = wall
            # merge per-rank timelines (worker pids relabelled to ranks)
            for rank, (_, rank_spans) in enumerate(results):
                self.tracer.add_spans(rank_spans, pid=rank)
            if base is None:
                base = wall
            speedup = base / wall
            points.append(
                ScalingPoint(
                    workers=w,
                    wall_seconds=wall,
                    melem_per_s=self.mesh.nelem * self.repeats / wall / 1e6,
                    speedup=speedup,
                    efficiency=speedup / w,
                )
            )
        return points
