"""Parallel assembly drivers.

Two paths exercise the paper's pure-MPI execution shape:

* :func:`assemble_partitioned` -- deterministic simulated-MPI assembly: the
  mesh is partitioned, every "rank" assembles its subdomain RHS with the
  vectorized reference kernel, and interface nodes are reduced with the
  two-phase halo exchange.  Tests verify bit-level consistency with the
  serial assembly (no lost updates -- the failure mode Alya's scalar
  scatter loop protects against).
* :class:`MultiprocessRunner` -- real ``multiprocessing`` strong-scaling
  runs for the wall-clock analogue of Figure 2 (the simulated turbo-binned
  curve lives in :meth:`repro.machine.cpu.CpuModel.scaling_curve`).

The runner shares the read-only element arrays (packed coordinates and
velocities) with its workers through ``multiprocessing.shared_memory`` and
keeps **one** persistent spawn pool alive across all measured worker
counts: per measurement, only chunk *bounds* are pickled -- O(1) per task
instead of O(nelem) -- so the scaling curve measures assembly, not IPC.

Workers are *supervised*: every chunk is dispatched with ``apply_async``
under a per-task deadline (:class:`WorkerPolicy`), so a crashed, hard-dead
or hung worker surfaces as a failed chunk instead of blocking ``pool.map``
forever.  Failed chunks are re-dispatched with bounded retries onto a
freshly respawned pool (exponential backoff between respawns); a chunk
that exhausts its retry budget falls back to in-process serial assembly --
the run completes, slower, with the loss visible in the
``resilience.retries`` / ``resilience.fallbacks`` counters and a
``WorkerFailure`` span per incident.
"""

from __future__ import annotations

import dataclasses
import multiprocessing as mp
import time
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..fem.mesh import TetMesh
from ..fem.plan import get_plan, segment_scatter
from ..obs.metrics import MetricsRegistry, get_registry
from ..obs.spans import NULL_TRACER, Tracer
from ..physics.momentum import AssemblyParams, element_rhs
from ..resilience.cancel import CancelToken
from .comm import SimComm
from .halo import build_plans, post_interface, reduce_interface
from .partition import rcb_partition
from .shutdown import create_shared_memory, release_shared_memory

__all__ = [
    "assemble_partitioned",
    "MultiprocessRunner",
    "ScalingPoint",
    "WorkerPolicy",
]


def assemble_partitioned(
    mesh: TetMesh,
    velocity: np.ndarray,
    params: AssemblyParams,
    nranks: int,
    labels: Optional[np.ndarray] = None,
    tracer=None,
    metrics: Optional[MetricsRegistry] = None,
) -> np.ndarray:
    """Assemble the momentum RHS over ``nranks`` simulated MPI ranks.

    Returns the *global* RHS gathered from the owning subdomains; interface
    nodes are reduced by halo exchange and must equal the serial assembly.
    Halo traffic is accounted in the ``halo.bytes_exchanged`` /
    ``halo.messages`` counters of ``metrics`` (process-wide registry by
    default); per-rank work is recorded as ``rank_assemble`` spans when a
    ``tracer`` is passed.

    Each rank assembles in two stages to overlap the interface exchange
    with computation (Alya's communication-hiding shape): the *halo*
    elements -- the only ones contributing to interface nodes -- are
    assembled and their partial sums posted first, then the *interior*
    elements are assembled while the messages are in flight.  The final
    local field comes from one monolithic scatter over the rank's full
    element list with the staged elemental values stitched back in
    element order, so the split cannot change a single bit relative to
    the unstaged assembly.
    """
    tracer = NULL_TRACER if tracer is None else tracer
    registry = get_registry() if metrics is None else metrics
    if labels is None:
        labels = rcb_partition(mesh, nranks)
    plans = build_plans(mesh, labels)
    packed_coords = get_plan(mesh).packed_coords()
    partials: List[np.ndarray] = [None] * len(plans)  # type: ignore[list-item]

    def phase(comm: SimComm):
        plan = plans[comm.rank]
        nelem_rank = int(len(plan.element_ids))
        halo_ids = plan.halo_elements
        int_ids = plan.interior_elements
        registry.counter("locality.halo_elements").inc(int(halo_ids.size))
        registry.counter("locality.interior_elements").inc(int(int_ids.size))
        if nelem_rank:
            registry.gauge("locality.overlap_efficiency").set(
                int_ids.size / nelem_rank
            )
        with tracer.span(
            "rank_assemble", rank=comm.rank, nelem=nelem_rank
        ):
            xel = packed_coords[plan.element_ids]
            uel = velocity[mesh.connectivity[plan.element_ids]]
            nloc = len(plan.node_map)
            elem = np.empty((nelem_rank, 4, 3))
            # Stage 1: halo elements only.  Interface nodes receive
            # contributions from no other elements, and bincount sums in
            # input order, so the halo-only scatter reproduces the full
            # scatter bitwise at every interface node -- safe to post.
            with tracer.span(
                "halo_assemble", rank=comm.rank, nelem=int(halo_ids.size)
            ):
                elem[halo_ids] = element_rhs(
                    xel[halo_ids], uel[halo_ids], params
                )
                halo_field = segment_scatter(
                    plan.local_connectivity[halo_ids].ravel(),
                    elem[halo_ids].reshape(-1, 3),
                    nloc,
                )
            post_interface(comm, plan, halo_field)
            # Stage 2: interior elements, overlapped with the in-flight
            # exchange (the simulated communicator buffers sends, so the
            # real-MPI analogue is Isend/Irecv progressing here).
            with tracer.span(
                "interior_assemble", rank=comm.rank, nelem=int(int_ids.size)
            ):
                elem[int_ids] = element_rhs(
                    xel[int_ids], uel[int_ids], params
                )
            # Monolithic scatter over the stitched elemental values: one
            # bincount in seed element order, bitwise equal to the
            # unstaged assembly.
            partials[comm.rank] = segment_scatter(
                plan.local_connectivity.ravel(),
                elem.reshape(-1, 3),
                nloc,
            )
        for idx in plan.neighbours.values():
            registry.counter("halo.bytes_exchanged").inc(idx.size * 3 * 8)
            registry.counter("halo.messages").inc()
        return None

    def phase2(comm: SimComm):
        plan = plans[comm.rank]
        partials[comm.rank] = reduce_interface(comm, plan, partials[comm.rank])
        return None

    world: Dict[str, object] = {}
    comms = [SimComm(r, len(plans), world) for r in range(len(plans))]
    for c in comms:
        phase(c)
    for c in comms:
        phase2(c)

    rhs = np.zeros((mesh.nnode, 3))
    filled = np.zeros(mesh.nnode, dtype=bool)
    for plan in plans:
        sel = ~filled[plan.node_map]
        rhs[plan.node_map[sel]] = partials[plan.rank][sel]
        filled[plan.node_map[sel]] = True
    return rhs


# ---------------------------------------------------------------------------
# Real multiprocessing scaling
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class WorkerPolicy:
    """Supervision knobs for the pool workers.

    ``task_timeout`` is the per-chunk deadline in seconds -- a chunk whose
    result has not arrived by then is declared failed (covers hung *and*
    hard-dead workers, whose tasks would otherwise never return).
    ``max_retries`` bounds re-dispatches per chunk before the in-process
    serial fallback; respawned pools back off exponentially
    (``backoff_base * backoff_factor**respawn``) to avoid respawn storms.
    """

    task_timeout: float = 120.0
    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0

    def backoff(self, respawn: int) -> float:
        return self.backoff_base * self.backoff_factor ** max(0, respawn)


@dataclasses.dataclass(frozen=True)
class ScalingPoint:
    """One strong-scaling measurement.

    ``speedup``/``efficiency`` are normalized to the measurement at
    ``baseline_workers`` -- the *smallest* worker count in the sweep (the
    seed silently used whichever count came first in the list).
    """

    workers: int
    wall_seconds: float
    melem_per_s: float
    speedup: float
    efficiency: float
    baseline_workers: int = 1


def _assemble_chunk(
    rank: int,
    xel: np.ndarray,
    uel: np.ndarray,
    params: AssemblyParams,
    repeats: int,
    traced: bool,
    program=None,
    profiled: bool = False,
) -> Tuple[float, List[dict], Tuple[float, float, float], List[dict], dict]:
    """Assemble one element chunk ``repeats`` times.

    Returns ``(seconds, spans, checksum, profiles, metrics)`` where
    ``checksum`` is the component-wise sum of the chunk's elemental RHS --
    a deterministic fingerprint the chaos tests compare bitwise between
    fault-free and fault-recovered runs (the serial fallback reproduces it
    exactly) -- and ``profiles``/``metrics`` are this rank's op-level
    profile snapshots and published metric snapshot when ``profiled``
    (empty otherwise); the parent folds them through
    :meth:`~repro.obs.profiler.TapeProfiler.merge` and the existing
    :meth:`~repro.obs.metrics.MetricsRegistry.merge` reduction.

    With a compiled :class:`~repro.core.tape.TapeProgram` the chunk runs
    through an :class:`~repro.core.tape.ElementalTape` whose buffer arena
    is bound once and reused across all repeats; with an
    :class:`~repro.core.codegen.ElementalCodegenProgram` the worker
    re-``exec``-compiles the generated source (deterministic emission, so
    every rank compiles the identical module and hits the process-local
    code cache) and runs the
    :class:`~repro.core.codegen.ElementalGeneratedKernel`; otherwise the
    vectorized reference :func:`~repro.physics.momentum.element_rhs` runs
    (op-level profiling needs an op/statement cost table, so it covers
    the compiled and codegen modes only).
    """
    tracer = Tracer(pid=rank) if traced else NULL_TRACER
    tape = None
    profiler = None
    if program is not None:
        from ..core.codegen import ElementalCodegenProgram

        if isinstance(program, ElementalCodegenProgram):
            from ..core.codegen import ElementalGeneratedKernel

            tape = ElementalGeneratedKernel(program)
        else:
            from ..core.tape import ElementalTape

            tape = ElementalTape(program)
        if profiled:
            from ..obs.profiler import TapeProfiler

            profiler = TapeProfiler()
            if isinstance(program, ElementalCodegenProgram):
                tape.profile = profiler.for_codegen(
                    program, int(len(xel)), executor="worker"
                )
            else:
                tape.profile = profiler.for_elemental(program, int(len(xel)))
    elem = None
    t0 = time.perf_counter()
    with tracer.span("rank", rank=rank, nelem=int(len(xel)), repeats=repeats):
        for rep in range(repeats):
            with tracer.span("assemble_chunk", rep=rep):
                if tape is not None:
                    elem = tape(xel, uel)
                else:
                    elem = element_rhs(xel, uel, params)
    seconds = time.perf_counter() - t0
    if elem is None:
        checksum = (0.0, 0.0, 0.0)
    else:
        sums = elem.sum(axis=(0, 1))
        checksum = (float(sums[0]), float(sums[1]), float(sums[2]))
    profile_snap: List[dict] = []
    metrics_snap: dict = {}
    if profiler is not None:
        profile_snap = profiler.snapshot()
        local = MetricsRegistry()
        profiler.publish(local)
        metrics_snap = local.snapshot()
    return seconds, tracer.export(), checksum, profile_snap, metrics_snap


def _worker_assemble(args: Tuple):
    """Pool worker: map a zero-copy view of the shared element arrays and
    assemble the ``[start, stop)`` chunk (module-level for pickling).

    Only scalars cross the pickle boundary (plus, in compiled mode, the
    one-time picklable tape program); the O(nelem) coordinate and
    velocity packs live in ``multiprocessing.shared_memory``.

    ``fault_plan``/``attempt`` drive chaos testing: an injected ``worker``
    fault matching ``(rank, attempt)`` crashes, hard-exits, hangs or slows
    this worker before any shared memory is touched.
    """
    (
        rank,
        x_name,
        u_name,
        nelem,
        start,
        stop,
        params,
        repeats,
        traced,
        profiled,
        program,
        fault_plan,
        attempt,
    ) = args
    if fault_plan is not None:
        spec = fault_plan.worker_fault(rank, attempt)
        if spec is not None:
            fault_plan.execute_worker_fault(spec, rank, attempt)
    # Pool workers share the parent's resource-tracker process, so this
    # attach-side registration is an idempotent no-op and the parent's
    # single unlink keeps the tracker cache clean -- do NOT unregister
    # here (that would drop the parent's own registration).
    x_shm = shared_memory.SharedMemory(name=x_name)
    u_shm = shared_memory.SharedMemory(name=u_name)
    try:
        xall = np.ndarray((nelem, 4, 3), dtype=np.float64, buffer=x_shm.buf)
        uall = np.ndarray((nelem, 4, 3), dtype=np.float64, buffer=u_shm.buf)
        return _assemble_chunk(
            rank,
            xall[start:stop],
            uall[start:stop],
            params,
            repeats,
            traced,
            program,
            profiled,
        )
    finally:
        del xall, uall
        x_shm.close()
        u_shm.close()


def _worker_warmup(_rank: int) -> int:
    """Touch numpy in the pool worker so imports don't pollute timings."""
    return int(np.zeros(1)[0])


def _worker_batch_shard(args: Tuple):
    """Pool worker: assemble one contiguous scenario shard of a batch.

    Mesh arrays and the velocity field come in through shared memory
    (copied out before the segment closes -- the assembler caches keyed
    on them must outlive the handle); only the shard's
    :class:`AssemblyParams` and scalars cross the pickle boundary.  The
    shard runs the ordinary batched
    :meth:`~repro.core.unified.UnifiedAssembler.run_batch` path at the
    parent's resolved ``vector_dim``, so concatenating shard results in
    rank order is bitwise identical to one whole-batch run (batched
    results are per-scenario bit-identical regardless of ``S``).
    """
    (
        rank,
        c_name,
        k_name,
        v_name,
        nnode,
        nelem,
        scenarios,
        variant,
        mode,
        vector_dim,
        velocity_rank,
        total_s,
        start,
    ) = args
    c_shm = shared_memory.SharedMemory(name=c_name)
    k_shm = shared_memory.SharedMemory(name=k_name)
    v_shm = shared_memory.SharedMemory(name=v_name)
    try:
        coords = np.ndarray(
            (nnode, 3), dtype=np.float64, buffer=c_shm.buf
        ).copy()
        conn = np.ndarray(
            (nelem, 4), dtype=np.int64, buffer=k_shm.buf
        ).copy()
        if velocity_rank == "vec":
            vel = np.ndarray(
                (nnode, 3), dtype=np.float64, buffer=v_shm.buf
            ).copy()
        else:
            vel = np.ndarray(
                (total_s, nnode, 3), dtype=np.float64, buffer=v_shm.buf
            )[start : start + len(scenarios)].copy()
    finally:
        c_shm.close()
        k_shm.close()
        v_shm.close()
    from ..core.batch import ScenarioBatch
    from ..core.unified import UnifiedAssembler

    mesh = TetMesh(coords, conn, validate=False)
    batch = ScenarioBatch(scenarios)
    asm = UnifiedAssembler(
        mesh, batch[0], mode=mode, vector_dim=vector_dim
    )
    t0 = time.perf_counter()
    rhs = asm.run_batch(variant, batch, vel)
    return time.perf_counter() - t0, rhs


class MultiprocessRunner:
    """Real process-pool strong scaling of the elemental assembly.

    The elemental work is "trivially parallel" (the paper skips scalability
    tests for this reason); the runner measures the wall-clock curve on
    this machine for the Figure 2 analogue.

    One spawn pool (sized for the largest requested worker count) is
    created per :meth:`measure` sweep and reused for every point, and the
    packed element arrays are exposed to it through shared memory --
    ``runner.shm_bytes_shared`` / ``runner.pickle_bytes_saved`` counters
    record how much data stayed out of the pickle stream.

    ``assembly_mode="compiled"`` records the selected DSL ``variant``
    once in the parent and ships the picklable tape program to every
    worker, which replays it with a reusable buffer arena
    (:class:`~repro.core.tape.ElementalTape`) instead of running the
    reference einsum path.  ``assembly_mode="codegen"`` ships the
    picklable :class:`~repro.core.codegen.ElementalCodegenProgram`
    instead; each worker re-``exec``-compiles the identical generated
    source once and runs the fused
    :class:`~repro.core.codegen.ElementalGeneratedKernel`.

    Chunk dispatch is supervised (see :class:`WorkerPolicy`): worker
    crashes, hard deaths and hangs are detected by per-task deadlines,
    retried with bounded respawns, and finally recovered by in-process
    serial assembly.  Per-chunk RHS checksums are kept in
    :attr:`chunk_checksums` (``{workers: [(sx, sy, sz), ...]}``) so a
    recovered run can be proven bitwise identical to a fault-free one.
    A :class:`~repro.resilience.faults.FaultPlan` passed as ``fault_plan``
    is shipped to every worker for chaos testing.

    ``ordering`` (any :data:`repro.fem.reorder.STRATEGIES` entry) permutes
    the packed element arrays along the named space-filling curve before
    chunking, so each worker sweeps a spatially contiguous slab.

    ``profile=True`` (compiled and codegen modes) attaches op-level
    software counters to every rank's elemental executor:
    per-rank profiles return with the results and are folded into
    :attr:`profiler` (op detail) and the metrics registry (published
    ``profile.*`` counters, reduced through
    :meth:`~repro.obs.metrics.MetricsRegistry.merge` -- the same path
    per-rank span/metric sets already take).  ``prometheus_path`` makes
    long campaigns refresh a Prometheus textfile after each measured
    point (at most once per ``prometheus_interval`` seconds).
    """

    def __init__(
        self,
        mesh: TetMesh,
        params: AssemblyParams,
        repeats: int = 3,
        seed: int = 0,
        tracer=None,
        metrics: Optional[MetricsRegistry] = None,
        assembly_mode: str = "reference",
        variant: str = "RSP",
        policy: Optional[WorkerPolicy] = None,
        fault_plan=None,
        ordering: str = "none",
        profile: bool = False,
        profiler=None,
        prometheus_path: Optional[str] = None,
        prometheus_interval: float = 5.0,
    ) -> None:
        if assembly_mode not in ("reference", "compiled", "codegen"):
            raise ValueError(
                f"unknown assembly_mode {assembly_mode!r}; "
                "expected 'reference', 'compiled' or 'codegen'"
            )
        from ..fem.reorder import STRATEGIES

        if ordering not in STRATEGIES:
            raise ValueError(
                f"unknown ordering {ordering!r}; expected one of {STRATEGIES}"
            )
        self.mesh = mesh
        self.params = params
        self.repeats = int(repeats)
        self.tracer = NULL_TRACER if tracer is None else tracer
        self._metrics = metrics
        self.assembly_mode = assembly_mode
        self.variant = variant.upper()
        self.policy = policy or WorkerPolicy()
        self.fault_plan = fault_plan
        self.ordering = ordering
        self.profile = bool(profile) or profiler is not None
        if self.profile and self.assembly_mode not in ("compiled", "codegen"):
            raise ValueError(
                "profile=True requires assembly_mode='compiled' or "
                "'codegen': op-level profiling reads the program's "
                "op/statement cost table"
            )
        if self.profile and profiler is None:
            from ..obs.profiler import TapeProfiler

            profiler = TapeProfiler()
        #: merged op-level profiles of every profiled rank (all counts)
        self.profiler = profiler
        self._prom = None
        if prometheus_path is not None:
            from ..obs.export import PrometheusExporter

            self._prom = PrometheusExporter(
                prometheus_path,
                metrics=self._metrics,
                interval=prometheus_interval,
            )
        #: per-measure chunk fingerprints: {workers: [checksum per rank]}
        self.chunk_checksums: Dict[int, List[Tuple[float, float, float]]] = {}
        rng = np.random.default_rng(seed)
        self.velocity = 0.1 * rng.standard_normal((mesh.nnode, 3))
        self._pool = None
        self._pool_size = 0
        self._respawns = 0

    # -- pool lifecycle -------------------------------------------------
    def _spawn_pool(self, processes: int):
        pool = mp.get_context("spawn").Pool(processes=processes)
        pool.map(_worker_warmup, range(processes))
        return pool

    def _ensure_pool(self, processes: int) -> None:
        if self._pool is None or self._pool_size < processes:
            self._shutdown_pool(graceful=True)
            self._pool = self._spawn_pool(processes)
            self._pool_size = processes

    def _respawn_pool(self, registry: MetricsRegistry) -> None:
        """Replace a poisoned pool (dead/hung workers) with a fresh one."""
        self._shutdown_pool(graceful=False)
        time.sleep(self.policy.backoff(self._respawns))
        self._respawns += 1
        registry.counter("resilience.respawns").inc()
        self._pool = self._spawn_pool(self._pool_size)

    def _shutdown_pool(self, graceful: bool) -> None:
        if self._pool is None:
            return
        if graceful:
            self._pool.close()
        else:
            # terminate, never close+join: close() waits for in-flight
            # tasks, which deadlocks when a worker is hung or dead.
            self._pool.terminate()
        self._pool.join()
        self._pool = None

    # -- supervised dispatch --------------------------------------------
    def _run_supervised(
        self,
        chunk_args: List[Tuple],
        serial_chunks: List[Tuple[np.ndarray, np.ndarray]],
        registry: MetricsRegistry,
        cancel: Optional[CancelToken] = None,
    ) -> List[Tuple[float, List[dict], Tuple[float, float, float]]]:
        """Run every chunk to completion, through failures.

        ``chunk_args`` holds the picklable worker argument tuples (one per
        rank, ``attempt`` slot last); ``serial_chunks`` the parent-side
        array views used by the in-process fallback.  Returns results in
        rank order; never returns a partial set.  A tripped ``cancel``
        raises between supervision rounds (the caller's ``finally``
        terminates the pool and releases shared memory).
        """
        nchunk = len(chunk_args)
        results: List = [None] * nchunk
        attempts = [0] * nchunk
        pending = list(range(nchunk))
        while pending:
            if cancel is not None:
                cancel.check()
            handles = {}
            for rank in pending:
                if self.fault_plan is not None:
                    self.fault_plan.note_worker_dispatch(rank, attempts[rank])
                args = chunk_args[rank][:-1] + (attempts[rank],)
                handles[rank] = self._pool.apply_async(_worker_assemble, (args,))
            failed: List[Tuple[int, str]] = []
            for rank in pending:
                try:
                    results[rank] = handles[rank].get(self.policy.task_timeout)
                except mp.TimeoutError:
                    failed.append((rank, "deadline"))
                except Exception as exc:  # crash raised inside the worker
                    failed.append((rank, type(exc).__name__))
            pending = []
            retry_ranks = []
            for rank, reason in failed:
                registry.counter("resilience.worker_failures").inc()
                attempts[rank] += 1
                action = (
                    "retry"
                    if attempts[rank] <= self.policy.max_retries
                    else "serial_fallback"
                )
                with self.tracer.span(
                    "WorkerFailure",
                    rank=rank,
                    attempt=attempts[rank] - 1,
                    reason=reason,
                    action=action,
                ):
                    pass
                if action == "retry":
                    registry.counter("resilience.retries").inc()
                    retry_ranks.append(rank)
                else:
                    registry.counter("resilience.fallbacks").inc()
            if failed:
                # any failure may leave hung/dead workers or orphaned
                # in-flight state behind: replace the whole pool.
                self._respawn_pool(registry)
                pending = retry_ranks
            for rank, reason in failed:
                if attempts[rank] > self.policy.max_retries:
                    xel, uel = serial_chunks[rank]
                    results[rank] = _assemble_chunk(
                        rank,
                        xel,
                        uel,
                        self.params,
                        self.repeats,
                        bool(self.tracer.enabled),
                        program=chunk_args[rank][10],
                        profiled=bool(chunk_args[rank][9]),
                    )
        return results

    def run_batch(
        self,
        batch,
        workers: int,
        velocity: Optional[np.ndarray] = None,
        vector_dim: Optional[int] = None,
    ) -> np.ndarray:
        """Shard ``S`` scenarios across the pool -> ``(S, nnode, 3)``.

        Scenarios are split into ``workers`` contiguous shards (scenario
        order preserved); each worker assembles its shard through one
        batched :meth:`~repro.core.unified.UnifiedAssembler.run_batch`
        call at a common ``vector_dim`` resolved once in the parent, and
        results are concatenated deterministically in shard order --
        bitwise identical to a single whole-batch run.  A failed or
        timed-out shard falls back to in-process assembly (counted in
        ``resilience.fallbacks``); ``velocity`` is one shared
        ``(nnode, 3)`` field (default: the runner's seeded field) or
        per-scenario ``(S, nnode, 3)``.
        """
        from ..core.batch import ScenarioBatch
        from ..core.unified import UnifiedAssembler

        if self.assembly_mode not in ("compiled", "codegen"):
            raise ValueError(
                "run_batch requires assembly_mode='compiled' or 'codegen' "
                f"(got {self.assembly_mode!r})"
            )
        if not isinstance(batch, ScenarioBatch):
            batch = ScenarioBatch(batch)
        registry = get_registry() if self._metrics is None else self._metrics
        S = batch.size
        nnode, nelem = self.mesh.nnode, self.mesh.nelem
        if velocity is None:
            velocity = self.velocity
        velocity = np.asarray(velocity, dtype=np.float64)
        if velocity.shape == (nnode, 3):
            velocity_rank = "vec"
        elif velocity.shape == (S, nnode, 3):
            velocity_rank = "full"
        else:
            raise ValueError(
                f"velocity must be ({nnode}, 3) shared or ({S}, {nnode}, 3) "
                f"per-scenario, got {velocity.shape}"
            )
        parent = UnifiedAssembler(
            self.mesh,
            batch[0],
            mode=self.assembly_mode,
            vector_dim=vector_dim,
        )
        vd = parent.resolve_vector_dim(self.variant, scenarios=S)
        parent.vector_dim = vd  # pin: shard fallbacks must not re-resolve
        w = max(1, min(int(workers), S))
        registry.counter("runner.batch_tasks").inc(w)
        registry.counter("runner.batch_scenarios").inc(S)
        if w == 1:
            return parent.run_batch(self.variant, batch, velocity)

        bounds = np.linspace(0, S, w + 1).astype(np.int64)
        shards = [
            (int(bounds[r]), int(bounds[r + 1])) for r in range(w)
        ]
        coords = np.ascontiguousarray(self.mesh.coords, dtype=np.float64)
        conn = np.ascontiguousarray(self.mesh.connectivity, dtype=np.int64)
        c_shm = create_shared_memory(coords.nbytes)
        k_shm = create_shared_memory(conn.nbytes)
        v_shm = create_shared_memory(velocity.nbytes)
        rhs = np.empty((S, nnode, 3))
        ok = False
        try:
            np.ndarray(coords.shape, np.float64, buffer=c_shm.buf)[...] = coords
            np.ndarray(conn.shape, np.int64, buffer=k_shm.buf)[...] = conn
            np.ndarray(velocity.shape, np.float64, buffer=v_shm.buf)[...] = (
                velocity
            )
            registry.counter("runner.shm_bytes_shared").inc(
                coords.nbytes + conn.nbytes + velocity.nbytes
            )
            self._ensure_pool(w)
            with self.tracer.span(
                "runner_batch", scenarios=S, workers=w, vector_dim=vd
            ):
                handles = {}
                for rank, (start, stop) in enumerate(shards):
                    args = (
                        rank,
                        c_shm.name,
                        k_shm.name,
                        v_shm.name,
                        nnode,
                        nelem,
                        list(batch.scenarios[start:stop]),
                        self.variant,
                        self.assembly_mode,
                        vd,
                        velocity_rank,
                        S,
                        start,
                    )
                    handles[rank] = self._pool.apply_async(
                        _worker_batch_shard, (args,)
                    )
                failed = []
                for rank, (start, stop) in enumerate(shards):
                    try:
                        _, shard_rhs = handles[rank].get(
                            self.policy.task_timeout
                        )
                        rhs[start:stop] = shard_rhs
                    except Exception:
                        failed.append(rank)
                if failed:
                    self._respawn_pool(registry)
                for rank in failed:
                    # deterministic in-process recovery: same batched
                    # path, same vector_dim, same shard -> same bits
                    registry.counter("resilience.fallbacks").inc()
                    start, stop = shards[rank]
                    sub = ScenarioBatch(batch.scenarios[start:stop])
                    v_s = (
                        velocity
                        if velocity_rank == "vec"
                        else velocity[start:stop]
                    )
                    rhs[start:stop] = parent.run_batch(self.variant, sub, v_s)
            ok = True
        finally:
            self._shutdown_pool(graceful=ok)
            self._pool_size = 0
            for shm in (c_shm, k_shm, v_shm):
                release_shared_memory(shm)
        return rhs

    def close(self) -> None:
        """Terminate any live pool immediately (idempotent).

        For standalone use outside ``measure``/``run_batch`` (whose
        ``finally`` blocks already call this): drain paths and tests
        call ``close()`` to guarantee no worker processes outlive the
        runner.
        """
        self._shutdown_pool(graceful=False)
        self._pool_size = 0

    def measure(
        self,
        worker_counts: List[int],
        cancel: Optional[CancelToken] = None,
    ) -> List[ScalingPoint]:
        """Measure the strong-scaling curve over ``worker_counts``.

        A tripped ``cancel`` token raises
        :class:`~repro.resilience.cancel.CooperativeCancel` between
        measured worker counts (and between supervision rounds inside
        one); the ``finally`` below still terminates the pool and
        releases every shared-memory segment, so cancellation never
        leaks ``/dev/shm`` blocks or worker processes.
        """
        if not worker_counts:
            return []
        registry = get_registry() if self._metrics is None else self._metrics
        xall = get_plan(self.mesh).packed_coords()
        uall = self.velocity[self.mesh.connectivity]
        if self.ordering != "none":
            # SFC-permute the element packs so each worker's contiguous
            # chunk is also spatially contiguous (RCM atoms renumber
            # nodes, which the per-element packs have already gathered
            # away -- only the curve part affects chunk locality here).
            from ..fem.reorder import _parse_strategy, element_order

            sfc, _ = _parse_strategy(self.ordering)
            if sfc is not None:
                order = element_order(self.mesh, sfc)
                xall = xall[order]
                uall = uall[order]
                registry.counter("locality.runner_reorders").inc()
        traced = bool(self.tracer.enabled)
        nelem = self.mesh.nelem
        program = None
        if self.assembly_mode == "compiled":
            from ..core.tape import record_program

            program = record_program(
                self.variant, self.params.as_kernel_params()
            )
        elif self.assembly_mode == "codegen":
            from ..core.codegen import generate_elemental_program

            program = generate_elemental_program(
                self.variant, self.params.as_kernel_params()
            )

        x_shm = create_shared_memory(xall.nbytes)
        u_shm = create_shared_memory(uall.nbytes)
        raw: List[Tuple[int, float]] = []
        self.chunk_checksums = {}
        ok = False
        try:
            np.ndarray(xall.shape, dtype=np.float64, buffer=x_shm.buf)[...] = xall
            np.ndarray(uall.shape, dtype=np.float64, buffer=u_shm.buf)[...] = uall
            registry.counter("runner.shm_bytes_shared").inc(
                xall.nbytes + uall.nbytes
            )
            max_workers = max(worker_counts)
            if max_workers > 1:
                self._ensure_pool(max_workers)
            for w in worker_counts:
                if cancel is not None:
                    cancel.check()
                bounds = np.linspace(0, nelem, w + 1).astype(np.int64)
                args = [
                    (
                        rank,
                        x_shm.name,
                        u_shm.name,
                        nelem,
                        int(bounds[rank]),
                        int(bounds[rank + 1]),
                        self.params,
                        self.repeats,
                        traced,
                        self.profile,
                        program,
                        self.fault_plan,
                        0,  # attempt; rewritten per dispatch
                    )
                    for rank in range(w)
                ]
                serial_chunks = [
                    (
                        xall[int(bounds[rank]) : int(bounds[rank + 1])],
                        uall[int(bounds[rank]) : int(bounds[rank + 1])],
                    )
                    for rank in range(w)
                ]
                with self.tracer.span("measure", workers=w) as span:
                    t0 = time.perf_counter()
                    if w == 1:
                        results = [
                            _assemble_chunk(
                                0,
                                xall,
                                uall,
                                self.params,
                                self.repeats,
                                traced,
                                program,
                                self.profile,
                            )
                        ]
                    else:
                        results = self._run_supervised(
                            args, serial_chunks, registry, cancel=cancel
                        )
                    wall = time.perf_counter() - t0
                    if span is not None:
                        span.attributes["wall_seconds"] = wall
                registry.counter("runner.tasks").inc(w)
                registry.counter("runner.pickle_bytes_saved").inc(
                    (xall.nbytes + uall.nbytes) if w > 1 else 0
                )
                # merge per-rank timelines (worker pids relabelled to ranks)
                for rank, (_, rank_spans, _, _, _) in enumerate(results):
                    self.tracer.add_spans(rank_spans, pid=rank)
                self.chunk_checksums[w] = [cs for (_, _, cs, _, _) in results]
                # fold per-rank profiles + published metrics into the
                # parent (the existing cross-process metric reduction)
                for (_, _, _, psnap, msnap) in results:
                    if psnap and self.profiler is not None:
                        self.profiler.merge(psnap)
                    if msnap:
                        registry.merge(msnap)
                if self._prom is not None:
                    self._prom.maybe_write()
                raw.append((w, wall))
            ok = True
        finally:
            # graceful close only on success: close()+join() waits for
            # in-flight tasks and deadlocks if an exception left a hung or
            # dead worker behind -- terminate() on the error path.
            self._shutdown_pool(graceful=ok)
            self._pool_size = 0
            for shm in (x_shm, u_shm):
                release_shared_memory(shm)

        if self._prom is not None:
            self._prom.flush()
        base_workers, base_wall = min(raw, key=lambda p: p[0])
        points = []
        for w, wall in raw:
            speedup = base_wall / wall
            points.append(
                ScalingPoint(
                    workers=w,
                    wall_seconds=wall,
                    melem_per_s=nelem * self.repeats / wall / 1e6,
                    speedup=speedup,
                    efficiency=speedup * base_workers / w,
                    baseline_workers=base_workers,
                )
            )
        return points
