"""Leak-free shared memory and graceful SIGTERM shutdown for the runner.

``multiprocessing.shared_memory`` segments live in ``/dev/shm`` under the
kernel, not the process: a runner killed mid-sweep leaks its coordinate
and velocity packs until reboot.  Three layers close that hole:

* every segment is created through :func:`create_shared_memory` with a
  recognizable ``repro_<pid>_<hex>`` name and tracked in a process-local
  registry, so a leak is *observable* (tests scan ``/dev/shm`` for the
  dead pid's prefix);
* the happy path releases segments through :func:`release_shared_memory`
  (close + unlink + deregister, idempotent);
* an ``atexit`` hook (:func:`purge_shared_memory`) unlinks anything still
  registered, and :func:`install_shutdown_handler` converts ``SIGTERM``
  into :class:`KeyboardInterrupt` so the runner's ``finally`` blocks --
  pool termination, segment release -- actually run instead of the
  process dying mid-`` bincount``.

The registry is per-process by construction: pool workers attach to the
parent's segments by name and never create their own, so the parent's
single unlink is always the right one.
"""

from __future__ import annotations

import atexit
import os
import secrets
import signal
import threading
from multiprocessing import shared_memory
from typing import Dict, List, Optional

__all__ = [
    "create_shared_memory",
    "release_shared_memory",
    "purge_shared_memory",
    "live_segment_names",
    "install_shutdown_handler",
    "SHM_PREFIX",
]

#: Name prefix of every runner-created segment (``repro_<pid>_<hex>``);
#: the pid component lets a post-mortem sweep attribute leaks to a run.
SHM_PREFIX = "repro"

_lock = threading.Lock()
_live: Dict[str, shared_memory.SharedMemory] = {}
_atexit_registered = False


def _segment_name() -> str:
    return f"{SHM_PREFIX}_{os.getpid()}_{secrets.token_hex(4)}"


def create_shared_memory(size: int) -> shared_memory.SharedMemory:
    """Create a tracked ``repro_<pid>_<hex>`` shared-memory segment.

    The segment is registered for the ``atexit`` purge until
    :func:`release_shared_memory` deregisters it.
    """
    global _atexit_registered
    shm = shared_memory.SharedMemory(create=True, name=_segment_name(), size=size)
    with _lock:
        _live[shm.name] = shm
        if not _atexit_registered:
            atexit.register(purge_shared_memory)
            _atexit_registered = True
    return shm


def release_shared_memory(shm: shared_memory.SharedMemory) -> None:
    """Close, unlink and deregister one segment (idempotent).

    ``FileNotFoundError`` is tolerated: a crashed prior run or the
    resource tracker may have unlinked the segment already, and a cleanup
    path must never raise over already-clean state.
    """
    with _lock:
        _live.pop(shm.name, None)
    try:
        shm.close()
    except BufferError:
        # an exported ndarray view still holds the buffer; unlink below
        # still removes the name so nothing leaks past process exit.
        pass
    try:
        shm.unlink()
    except FileNotFoundError:
        pass


def purge_shared_memory() -> List[str]:
    """Unlink every still-registered segment; returns the purged names.

    Runs at interpreter exit (and is safe to call any time): segments the
    happy path already released are no longer registered, so this only
    fires for abnormal exits -- an unhandled exception between creation
    and the ``finally``, or a ``SIGTERM`` delivered outside
    :func:`install_shutdown_handler`'s protection.
    """
    with _lock:
        doomed = list(_live.values())
        _live.clear()
    purged = []
    for shm in doomed:
        try:
            shm.close()
        except BufferError:
            pass
        try:
            shm.unlink()
        except FileNotFoundError:
            continue
        purged.append(shm.name)
    return purged


def live_segment_names() -> List[str]:
    """Names of segments created but not yet released (leak probe)."""
    with _lock:
        return sorted(_live)


def install_shutdown_handler(
    signum: int = signal.SIGTERM,
) -> Optional[object]:
    """Convert ``signum`` (default ``SIGTERM``) into ``KeyboardInterrupt``.

    ``SIGTERM``'s default disposition kills the process between any two
    bytecodes, skipping every ``finally`` -- leaked pools, leaked
    ``/dev/shm`` segments, truncated telemetry.  Raising
    :class:`KeyboardInterrupt` instead reuses the exact unwinding path
    Ctrl-C already exercises: ``measure``/``run_batch`` terminate their
    pool and release shared memory in ``finally``, and the campaign
    server drains.

    Only effective from the main thread (signal handlers are a
    main-thread affair); returns the previous handler so callers can
    restore it, or ``None`` when not in the main thread.
    """
    if threading.current_thread() is not threading.main_thread():
        return None

    def _raise_interrupt(_signum, _frame):
        raise KeyboardInterrupt(f"signal {_signum}")

    return signal.signal(signum, _raise_interrupt)
