"""GIL-free threaded execution substrate for compiled kernel tapes.

The multiprocess runner (:mod:`repro.parallel.runner`) pays spawn, pickle
and shared-memory costs that only amortize on large meshes.  For the
compiled tape path there is a zero-pickle alternative: numpy ufuncs
release the GIL while they crunch, so chunks of element groups replayed
on a plain :class:`~concurrent.futures.ThreadPoolExecutor` genuinely
overlap -- no processes, no serialization, shared read-only mesh arrays.

This module owns the thread-level plumbing used by
:meth:`repro.core.tape.CompiledTape.execute_chunked`:

* :func:`get_thread_pool` -- one process-wide pool per thread count,
  reused across assemblies (thread spawn is ~100us; a steady-state
  time-stepper must not pay it per step).
* :class:`SlabPool` -- preallocated per-thread arena slabs
  (``(nbufs, chunk_lanes)`` scratch + bool mask), handed out through a
  queue so each in-flight chunk owns private scratch memory sized to
  stay cache-resident.
* :func:`default_chunk_groups` -- the chunk-size heuristic: the largest
  chunk whose arena slab fits the per-thread share of
  :data:`TARGET_SLAB_BYTES`, while still producing enough chunks to keep
  every thread busy.

Determinism: threads only ever *compute* into private slabs and write
disjoint slices of the tape's shared scatter-values buffer; the single
``bincount`` reduction runs serially afterwards.  Thread scheduling can
therefore not change a single bit of the assembled RHS -- the property
the CI determinism check asserts.
"""

from __future__ import annotations

import os
import queue
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional, Tuple

import numpy as np

from ..obs.metrics import get_registry

__all__ = [
    "TARGET_SLAB_BYTES",
    "SlabPool",
    "default_chunk_groups",
    "get_thread_pool",
    "resolve_num_threads",
    "shutdown_thread_pools",
]

#: Target footprint of one thread's arena slab.  Sized for a mid-level
#: cache share: big enough that per-op numpy dispatch overhead stays
#: amortized (hundreds of lanes per ufunc call), small enough that a
#: slab does not thrash a per-core L2.
TARGET_SLAB_BYTES = 4 * 1024 * 1024

_pools: Dict[int, ThreadPoolExecutor] = {}
_pools_lock = threading.Lock()


def resolve_num_threads(num_threads: Optional[int] = None) -> int:
    """Thread count to run with: explicit > ``REPRO_NUM_THREADS`` > CPUs."""
    if num_threads is not None:
        return max(1, int(num_threads))
    env = os.environ.get("REPRO_NUM_THREADS")
    if env:
        return max(1, int(env))
    return max(1, os.cpu_count() or 1)


def get_thread_pool(num_threads: int) -> ThreadPoolExecutor:
    """The process-wide executor with ``num_threads`` workers (cached)."""
    num_threads = max(1, int(num_threads))
    with _pools_lock:
        pool = _pools.get(num_threads)
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=num_threads,
                thread_name_prefix=f"repro-tape-{num_threads}",
            )
            _pools[num_threads] = pool
            get_registry().counter("locality.thread_pools").inc()
        return pool


def shutdown_thread_pools() -> None:
    """Shut down every cached pool (test isolation / interpreter exit)."""
    with _pools_lock:
        for pool in _pools.values():
            pool.shutdown(wait=True)
        _pools.clear()


def default_chunk_groups(
    nbufs: int,
    vector_dim: int,
    ngroups: int,
    num_threads: int,
) -> int:
    """Heuristic chunk size (in element groups) for the threaded executor.

    Two pressures pull in opposite directions: small chunks keep every
    thread's working set (the ``nbufs * chunk_lanes * 8``-byte arena
    slab) cache-resident and balance load, while large chunks amortize
    the per-op numpy dispatch overhead that grows linearly with the
    number of chunks.  The heuristic takes the largest chunk whose slab
    fits :data:`TARGET_SLAB_BYTES`, then shrinks it if needed so the
    sweep yields at least ``2 * num_threads`` chunks (load balancing
    headroom), but never below one group.
    """
    nbufs = max(1, int(nbufs))
    vector_dim = max(1, int(vector_dim))
    ngroups = max(1, int(ngroups))
    num_threads = max(1, int(num_threads))
    lanes_budget = max(vector_dim, TARGET_SLAB_BYTES // (nbufs * 8))
    by_cache = max(1, lanes_budget // vector_dim)
    by_balance = max(1, ngroups // (2 * num_threads))
    return max(1, min(by_cache, by_balance, ngroups))


class SlabPool:
    """Fixed pool of preallocated arena slabs for in-flight chunks.

    Each slab is a private ``(nbufs, lanes)`` float64 scratch arena plus
    a ``(lanes,)`` bool mask.  Workers :meth:`acquire` a slab before
    replaying a chunk and :meth:`release` it afterwards; the queue blocks
    when all slabs are busy, which caps concurrent scratch memory at
    ``count`` slabs no matter how many chunks are queued.
    """

    def __init__(self, nbufs: int, lanes: int, count: int) -> None:
        self.nbufs = int(nbufs)
        self.lanes = int(lanes)
        self.count = max(1, int(count))
        self._queue: "queue.SimpleQueue[Tuple[np.ndarray, np.ndarray]]" = (
            queue.SimpleQueue()
        )
        for _ in range(self.count):
            self._queue.put(
                (
                    np.empty((self.nbufs, self.lanes)),
                    np.empty(self.lanes, dtype=bool),
                )
            )
        get_registry().counter("locality.slab_bytes_allocated").inc(
            self.count * (self.nbufs * self.lanes * 8 + self.lanes)
        )

    def acquire(self) -> Tuple[np.ndarray, np.ndarray]:
        return self._queue.get()

    def release(self, arena: np.ndarray, mask: np.ndarray) -> None:
        self._queue.put((arena, mask))
