"""Incompressible-LES physics substrate: materials, turbulence models,
convective forms, momentum assembly, pressure projection and the explicit
fractional-step integrator."""

from .materials import AIR, WATER, Material, MaterialLaw, evaluate_material
from .turbulence import (
    TurbulenceModel,
    VREMAN_C,
    SMAGORINSKY_CS,
    eddy_viscosity,
    smagorinsky_viscosity,
    vreman_viscosity,
    wale_viscosity,
)
from .convection import ConvectiveForm, convective_term
from .momentum import AssemblyParams, assemble_momentum_rhs, element_rhs

__all__ = [
    "AIR", "WATER", "Material", "MaterialLaw", "evaluate_material",
    "TurbulenceModel", "VREMAN_C", "SMAGORINSKY_CS", "eddy_viscosity",
    "smagorinsky_viscosity", "vreman_viscosity", "wale_viscosity",
    "ConvectiveForm", "convective_term",
    "AssemblyParams", "assemble_momentum_rhs", "element_rhs",
]
