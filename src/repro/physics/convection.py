"""Convective-term forms for the momentum equation.

Alya's low-dissipation scheme (Lehmkuhl et al. 2019) is built around
energy-preserving convective forms.  The kernels in this reproduction use
the non-conservative (advective) form -- the simplest form that yields the
paper's operation mix -- but the substrate provides the energy-relevant
alternatives for the examples and for the convective-form ablation bench.

All functions work per Gauss point on element groups:

``u_q``  : ``(..., 3)`` velocity at the point
``grad`` : ``(..., 3, 3)`` velocity gradient ``du_i/dx_j`` (constant per
           element for P1 tets)
``div``  : ``(...)`` velocity divergence (trace of ``grad``)
"""

from __future__ import annotations

import enum

import numpy as np

__all__ = ["ConvectiveForm", "convective_term"]


class ConvectiveForm(enum.IntEnum):
    """Runtime selector for the convective-term discretization."""

    ADVECTIVE = 0  # (u . grad) u
    SKEW_SYMMETRIC = 1  # (u . grad) u + 0.5 (div u) u
    DIVERGENCE = 2  # (u . grad) u + (div u) u  == div(u x u)
    EMAC = 3  # 2 S u + (div u) u (energy-momentum-angular-momentum conserving)


def advective(u_q: np.ndarray, grad: np.ndarray) -> np.ndarray:
    """``c_i = u_j du_i/dx_j``."""
    return np.einsum("...j,...ij->...i", u_q, grad)


def skew_symmetric(u_q: np.ndarray, grad: np.ndarray) -> np.ndarray:
    div = np.einsum("...ii->...", grad)
    return advective(u_q, grad) + 0.5 * div[..., None] * u_q


def divergence_form(u_q: np.ndarray, grad: np.ndarray) -> np.ndarray:
    div = np.einsum("...ii->...", grad)
    return advective(u_q, grad) + div[..., None] * u_q


def emac(u_q: np.ndarray, grad: np.ndarray) -> np.ndarray:
    """EMAC form: ``2 S(u) u + (div u) u`` with ``S`` the strain rate.

    Note the EMAC form alters the meaning of the pressure variable; for the
    purposes of this library it is exercised by the convective-form ablation
    only.
    """
    sym = 0.5 * (grad + np.swapaxes(grad, -1, -2))
    div = np.einsum("...ii->...", grad)
    return 2.0 * np.einsum("...ij,...j->...i", sym, u_q) + div[..., None] * u_q


_FORMS = {
    ConvectiveForm.ADVECTIVE: advective,
    ConvectiveForm.SKEW_SYMMETRIC: skew_symmetric,
    ConvectiveForm.DIVERGENCE: divergence_form,
    ConvectiveForm.EMAC: emac,
}


def convective_term(
    form: ConvectiveForm | int, u_q: np.ndarray, grad: np.ndarray
) -> np.ndarray:
    """Dispatch on the runtime form flag (baseline-style genericity)."""
    return _FORMS[ConvectiveForm(form)](u_q, grad)
