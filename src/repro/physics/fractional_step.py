"""Explicit fractional-step time integrator.

The paper's context: "incompressible Large Eddy Simulations using a
fractional step scheme with explicit time discretization for momentum",
where "the main computational kernels are the assembly of the RHS
(up to 80% of the total time) and the solution of a linear system of
equations for the pressure".  This integrator reproduces that loop:

1. explicit momentum predictor -- ``sweeps_per_step`` RHS assemblies per
   step (a low-storage Runge-Kutta), each one call into a selected kernel
   variant or the vectorized reference assembly;
2. pressure-Poisson solve (AMG-CG);
3. velocity projection (divergence correction);
4. Dirichlet boundary re-application.

It also keeps the timing breakdown so the examples can show the paper's
"assembly dominates" claim on real runs.

Robustness (the production reality of week-long LES campaigns): each stage
is guarded against NaN/Inf and velocity blow-up; a tripped guard rolls the
step back to the last good state and retries with a halved ``dt`` (bounded
by ``max_dt_halvings``, then a structured :class:`IntegrationError`);
periodic ``.npz`` checkpoints plus :meth:`FractionalStepSolver.restart`
give bitwise-stable restarts.  Every rollback is counted in
``resilience.rollbacks`` and visible as a ``Rollback`` span.
"""

from __future__ import annotations

import dataclasses
import os
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..fem.boundary import DirichletBC
from ..fem.mesh import TetMesh
from ..fem.plan import get_plan
from ..obs.metrics import MetricsRegistry, get_registry
from ..obs.spans import NULL_TRACER
from ..resilience.cancel import CancelToken
from ..resilience.checkpoint import (
    CheckpointError,
    CheckpointState,
    checkpoint_name,
    list_checkpoints,
    load_checkpoint,
    prune_checkpoints,
    save_checkpoint,
)
from .momentum import AssemblyParams, assemble_momentum_rhs, kernel_rhs_assembler
from .pressure import PressureSolver

__all__ = [
    "StepReport",
    "FractionalStepSolver",
    "BatchCampaign",
    "IntegrationError",
    "cfl_time_step",
    "resolve_assembler",
]


class IntegrationError(RuntimeError):
    """A time step could not be completed even after dt-halving retries.

    Carries the failing ``step``, the last attempted ``dt``, the guard
    ``stage`` (``"momentum"`` / ``"pressure"`` / ``"projection"``) and the
    guard ``reason`` so campaign drivers can log and decide (restart from
    checkpoint, change the CFL, give up) without string-parsing.
    """

    def __init__(self, message: str, step: int, dt: float, stage: str, reason: str) -> None:
        super().__init__(message)
        self.step = step
        self.dt = dt
        self.stage = stage
        self.reason = reason

    def context(self) -> dict:
        return {
            "step": self.step,
            "dt": self.dt,
            "stage": self.stage,
            "reason": self.reason,
        }


class _StageFailure(Exception):
    """Internal: a stage guard tripped (caught by the rollback loop)."""

    def __init__(self, stage: str, reason: str) -> None:
        super().__init__(f"{stage}: {reason}")
        self.stage = stage
        self.reason = reason


def resolve_assembler(
    spec: str,
    mesh: TetMesh,
    params: AssemblyParams,
    tracer=None,
    fault_plan=None,
    metrics: Optional[MetricsRegistry] = None,
) -> Callable:
    """Resolve an assembler spec string to an RHS assembly callable.

    ``"reference"`` is the vectorized numpy reference; ``"compiled"``,
    ``"codegen"`` and ``"interpreted"`` run the DSL kernel path (default
    variant RSP) in the corresponding
    :class:`~repro.core.unified.UnifiedAssembler` mode; a
    ``":<VARIANT>"`` suffix (e.g. ``"codegen:RS"``) picks the variant.
    ``"resilient[:VARIANT]"`` wraps the degradation ladder
    (:class:`~repro.resilience.ladders.ResilientAssembler`): compiled,
    validated against the reference on first sweep, degrading to
    interpreted and finally reference if validation fails.
    ``"threaded[:VARIANT]"`` is the compiled tape replayed on the
    GIL-free chunked thread executor (deterministic: bitwise equal to
    ``"compiled"`` at the same vector_dim).
    """
    text = spec.strip().lower()
    if text == "reference":
        return assemble_momentum_rhs
    mode, _, variant = text.partition(":")
    if mode == "threaded":
        return kernel_rhs_assembler(
            mesh,
            params,
            variant=(variant or "RSP"),
            mode="compiled",
            tracer=tracer,
            executor="threads",
        )
    if mode == "resilient":
        from ..resilience.ladders import ResilientAssembler

        return ResilientAssembler(
            mesh,
            params,
            variant=(variant or "RSP"),
            fault_plan=fault_plan,
            tracer=tracer,
            metrics=metrics,
        )
    if mode not in ("compiled", "codegen", "interpreted"):
        raise ValueError(
            f"unknown assembler spec {spec!r}; expected 'reference', "
            "'compiled[:VARIANT]', 'codegen[:VARIANT]', "
            "'interpreted[:VARIANT]', 'threaded[:VARIANT]' or "
            "'resilient[:VARIANT]'"
        )
    return kernel_rhs_assembler(
        mesh, params, variant=(variant or "RSP"), mode=mode, tracer=tracer
    )

#: classical low-storage 3-stage Runge-Kutta coefficients
_RK3_COEFFS = (1.0 / 3.0, 0.5, 1.0)


def cfl_time_step(
    mesh: TetMesh, velocity: np.ndarray, cfl: float = 0.5, floor: float = 1e-12
) -> float:
    """CFL-limited time step ``dt = cfl * min(h / |u|)`` with ``h = V^(1/3)``.

    Raises a descriptive :class:`ValueError` for meshes the formula is
    meaningless on -- no elements at all, or a zero-volume element (which
    would drive ``dt`` to zero and stall the campaign silently).
    """
    vols = get_plan(mesh).element_volumes()
    if vols.size == 0:
        raise ValueError("cfl_time_step: mesh has no elements")
    h = np.cbrt(np.abs(vols))
    hmin = float(h.min())
    if hmin <= 0.0:
        raise ValueError(
            "cfl_time_step: mesh contains a zero-volume element "
            "(min |V| = 0); repair the mesh before time stepping"
        )
    umag = np.linalg.norm(velocity, axis=1)
    umax = float(umag.max()) if umag.size else 0.0
    if umax <= floor:
        return cfl * hmin
    return cfl * hmin / umax


@dataclasses.dataclass
class StepReport:
    """Diagnostics of one time step."""

    step: int
    time: float
    dt: float
    assembly_seconds: float
    pressure_seconds: float
    pressure_iterations: int
    max_velocity: float
    max_divergence: float
    kinetic_energy: float


class FractionalStepSolver:
    """Explicit fractional-step incompressible LES driver.

    Parameters
    ----------
    mesh:
        Tetrahedral mesh.
    params:
        Physical/model parameters shared with the assembly kernels.
    dirichlet:
        Velocity Dirichlet conditions, re-applied after each projection.
    assemble:
        RHS assembly callable ``(mesh, velocity, params) -> (nnode, 3)``;
        defaults to the vectorized reference.  Pass a closure around
        :meth:`repro.core.unified.UnifiedAssembler.assemble` to drive the
        DSL kernel variants end-to-end -- or a string spec:
        ``"reference"`` (the default path), ``"compiled"`` /
        ``"interpreted"`` (DSL assembly of the default RSP variant), or
        ``"compiled:RS"`` / ``"interpreted:B"`` etc. to pick the variant,
        resolved through
        :func:`~repro.physics.momentum.kernel_rhs_assembler`.
    sweeps_per_step:
        Runge-Kutta stages (3, matching the paper's runtime convention).
    tracer:
        Optional :class:`repro.obs.Tracer`; each :meth:`advance` records a
        ``step`` span with nested ``momentum`` / ``pressure`` /
        ``projection`` stage spans.  Defaults to the no-op tracer.
    metrics:
        Registry receiving ``fstep.steps`` / ``fstep.assemblies`` counters
        and the ``fstep.pressure_iterations`` histogram; defaults to the
        process-wide registry.
    max_dt_halvings:
        Rollback budget per step: a stage guard trip (NaN/Inf, blow-up)
        restores the pre-step state and retries with ``dt/2``, at most
        this many times, then raises :class:`IntegrationError`.
    blowup_factor:
        Guard threshold: a step whose max velocity magnitude exceeds
        ``blowup_factor * max(1, previous max)`` is rejected as a CFL
        blow-up even when still finite.
    checkpoint_every, checkpoint_dir:
        When both set, a restartable ``.npz`` checkpoint is written to
        ``checkpoint_dir`` every ``checkpoint_every`` completed steps
        (see :meth:`checkpoint` / :meth:`restart`).
    keep_checkpoints:
        Checkpoint generations retained in ``checkpoint_dir`` (default 2):
        after each periodic checkpoint, older generations are pruned, so
        a corrupted latest checkpoint always leaves a previous one for
        :meth:`restart_latest` to fall back to.
    fault_plan:
        Optional :class:`~repro.resilience.faults.FaultPlan`; its
        ``"momentum_rhs"`` site corrupts one RHS sweep so chaos tests can
        force the rollback path.
    """

    def __init__(
        self,
        mesh: TetMesh,
        params: AssemblyParams,
        dirichlet: Sequence[DirichletBC] = (),
        assemble: Optional[Callable] = None,
        pressure_solver: Optional[PressureSolver] = None,
        sweeps_per_step: int = 3,
        tracer=None,
        metrics: Optional[MetricsRegistry] = None,
        max_dt_halvings: int = 4,
        blowup_factor: float = 100.0,
        checkpoint_every: int = 0,
        checkpoint_dir: Optional[str] = None,
        keep_checkpoints: int = 2,
        fault_plan=None,
    ) -> None:
        self.mesh = mesh
        self.params = params
        self.tracer = NULL_TRACER if tracer is None else tracer
        self._metrics = metrics
        self.dirichlet = list(dirichlet)
        self.fault_plan = fault_plan
        if isinstance(assemble, str):
            assemble = resolve_assembler(
                assemble,
                mesh,
                params,
                tracer=tracer,
                fault_plan=fault_plan,
                metrics=metrics,
            )
        self.assemble = assemble or assemble_momentum_rhs
        self.pressure = pressure_solver or PressureSolver(mesh)
        self.sweeps = int(sweeps_per_step)
        self.max_dt_halvings = int(max_dt_halvings)
        self.blowup_factor = float(blowup_factor)
        self.checkpoint_every = int(checkpoint_every)
        self.checkpoint_dir = checkpoint_dir
        self.keep_checkpoints = max(1, int(keep_checkpoints))
        self._plan = get_plan(mesh)
        self.mass = self._plan.lumped_mass()
        self.velocity = np.zeros((mesh.nnode, 3))
        self.pressure_field = np.zeros(mesh.nnode)
        self.time = 0.0
        self.step_count = 0
        self.history: List[StepReport] = []

    # ------------------------------------------------------------------
    def set_velocity(self, velocity: np.ndarray) -> None:
        velocity = np.asarray(velocity, dtype=np.float64)
        if velocity.shape != self.velocity.shape:
            raise ValueError(
                f"velocity must be {self.velocity.shape}, got {velocity.shape}"
            )
        self.velocity[...] = velocity
        self._apply_bcs(self.velocity)

    def _apply_bcs(self, field: np.ndarray) -> None:
        for bc in self.dirichlet:
            bc.apply(field, self.mesh.coords)

    # ------------------------------------------------------------------
    def max_divergence(self, velocity: Optional[np.ndarray] = None) -> float:
        """Max |div u| over elements (projection-quality diagnostic)."""
        u = self.velocity if velocity is None else velocity
        grads = self._plan.geometry().gradients
        div = np.einsum("eai,eai->e", grads, u[self.mesh.connectivity])
        return float(np.abs(div).max()) if div.size else 0.0

    def kinetic_energy(self) -> float:
        """Mass-weighted kinetic energy ``0.5 sum_m m |u|^2``."""
        return float(
            0.5 * (self.mass * (self.velocity**2).sum(axis=1)).sum()
        )

    # ------------------------------------------------------------------
    def _rk_coeffs(self) -> Tuple[float, ...]:
        if self.sweeps == 3:
            return _RK3_COEFFS
        return tuple((k + 1.0) / self.sweeps for k in range(self.sweeps))

    def _umax(self) -> float:
        if not self.velocity.size:
            return 0.0
        return float(np.linalg.norm(self.velocity, axis=1).max())

    def _predict(self, dt: float) -> Tuple[np.ndarray, float]:
        """Explicit RK momentum predictor (``sweeps`` assemblies).

        Returns ``(u_predictor, t_assembly)``; raises
        :class:`_StageFailure` on a non-finite predictor, leaving the
        solver untouched.
        """
        mesh = self.mesh
        minv = 1.0 / self.mass[:, None]
        with self.tracer.span("momentum", sweeps=self.sweeps):
            t0 = time.perf_counter()
            u0 = self.velocity.copy()
            u = u0
            for c in self._rk_coeffs():
                rhs = self.assemble(mesh, u, self.params)
                if self.fault_plan is not None:
                    self.fault_plan.corrupt("momentum_rhs", rhs)
                u = u0 + (c * dt) * (rhs * minv)
                self._apply_bcs(u)
            t_assembly = time.perf_counter() - t0
        if not np.isfinite(u).all():
            raise _StageFailure("momentum", "non-finite predictor velocity")
        return u, t_assembly

    def _attempt_step(
        self, dt: float
    ) -> Tuple[np.ndarray, np.ndarray, object, float, float]:
        """Compute one candidate step *without mutating solver state*.

        Returns ``(u, p, pressure_result, t_assembly, t_pressure)``;
        raises :class:`_StageFailure` when a stage guard trips, leaving
        the solver untouched so the caller can roll back cheaply.
        """
        umax_before = self._umax()
        u, t_assembly = self._predict(dt)
        u, p, result, t_pressure = self._finish_step(u, dt, umax_before)
        return u, p, result, t_assembly, t_pressure

    def _finish_step(
        self, u: np.ndarray, dt: float, umax_before: float
    ) -> Tuple[np.ndarray, np.ndarray, object, float]:
        """Pressure solve + projection + guards from a predictor velocity.

        Shared by the serial :meth:`_attempt_step` and the lockstep
        :class:`BatchCampaign` (which replaces only the momentum
        predictor with one batched assembly per RK sweep).  Does not
        mutate solver state; raises :class:`_StageFailure` on a tripped
        guard.
        """
        # -- pressure solve -----------------------------------------------
        with self.tracer.span("pressure"):
            t0 = time.perf_counter()
            result = self.pressure.solve(
                u, self.params.density, dt, x0=self.pressure_field
            )
            t_pressure = time.perf_counter() - t0
        if not np.isfinite(result.x).all():
            raise _StageFailure("pressure", "non-finite pressure field")

        # -- projection ---------------------------------------------------
        with self.tracer.span("projection"):
            gradp = self.pressure.pressure_gradient(result.x)
            u = u - (dt / self.params.density) * gradp
            self._apply_bcs(u)
        if not np.isfinite(u).all():
            raise _StageFailure("projection", "non-finite corrected velocity")
        umax_after = float(np.linalg.norm(u, axis=1).max()) if u.size else 0.0
        if umax_after > self.blowup_factor * max(1.0, umax_before):
            raise _StageFailure(
                "projection",
                f"velocity blow-up: max|u| {umax_before:.3e} -> "
                f"{umax_after:.3e} (> {self.blowup_factor:g}x)",
            )
        return u, result.x, result, t_pressure

    def advance(self, dt: float) -> StepReport:
        """One fractional step of size ``dt``.

        Stage guards (NaN/Inf, CFL blow-up) roll the step back to the
        pre-step state and retry with a halved ``dt`` -- up to
        ``max_dt_halvings`` times before a structured
        :class:`IntegrationError`.  A successful step commits state,
        counters and (when configured) the periodic checkpoint.
        """
        if dt <= 0:
            raise ValueError("dt must be positive")
        registry = get_registry() if self._metrics is None else self._metrics
        dt_eff = float(dt)
        failure: Optional[_StageFailure] = None
        for retry in range(self.max_dt_halvings + 1):
            step_span = self.tracer.span(
                "step", step=self.step_count + 1, dt=float(dt_eff), retry=retry
            )
            try:
                with step_span:
                    u, p, result, t_assembly, t_pressure = self._attempt_step(
                        dt_eff
                    )
                break
            except _StageFailure as exc:
                # _attempt_step left self untouched: "rollback" is simply
                # keeping the pre-step state and shrinking dt.
                failure = exc
                registry.counter("resilience.rollbacks").inc()
                with self.tracer.span(
                    "Rollback",
                    step=self.step_count + 1,
                    stage=exc.stage,
                    reason=exc.reason,
                    dt=float(dt_eff),
                ):
                    pass
                dt_eff *= 0.5
        else:
            assert failure is not None
            raise IntegrationError(
                f"step {self.step_count + 1} failed after "
                f"{self.max_dt_halvings} dt-halvings "
                f"(last dt={dt_eff * 2.0:.3e}): {failure}",
                step=self.step_count + 1,
                dt=dt_eff * 2.0,
                stage=failure.stage,
                reason=failure.reason,
            )

        return self._commit_step(u, p, result, dt_eff, t_assembly, t_pressure)

    def _commit_step(
        self,
        u: np.ndarray,
        p: np.ndarray,
        result,
        dt_eff: float,
        t_assembly: float,
        t_pressure: float,
    ) -> StepReport:
        """Commit an accepted step: state, counters, history, checkpoint."""
        registry = get_registry() if self._metrics is None else self._metrics
        registry.counter("fstep.steps").inc()
        registry.counter("fstep.assemblies").inc(self.sweeps)
        registry.histogram("fstep.pressure_iterations").record(result.iterations)

        self.velocity = u
        self.pressure_field = p
        self.time += dt_eff
        self.step_count += 1
        report = StepReport(
            step=self.step_count,
            time=self.time,
            dt=dt_eff,
            assembly_seconds=t_assembly,
            pressure_seconds=t_pressure,
            pressure_iterations=result.iterations,
            max_velocity=float(np.linalg.norm(u, axis=1).max()),
            max_divergence=self.max_divergence(u),
            kinetic_energy=self.kinetic_energy(),
        )
        self.history.append(report)
        if (
            self.checkpoint_every > 0
            and self.checkpoint_dir is not None
            and self.step_count % self.checkpoint_every == 0
        ):
            self.checkpoint()
        return report

    # -- checkpoint / restart ------------------------------------------
    def checkpoint(self, path: Optional[str] = None) -> str:
        """Write a restartable ``.npz`` checkpoint; returns the path.

        Defaults to ``checkpoint_dir/checkpoint_<step>.npz`` (and prunes
        the directory down to ``keep_checkpoints`` generations); pass an
        explicit ``path`` for ad-hoc checkpoints (no pruning).
        """
        auto = path is None
        if path is None:
            if self.checkpoint_dir is None:
                raise ValueError(
                    "no checkpoint_dir configured; pass an explicit path"
                )
            path = checkpoint_name(self.checkpoint_dir, self.step_count)
        registry = get_registry() if self._metrics is None else self._metrics
        with self.tracer.span("checkpoint", step=self.step_count, path=path):
            save_checkpoint(
                path,
                velocity=self.velocity,
                pressure=self.pressure_field,
                time=self.time,
                step=self.step_count,
                nnode=self.mesh.nnode,
                nelem=self.mesh.nelem,
            )
        registry.counter("resilience.checkpoints").inc()
        if auto:
            prune_checkpoints(self.checkpoint_dir, keep=self.keep_checkpoints)
        return path

    def restart(self, path: str) -> "FractionalStepSolver":
        """Restore state from a checkpoint written by :meth:`checkpoint`.

        The restored run is bitwise identical to the uninterrupted one
        (full-precision state, deterministic assembly and solves).  Prior
        in-memory ``history`` is cleared -- it described a different
        trajectory prefix.  Returns ``self`` for chaining::

            solver = FractionalStepSolver(mesh, params).restart(path)
        """
        state = load_checkpoint(path)
        return self._restore(state)

    def _restore(self, state: CheckpointState) -> "FractionalStepSolver":
        state.validate_against(self.mesh.nnode, self.mesh.nelem)
        self.velocity = state.velocity
        self.pressure_field = state.pressure
        self.time = state.time
        self.step_count = state.step
        self.history = []
        self._apply_bcs(self.velocity)
        return self

    def restart_latest(
        self, directory: Optional[str] = None
    ) -> "FractionalStepSolver":
        """Restore from the newest loadable checkpoint in ``directory``.

        A truncated or corrupt newest generation is skipped (counted in
        ``resilience.checkpoint_fallbacks`` with a ``CheckpointFallback``
        span) and the previous generation is tried -- the reason
        :meth:`checkpoint` keeps ``keep_checkpoints >= 2`` generations.
        Raises :class:`~repro.resilience.checkpoint.CheckpointError` when
        no checkpoint in the directory loads.
        """
        directory = directory if directory is not None else self.checkpoint_dir
        if directory is None:
            raise ValueError("no checkpoint_dir configured; pass a directory")
        registry = get_registry() if self._metrics is None else self._metrics
        candidates = list_checkpoints(directory)
        if not candidates:
            raise CheckpointError(f"no checkpoints in {directory!r}")
        last_error: Optional[CheckpointError] = None
        for path in reversed(candidates):
            try:
                state = load_checkpoint(path)
                state.validate_against(self.mesh.nnode, self.mesh.nelem)
            except CheckpointError as exc:
                last_error = exc
                registry.counter("resilience.checkpoint_fallbacks").inc()
                with self.tracer.span(
                    "CheckpointFallback", path=path, reason=str(exc)
                ):
                    pass
                continue
            return self._restore(state)
        raise CheckpointError(
            f"no loadable checkpoint in {directory!r} "
            f"({len(candidates)} candidates; last error: {last_error})"
        )

    # ------------------------------------------------------------------
    def run(
        self,
        steps: int,
        cfl: float = 0.5,
        dt: Optional[float] = None,
        callback: Optional[Callable[[StepReport], None]] = None,
        cancel: Optional[CancelToken] = None,
    ) -> List[StepReport]:
        """Advance ``steps`` steps with CFL-adaptive (or fixed) dt.

        ``cancel`` is checked *between* steps -- a tripped token raises
        :class:`~repro.resilience.cancel.CooperativeCancel` with solver
        state at the last committed step, so the caller can checkpoint
        or report partial results safely.
        """
        out = []
        for _ in range(steps):
            if cancel is not None:
                cancel.check()
            step_dt = dt if dt is not None else cfl_time_step(
                self.mesh, self.velocity, cfl
            )
            rep = self.advance(step_dt)
            if callback is not None:
                callback(rep)
            out.append(rep)
        return out

    def timing_breakdown(self) -> Dict[str, float]:
        """Cumulative assembly vs pressure seconds (the paper's 80% claim)."""
        ta = sum(r.assembly_seconds for r in self.history)
        tp = sum(r.pressure_seconds for r in self.history)
        total = ta + tp
        return {
            "assembly_seconds": ta,
            "pressure_seconds": tp,
            "assembly_fraction": ta / total if total else 0.0,
        }


class BatchCampaign:
    """``S`` fractional-step trajectories advanced in lockstep.

    A parameter campaign (different viscosity / density / forcing /
    Vreman constant, one shared mesh) runs all ``S`` momentum predictors
    through **one** batched assembly per Runge-Kutta sweep
    (:meth:`repro.core.unified.UnifiedAssembler.run_batch`) instead of
    ``S`` serial assemblies -- the pressure solve and projection stay
    per-scenario.  Each scenario's trajectory is bit-identical to a solo
    :class:`FractionalStepSolver` run of the same configuration at the
    same ``vector_dim``.

    Fault isolation: a scenario whose predictor or pressure/projection
    guard trips is *permanently detached* from the lockstep batch
    (counted in ``resilience.batch_isolations`` with a
    ``BatchIsolation`` span) and from then on advances alone through the
    ordinary :meth:`FractionalStepSolver.advance` rollback machinery --
    the surviving ``S - 1`` scenarios keep the batched fast path and
    their results are untouched.

    Parameters
    ----------
    mesh:
        Shared tetrahedral mesh.
    scenarios:
        A :class:`~repro.core.batch.ScenarioBatch` or a sequence of
        :class:`AssemblyParams` (batched on the fly).
    variant, mode:
        DSL kernel variant and execution mode (``"compiled"`` /
        ``"codegen"`` / ``"interpreted"``) for the batched assembly.
    vector_dim:
        Element-group size.  Resolved **once** at construction (explicit
        value, else the plan's autotuned ``"<mode>@S<S>"`` or
        ``(variant, mode)`` winner, else the CPU default) and pinned, so
        detached scenarios' solo assemblies stay bit-identical to the
        batched path.
    dirichlet, sweeps_per_step, max_dt_halvings, blowup_factor:
        Forwarded to every per-scenario solver.
    pressure_solver:
        Shared :class:`PressureSolver` (AMG setup paid once); defaults
        to a fresh solver on ``mesh``.
    executor, num_threads:
        Batched-assembly executor (``"serial"`` or ``"threads"``).
    fault_plans:
        Optional per-scenario sequence of
        :class:`~repro.resilience.faults.FaultPlan` (``None`` entries
        allowed); scenario ``s``'s plan corrupts only its own
        ``"momentum_rhs"`` sweeps.
    """

    def __init__(
        self,
        mesh: TetMesh,
        scenarios,
        variant: str = "RSP",
        mode: str = "compiled",
        vector_dim: Optional[int] = None,
        dirichlet: Sequence[DirichletBC] = (),
        pressure_solver: Optional[PressureSolver] = None,
        sweeps_per_step: int = 3,
        tracer=None,
        metrics: Optional[MetricsRegistry] = None,
        max_dt_halvings: int = 4,
        blowup_factor: float = 100.0,
        executor: str = "serial",
        num_threads: Optional[int] = None,
        fault_plans: Optional[Sequence] = None,
    ) -> None:
        from ..core.batch import ScenarioBatch
        from ..core.unified import UnifiedAssembler

        if not isinstance(scenarios, ScenarioBatch):
            scenarios = ScenarioBatch(scenarios)
        self.mesh = mesh
        self.batch = scenarios
        self.variant = variant.upper()
        self.mode = mode
        self.tracer = NULL_TRACER if tracer is None else tracer
        self._metrics = metrics
        S = self.batch.size
        if fault_plans is None:
            fault_plans = [None] * S
        if len(fault_plans) != S:
            raise ValueError(
                f"fault_plans must have one entry per scenario "
                f"({S}), got {len(fault_plans)}"
            )
        self.assembler = UnifiedAssembler(
            mesh,
            self.batch[0],
            mode=mode,
            vector_dim=vector_dim,
            tracer=self.tracer,
            executor=executor,
            num_threads=num_threads,
        )
        # Pin the group size now (autotuned winners may differ between
        # "<mode>@S<S>" and plain "<mode>"): solo sub-assemblers inherit
        # this exact value, keeping detached scenarios bit-identical to
        # the batched fast path.
        self.vector_dim = self.assembler.resolve_vector_dim(
            self.variant, scenarios=S
        )
        self.assembler.vector_dim = self.vector_dim
        self.pressure = pressure_solver or PressureSolver(mesh)
        self.solvers: List[FractionalStepSolver] = [
            FractionalStepSolver(
                mesh,
                self.batch[s],
                dirichlet=dirichlet,
                assemble=self._solo_assemble(self.batch[s]),
                pressure_solver=self.pressure,
                sweeps_per_step=sweeps_per_step,
                tracer=self.tracer,
                metrics=metrics,
                max_dt_halvings=max_dt_halvings,
                blowup_factor=blowup_factor,
                fault_plan=fault_plans[s],
            )
            for s in range(S)
        ]
        self.mass = self.solvers[0].mass
        self._detached: set = set()

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return self.batch.size

    @property
    def detached(self) -> Tuple[int, ...]:
        """Scenarios that left the lockstep batch (sorted, permanent)."""
        return tuple(sorted(self._detached))

    def _solo_assemble(self, params: AssemblyParams) -> Callable:
        """Solo assembly closure sharing the campaign's scenario cache."""
        asm = self.assembler._scenario_assembler(params)
        variant = self.variant

        def assemble(mesh, velocity, p):
            return asm.assemble(variant, velocity)

        return assemble

    def set_velocities(self, velocity: np.ndarray) -> None:
        """Set initial velocities: one shared ``(nnode, 3)`` field or
        per-scenario ``(S, nnode, 3)``."""
        velocity = np.asarray(velocity, dtype=np.float64)
        if velocity.shape == (self.mesh.nnode, 3):
            for solver in self.solvers:
                solver.set_velocity(velocity)
        elif velocity.shape == (self.size, self.mesh.nnode, 3):
            for s, solver in enumerate(self.solvers):
                solver.set_velocity(velocity[s])
        else:
            raise ValueError(
                f"velocity must be ({self.mesh.nnode}, 3) shared or "
                f"({self.size}, {self.mesh.nnode}, 3), got {velocity.shape}"
            )

    def velocities(self) -> np.ndarray:
        """Stacked ``(S, nnode, 3)`` per-scenario velocity fields."""
        return np.stack([solver.velocity for solver in self.solvers])

    # ------------------------------------------------------------------
    def _lockstep_predict(
        self, dt: float, active: Sequence[int]
    ) -> Tuple[np.ndarray, float]:
        """All active momentum predictors, one batched assembly per sweep.

        Per-scenario updates use the exact expression order of the solo
        :meth:`FractionalStepSolver._predict` (``u0 + (c*dt)*(rhs*minv)``
        with the scenario's own RHS row), so each row is bitwise equal
        to the corresponding solo predictor.
        """
        from ..core.batch import ScenarioBatch

        solvers = [self.solvers[s] for s in active]
        sub = (
            self.batch
            if len(active) == self.batch.size
            else ScenarioBatch([self.batch[s] for s in active])
        )
        minv = 1.0 / self.mass[:, None]
        u0 = np.stack([sv.velocity for sv in solvers])
        u = u0.copy()
        failed = np.zeros(len(solvers), dtype=bool)
        with self.tracer.span(
            "momentum", sweeps=solvers[0].sweeps, scenarios=len(active)
        ):
            t0 = time.perf_counter()
            for c in solvers[0]._rk_coeffs():
                rhs = self.assembler.run_batch(self.variant, sub, u)
                for j, sv in enumerate(solvers):
                    if failed[j]:
                        continue
                    if sv.fault_plan is not None:
                        sv.fault_plan.corrupt("momentum_rhs", rhs[j])
                    u[j] = u0[j] + (c * dt) * (rhs[j] * minv)
                    sv._apply_bcs(u[j])
                    if not np.isfinite(u[j]).all():
                        # Freeze the row at its (finite) initial state so
                        # the remaining batched sweeps stay NaN-free for
                        # the healthy scenarios; the guard below detaches
                        # this one.  Scenario rows are independent, so
                        # the substitution cannot perturb the others.
                        failed[j] = True
                        u[j] = u0[j]
            t_assembly = time.perf_counter() - t0
        for j in np.flatnonzero(failed):
            u[j] = np.nan
        return u, t_assembly

    def _detach(self, s: int, exc: _StageFailure) -> None:
        from ..resilience.ladders import record_escalation

        record_escalation(
            "BatchIsolation",
            "resilience.batch_isolations",
            self.tracer,
            self._metrics,
            scenario=s,
            stage=exc.stage,
            reason=exc.reason,
        )
        self._detached.add(s)

    def advance(self, dt: float) -> List[StepReport]:
        """One lockstep time step; returns per-scenario step reports.

        Active scenarios share one batched assembly per RK sweep; their
        pressure solves, projections and guards run per scenario.  A
        guard trip detaches that scenario (its state is still pre-step)
        and hands it to its solo solver's rollback loop -- other
        scenarios commit their batched results untouched.  Previously
        detached scenarios advance solo.
        """
        if dt <= 0:
            raise ValueError("dt must be positive")
        S = self.size
        registry = get_registry() if self._metrics is None else self._metrics
        reports: List[Optional[StepReport]] = [None] * S
        active = [s for s in range(S) if s not in self._detached]
        with self.tracer.span(
            "campaign_step", scenarios=S, active=len(active), dt=float(dt)
        ):
            if active:
                registry.counter("fstep.batch_steps").inc()
                registry.counter("fstep.batch_lockstep_scenarios").inc(
                    len(active)
                )
                umax = {s: self.solvers[s]._umax() for s in active}
                u_pred, t_assembly = self._lockstep_predict(dt, active)
                t_share = t_assembly / len(active)
                for j, s in enumerate(active):
                    sv = self.solvers[s]
                    try:
                        if not np.isfinite(u_pred[j]).all():
                            raise _StageFailure(
                                "momentum", "non-finite predictor velocity"
                            )
                        u, p, result, t_pressure = sv._finish_step(
                            u_pred[j], dt, umax[s]
                        )
                    except _StageFailure as exc:
                        # sv state is still pre-step: detach and let the
                        # solo rollback loop (dt-halving) handle it.
                        self._detach(s, exc)
                        reports[s] = sv.advance(dt)
                    else:
                        reports[s] = sv._commit_step(
                            u, p, result, dt, t_share, t_pressure
                        )
            for s in range(S):
                if reports[s] is None:
                    reports[s] = self.solvers[s].advance(dt)
        return reports

    def run(
        self,
        steps: int,
        cfl: float = 0.5,
        dt: Optional[float] = None,
        callback: Optional[Callable[[List[StepReport]], None]] = None,
        cancel: Optional[CancelToken] = None,
    ) -> List[List[StepReport]]:
        """Advance ``steps`` lockstep steps with a common (CFL-min or
        fixed) dt; returns the per-step lists of scenario reports.

        ``cancel`` is checked between lockstep steps; a tripped token
        raises with every scenario at its last committed step, so
        :meth:`checkpoint` still writes a consistent campaign snapshot.
        """
        out = []
        for _ in range(steps):
            if cancel is not None:
                cancel.check()
            step_dt = dt if dt is not None else min(
                cfl_time_step(self.mesh, solver.velocity, cfl)
                for solver in self.solvers
            )
            reps = self.advance(step_dt)
            if callback is not None:
                callback(reps)
            out.append(reps)
        return out

    def checkpoint(self, directory: str) -> List[str]:
        """Checkpoint every scenario into ``directory``; returns paths.

        Written as ``scenario_<s>/checkpoint_<step>.npz`` so a drained
        campaign can be resumed per scenario via
        :meth:`FractionalStepSolver.restart_latest`.
        """
        paths = []
        for s, solver in enumerate(self.solvers):
            sub = os.path.join(directory, f"scenario_{s}")
            path = checkpoint_name(sub, solver.step_count)
            paths.append(solver.checkpoint(path))
        return paths

    def timing_breakdown(self) -> Dict[str, float]:
        """Campaign-wide cumulative assembly vs pressure seconds."""
        ta = sum(
            r.assembly_seconds for sv in self.solvers for r in sv.history
        )
        tp = sum(
            r.pressure_seconds for sv in self.solvers for r in sv.history
        )
        total = ta + tp
        return {
            "assembly_seconds": ta,
            "pressure_seconds": tp,
            "assembly_fraction": ta / total if total else 0.0,
        }
