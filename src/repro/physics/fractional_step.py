"""Explicit fractional-step time integrator.

The paper's context: "incompressible Large Eddy Simulations using a
fractional step scheme with explicit time discretization for momentum",
where "the main computational kernels are the assembly of the RHS
(up to 80% of the total time) and the solution of a linear system of
equations for the pressure".  This integrator reproduces that loop:

1. explicit momentum predictor -- ``sweeps_per_step`` RHS assemblies per
   step (a low-storage Runge-Kutta), each one call into a selected kernel
   variant or the vectorized reference assembly;
2. pressure-Poisson solve (AMG-CG);
3. velocity projection (divergence correction);
4. Dirichlet boundary re-application.

It also keeps the timing breakdown so the examples can show the paper's
"assembly dominates" claim on real runs.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..fem.boundary import DirichletBC
from ..fem.mesh import TetMesh
from ..fem.plan import get_plan
from ..obs.metrics import MetricsRegistry, get_registry
from ..obs.spans import NULL_TRACER
from .momentum import AssemblyParams, assemble_momentum_rhs, kernel_rhs_assembler
from .pressure import PressureSolver

__all__ = [
    "StepReport",
    "FractionalStepSolver",
    "cfl_time_step",
    "resolve_assembler",
]


def resolve_assembler(
    spec: str, mesh: TetMesh, params: AssemblyParams, tracer=None
) -> Callable:
    """Resolve an assembler spec string to an RHS assembly callable.

    ``"reference"`` is the vectorized numpy reference; ``"compiled"`` and
    ``"interpreted"`` run the DSL kernel path (default variant RSP) in the
    corresponding :class:`~repro.core.unified.UnifiedAssembler` mode; a
    ``":<VARIANT>"`` suffix (e.g. ``"compiled:RS"``) picks the variant.
    """
    text = spec.strip().lower()
    if text == "reference":
        return assemble_momentum_rhs
    mode, _, variant = text.partition(":")
    if mode not in ("compiled", "interpreted"):
        raise ValueError(
            f"unknown assembler spec {spec!r}; expected 'reference', "
            "'compiled[:VARIANT]' or 'interpreted[:VARIANT]'"
        )
    return kernel_rhs_assembler(
        mesh, params, variant=(variant or "RSP"), mode=mode, tracer=tracer
    )

#: classical low-storage 3-stage Runge-Kutta coefficients
_RK3_COEFFS = (1.0 / 3.0, 0.5, 1.0)


def cfl_time_step(
    mesh: TetMesh, velocity: np.ndarray, cfl: float = 0.5, floor: float = 1e-12
) -> float:
    """CFL-limited time step ``dt = cfl * min(h / |u|)`` with ``h = V^(1/3)``."""
    h = np.cbrt(np.abs(get_plan(mesh).element_volumes()))
    umag = np.linalg.norm(velocity, axis=1)
    umax = float(umag.max()) if umag.size else 0.0
    if umax <= floor:
        return cfl * float(h.min())
    return cfl * float(h.min()) / umax


@dataclasses.dataclass
class StepReport:
    """Diagnostics of one time step."""

    step: int
    time: float
    dt: float
    assembly_seconds: float
    pressure_seconds: float
    pressure_iterations: int
    max_velocity: float
    max_divergence: float
    kinetic_energy: float


class FractionalStepSolver:
    """Explicit fractional-step incompressible LES driver.

    Parameters
    ----------
    mesh:
        Tetrahedral mesh.
    params:
        Physical/model parameters shared with the assembly kernels.
    dirichlet:
        Velocity Dirichlet conditions, re-applied after each projection.
    assemble:
        RHS assembly callable ``(mesh, velocity, params) -> (nnode, 3)``;
        defaults to the vectorized reference.  Pass a closure around
        :meth:`repro.core.unified.UnifiedAssembler.assemble` to drive the
        DSL kernel variants end-to-end -- or a string spec:
        ``"reference"`` (the default path), ``"compiled"`` /
        ``"interpreted"`` (DSL assembly of the default RSP variant), or
        ``"compiled:RS"`` / ``"interpreted:B"`` etc. to pick the variant,
        resolved through
        :func:`~repro.physics.momentum.kernel_rhs_assembler`.
    sweeps_per_step:
        Runge-Kutta stages (3, matching the paper's runtime convention).
    tracer:
        Optional :class:`repro.obs.Tracer`; each :meth:`advance` records a
        ``step`` span with nested ``momentum`` / ``pressure`` /
        ``projection`` stage spans.  Defaults to the no-op tracer.
    metrics:
        Registry receiving ``fstep.steps`` / ``fstep.assemblies`` counters
        and the ``fstep.pressure_iterations`` histogram; defaults to the
        process-wide registry.
    """

    def __init__(
        self,
        mesh: TetMesh,
        params: AssemblyParams,
        dirichlet: Sequence[DirichletBC] = (),
        assemble: Optional[Callable] = None,
        pressure_solver: Optional[PressureSolver] = None,
        sweeps_per_step: int = 3,
        tracer=None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.mesh = mesh
        self.params = params
        self.tracer = NULL_TRACER if tracer is None else tracer
        self._metrics = metrics
        self.dirichlet = list(dirichlet)
        if isinstance(assemble, str):
            assemble = resolve_assembler(
                assemble, mesh, params, tracer=tracer
            )
        self.assemble = assemble or assemble_momentum_rhs
        self.pressure = pressure_solver or PressureSolver(mesh)
        self.sweeps = int(sweeps_per_step)
        self._plan = get_plan(mesh)
        self.mass = self._plan.lumped_mass()
        self.velocity = np.zeros((mesh.nnode, 3))
        self.pressure_field = np.zeros(mesh.nnode)
        self.time = 0.0
        self.step_count = 0
        self.history: List[StepReport] = []

    # ------------------------------------------------------------------
    def set_velocity(self, velocity: np.ndarray) -> None:
        velocity = np.asarray(velocity, dtype=np.float64)
        if velocity.shape != self.velocity.shape:
            raise ValueError(
                f"velocity must be {self.velocity.shape}, got {velocity.shape}"
            )
        self.velocity[...] = velocity
        self._apply_bcs(self.velocity)

    def _apply_bcs(self, field: np.ndarray) -> None:
        for bc in self.dirichlet:
            bc.apply(field, self.mesh.coords)

    # ------------------------------------------------------------------
    def max_divergence(self, velocity: Optional[np.ndarray] = None) -> float:
        """Max |div u| over elements (projection-quality diagnostic)."""
        u = self.velocity if velocity is None else velocity
        grads = self._plan.geometry().gradients
        div = np.einsum("eai,eai->e", grads, u[self.mesh.connectivity])
        return float(np.abs(div).max()) if div.size else 0.0

    def kinetic_energy(self) -> float:
        """Mass-weighted kinetic energy ``0.5 sum_m m |u|^2``."""
        return float(
            0.5 * (self.mass * (self.velocity**2).sum(axis=1)).sum()
        )

    # ------------------------------------------------------------------
    def advance(self, dt: float) -> StepReport:
        """One fractional step of size ``dt``."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        mesh = self.mesh
        minv = 1.0 / self.mass[:, None]
        registry = get_registry() if self._metrics is None else self._metrics
        step_span = self.tracer.span(
            "step", step=self.step_count + 1, dt=float(dt)
        )
        with step_span:
            # -- explicit RK momentum predictor (sweeps assemblies) -------
            with self.tracer.span("momentum", sweeps=self.sweeps):
                t0 = time.perf_counter()
                u0 = self.velocity.copy()
                u = u0
                coeffs = _RK3_COEFFS if self.sweeps == 3 else tuple(
                    (k + 1.0) / self.sweeps for k in range(self.sweeps)
                )
                for c in coeffs:
                    rhs = self.assemble(mesh, u, self.params)
                    u = u0 + (c * dt) * (rhs * minv)
                    self._apply_bcs(u)
                t_assembly = time.perf_counter() - t0

            # -- pressure solve -------------------------------------------
            with self.tracer.span("pressure"):
                t0 = time.perf_counter()
                result = self.pressure.solve(
                    u, self.params.density, dt, x0=self.pressure_field
                )
                t_pressure = time.perf_counter() - t0
                self.pressure_field = result.x

            # -- projection -----------------------------------------------
            with self.tracer.span("projection"):
                gradp = self.pressure.pressure_gradient(self.pressure_field)
                u = u - (dt / self.params.density) * gradp
                self._apply_bcs(u)

        registry.counter("fstep.steps").inc()
        registry.counter("fstep.assemblies").inc(self.sweeps)
        registry.histogram("fstep.pressure_iterations").record(result.iterations)

        self.velocity = u
        self.time += dt
        self.step_count += 1
        report = StepReport(
            step=self.step_count,
            time=self.time,
            dt=dt,
            assembly_seconds=t_assembly,
            pressure_seconds=t_pressure,
            pressure_iterations=result.iterations,
            max_velocity=float(np.linalg.norm(u, axis=1).max()),
            max_divergence=self.max_divergence(u),
            kinetic_energy=self.kinetic_energy(),
        )
        self.history.append(report)
        return report

    # ------------------------------------------------------------------
    def run(
        self,
        steps: int,
        cfl: float = 0.5,
        dt: Optional[float] = None,
        callback: Optional[Callable[[StepReport], None]] = None,
    ) -> List[StepReport]:
        """Advance ``steps`` steps with CFL-adaptive (or fixed) dt."""
        out = []
        for _ in range(steps):
            step_dt = dt if dt is not None else cfl_time_step(
                self.mesh, self.velocity, cfl
            )
            rep = self.advance(step_dt)
            if callback is not None:
                callback(rep)
            out.append(rep)
        return out

    def timing_breakdown(self) -> Dict[str, float]:
        """Cumulative assembly vs pressure seconds (the paper's 80% claim)."""
        ta = sum(r.assembly_seconds for r in self.history)
        tp = sum(r.pressure_seconds for r in self.history)
        total = ta + tp
        return {
            "assembly_seconds": ta,
            "pressure_seconds": tp,
            "assembly_fraction": ta / total if total else 0.0,
        }
