"""Constitutive (material) models for density and viscosity.

In default Alya, "specific subroutines calculate the density and viscosity
depending on the constitutive model that the user selects in input files" --
even though "in nearly all of the flow problems we solve, density and
viscosity are constant".  The paper's specialization replaces the runtime
dispatch with Fortran ``parameter`` constants.

The baseline kernel in this reproduction calls :func:`evaluate_material`
with a runtime law id (extra branches + parameter loads); the specialized
kernels inline the constants.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Tuple

import numpy as np

__all__ = [
    "MaterialLaw",
    "Material",
    "evaluate_material",
    "AIR",
    "WATER",
]


class MaterialLaw(enum.IntEnum):
    CONSTANT = 0
    SUTHERLAND = 1  # temperature-dependent viscosity
    BOUSSINESQ = 2  # temperature-dependent density (linearized)


@dataclasses.dataclass(frozen=True)
class Material:
    """Fluid properties with optional temperature dependence."""

    name: str
    density: float
    kinematic_viscosity: float
    law: MaterialLaw = MaterialLaw.CONSTANT
    reference_temperature: float = 293.15
    expansion_coefficient: float = 3.4e-3
    sutherland_s: float = 110.4

    @property
    def dynamic_viscosity(self) -> float:
        return self.density * self.kinematic_viscosity


AIR = Material("air", density=1.204, kinematic_viscosity=1.516e-5)
WATER = Material("water", density=998.2, kinematic_viscosity=1.004e-6)


def evaluate_material(
    material: Material, temperature: np.ndarray | None = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Evaluate (density, kinematic viscosity) fields for a material law.

    For :data:`MaterialLaw.CONSTANT` the result broadcasts scalars; the
    temperature-dependent laws need a temperature array.  This mirrors the
    generality the specialized kernels drop.
    """
    if material.law is MaterialLaw.CONSTANT or temperature is None:
        shape = () if temperature is None else np.shape(temperature)
        return (
            np.broadcast_to(material.density, shape).astype(np.float64),
            np.broadcast_to(material.kinematic_viscosity, shape).astype(
                np.float64
            ),
        )
    t = np.asarray(temperature, dtype=np.float64)
    if material.law is MaterialLaw.SUTHERLAND:
        t0 = material.reference_temperature
        s = material.sutherland_s
        mu_ratio = (t / t0) ** 1.5 * (t0 + s) / (t + s)
        return (
            np.full_like(t, material.density),
            material.kinematic_viscosity * mu_ratio,
        )
    if material.law is MaterialLaw.BOUSSINESQ:
        rho = material.density * (
            1.0
            - material.expansion_coefficient
            * (t - material.reference_temperature)
        )
        return rho, np.full_like(t, material.kinematic_viscosity)
    raise ValueError(f"unknown material law {material.law}")
