"""Momentum right-hand-side assembly: the reference implementation.

This module defines the *discrete operator* every kernel variant in
:mod:`repro.core` must reproduce, as a straightforward vectorized numpy
implementation over all elements at once.  It is the oracle the
variant-equality tests compare against, and the fast array-level path the
time integrator uses.

Discrete operator (per linear tetrahedron ``e`` with nodes ``a``,
4-point Gauss rule ``q``, velocity ``u``, constant density ``rho`` and
kinematic viscosity ``nu``):

.. math::

    R_{ai} = \\sum_q w_q |J| N_{aq} \\rho (f_i - c_i(u_q, g))
             - V \\mu_{eff} \\sum_j \\partial_j N_a (g_{ij} + g_{ji})

with ``g_ij = du_i/dx_j`` (constant per element), ``c`` the convective term,
``mu_eff = rho (nu + nu_t)`` and ``nu_t`` the Vreman viscosity evaluated
once per element with ``delta^2 = V^{2/3}``.

The assembled global RHS is the sum of elemental contributions (scatter-add
over shared nodes).  Dividing by the lumped mass gives the explicit
acceleration; that step belongs to the time integrator, not the assembly.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

import numpy as np

from ..fem.mesh import TetMesh
from ..fem.geometry import tet4_gradients
from ..fem.quadrature import rule_for
from ..fem.reference import TET04
from .convection import ConvectiveForm, convective_term
from .turbulence import TurbulenceModel, VREMAN_C, eddy_viscosity

__all__ = [
    "AssemblyParams",
    "BATCHABLE_PARAMS",
    "FLAG_PARAMS",
    "assemble_momentum_rhs",
    "element_rhs",
    "kernel_rhs_assembler",
]

#: kernel-parameter names that may vary per scenario inside one
#: :class:`~repro.core.batch.ScenarioBatch` -- scalar physics values the
#: batched tape can carry as per-scenario ``(S, 1)`` rows.
BATCHABLE_PARAMS = (
    "density",
    "viscosity",
    "force_x",
    "force_y",
    "force_z",
    "vreman_c",
)

#: kernel-parameter names that select code paths at record time
#: (read through ``runtime_flag`` and folded into Python control flow);
#: these must be uniform across a scenario batch.
FLAG_PARAMS = ("turbulence_model", "convective_form", "material_law")


@dataclasses.dataclass(frozen=True)
class AssemblyParams:
    """Physical and model parameters of the momentum assembly.

    The *specialized* kernels treat ``density``, ``viscosity`` and the model
    selectors as compile-time constants; the baseline reads them as runtime
    values -- both must describe the same physics, which is this object.
    """

    density: float = 1.0
    viscosity: float = 1.0e-3
    body_force: Tuple[float, float, float] = (0.0, 0.0, 0.0)
    turbulence_model: TurbulenceModel = TurbulenceModel.VREMAN
    vreman_c: float = VREMAN_C
    convective_form: ConvectiveForm = ConvectiveForm.ADVECTIVE

    def as_kernel_params(self) -> dict:
        """Flatten to the runtime-parameter dict the DSL kernels read."""
        return {
            "density": self.density,
            "viscosity": self.viscosity,
            "force_x": self.body_force[0],
            "force_y": self.body_force[1],
            "force_z": self.body_force[2],
            "turbulence_model": int(self.turbulence_model),
            "vreman_c": self.vreman_c,
            "convective_form": int(self.convective_form),
            "material_law": 0,
        }


def element_rhs(
    xel: np.ndarray,
    uel: np.ndarray,
    params: AssemblyParams,
    geometry=None,
) -> np.ndarray:
    """Elemental momentum RHS for a batch of tetrahedra.

    Parameters
    ----------
    xel:
        ``(nelem, 4, 3)`` node coordinates.
    uel:
        ``(nelem, 4, 3)`` node velocities.
    params:
        Assembly parameters.
    geometry:
        Optional precomputed :class:`~repro.fem.plan.GeometryCache` for
        exactly these elements; when given, the (time-invariant) P1
        gradients and Jacobians are not re-derived.

    Returns
    -------
    ``(nelem, 4, 3)`` elemental RHS contributions.
    """
    xel = np.asarray(xel, dtype=np.float64)
    uel = np.asarray(uel, dtype=np.float64)
    rule = rule_for("TET04", 4)
    shapes, _ = TET04.evaluate(rule.points)  # (4 nodes, 4 gauss)

    if geometry is None:
        grads, dets = tet4_gradients(xel)  # (nelem, 4, 3), (nelem,)
    else:
        grads, dets = geometry.gradients, geometry.dets
    vol = dets / 6.0

    # velocity gradient g[e, i, j] = sum_a grads[e, a, j] u[e, a, i]
    g = np.einsum("eaj,eai->eij", grads, uel)

    # eddy viscosity, one value per element (delta^2 = V^(2/3); cbrt keeps
    # bit-compatibility with the scalar kernels)
    delta2 = np.cbrt(vol) ** 2
    nu_t = eddy_viscosity(params.turbulence_model, g, delta2)
    mu_eff = params.density * (params.viscosity + nu_t)

    rhs = np.zeros_like(uel)
    f = np.asarray(params.body_force, dtype=np.float64)
    rho = params.density

    # Gauss loop: convective + body-force terms.
    for q in range(rule.ngauss):
        n_q = shapes[:, q]  # (4,)
        w_detj = rule.weights[q] * dets  # (nelem,)
        u_q = np.einsum("a,eai->ei", n_q, uel)  # (nelem, 3)
        conv = convective_term(params.convective_form, u_q, g)
        contrib = rho * (f[None, :] - conv)  # (nelem, 3)
        rhs += (
            w_detj[:, None, None]
            * n_q[None, :, None]
            * contrib[:, None, :]
        )

    # Viscous term with the full (symmetrized) stress: constant per element.
    sym = g + np.swapaxes(g, -1, -2)
    visc = np.einsum("eaj,eij->eai", grads, sym)
    rhs -= (vol * mu_eff)[:, None, None] * visc
    return rhs


def assemble_momentum_rhs(
    mesh: TetMesh, velocity: np.ndarray, params: AssemblyParams
) -> np.ndarray:
    """Assemble the global momentum RHS ``(nnode, 3)``.

    Uses the mesh's :class:`~repro.fem.plan.AssemblyPlan`: packed
    coordinates and P1 geometry are computed once per mesh lifetime, and
    the scatter runs through the precomputed ``bincount`` plan --
    bit-identical to the seed ``np.add.at`` reduction.
    """
    from ..fem.plan import get_plan

    velocity = np.asarray(velocity, dtype=np.float64)
    if velocity.shape != (mesh.nnode, 3):
        raise ValueError(
            f"velocity must be (nnode, 3) = ({mesh.nnode}, 3), "
            f"got {velocity.shape}"
        )
    plan = get_plan(mesh)
    xel = plan.packed_coords()
    uel = velocity[mesh.connectivity]
    elem = element_rhs(xel, uel, params, geometry=plan.geometry())
    return plan.scatter.scatter(elem.reshape(-1, 3))


def kernel_rhs_assembler(
    mesh: TetMesh,
    params: AssemblyParams,
    variant: str = "RSP",
    mode: str = "compiled",
    vector_dim=None,
    tracer=None,
    executor: str = "serial",
    num_threads=None,
    chunk_groups=None,
):
    """Build a time-integrator-compatible RHS assembler over a DSL variant.

    Returns a callable ``assemble(mesh, velocity, params) -> (nnode, 3)``
    with the signature :class:`~repro.physics.fractional_step.FractionalStepSolver`
    expects, backed by a :class:`~repro.core.unified.UnifiedAssembler` in
    the chosen ``mode`` (``"compiled"`` replays the plan-cached kernel
    tape -- zero Python-level allocation in steady state; ``"codegen"``
    runs the plan-cached exec-compiled generated kernel; ``"interpreted"``
    runs the seed per-group backend).  ``executor="threads"`` (compiled
    and codegen modes) runs the kernel in cache-sized chunks on a thread pool
    -- ``num_threads`` / ``chunk_groups`` pass through to
    :class:`~repro.core.unified.UnifiedAssembler`.  The assembler is
    bound to ``mesh`` and ``params`` at construction; calling it with
    different ones is a configuration error and raises.
    """
    from ..core.unified import UnifiedAssembler

    kwargs = {
        "vector_dim": vector_dim,
        "mode": mode,
        "executor": executor,
        "num_threads": num_threads,
        "chunk_groups": chunk_groups,
    }
    if tracer is not None:
        kwargs["tracer"] = tracer
    assembler = UnifiedAssembler(mesh, params, **kwargs)
    variant = variant.upper()

    def assemble(m: TetMesh, velocity: np.ndarray, p: AssemblyParams):
        if m is not mesh:
            raise ValueError(
                "kernel_rhs_assembler is bound to the mesh it was built "
                "for; rebuild it for a different mesh"
            )
        if p != params:
            raise ValueError(
                "kernel_rhs_assembler is bound to its construction params "
                f"(got {p!r}, expected {params!r}); rebuild it"
            )
        return assembler.assemble(variant, velocity)

    assemble.assembler = assembler  # introspection / tests
    assemble.variant = variant
    return assemble
