"""Pressure-Poisson projection step of the fractional-step scheme.

For the incompressible fractional-step method, after the explicit momentum
predictor the pressure satisfies a Poisson problem

.. math:: \\int \\nabla q \\cdot \\nabla p \\; dV
          = \\frac{\\rho}{\\Delta t} \\int q \\, \\nabla\\!\\cdot u^* \\; dV

(pure Neumann: pressure defined up to a constant).  This module assembles
the P1 stiffness (Laplacian) matrix and the divergence RHS, and solves with
AMG-preconditioned CG, projecting out the constant nullspace.

The solve climbs a degradation ladder before giving up (Alya's production
reality: a campaign must not die on one hard step): plain CG(AMG) first;
on breakdown or non-convergence, deflated CG with a piecewise-constant
coarse space from a mesh partition (Alya's own production rescue); then CG
with a stronger (more smoothing, denser-aggregation) AMG hierarchy and a
larger iteration budget.  Only when every rung fails does a structured
:class:`~repro.solvers.cg.SolverError` surface.  Each climb increments
``resilience.solver_escalations`` and emits a ``SolverEscalation`` span.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np
import scipy.sparse as sp

from ..fem.mesh import TetMesh
from ..fem.plan import GeometryCache, get_plan
from ..obs.metrics import MetricsRegistry
from ..solvers.amg import SmoothedAggregationAMG
from ..solvers.cg import SolveResult, SolverError, conjugate_gradient
from ..solvers.deflation import deflated_cg, partition_coarse_space

__all__ = ["assemble_laplacian", "divergence_rhs", "PressureSolver"]


def assemble_laplacian(
    mesh: TetMesh, geometry: Optional[GeometryCache] = None
) -> sp.csr_matrix:
    """P1 stiffness matrix ``K_ab = sum_e V_e grad N_a . grad N_b``."""
    geo = get_plan(mesh).geometry() if geometry is None else geometry
    grads, vols = geo.gradients, geo.volumes
    # elemental 4x4 blocks, vectorized
    ke = np.einsum("e,eai,ebi->eab", vols, grads, grads)
    conn = mesh.connectivity
    rows = np.repeat(conn, 4, axis=1).ravel()
    cols = np.tile(conn, (1, 4)).ravel()
    k = sp.coo_matrix(
        (ke.ravel(), (rows, cols)), shape=(mesh.nnode, mesh.nnode)
    )
    return k.tocsr()


def divergence_rhs(
    mesh: TetMesh, velocity: np.ndarray, density: float, dt: float
) -> np.ndarray:
    """RHS ``-(rho/dt) int N_a div(u) dV`` (P1, constant divergence/element).

    The sign matches the stiffness-form Poisson operator: with
    ``K_ab = int grad N_a . grad N_b`` (weakly ``-laplacian``), solving
    ``K p = -(rho/dt) int N div u`` gives ``laplacian p = (rho/dt) div u``,
    so the corrector ``u -= (dt/rho) grad p`` removes the divergence.
    """
    plan = get_plan(mesh)
    geo = plan.geometry()
    grads, vols = geo.gradients, geo.volumes
    uel = velocity[mesh.connectivity]  # (nelem, 4, 3)
    div = np.einsum("eai,eai->e", grads, uel)  # constant per element
    contrib = -(density / dt) * (vols * div) / 4.0  # N_a integrates to V/4
    return plan.scatter.scatter(np.repeat(contrib, 4))


@dataclasses.dataclass
class PressureSolver:
    """AMG-preconditioned CG solver for the pure-Neumann pressure problem.

    Parameters
    ----------
    mesh:
        The mesh; the Laplacian and AMG hierarchy are built once.
    tol, maxiter:
        CG controls.
    use_amg:
        Disable to run Jacobi-preconditioned CG instead (comparison knob
        used by the solver benchmarks).
    max_rung:
        Top rung of the degradation ladder: 0 = plain CG only (the seed
        behaviour, returning unconverged results silently), 1 = escalate
        to deflated CG, 2 (default) = also try the stronger-AMG rung.
        With ``max_rung > 0`` an exhausted ladder raises a structured
        :class:`~repro.solvers.cg.SolverError` instead of silently
        returning garbage.
    deflation_subdomains:
        Coarse-space size for the deflation rung (piecewise-constant over
        an RCB node partition).
    fault_plan:
        Optional :class:`~repro.resilience.faults.FaultPlan`; a
        ``("cg", "breakdown")`` fault sabotages the rung-0 matvec into
        non-SPD territory so chaos tests can force an escalation.
    tracer, metrics:
        Escalation observability (``SolverEscalation`` spans and the
        ``resilience.solver_escalations`` counter).
    """

    mesh: TetMesh
    tol: float = 1e-8
    maxiter: int = 500
    use_amg: bool = True
    max_rung: int = 2
    deflation_subdomains: int = 8
    fault_plan: Optional[object] = dataclasses.field(default=None, repr=False)
    tracer: Optional[object] = dataclasses.field(default=None, repr=False)
    metrics: Optional[MetricsRegistry] = dataclasses.field(
        default=None, repr=False
    )

    def __post_init__(self) -> None:
        self._plan = get_plan(self.mesh)
        self.laplacian = assemble_laplacian(
            self.mesh, geometry=self._plan.geometry()
        )
        self._amg: Optional[SmoothedAggregationAMG] = None
        if self.use_amg:
            self._amg = SmoothedAggregationAMG(self.laplacian)
        else:
            diag = self.laplacian.diagonal()
            inv = np.where(diag > 0, 1.0 / np.where(diag == 0, 1, diag), 1.0)
            self._jacobi = lambda r: inv * r
        # rescue rungs are built lazily -- a healthy campaign never pays
        # for them.
        self._deflation_basis: Optional[sp.csr_matrix] = None
        self._strong_amg: Optional[SmoothedAggregationAMG] = None

    def _project_constant(self, v: np.ndarray) -> np.ndarray:
        return v - v.mean()

    def _preconditioner(self):
        precond = (
            self._amg.as_preconditioner()
            if self._amg is not None
            else self._jacobi
        )
        return lambda r: self._project_constant(precond(r))

    # -- rescue rungs ----------------------------------------------------
    def _coarse_space(self) -> sp.csr_matrix:
        """Piecewise-constant deflation basis over an RCB node partition.

        Node labels derive deterministically from the element partition:
        each node takes the smallest label among its elements.
        """
        if self._deflation_basis is None:
            from ..parallel.partition import rcb_partition

            nsub = max(1, min(self.deflation_subdomains, self.mesh.nelem))
            elem_labels = rcb_partition(self.mesh, nsub)
            node_labels = np.full(self.mesh.nnode, np.iinfo(np.int64).max)
            np.minimum.at(
                node_labels,
                self.mesh.connectivity.ravel(),
                np.repeat(elem_labels, 4),
            )
            self._deflation_basis = partition_coarse_space(node_labels)
        return self._deflation_basis

    def _stronger_amg(self) -> SmoothedAggregationAMG:
        """Heavier hierarchy: more smoothing sweeps, denser aggregation."""
        if self._strong_amg is None:
            self._strong_amg = SmoothedAggregationAMG(
                self.laplacian,
                theta=0.04,
                presmooth=3,
                postsmooth=3,
            )
        return self._strong_amg

    def _solve_rung(
        self,
        rung: int,
        rhs: np.ndarray,
        x0: Optional[np.ndarray],
        matvec,
    ) -> SolveResult:
        if rung == 0:
            return conjugate_gradient(
                matvec,
                rhs,
                x0=x0,
                tol=self.tol,
                maxiter=self.maxiter,
                preconditioner=self._preconditioner(),
            )
        if rung == 1:
            return deflated_cg(
                self.laplacian,
                rhs,
                self._coarse_space(),
                x0=x0,
                tol=self.tol,
                maxiter=self.maxiter,
                preconditioner=self._preconditioner(),
            )
        strong = self._stronger_amg()
        return conjugate_gradient(
            lambda p: self.laplacian @ p,
            rhs,
            x0=x0,
            tol=self.tol,
            maxiter=4 * self.maxiter,
            preconditioner=lambda r: self._project_constant(strong.vcycle(r)),
        )

    _RUNG_NAMES = ("cg", "cg+deflation", "cg+strong-amg")

    def solve(
        self,
        velocity: np.ndarray,
        density: float,
        dt: float,
        x0: Optional[np.ndarray] = None,
    ) -> SolveResult:
        """Solve for the pressure given the predictor velocity.

        Escalates through the degradation ladder (see class docstring);
        the returned result carries the serving rung in ``result.rung``
        (0 = fast path).
        """
        rhs = self._project_constant(
            divergence_rhs(self.mesh, velocity, density, dt)
        )

        def matvec(p: np.ndarray) -> np.ndarray:
            return self.laplacian @ p

        sabotage = False
        if self.fault_plan is not None:
            spec = self.fault_plan.draw("cg")
            sabotage = spec is not None and spec.kind == "breakdown"
        if sabotage:
            # sabotaged operator: -A is negative semi-definite, so CG hits
            # non-positive curvature on its first iteration.
            def rung0_matvec(p: np.ndarray) -> np.ndarray:
                return -(self.laplacian @ p)
        else:
            rung0_matvec = matvec

        attempts = []
        for rung in range(self.max_rung + 1):
            try:
                result = self._solve_rung(
                    rung, rhs, x0, rung0_matvec if rung == 0 else matvec
                )
            except SolverError as exc:
                result = None
                attempts.append((self._RUNG_NAMES[rung], str(exc)))
            else:
                if result.converged and np.isfinite(result.x).all():
                    result.x = self._project_constant(result.x)
                    result.rung = rung
                    return result
                attempts.append(
                    (
                        self._RUNG_NAMES[rung],
                        f"unconverged after {result.iterations} iterations "
                        f"(residual {result.residual_norm:.3e})",
                    )
                )
            if rung == self.max_rung:
                break
            from ..resilience.ladders import record_escalation

            record_escalation(
                "SolverEscalation",
                "resilience.solver_escalations",
                self.tracer,
                self.metrics,
                from_rung=self._RUNG_NAMES[rung],
                to_rung=self._RUNG_NAMES[rung + 1],
            )

        if self.max_rung == 0 and result is not None:
            # seed behaviour: single rung, hand the unconverged result back
            result.x = self._project_constant(result.x)
            result.rung = 0
            return result
        raise SolverError(
            "pressure ladder exhausted: "
            + "; ".join(f"{name}: {why}" for name, why in attempts),
            iterations=None if result is None else result.iterations,
            residual_norm=None if result is None else result.residual_norm,
            target=self.tol,
        )

    def pressure_gradient(self, pressure: np.ndarray) -> np.ndarray:
        """Nodal (lumped) pressure gradient ``(nnode, 3)`` for the corrector.

        Computes ``int N_a dp/dx_i dV`` per node divided by the lumped mass,
        giving a nodal gradient field.
        """
        mesh = self.mesh
        geo = self._plan.geometry()
        grads, vols = geo.gradients, geo.volumes
        pel = pressure[mesh.connectivity]  # (nelem, 4)
        gp = np.einsum("eai,ea->ei", grads, pel)  # constant per element
        contrib = (vols / 4.0)[:, None, None] * gp[:, None, :].repeat(4, axis=1)
        acc = self._plan.scatter.scatter(contrib.reshape(-1, 3))
        mass = self._plan.lumped_mass()
        return acc / mass[:, None]
