"""Pressure-Poisson projection step of the fractional-step scheme.

For the incompressible fractional-step method, after the explicit momentum
predictor the pressure satisfies a Poisson problem

.. math:: \\int \\nabla q \\cdot \\nabla p \\; dV
          = \\frac{\\rho}{\\Delta t} \\int q \\, \\nabla\\!\\cdot u^* \\; dV

(pure Neumann: pressure defined up to a constant).  This module assembles
the P1 stiffness (Laplacian) matrix and the divergence RHS, and solves with
AMG-preconditioned CG, projecting out the constant nullspace.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np
import scipy.sparse as sp

from ..fem.mesh import TetMesh
from ..fem.plan import GeometryCache, get_plan
from ..solvers.amg import SmoothedAggregationAMG
from ..solvers.cg import SolveResult, conjugate_gradient

__all__ = ["assemble_laplacian", "divergence_rhs", "PressureSolver"]


def assemble_laplacian(
    mesh: TetMesh, geometry: Optional[GeometryCache] = None
) -> sp.csr_matrix:
    """P1 stiffness matrix ``K_ab = sum_e V_e grad N_a . grad N_b``."""
    geo = get_plan(mesh).geometry() if geometry is None else geometry
    grads, vols = geo.gradients, geo.volumes
    # elemental 4x4 blocks, vectorized
    ke = np.einsum("e,eai,ebi->eab", vols, grads, grads)
    conn = mesh.connectivity
    rows = np.repeat(conn, 4, axis=1).ravel()
    cols = np.tile(conn, (1, 4)).ravel()
    k = sp.coo_matrix(
        (ke.ravel(), (rows, cols)), shape=(mesh.nnode, mesh.nnode)
    )
    return k.tocsr()


def divergence_rhs(
    mesh: TetMesh, velocity: np.ndarray, density: float, dt: float
) -> np.ndarray:
    """RHS ``-(rho/dt) int N_a div(u) dV`` (P1, constant divergence/element).

    The sign matches the stiffness-form Poisson operator: with
    ``K_ab = int grad N_a . grad N_b`` (weakly ``-laplacian``), solving
    ``K p = -(rho/dt) int N div u`` gives ``laplacian p = (rho/dt) div u``,
    so the corrector ``u -= (dt/rho) grad p`` removes the divergence.
    """
    plan = get_plan(mesh)
    geo = plan.geometry()
    grads, vols = geo.gradients, geo.volumes
    uel = velocity[mesh.connectivity]  # (nelem, 4, 3)
    div = np.einsum("eai,eai->e", grads, uel)  # constant per element
    contrib = -(density / dt) * (vols * div) / 4.0  # N_a integrates to V/4
    return plan.scatter.scatter(np.repeat(contrib, 4))


@dataclasses.dataclass
class PressureSolver:
    """AMG-preconditioned CG solver for the pure-Neumann pressure problem.

    Parameters
    ----------
    mesh:
        The mesh; the Laplacian and AMG hierarchy are built once.
    tol, maxiter:
        CG controls.
    use_amg:
        Disable to run Jacobi-preconditioned CG instead (comparison knob
        used by the solver benchmarks).
    """

    mesh: TetMesh
    tol: float = 1e-8
    maxiter: int = 500
    use_amg: bool = True

    def __post_init__(self) -> None:
        self._plan = get_plan(self.mesh)
        self.laplacian = assemble_laplacian(
            self.mesh, geometry=self._plan.geometry()
        )
        self._amg: Optional[SmoothedAggregationAMG] = None
        if self.use_amg:
            self._amg = SmoothedAggregationAMG(self.laplacian)
        else:
            diag = self.laplacian.diagonal()
            inv = np.where(diag > 0, 1.0 / np.where(diag == 0, 1, diag), 1.0)
            self._jacobi = lambda r: inv * r

    def _project_constant(self, v: np.ndarray) -> np.ndarray:
        return v - v.mean()

    def solve(
        self,
        velocity: np.ndarray,
        density: float,
        dt: float,
        x0: Optional[np.ndarray] = None,
    ) -> SolveResult:
        """Solve for the pressure given the predictor velocity."""
        rhs = self._project_constant(
            divergence_rhs(self.mesh, velocity, density, dt)
        )
        precond = (
            self._amg.as_preconditioner() if self._amg is not None else self._jacobi
        )

        def matvec(p: np.ndarray) -> np.ndarray:
            return self.laplacian @ p

        result = conjugate_gradient(
            matvec,
            rhs,
            x0=x0,
            tol=self.tol,
            maxiter=self.maxiter,
            preconditioner=lambda r: self._project_constant(precond(r)),
        )
        result.x = self._project_constant(result.x)
        return result

    def pressure_gradient(self, pressure: np.ndarray) -> np.ndarray:
        """Nodal (lumped) pressure gradient ``(nnode, 3)`` for the corrector.

        Computes ``int N_a dp/dx_i dV`` per node divided by the lumped mass,
        giving a nodal gradient field.
        """
        mesh = self.mesh
        geo = self._plan.geometry()
        grads, vols = geo.gradients, geo.volumes
        pel = pressure[mesh.connectivity]  # (nelem, 4)
        gp = np.einsum("eai,ea->ei", grads, pel)  # constant per element
        contrib = (vols / 4.0)[:, None, None] * gp[:, None, :].repeat(4, axis=1)
        acc = self._plan.scatter.scatter(contrib.reshape(-1, 3))
        mass = self._plan.lumped_mass()
        return acc / mass[:, None]
