"""Subgrid-scale (LES) eddy-viscosity models.

Alya's default implementation lets the user pick among several turbulence
models at runtime and evaluates turbulent viscosity in a dedicated
subroutine at the beginning of each time step; the paper's *specialization*
hard-wires the **Vreman** model and folds its evaluation into the assembly
("calculate it directly on the fly when performing the assembly"), one value
per element because the velocity gradient is constant on linear tets.

This module provides the model zoo (the generality the baseline carries) in
vectorized numpy form, operating on per-element (or per-Gauss-point)
velocity-gradient tensors ``g[..., i, j] = du_i/dx_j``.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict

import numpy as np

__all__ = [
    "TurbulenceModel",
    "vreman_viscosity",
    "smagorinsky_viscosity",
    "wale_viscosity",
    "eddy_viscosity",
    "VREMAN_C",
    "SMAGORINSKY_CS",
]

#: Vreman model constant (c ~ 2.5 * Cs^2 with Cs = 0.17).
VREMAN_C = 0.07225

#: Classical Smagorinsky constant.
SMAGORINSKY_CS = 0.17

#: WALE constant.
WALE_CW = 0.325

_EPS = 1e-30


class TurbulenceModel(enum.IntEnum):
    """Runtime model selector (the flag specialization removes)."""

    NONE = 0
    VREMAN = 1
    SMAGORINSKY = 2
    WALE = 3


def vreman_viscosity(
    grad: np.ndarray, delta2: np.ndarray, c: float = VREMAN_C
) -> np.ndarray:
    """Vreman (2004) eddy viscosity.

    Parameters
    ----------
    grad:
        ``(..., 3, 3)`` velocity gradients ``g[i, j] = du_i/dx_j``.
    delta2:
        ``(...)`` squared filter width (element scale squared).
    c:
        Model constant.

    Notes
    -----
    With ``alpha_ij = du_j/dx_i`` (transpose of our ``grad``) and
    ``beta_ij = delta^2 alpha_mi alpha_mj``::

        B_beta = b11 b22 - b12^2 + b11 b33 - b13^2 + b22 b33 - b23^2
        nu_t   = c * sqrt(B_beta / (alpha_ij alpha_ij))

    and ``nu_t = 0`` where the gradient vanishes.  ``B_beta`` is provably
    non-negative, a property the test suite checks with hypothesis.
    """
    grad = np.asarray(grad, dtype=np.float64)
    alpha = np.swapaxes(grad, -1, -2)  # alpha_ij = du_j/dx_i
    aa = np.einsum("...ij,...ij->...", alpha, alpha)
    beta = delta2[..., None, None] * np.einsum(
        "...mi,...mj->...ij", alpha, alpha
    )
    bbeta = (
        beta[..., 0, 0] * beta[..., 1, 1]
        - beta[..., 0, 1] ** 2
        + beta[..., 0, 0] * beta[..., 2, 2]
        - beta[..., 0, 2] ** 2
        + beta[..., 1, 1] * beta[..., 2, 2]
        - beta[..., 1, 2] ** 2
    )
    # Clip tiny negative values from roundoff before the sqrt.
    bbeta = np.maximum(bbeta, 0.0)
    return np.where(aa > _EPS, c * np.sqrt(bbeta / np.maximum(aa, _EPS)), 0.0)


def smagorinsky_viscosity(
    grad: np.ndarray, delta2: np.ndarray, cs: float = SMAGORINSKY_CS
) -> np.ndarray:
    """Classical Smagorinsky: ``nu_t = (Cs^2 delta^2) |S|``,
    ``|S| = sqrt(2 S_ij S_ij)`` with the symmetric strain rate ``S``."""
    grad = np.asarray(grad, dtype=np.float64)
    sym = 0.5 * (grad + np.swapaxes(grad, -1, -2))
    smag = np.sqrt(2.0 * np.einsum("...ij,...ij->...", sym, sym))
    return (cs**2) * delta2 * smag


def wale_viscosity(
    grad: np.ndarray, delta2: np.ndarray, cw: float = WALE_CW
) -> np.ndarray:
    """WALE (wall-adapting local eddy viscosity) model.

    ``nu_t = (Cw^2 delta^2) * (Sd:Sd)^{3/2} / ((S:S)^{5/2} + (Sd:Sd)^{5/4})``
    where ``Sd`` is the traceless symmetric part of ``grad^2``.
    """
    grad = np.asarray(grad, dtype=np.float64)
    s = 0.5 * (grad + np.swapaxes(grad, -1, -2))
    g2 = np.einsum("...ik,...kj->...ij", grad, grad)
    sd = 0.5 * (g2 + np.swapaxes(g2, -1, -2))
    trace = np.einsum("...ii->...", sd) / 3.0
    sd = sd - trace[..., None, None] * np.eye(3)
    ss = np.einsum("...ij,...ij->...", s, s)
    sdsd = np.einsum("...ij,...ij->...", sd, sd)
    denom = ss**2.5 + sdsd**1.25
    return np.where(
        denom > _EPS, (cw**2) * delta2 * sdsd**1.5 / np.maximum(denom, _EPS), 0.0
    )


_MODELS: Dict[TurbulenceModel, Callable[..., np.ndarray]] = {
    TurbulenceModel.VREMAN: vreman_viscosity,
    TurbulenceModel.SMAGORINSKY: smagorinsky_viscosity,
    TurbulenceModel.WALE: wale_viscosity,
}


def eddy_viscosity(
    model: TurbulenceModel | int,
    grad: np.ndarray,
    delta2: np.ndarray,
) -> np.ndarray:
    """Dispatch on the runtime model flag (the baseline's code path)."""
    model = TurbulenceModel(model)
    if model is TurbulenceModel.NONE:
        return np.zeros(np.asarray(grad).shape[:-2])
    return _MODELS[model](grad, delta2)
