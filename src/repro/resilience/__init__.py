"""Resilience subsystem: fault injection, recovery, and degradation.

The production context of the paper -- Alya LES campaigns across thousands
of MPI ranks -- demands that a lost rank, a NaN sweep or a diverging
pressure solve degrade a run, not kill it.  This package provides

* :mod:`~repro.resilience.faults` -- deterministic, seedable fault
  injection (:class:`FaultPlan`), the driver of every chaos test;
* :mod:`~repro.resilience.checkpoint` -- atomic ``.npz`` checkpoints for
  bitwise-stable integrator restarts;
* :mod:`~repro.resilience.ladders` -- degradation ladders: the
  ``compiled -> interpreted -> reference`` assembler chain
  (:class:`ResilientAssembler`) and the shared escalation bookkeeping the
  pressure-solver ladder uses.

Recovery machinery itself lives where the failures happen: supervised
workers in :class:`repro.parallel.runner.MultiprocessRunner`,
checkpoint/rollback in
:class:`repro.physics.fractional_step.FractionalStepSolver`, and the CG
escalation ladder in :class:`repro.physics.pressure.PressureSolver`.
Every recovery action is observable through the ``resilience.*`` counters
(:data:`RESILIENCE_COUNTERS`) and marker spans.
"""

from .cancel import CancelToken, CooperativeCancel
from .checkpoint import (
    CheckpointError,
    CheckpointState,
    checkpoint_name,
    latest_checkpoint,
    list_checkpoints,
    load_checkpoint,
    prune_checkpoints,
    save_checkpoint,
)
from .faults import (
    RECOVERY_COUNTERS,
    RESILIENCE_COUNTERS,
    FaultPlan,
    FaultSpec,
    WorkerCrash,
    fault_seed_from_env,
)
from .ladders import AssemblyDegraded, ResilientAssembler, record_escalation

__all__ = [
    "AssemblyDegraded",
    "CancelToken",
    "CheckpointError",
    "CheckpointState",
    "CooperativeCancel",
    "FaultPlan",
    "FaultSpec",
    "RECOVERY_COUNTERS",
    "RESILIENCE_COUNTERS",
    "ResilientAssembler",
    "WorkerCrash",
    "checkpoint_name",
    "fault_seed_from_env",
    "latest_checkpoint",
    "list_checkpoints",
    "load_checkpoint",
    "prune_checkpoints",
    "record_escalation",
    "save_checkpoint",
]
