"""Cooperative cancellation: deadlines and drain signals that unwind cleanly.

Long-running campaign work (time integration, multiprocess sweeps, batched
assemblies) cannot be interrupted preemptively without risking corrupted
state or leaked shared-memory segments.  Instead, every long loop accepts a
:class:`CancelToken` and calls :meth:`CancelToken.check` at its natural
commit points (between time steps, between measured worker counts, between
supervision rounds).  A tripped token raises :class:`CooperativeCancel`
*there*, so the loop's own ``finally`` blocks run: pools terminate, shared
memory unlinks, checkpoints stay consistent.

Tokens carry a *reason* so the unwinding code can distinguish a missed
deadline (``"deadline"`` -- the campaign server rejects the request with a
typed ``deadline_exceeded`` error) from a graceful drain (``"drain"`` --
in-flight campaigns checkpoint their state before exiting).
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

__all__ = ["CooperativeCancel", "CancelToken"]


class CooperativeCancel(RuntimeError):
    """Raised at a cooperative checkpoint of a cancelled operation.

    ``reason`` is machine-readable (``"deadline"``, ``"drain"``,
    ``"shutdown"``, or whatever the canceller passed); ``message`` is the
    human-readable detail.
    """

    def __init__(self, reason: str, message: str = "") -> None:
        super().__init__(message or f"cancelled ({reason})")
        self.reason = reason


class CancelToken:
    """Thread-safe cancellation flag with an optional deadline.

    A token is cancelled either explicitly (:meth:`cancel`) or implicitly
    when its deadline passes -- :meth:`check` notices the expiry lazily,
    so no timer thread is needed.  Tokens cross thread boundaries freely
    (the campaign server cancels from its asyncio loop while the job runs
    in an executor thread).

    Parameters
    ----------
    deadline_s:
        Seconds from now after which :meth:`check` raises with reason
        ``"deadline"``; ``None`` means no deadline.
    clock:
        Monotonic clock, injectable for deterministic tests.
    """

    def __init__(
        self,
        deadline_s: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._reason: Optional[str] = None
        self.deadline: Optional[float] = (
            None if deadline_s is None else clock() + float(deadline_s)
        )

    def cancel(self, reason: str = "cancelled") -> None:
        """Trip the token (first reason wins; later calls are no-ops)."""
        with self._lock:
            if self._reason is None:
                self._reason = str(reason)

    @property
    def cancelled(self) -> bool:
        """True once tripped explicitly or past the deadline."""
        with self._lock:
            if self._reason is not None:
                return True
        return self.expired()

    @property
    def reason(self) -> Optional[str]:
        """The cancellation reason (``"deadline"`` for a lazy expiry)."""
        with self._lock:
            if self._reason is not None:
                return self._reason
        return "deadline" if self.expired() else None

    def expired(self) -> bool:
        return self.deadline is not None and self._clock() >= self.deadline

    def remaining(self) -> Optional[float]:
        """Seconds until the deadline (never negative); ``None`` = no
        deadline."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - self._clock())

    def check(self) -> None:
        """Raise :class:`CooperativeCancel` if cancelled or expired."""
        with self._lock:
            reason = self._reason
        if reason is not None:
            raise CooperativeCancel(reason)
        if self.expired():
            raise CooperativeCancel("deadline", "deadline exceeded")
