"""``.npz`` checkpoints for the fractional-step integrator.

A checkpoint is the *complete* restartable state of a run: velocity,
pressure, simulated time and step count, plus mesh fingerprints so a
restart against the wrong mesh fails loudly instead of producing garbage.
Arrays are stored in full float64, so a restarted run is bitwise identical
to the uninterrupted one (the chaos suite asserts exactly that).

Writes are atomic: the file is written to ``<path>.tmp`` and renamed, so a
run killed mid-checkpoint can never leave a truncated checkpoint behind --
the previous one stays valid.
"""

from __future__ import annotations

import dataclasses
import os
from typing import List, Optional

import numpy as np

__all__ = [
    "CheckpointError",
    "CheckpointState",
    "save_checkpoint",
    "load_checkpoint",
    "checkpoint_name",
    "latest_checkpoint",
    "list_checkpoints",
    "prune_checkpoints",
]

_FORMAT = "repro-checkpoint/1"


class CheckpointError(RuntimeError):
    """A checkpoint file is missing, corrupt, or from a different run."""


@dataclasses.dataclass
class CheckpointState:
    """Restartable integrator state."""

    velocity: np.ndarray
    pressure: np.ndarray
    time: float
    step: int
    nnode: int
    nelem: int

    def validate_against(self, nnode: int, nelem: int) -> None:
        if (self.nnode, self.nelem) != (nnode, nelem):
            raise CheckpointError(
                f"checkpoint is for a mesh with {self.nnode} nodes / "
                f"{self.nelem} elements, not {nnode}/{nelem}"
            )
        if self.velocity.shape != (nnode, 3):
            raise CheckpointError(
                f"checkpoint velocity shape {self.velocity.shape} != ({nnode}, 3)"
            )
        if self.pressure.shape != (nnode,):
            raise CheckpointError(
                f"checkpoint pressure shape {self.pressure.shape} != ({nnode},)"
            )


def save_checkpoint(
    path: str,
    velocity: np.ndarray,
    pressure: np.ndarray,
    time: float,
    step: int,
    nnode: int,
    nelem: int,
) -> str:
    """Write one checkpoint atomically; returns ``path``.

    Refuses non-finite state: persisting a poisoned checkpoint would turn
    a recoverable fault into an unrecoverable restart loop.
    """
    velocity = np.asarray(velocity, dtype=np.float64)
    pressure = np.asarray(pressure, dtype=np.float64)
    if not np.isfinite(velocity).all() or not np.isfinite(pressure).all():
        raise CheckpointError(
            f"{path}: refusing to checkpoint non-finite state"
        )
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        np.savez(
            fh,
            format=np.array(_FORMAT),
            velocity=velocity,
            pressure=pressure,
            time=np.float64(time),
            step=np.int64(step),
            nnode=np.int64(nnode),
            nelem=np.int64(nelem),
        )
    os.replace(tmp, path)
    return path


def load_checkpoint(path: str) -> CheckpointState:
    """Read and validate a checkpoint written by :func:`save_checkpoint`."""
    if not os.path.exists(path):
        raise CheckpointError(f"no checkpoint at {path!r}")
    try:
        with np.load(path, allow_pickle=False) as data:
            fmt = str(data["format"])
            if fmt != _FORMAT:
                raise CheckpointError(
                    f"{path}: unknown checkpoint format {fmt!r} "
                    f"(want {_FORMAT!r})"
                )
            state = CheckpointState(
                velocity=np.array(data["velocity"], dtype=np.float64),
                pressure=np.array(data["pressure"], dtype=np.float64),
                time=float(data["time"]),
                step=int(data["step"]),
                nnode=int(data["nnode"]),
                nelem=int(data["nelem"]),
            )
    except CheckpointError:
        raise
    except Exception as exc:  # truncated / not-an-npz / missing keys
        raise CheckpointError(f"{path}: unreadable checkpoint ({exc})") from exc
    if not np.isfinite(state.velocity).all() or not np.isfinite(state.pressure).all():
        raise CheckpointError(f"{path}: checkpoint contains non-finite values")
    return state


def checkpoint_name(directory: str, step: int) -> str:
    """Canonical per-step checkpoint path inside ``directory``."""
    return os.path.join(directory, f"checkpoint_{step:06d}.npz")


def list_checkpoints(directory: str) -> List[str]:
    """All checkpoint paths in ``directory``, oldest (lowest step) first."""
    if not os.path.isdir(directory):
        return []
    names = sorted(
        n
        for n in os.listdir(directory)
        if n.startswith("checkpoint_") and n.endswith(".npz")
    )
    return [os.path.join(directory, n) for n in names]


def latest_checkpoint(directory: str) -> Optional[str]:
    """Most recent (highest-step) checkpoint in ``directory``, if any."""
    names = list_checkpoints(directory)
    return names[-1] if names else None


def prune_checkpoints(directory: str, keep: int = 2) -> List[str]:
    """Delete all but the newest ``keep`` checkpoints; returns removed paths.

    Keeping at least two generations means a checkpoint that turns out to
    be unreadable (truncated by a crash mid-``os.replace`` on an exotic
    filesystem, a cosmic-ray bit flip, an operator ``truncate``) still
    leaves a previous generation for
    :meth:`~repro.physics.fractional_step.FractionalStepSolver.restart_latest`
    to fall back to.
    """
    if keep < 1:
        raise ValueError(f"prune_checkpoints: keep must be >= 1, got {keep}")
    doomed = list_checkpoints(directory)[:-keep]
    removed = []
    for path in doomed:
        try:
            os.remove(path)
        except FileNotFoundError:
            continue
        removed.append(path)
    return removed
