"""Deterministic, seedable fault injection.

Long LES campaigns on thousands of ranks fail in mundane ways: a worker
process dies or wedges, one rank runs slow, an RHS sweep produces a NaN, a
CG solve breaks down, a compiled kernel tape is corrupted in flight.  Every
recovery path in :mod:`repro` is driven by *injected* versions of those
faults so chaos tests exercise the machinery rather than hoping for it.

A :class:`FaultPlan` is a list of :class:`FaultSpec` entries plus a seed.
Injection is deterministic twice over:

* **where** a fault fires is selected by ``(site, index)`` -- the
  ``index``-th occurrence of an injection *site* (``"worker"``,
  ``"momentum_rhs"``, ``"cg"``, ``"assembler"``, ...) -- never by wall
  clock or random draw;
* **what** it does (e.g. which array lane gets the NaN) derives from the
  plan seed and the occurrence coordinates, so two runs with the same plan
  corrupt the same element.

Plans are picklable: the multiprocess runner ships them to pool workers,
where :meth:`FaultPlan.worker_fault` matches on ``(rank, attempt)`` --
attempt-indexed matching means a fault fires on the first dispatch of a
chunk and the supervised retry then succeeds, exactly the transient-failure
shape production schedulers see.

Every fired fault is appended to :attr:`FaultPlan.events` (in the firing
process) and counted in the ``resilience.faults_injected`` metric, so a
run can prove both that faults happened *and* that they were recovered.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
import time
import zlib
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs.metrics import get_registry

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "WorkerCrash",
    "RESILIENCE_COUNTERS",
    "fault_seed_from_env",
]

#: Every counter the resilience layer increments.  ``benchmarks/conftest.py``
#: pre-registers these at zero so a fault-free bench session exports an
#: explicit all-zero baseline, and ``check_regression.py`` flags any run
#: whose recovery counters are nonzero while ``faults_injected`` is zero
#: (silent degradation).
RESILIENCE_COUNTERS = (
    "resilience.faults_injected",
    "resilience.worker_failures",
    "resilience.retries",
    "resilience.respawns",
    "resilience.fallbacks",
    "resilience.rollbacks",
    "resilience.checkpoints",
    "resilience.checkpoint_fallbacks",
    "resilience.solver_escalations",
    "resilience.assembler_degradations",
    "resilience.batch_isolations",
    "resilience.validations",
    "resilience.breaker_trips",
    "resilience.breaker_reroutes",
    "resilience.breaker_resets",
)

#: Counters that indicate a recovery action was taken (subset of
#: :data:`RESILIENCE_COUNTERS`; nonzero in a fault-free run means silent
#: degradation).
RECOVERY_COUNTERS = (
    "resilience.worker_failures",
    "resilience.retries",
    "resilience.respawns",
    "resilience.fallbacks",
    "resilience.rollbacks",
    "resilience.solver_escalations",
    "resilience.assembler_degradations",
    "resilience.checkpoint_fallbacks",
    "resilience.breaker_trips",
)


def fault_seed_from_env(default: int = 1234) -> int:
    """The chaos-suite seed: ``REPRO_FAULT_SEED`` or ``default``."""
    return int(os.environ.get("REPRO_FAULT_SEED", str(default)))


class WorkerCrash(RuntimeError):
    """Injected worker crash (picklable across the pool boundary)."""


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One planned fault.

    Parameters
    ----------
    site:
        Injection site name.  Wired sites: ``"worker"`` (pool worker, via
        :meth:`FaultPlan.worker_fault`), ``"momentum_rhs"`` (RHS sweep in
        :class:`~repro.physics.fractional_step.FractionalStepSolver`),
        ``"cg"`` (pressure solve, :class:`~repro.physics.pressure.PressureSolver`),
        ``"assembler"`` (compiled/interpreted DSL assembly,
        :class:`~repro.core.unified.UnifiedAssembler`), plus the campaign
        server's service-boundary sites (:mod:`repro.server`):
        ``"server_queue"`` (queue stall before dispatch),
        ``"server_request"`` (request bytes corrupted in flight),
        ``"server_cache"`` (cached result poisoned),
        ``"server_client"`` (slow client, delayed response write) and
        ``"server_exec"`` (executor crash / slowdown while running a job).
    kind:
        ``"crash"`` -- raise :class:`WorkerCrash`; ``"exit"`` -- hard
        ``os._exit`` (dead worker, only detectable by deadline); ``"hang"``
        -- sleep past any deadline; ``"slow"`` -- sleep ``delay`` seconds
        then continue; ``"nan"``/``"inf"`` -- corrupt one array lane;
        ``"breakdown"`` -- sabotage a CG matvec into non-SPD territory;
        ``"corrupt"`` -- garble a request byte stream
        (:meth:`FaultPlan.corrupt_bytes`); ``"poison"`` -- corrupt a
        cached artifact so checksum validation must catch it.
    rank:
        Worker-rank filter (``None`` matches any rank).
    index:
        Fire on the ``index``-th occurrence of the site (for workers: the
        dispatch ``attempt`` number, so retries succeed by default).
    delay:
        Sleep seconds for ``"slow"``/``"hang"`` (hang defaults to 3600 s
        when left at 0 -- far past any sane deadline).
    """

    site: str
    kind: str
    rank: Optional[int] = None
    index: int = 0
    delay: float = 0.0

    _KINDS = (
        "crash",
        "exit",
        "hang",
        "slow",
        "nan",
        "inf",
        "breakdown",
        "corrupt",
        "poison",
    )

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{self._KINDS}"
            )

    def payload(self) -> float:
        return math.inf if self.kind == "inf" else math.nan


class FaultPlan:
    """A deterministic schedule of injected faults.

    The plan keeps per-site occurrence counters (process-local) and an
    event log of every fault that fired.  It is picklable; counters and
    events travel with the pickle but diverge per process afterwards --
    worker-side matching is therefore attempt-indexed and stateless.
    """

    def __init__(self, specs: Sequence[FaultSpec] = (), seed: int = 0) -> None:
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        self.seed = int(seed)
        self._counts: Dict[str, int] = {}
        self.events: List[Dict[str, Any]] = []

    # -- construction helpers -------------------------------------------
    @classmethod
    def single(cls, site: str, kind: str, seed: int = 0, **kw) -> "FaultPlan":
        """Plan with one fault (the common chaos-test shape)."""
        return cls([FaultSpec(site=site, kind=kind, **kw)], seed=seed)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultPlan(seed={self.seed}, specs={list(self.specs)})"

    # -- matching --------------------------------------------------------
    def occurrence(self, site: str) -> int:
        """Consume and return the next occurrence number of ``site``."""
        n = self._counts.get(site, 0)
        self._counts[site] = n + 1
        return n

    def _match(
        self, site: str, index: int, rank: Optional[int]
    ) -> Optional[FaultSpec]:
        for spec in self.specs:
            if spec.site != site or spec.index != index:
                continue
            if spec.rank is not None and rank is not None and spec.rank != rank:
                continue
            return spec
        return None

    def _record(self, spec: FaultSpec, index: int, rank: Optional[int], **detail) -> None:
        self.events.append(
            {
                "site": spec.site,
                "kind": spec.kind,
                "index": index,
                "rank": rank,
                "time_unix": time.time(),
                **detail,
            }
        )
        get_registry().counter("resilience.faults_injected").inc()

    def draw(self, site: str, rank: Optional[int] = None) -> Optional[FaultSpec]:
        """Advance the site's occurrence counter; return a firing spec or
        ``None``.  The caller is responsible for *executing* the fault."""
        index = self.occurrence(site)
        spec = self._match(site, index, rank)
        if spec is not None:
            self._record(spec, index, rank)
        return spec

    # -- array corruption ------------------------------------------------
    def corrupt(
        self, site: str, array: np.ndarray, rank: Optional[int] = None
    ) -> bool:
        """Maybe inject a NaN/Inf into ``array`` (in place).

        Returns ``True`` when a fault fired.  The corrupted flat index is
        a deterministic function of ``(seed, site, occurrence)``.
        """
        index = self.occurrence(site)
        spec = self._match(site, index, rank)
        if spec is None or spec.kind not in ("nan", "inf"):
            return False
        if array.size == 0:
            return False
        rng = np.random.default_rng(
            (self.seed * 1000003 + index) ^ zlib.crc32(site.encode())
        )
        flat = int(rng.integers(0, array.size))
        array.reshape(-1)[flat] = spec.payload()
        self._record(spec, index, rank, flat_index=flat)
        return True

    def corrupt_bytes(
        self, site: str, payload: bytes, rank: Optional[int] = None
    ) -> Tuple[bytes, bool]:
        """Maybe garble a byte payload (``"corrupt"``/``"poison"`` kinds).

        Returns ``(payload, fired)``.  The corrupted offset and the XOR
        mask derive deterministically from ``(seed, site, occurrence)``,
        so a chaos run garbles the same byte of the same request every
        time.  Empty payloads pass through untouched.
        """
        index = self.occurrence(site)
        spec = self._match(site, index, rank)
        if spec is None or spec.kind not in ("corrupt", "poison"):
            return payload, False
        if not payload:
            return payload, False
        rng = np.random.default_rng(
            (self.seed * 1000003 + index) ^ zlib.crc32(site.encode())
        )
        offset = int(rng.integers(0, len(payload)))
        mask = int(rng.integers(1, 256))
        garbled = bytearray(payload)
        garbled[offset] ^= mask
        self._record(spec, index, rank, offset=offset, mask=mask)
        return bytes(garbled), True

    # -- worker-side execution -------------------------------------------
    def worker_fault(self, rank: int, attempt: int) -> Optional[FaultSpec]:
        """Stateless worker-side match on ``(rank, attempt)``.

        Does *not* consume an occurrence counter -- worker processes are
        respawned across retries, so dispatch ``attempt`` is the only
        coordinate that survives.
        """
        return self._match("worker", attempt, rank)

    def note_worker_dispatch(self, rank: int, attempt: int) -> Optional[FaultSpec]:
        """Parent-side accounting of a worker fault about to fire.

        The worker's own event log and counters die with the worker; the
        dispatching parent calls this so ``faults_injected`` and the event
        log survive in the supervising process.
        """
        spec = self._match("worker", attempt, rank)
        if spec is not None:
            self._record(spec, attempt, rank, side="parent")
        return spec

    def execute_worker_fault(self, spec: FaultSpec, rank: int, attempt: int) -> None:
        """Run a worker fault: crash, hard-exit, hang or slow-down."""
        self._record(spec, attempt, rank)
        if spec.kind == "crash":
            raise WorkerCrash(
                f"injected crash in worker rank={rank} attempt={attempt}"
            )
        if spec.kind == "exit":
            os._exit(3)
        if spec.kind == "hang":
            time.sleep(spec.delay or 3600.0)
        elif spec.kind == "slow":
            time.sleep(spec.delay)

    # -- reporting -------------------------------------------------------
    def write_event_log(self, path: str) -> str:
        """Append-free JSONL dump of every fault fired in this process."""
        with open(path, "w", encoding="utf-8") as fh:
            for event in self.events:
                fh.write(json.dumps(event, sort_keys=True) + "\n")
        return path

    def reset(self) -> None:
        """Forget occurrence counters and events (fresh campaign)."""
        self._counts.clear()
        self.events.clear()
