"""Degradation ladders: keep producing correct answers on worse rungs.

Two ladders cover the two failure-prone fast paths the reproduction has
grown:

* **Assembler ladder** (:class:`ResilientAssembler`): the RHS assembly
  chain degrades ``compiled -> interpreted -> reference``.  Each rung is
  validated against the vectorized reference assembly on its *first*
  sweep (and never again -- validation costs one extra reference
  assembly); a rung whose output is non-finite or drifts from the
  reference is abandoned permanently for the run.  A corrupted kernel
  tape therefore costs one wasted sweep, not a wrong simulation.
* **Pressure ladder** (in :class:`repro.physics.pressure.PressureSolver`):
  CG escalates CG(AMG) -> CG+deflation -> CG(stronger AMG) before
  surfacing a structured :class:`~repro.solvers.cg.SolverError`; the
  shared :func:`record_escalation` helper makes every climb observable.

Every degradation increments ``resilience.assembler_degradations`` /
``resilience.solver_escalations`` and emits an ``AssemblerDegradation`` /
``SolverEscalation`` span, so a run that silently lost its fast path is
visible in the perf artifacts (``check_regression.py`` flags it).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..fem.mesh import TetMesh
from ..obs.metrics import MetricsRegistry, get_registry
from ..obs.spans import NULL_TRACER
from ..physics.momentum import AssemblyParams, assemble_momentum_rhs

__all__ = ["AssemblyDegraded", "ResilientAssembler", "record_escalation"]


def record_escalation(
    event: str,
    counter: str,
    tracer,
    metrics: Optional[MetricsRegistry],
    **attributes,
) -> None:
    """Count one ladder climb and emit a zero-length marker span."""
    registry = get_registry() if metrics is None else metrics
    registry.counter(counter).inc()
    tracer = NULL_TRACER if tracer is None else tracer
    with tracer.span(event, **attributes):
        pass


class AssemblyDegraded(RuntimeError):
    """Every rung of the assembler ladder failed validation."""


class ResilientAssembler:
    """Self-validating RHS assembler with a ``codegen -> compiled ->
    interpreted -> reference`` degradation ladder.

    Drop-in for the ``assemble(mesh, velocity, params)`` callable the
    :class:`~repro.physics.fractional_step.FractionalStepSolver` expects
    (also reachable as the ``"resilient[:VARIANT]"`` assembler spec).

    Parameters
    ----------
    mesh, params:
        Bound at construction, like
        :func:`~repro.physics.momentum.kernel_rhs_assembler`.
    variant:
        DSL variant for the codegen/compiled/interpreted rungs.
    modes:
        Ladder rungs, fastest first.  The terminal ``"reference"`` rung is
        its own oracle and can never fail validation.
    rtol, atol:
        Validation tolerances against the reference assembly (the DSL
        paths reassociate floating-point ops, so exact equality is not
        expected between rungs -- only between runs of the same rung).
    vector_dim:
        Optional element-group size forwarded to every DSL rung's
        :class:`~repro.core.unified.UnifiedAssembler`; ``None`` resolves
        per variant as usual.  Batched scenario isolation passes the
        batch's group size so an isolated scenario that survives on the
        fast rung stays bit-identical to a serial solve of the same
        configuration.
    fault_plan:
        Optional :class:`~repro.resilience.faults.FaultPlan`; its
        ``"assembler"`` site corrupts the DSL-rung output so chaos tests
        can force a degradation.
    """

    MODES = ("codegen", "compiled", "interpreted", "reference")

    def __init__(
        self,
        mesh: TetMesh,
        params: AssemblyParams,
        variant: str = "RSP",
        modes: Sequence[str] = MODES,
        rtol: float = 1e-8,
        atol: float = 1e-12,
        fault_plan=None,
        tracer=None,
        metrics: Optional[MetricsRegistry] = None,
        vector_dim: Optional[int] = None,
    ) -> None:
        for mode in modes:
            if mode not in self.MODES:
                raise ValueError(
                    f"unknown assembler rung {mode!r}; expected a subset "
                    f"of {self.MODES}"
                )
        if not modes or modes[-1] != "reference":
            raise ValueError("the assembler ladder must end on 'reference'")
        self.mesh = mesh
        self.params = params
        self.variant = variant.upper()
        self.modes = tuple(modes)
        self.rtol = float(rtol)
        self.atol = float(atol)
        self.fault_plan = fault_plan
        self.vector_dim = vector_dim
        self.tracer = NULL_TRACER if tracer is None else tracer
        self._metrics = metrics
        self.rung = 0
        self._validated = set()
        self._assemblers: dict = {}

    # ------------------------------------------------------------------
    @property
    def mode(self) -> str:
        """The rung currently serving assemblies."""
        return self.modes[self.rung]

    def _assembler(self, mode: str):
        """Lazy :class:`~repro.core.unified.UnifiedAssembler` per DSL rung."""
        asm = self._assemblers.get(mode)
        if asm is None:
            from ..core.unified import UnifiedAssembler

            asm = UnifiedAssembler(
                self.mesh,
                self.params,
                mode=mode,
                vector_dim=self.vector_dim,
                tracer=self.tracer,
                fault_plan=self.fault_plan,
            )
            self._assemblers[mode] = asm
        return asm

    def _assemble(self, mode: str, velocity: np.ndarray) -> np.ndarray:
        if mode == "reference":
            return assemble_momentum_rhs(self.mesh, velocity, self.params)
        return self._assembler(mode).assemble(self.variant, velocity)

    def _valid(self, rhs: np.ndarray, ref: np.ndarray) -> bool:
        if not np.isfinite(rhs).all():
            return False
        return bool(np.allclose(rhs, ref, rtol=self.rtol, atol=self.atol))

    # ------------------------------------------------------------------
    def __call__(
        self, mesh: TetMesh, velocity: np.ndarray, params: AssemblyParams
    ) -> np.ndarray:
        if mesh is not self.mesh:
            raise ValueError(
                "ResilientAssembler is bound to the mesh it was built for; "
                "rebuild it for a different mesh"
            )
        if params != self.params:
            raise ValueError(
                "ResilientAssembler is bound to its construction params "
                f"(got {params!r}, expected {self.params!r}); rebuild it"
            )
        registry = get_registry() if self._metrics is None else self._metrics
        while True:
            mode = self.modes[self.rung]
            rhs = self._assemble(mode, velocity)
            if mode == "reference" or mode in self._validated:
                return rhs
            # first sweep of a fast rung: validate against the oracle
            registry.counter("resilience.validations").inc()
            ref = assemble_momentum_rhs(self.mesh, velocity, self.params)
            if self._valid(rhs, ref):
                self._validated.add(mode)
                return rhs
            if self.rung + 1 >= len(self.modes):  # pragma: no cover - guarded
                raise AssemblyDegraded(
                    f"assembler rung {mode!r} failed validation and no "
                    "rung remains"
                )
            record_escalation(
                "AssemblerDegradation",
                "resilience.assembler_degradations",
                self.tracer,
                self._metrics,
                variant=self.variant,
                from_mode=mode,
                to_mode=self.modes[self.rung + 1],
            )
            self.rung += 1
