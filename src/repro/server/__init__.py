"""Campaign server: assembly-as-a-service with production availability.

The library layers (:mod:`repro.core`, :mod:`repro.physics`,
:mod:`repro.parallel`) answer "how fast can one assembly go"; this
package answers the operational question a shared Alya-style campaign
machine faces: how does assembly capacity stay *available* -- bounded
queues instead of latency collapse, typed rejections instead of hung
clients, circuit breakers instead of repeated failures, caches instead
of recomputation, and drains instead of kill -9.

Start one with ``python -m repro.server`` and talk to it with
:class:`CampaignClient` (see ``examples/campaign_client.py``), or embed
it with :meth:`CampaignServer.start_in_thread`.
"""

from .admission import AdmissionController
from .breaker import MODE_LADDER, CircuitBreaker
from .cache import MeshCache, ResultCache
from .client import CampaignClient
from .protocol import (
    ERROR_CODES,
    CampaignRequest,
    MeshSpec,
    ProtocolError,
    ScenarioSpec,
)
from .service import CampaignServer, ServerConfig, ServerHandle

__all__ = [
    "ERROR_CODES",
    "MODE_LADDER",
    "AdmissionController",
    "CampaignClient",
    "CampaignRequest",
    "CampaignServer",
    "CircuitBreaker",
    "MeshCache",
    "MeshSpec",
    "ProtocolError",
    "ResultCache",
    "ScenarioSpec",
    "ServerConfig",
    "ServerHandle",
]
