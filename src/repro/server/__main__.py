"""``python -m repro.server`` -- run a campaign server until drained.

SIGTERM and Ctrl-C both trigger the graceful drain: stop admitting,
finish or checkpoint in-flight campaigns, then exit 0.  The chaos knobs
(``--fault`` + ``REPRO_FAULT_SEED``) exist so the CI server job can run
the same binary it ships.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys

from ..resilience.faults import FaultPlan, FaultSpec, fault_seed_from_env
from .service import CampaignServer, ServerConfig


def _parse_fault(text: str) -> FaultSpec:
    """``site:kind[:index[:delay]]`` -> :class:`FaultSpec`."""
    parts = text.split(":")
    if len(parts) < 2:
        raise argparse.ArgumentTypeError(
            f"fault spec {text!r} must be site:kind[:index[:delay]]"
        )
    site, kind = parts[0], parts[1]
    index = int(parts[2]) if len(parts) > 2 else 0
    delay = float(parts[3]) if len(parts) > 3 else 0.0
    return FaultSpec(site=site, kind=kind, index=index, delay=delay)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Run the assembly campaign server.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8750,
                        help="0 picks an ephemeral port (printed on start)")
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--queue-depth", type=int, default=16)
    parser.add_argument("--per-tenant", type=int, default=4)
    parser.add_argument("--deadline-s", type=float, default=120.0,
                        help="default per-request deadline")
    parser.add_argument("--checkpoint-dir", default=None,
                        help="where drained campaigns checkpoint")
    parser.add_argument("--fault", action="append", type=_parse_fault,
                        default=[], metavar="SITE:KIND[:INDEX[:DELAY]]",
                        help="inject a deterministic fault (repeatable); "
                             "seeded by REPRO_FAULT_SEED")
    args = parser.parse_args(argv)

    fault_plan = None
    if args.fault:
        fault_plan = FaultPlan(args.fault, seed=fault_seed_from_env())
    config = ServerConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_queue_depth=args.queue_depth,
        max_per_tenant=args.per_tenant,
        default_deadline_s=args.deadline_s,
        checkpoint_dir=args.checkpoint_dir,
    )
    server = CampaignServer(config, fault_plan=fault_plan)

    async def _main() -> None:
        await server.start()
        # SIGTERM and Ctrl-C both schedule the graceful drain on the
        # loop itself -- no KeyboardInterrupt mid-await, so in-flight
        # campaigns checkpoint and worker tasks join before exit.
        loop = asyncio.get_running_loop()

        def _drain() -> None:
            asyncio.ensure_future(server.shutdown())

        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, _drain)
        print(json.dumps({
            "listening": f"{config.host}:{server.port}",
            "workers": config.workers,
            "queue_depth": config.max_queue_depth,
        }), flush=True)
        await server.serve_until_drained()
        print(json.dumps({"drained": True}), flush=True)

    asyncio.run(_main())
    return 0


if __name__ == "__main__":
    sys.exit(main())
