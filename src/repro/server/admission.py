"""Admission control: bounded queue, per-tenant quotas, load shedding.

The server's availability story starts at the front door.  Work is only
admitted while (a) the global in-flight count (queued + running) is
below ``max_queue_depth`` and (b) the submitting tenant is below its
``max_per_tenant`` quota -- otherwise the request is rejected *now* with
a typed code (``shed`` / ``quota_exceeded``) and a ``Retry-After`` hint,
instead of queuing into a latency cliff.

The hint is an EWMA of recent service times scaled by the queue depth:
``retry_after = ewma_service_s * (depth + 1) / workers`` -- i.e. "when
your spot in line would actually start".  It is deliberately a hint, not
a promise; its only job is to spread thundering-herd retries.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from ..obs.metrics import MetricsRegistry, get_registry
from .protocol import ProtocolError

__all__ = ["AdmissionController"]


class AdmissionController:
    """Thread-safe admission gate for the campaign server.

    :meth:`admit` either reserves a slot (caller must :meth:`release`
    it in a ``finally``) or raises a typed :class:`ProtocolError`.
    """

    def __init__(
        self,
        max_queue_depth: int = 16,
        max_per_tenant: int = 4,
        workers: int = 1,
        ewma_alpha: float = 0.3,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if max_per_tenant < 1:
            raise ValueError("max_per_tenant must be >= 1")
        self.max_queue_depth = int(max_queue_depth)
        self.max_per_tenant = int(max_per_tenant)
        self.workers = max(1, int(workers))
        self.ewma_alpha = float(ewma_alpha)
        self._metrics = metrics
        self._lock = threading.Lock()
        self._depth = 0
        self._per_tenant: Dict[str, int] = {}
        self._ewma_service_s = 0.05  # optimistic prior; converges fast
        self._draining = False

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        with self._lock:
            return self._depth

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    def start_draining(self) -> None:
        with self._lock:
            self._draining = True

    def retry_after(self) -> float:
        """Seconds until a freed slot would plausibly start serving."""
        with self._lock:
            depth = self._depth
            ewma = self._ewma_service_s
        return ewma * (depth + 1) / self.workers

    def record_service_time(self, seconds: float) -> None:
        a = self.ewma_alpha
        with self._lock:
            self._ewma_service_s = (
                a * float(seconds) + (1.0 - a) * self._ewma_service_s
            )

    # ------------------------------------------------------------------
    def admit(self, tenant: str) -> None:
        """Reserve one slot for ``tenant`` or raise a typed rejection.

        Rejections: ``draining`` (server told to stop admitting),
        ``shed`` (global queue full), ``quota_exceeded`` (tenant at its
        in-flight cap).  All carry a ``Retry-After`` hint.  The caller
        counts the rejection (one ``server.rejections.<code>`` increment
        per refused request, at the response boundary).
        """
        registry = get_registry() if self._metrics is None else self._metrics
        hint = self.retry_after()
        with self._lock:
            if self._draining:
                err = ProtocolError(
                    "draining", "server is draining; resubmit later",
                    retry_after=hint,
                )
            elif self._depth >= self.max_queue_depth:
                err = ProtocolError(
                    "shed",
                    f"queue full ({self._depth}/{self.max_queue_depth})",
                    retry_after=hint,
                )
            elif self._per_tenant.get(tenant, 0) >= self.max_per_tenant:
                err = ProtocolError(
                    "quota_exceeded",
                    f"tenant {tenant!r} at quota "
                    f"({self._per_tenant[tenant]}/{self.max_per_tenant})",
                    retry_after=hint,
                )
            else:
                self._depth += 1
                self._per_tenant[tenant] = self._per_tenant.get(tenant, 0) + 1
                registry.gauge("server.queue_depth").set(self._depth)
                return
        raise err

    def release(self, tenant: str) -> None:
        """Free a slot reserved by :meth:`admit` (call from ``finally``)."""
        registry = get_registry() if self._metrics is None else self._metrics
        with self._lock:
            self._depth = max(0, self._depth - 1)
            n = self._per_tenant.get(tenant, 0) - 1
            if n <= 0:
                self._per_tenant.pop(tenant, None)
            else:
                self._per_tenant[tenant] = n
            registry.gauge("server.queue_depth").set(self._depth)
