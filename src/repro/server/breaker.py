"""Circuit breakers per (variant, mode): stop hammering a failing rung.

The degradation ladder (:mod:`repro.resilience.ladders`) already answers
"this assembly failed -- run it some other way".  The breaker answers the
*fleet-level* question: "this rung has failed repeatedly -- stop routing
new work through it at all, for a while".  Without it, every request
pays the failed attempt before degrading; with it, the server routes
straight to the healthiest closed rung and periodically probes the
broken one.

Classic three-state machine per key:

* **closed** -- healthy, requests flow; ``failure_threshold``
  consecutive failures trip it (``resilience.breaker_trips``);
* **open** -- requests skip this rung (``resilience.breaker_reroutes``)
  until ``reset_timeout_s`` elapses;
* **half-open** -- one probe request is allowed through; success closes
  the breaker (``resilience.breaker_resets``), failure re-opens it.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Hashable, List, Optional, Tuple

from ..obs.metrics import MetricsRegistry, get_registry

__all__ = ["CircuitBreaker", "MODE_LADDER"]

#: The server's degradation ladder, fastest first.  A request's preferred
#: mode enters the ladder at its own position and degrades rightward.
MODE_LADDER: Tuple[str, ...] = (
    "codegen", "compiled", "interpreted", "reference",
)


class CircuitBreaker:
    """Keyed three-state circuit breaker (thread-safe).

    Keys are arbitrary hashables -- the server uses ``(variant, mode)``.
    """

    CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout_s = float(reset_timeout_s)
        self._clock = clock
        self._metrics = metrics
        self._lock = threading.Lock()
        # key -> [state, consecutive_failures, opened_at]
        self._states: Dict[Hashable, List] = {}

    def _registry(self) -> MetricsRegistry:
        return get_registry() if self._metrics is None else self._metrics

    def _entry(self, key: Hashable) -> List:
        return self._states.setdefault(key, [self.CLOSED, 0, 0.0])

    # ------------------------------------------------------------------
    def state(self, key: Hashable) -> str:
        """Current state, with the lazy open -> half-open transition."""
        with self._lock:
            entry = self._entry(key)
            if (
                entry[0] == self.OPEN
                and self._clock() - entry[2] >= self.reset_timeout_s
            ):
                entry[0] = self.HALF_OPEN
            return entry[0]

    def allow(self, key: Hashable) -> bool:
        """May a request be routed through ``key`` right now?

        Open breakers refuse (counted in ``resilience.breaker_reroutes``
        -- the caller is about to pick another rung); half-open admits
        the probe.
        """
        if self.state(key) != self.OPEN:
            return True
        self._registry().counter("resilience.breaker_reroutes").inc()
        return False

    def record_success(self, key: Hashable) -> None:
        with self._lock:
            entry = self._entry(key)
            was_probing = entry[0] == self.HALF_OPEN
            entry[0] = self.CLOSED
            entry[1] = 0
        if was_probing:
            self._registry().counter("resilience.breaker_resets").inc()

    def record_failure(self, key: Hashable) -> None:
        tripped = False
        with self._lock:
            entry = self._entry(key)
            if entry[0] == self.HALF_OPEN:
                # failed probe: straight back to open, fresh timeout
                entry[0] = self.OPEN
                entry[2] = self._clock()
                tripped = True
            else:
                entry[1] += 1
                if entry[1] >= self.failure_threshold:
                    entry[0] = self.OPEN
                    entry[2] = self._clock()
                    tripped = True
        if tripped:
            self._registry().counter("resilience.breaker_trips").inc()

    # ------------------------------------------------------------------
    def route(self, variant: str, preferred_mode: str) -> List[str]:
        """The rungs a request may try, healthiest-preferred order.

        Starts at ``preferred_mode``'s ladder position and walks down,
        keeping only rungs whose breaker currently admits traffic.  An
        empty list means every rung is open -- the caller rejects with
        ``breaker_open``.
        """
        if preferred_mode not in MODE_LADDER:
            raise ValueError(
                f"unknown mode {preferred_mode!r}; expected one of {MODE_LADDER}"
            )
        start = MODE_LADDER.index(preferred_mode)
        return [
            mode
            for mode in MODE_LADDER[start:]
            if self.allow((variant, mode))
        ]

    def snapshot(self) -> Dict[str, str]:
        """``{"VARIANT/mode": state}`` for the ``/stats`` endpoint."""
        with self._lock:
            keys = list(self._states)
        return {
            "/".join(str(part) for part in key): self.state(key)
            for key in keys
        }
