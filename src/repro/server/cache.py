"""Content-hash caches: meshes (and their warm plans) and finished results.

Two layers, two very different lifetimes:

* :class:`MeshCache` -- ``MeshSpec`` hash -> the constructed
  :class:`~repro.fem.mesh.TetMesh`.  This is the *performance* cache:
  :func:`repro.fem.plan.get_plan` is weak-keyed on the mesh object, so
  keeping the mesh alive keeps its :class:`~repro.fem.plan.AssemblyPlan`
  -- compiled tapes, codegen modules, autotuned winners -- hot across
  requests.  The warm-vs-cold service latency gap in ``BENCH_server.json``
  and the "zero re-plans on the second identical campaign" assertion
  (``plan.builds`` counter) both hang off this cache.
* :class:`ResultCache` -- request ``content_key`` -> finished response
  payload, stored as canonical JSON bytes **with a sha256 digest**.
  Every read re-verifies the digest; a mismatch (bit rot, or the
  ``server_cache`` fault injecting one) evicts the entry, counts
  ``server.cache.poison_detected``, and reports a miss -- the server
  recomputes rather than serving a poisoned result.

Both are bounded LRU and thread-safe (jobs run in executor threads while
the asyncio loop reads ``/stats``).
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from typing import Any, Dict, Optional

from ..obs.metrics import MetricsRegistry, get_registry
from .protocol import MeshSpec, canonical_json, sha256_hex

__all__ = ["MeshCache", "ResultCache"]


class MeshCache:
    """Bounded LRU of built meshes, keyed by the mesh spec's content."""

    def __init__(
        self,
        max_entries: int = 8,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = int(max_entries)
        self._metrics = metrics
        self._lock = threading.Lock()
        self._meshes: "OrderedDict[str, Any]" = OrderedDict()

    def _registry(self) -> MetricsRegistry:
        return get_registry() if self._metrics is None else self._metrics

    @staticmethod
    def key(spec: MeshSpec) -> str:
        return sha256_hex(canonical_json(spec.to_dict()))

    def get(self, spec: MeshSpec):
        """The (possibly cached) :class:`~repro.fem.mesh.TetMesh` for
        ``spec``; builds and caches on miss."""
        key = self.key(spec)
        registry = self._registry()
        with self._lock:
            mesh = self._meshes.get(key)
            if mesh is not None:
                self._meshes.move_to_end(key)
                registry.counter("server.cache.mesh_hits").inc()
                return mesh
        # build outside the lock: meshgen is pure and deterministic, so a
        # racing duplicate build is wasted work, not wrong work.
        from ..fem.meshgen import box_tet_mesh

        mesh = box_tet_mesh(spec.nx, spec.ny, spec.nz, lengths=spec.lengths)
        with self._lock:
            if key in self._meshes:
                self._meshes.move_to_end(key)
                return self._meshes[key]
            self._meshes[key] = mesh
            while len(self._meshes) > self.max_entries:
                self._meshes.popitem(last=False)
        registry.counter("server.cache.mesh_misses").inc()
        return mesh

    def __len__(self) -> int:
        with self._lock:
            return len(self._meshes)


class ResultCache:
    """Bounded LRU of finished result payloads with digest verification."""

    def __init__(
        self,
        max_entries: int = 64,
        metrics: Optional[MetricsRegistry] = None,
        fault_plan=None,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = int(max_entries)
        self._metrics = metrics
        self.fault_plan = fault_plan
        self._lock = threading.Lock()
        # content_key -> (payload_bytes, digest)
        self._entries: "OrderedDict[str, tuple]" = OrderedDict()

    def _registry(self) -> MetricsRegistry:
        return get_registry() if self._metrics is None else self._metrics

    def put(self, content_key: str, payload: Dict[str, Any]) -> None:
        blob = canonical_json(payload)
        digest = sha256_hex(blob)
        with self._lock:
            self._entries[content_key] = (blob, digest)
            self._entries.move_to_end(content_key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def get(self, content_key: str) -> Optional[Dict[str, Any]]:
        """The cached payload, or ``None`` on miss / detected poison.

        The stored blob is digest-checked on *every* read; the
        ``server_cache`` fault site garbles the blob between store and
        check, so chaos runs prove the poison path evicts and recomputes
        instead of serving garbage.
        """
        registry = self._registry()
        with self._lock:
            entry = self._entries.get(content_key)
            if entry is not None:
                self._entries.move_to_end(content_key)
        if entry is None:
            registry.counter("server.cache.result_misses").inc()
            return None
        blob, digest = entry
        if self.fault_plan is not None:
            blob, _ = self.fault_plan.corrupt_bytes("server_cache", blob)
        if sha256_hex(blob) != digest:
            with self._lock:
                self._entries.pop(content_key, None)
            registry.counter("server.cache.poison_detected").inc()
            registry.counter("server.cache.result_misses").inc()
            return None
        registry.counter("server.cache.result_hits").inc()
        return json.loads(blob.decode("utf-8"))

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
