"""Synchronous client for the campaign server (tests, benches, examples).

Plain ``socket`` + the same HTTP subset the server speaks; one request
per connection.  Raises :class:`~repro.server.protocol.ProtocolError`
with the server's own typed code on any rejection, so callers branch on
``exc.code`` instead of parsing messages.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Any, Dict, Optional

from .protocol import ERROR_CODES, ProtocolError

__all__ = ["CampaignClient"]


class CampaignClient:
    """Talk to a :class:`~repro.server.service.CampaignServer`."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8750, timeout: float = 30.0
    ) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)

    # -- transport ------------------------------------------------------
    def _request(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        payload = b"" if body is None else json.dumps(body).encode("utf-8")
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Content-Type: application/json\r\n"
            "Connection: close\r\n\r\n"
        ).encode("latin-1")
        with socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        ) as sock:
            sock.sendall(head + payload)
            chunks = []
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
        raw = b"".join(chunks)
        header_blob, _, rest = raw.partition(b"\r\n\r\n")
        status_line = header_blob.split(b"\r\n", 1)[0].decode("latin-1")
        try:
            status = int(status_line.split(" ")[1])
        except (IndexError, ValueError) as exc:
            raise ProtocolError(
                "internal", f"unparsable response {status_line!r}"
            ) from exc
        data = json.loads(rest.decode("utf-8")) if rest else {}
        if status >= 400:
            code = data.get("error", "internal")
            if code not in ERROR_CODES:
                code = "internal"
            raise ProtocolError(
                code,
                data.get("message", f"HTTP {status}"),
                retry_after=data.get("retry_after"),
            )
        return data

    # -- API ------------------------------------------------------------
    def submit(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Submit a campaign request; returns the submit response
        (``job_id``, ``state``, possibly ``cached``/``coalesced``)."""
        return self._request("POST", "/submit", request)

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> Dict[str, Any]:
        """Fetch a finished job's result (raises the job's typed error
        for failed/cancelled jobs)."""
        return self._request("GET", f"/jobs/{job_id}/result")

    def wait(
        self, job_id: str, timeout: float = 60.0, poll_s: float = 0.02
    ) -> Dict[str, Any]:
        """Poll until the job leaves queued/running; returns the final
        ``/jobs/<id>/result`` response (raising its typed error)."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] not in ("queued", "running"):
                return self.result(job_id)
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']} after {timeout}s"
                )
            time.sleep(poll_s)

    def run(
        self,
        request: Dict[str, Any],
        timeout: float = 60.0,
        poll_s: float = 0.02,
    ) -> Dict[str, Any]:
        """Submit and wait; returns the result response.

        A cache-hit submit comes back already ``done``; the flag is
        carried onto the result response as ``"cached": True`` so
        callers (and the cache benches) can tell a served-warm response
        from a recompute.
        """
        submitted = self.submit(request)
        if submitted.get("state") == "done":  # served from the result cache
            result = self.result(submitted["job_id"])
            if submitted.get("cached"):
                result["cached"] = True
            return result
        return self.wait(submitted["job_id"], timeout=timeout, poll_s=poll_s)

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/health")

    def stats(self) -> Dict[str, Any]:
        return self._request("GET", "/stats")

    def drain(self) -> Dict[str, Any]:
        return self._request("POST", "/drain")
