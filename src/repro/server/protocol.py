"""Wire protocol of the campaign server: schemas, error taxonomy, HTTP subset.

Everything on the wire is JSON over a minimal, dependency-free HTTP/1.1
subset (request line + headers + ``Content-Length`` body, one request per
connection) -- curl-able, but parsed with ~60 lines of stdlib instead of
a web framework the container doesn't ship.

The schema layer is strict by design: a request either round-trips
``CampaignRequest.from_dict(req.to_dict()) == req`` exactly, or raises a
:class:`ProtocolError` carrying a **typed** rejection code from
:data:`ERROR_CODES`.  There is no stringly-typed failure path -- every
way a request can be refused has exactly one code, one HTTP status, and
one ``server.rejections.<code>`` counter (asserted by the error-taxonomy
tests).

Determinism note: :meth:`CampaignRequest.content_key` hashes the
*canonical* JSON of the request minus identity/QoS fields (``tenant``,
``deadline_ms``), so two tenants submitting the same physics coalesce
onto one execution and hit one cache line.  Python's ``json`` emits
``repr``-exact floats, so a payload that crosses the wire and comes back
hashes -- and compares -- bitwise identical.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Dict, Optional, Tuple

__all__ = [
    "ERROR_CODES",
    "ProtocolError",
    "MeshSpec",
    "ScenarioSpec",
    "CampaignRequest",
    "canonical_json",
    "sha256_hex",
    "parse_http_request",
    "format_http_response",
    "error_body",
]

#: The complete rejection taxonomy: ``code -> HTTP status``.  Every
#: refusal the server can produce uses one of these codes and increments
#: ``server.rejections.<code>`` exactly once.
ERROR_CODES: Dict[str, int] = {
    "malformed": 400,          # unparsable / schema-invalid request
    "not_found": 404,          # unknown endpoint or job id
    "quota_exceeded": 429,     # tenant exceeded its in-flight quota
    "shed": 503,               # queue full: load shed with Retry-After
    "draining": 503,           # server is draining; not admitting
    "breaker_open": 503,       # every mode rung's breaker is open
    "deadline_exceeded": 504,  # request deadline passed before completion
    "internal": 500,           # executor fault that is not the client's
}


class ProtocolError(RuntimeError):
    """A typed request rejection (code from :data:`ERROR_CODES`)."""

    def __init__(
        self,
        code: str,
        message: str,
        retry_after: Optional[float] = None,
    ) -> None:
        if code not in ERROR_CODES:
            raise ValueError(f"unknown rejection code {code!r}")
        super().__init__(message)
        self.code = code
        self.status = ERROR_CODES[code]
        self.retry_after = retry_after


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise ProtocolError("malformed", message)


@dataclasses.dataclass(frozen=True)
class MeshSpec:
    """A structured box mesh, specified (not shipped) over the wire.

    The server builds it with
    :func:`repro.fem.meshgen.box_tet_mesh` -- deterministic, so the spec
    *is* the mesh for caching purposes.
    """

    nx: int
    ny: int
    nz: int
    lengths: Tuple[float, float, float] = (1.0, 1.0, 1.0)

    MAX_CELLS = 64_000  # admission guard: bigger meshes need a real queue

    def validate(self) -> None:
        for name, v in (("nx", self.nx), ("ny", self.ny), ("nz", self.nz)):
            _require(isinstance(v, int) and not isinstance(v, bool) and v >= 1,
                     f"mesh.{name} must be an integer >= 1, got {v!r}")
        _require(
            self.nx * self.ny * self.nz <= self.MAX_CELLS,
            f"mesh exceeds {self.MAX_CELLS} cells "
            f"({self.nx}x{self.ny}x{self.nz})",
        )
        _require(
            isinstance(self.lengths, tuple) and len(self.lengths) == 3,
            "mesh.lengths must be a 3-sequence",
        )
        for L in self.lengths:
            _require(
                isinstance(L, float) and L > 0.0,
                f"mesh.lengths entries must be positive numbers, got {L!r}",
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "nx": self.nx, "ny": self.ny, "nz": self.nz,
            "lengths": list(self.lengths),
        }

    @classmethod
    def from_dict(cls, data: Any) -> "MeshSpec":
        _require(isinstance(data, dict), "mesh must be an object")
        _require(
            set(data) <= {"nx", "ny", "nz", "lengths"},
            f"unknown mesh fields {sorted(set(data) - {'nx', 'ny', 'nz', 'lengths'})}",
        )
        _require(
            {"nx", "ny", "nz"} <= set(data), "mesh needs nx, ny, nz"
        )
        lengths = data.get("lengths", [1.0, 1.0, 1.0])
        _require(
            isinstance(lengths, (list, tuple)) and len(lengths) == 3,
            "mesh.lengths must be a 3-sequence",
        )
        spec = cls(
            nx=data["nx"], ny=data["ny"], nz=data["nz"],
            lengths=tuple(float(x) if isinstance(x, (int, float))
                          and not isinstance(x, bool) else x
                          for x in lengths),
        )
        spec.validate()
        return spec


@dataclasses.dataclass(frozen=True)
class ScenarioSpec:
    """One scenario's physical parameters (a wire-side
    :class:`~repro.physics.momentum.AssemblyParams` subset)."""

    density: float = 1.0
    viscosity: float = 1.0e-3
    body_force: Tuple[float, float, float] = (0.0, 0.0, 0.0)
    vreman_c: Optional[float] = None

    def validate(self) -> None:
        for name, v in (("density", self.density), ("viscosity", self.viscosity)):
            _require(
                isinstance(v, float) and v > 0.0,
                f"scenario.{name} must be a positive number, got {v!r}",
            )
        _require(
            isinstance(self.body_force, tuple) and len(self.body_force) == 3,
            "scenario.body_force must be a 3-sequence",
        )
        for f in self.body_force:
            _require(
                isinstance(f, float),
                f"scenario.body_force entries must be numbers, got {f!r}",
            )
        if self.vreman_c is not None:
            _require(
                isinstance(self.vreman_c, float) and self.vreman_c >= 0.0,
                f"scenario.vreman_c must be >= 0, got {self.vreman_c!r}",
            )

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "density": self.density,
            "viscosity": self.viscosity,
            "body_force": list(self.body_force),
        }
        if self.vreman_c is not None:
            out["vreman_c"] = self.vreman_c
        return out

    @classmethod
    def from_dict(cls, data: Any) -> "ScenarioSpec":
        _require(isinstance(data, dict), "scenario must be an object")
        allowed = {"density", "viscosity", "body_force", "vreman_c"}
        _require(
            set(data) <= allowed,
            f"unknown scenario fields {sorted(set(data) - allowed)}",
        )

        def num(v):
            if isinstance(v, bool):
                return v
            return float(v) if isinstance(v, (int, float)) else v

        bf = data.get("body_force", [0.0, 0.0, 0.0])
        _require(
            isinstance(bf, (list, tuple)) and len(bf) == 3,
            "scenario.body_force must be a 3-sequence",
        )
        vc = data.get("vreman_c")
        spec = cls(
            density=num(data.get("density", 1.0)),
            viscosity=num(data.get("viscosity", 1.0e-3)),
            body_force=tuple(num(x) for x in bf),
            vreman_c=None if vc is None else num(vc),
        )
        spec.validate()
        return spec


_KINDS = ("assemble", "batch", "campaign")
_MODES = ("codegen", "compiled", "interpreted", "reference")


@dataclasses.dataclass(frozen=True)
class CampaignRequest:
    """One unit of admitted work.

    ``kind``
        ``"assemble"`` -- one RHS assembly of scenario 0;
        ``"batch"`` -- one batched ``(S, nnode, 3)`` assembly of all
        scenarios; ``"campaign"`` -- ``steps`` lockstep time steps of a
        :class:`~repro.physics.fractional_step.BatchCampaign`.
    ``mode``
        Preferred execution mode; the server may degrade down the
        ladder (``codegen -> compiled -> interpreted -> reference``)
        when a rung's circuit breaker is open.
    ``deadline_ms``
        Server-side deadline from admission; propagated into the
        executor as a :class:`~repro.resilience.cancel.CancelToken`.
    ``return_field``
        Include the full result field in the response (JSON floats
        round-trip exactly, so the field is bitwise-faithful); the
        sha256 checksum is always included.
    """

    kind: str
    mesh: MeshSpec
    scenarios: Tuple[ScenarioSpec, ...] = (ScenarioSpec(),)
    variant: str = "RSP"
    mode: str = "compiled"
    steps: int = 0
    dt: Optional[float] = None
    velocity_seed: int = 0
    vector_dim: Optional[int] = None
    tenant: str = "default"
    deadline_ms: Optional[float] = None
    return_field: bool = False

    def validate(self) -> None:
        _require(self.kind in _KINDS, f"kind must be one of {_KINDS}, got {self.kind!r}")
        _require(self.mode in _MODES, f"mode must be one of {_MODES}, got {self.mode!r}")
        self.mesh.validate()
        _require(len(self.scenarios) >= 1, "at least one scenario required")
        _require(len(self.scenarios) <= 64, "at most 64 scenarios per request")
        for s in self.scenarios:
            s.validate()
        _require(
            isinstance(self.variant, str) and self.variant.isalpha(),
            f"variant must be an alphabetic string, got {self.variant!r}",
        )
        _require(
            isinstance(self.steps, int) and not isinstance(self.steps, bool)
            and 0 <= self.steps <= 1000,
            f"steps must be an integer in [0, 1000], got {self.steps!r}",
        )
        if self.kind == "campaign":
            _require(self.steps >= 1, "campaign requests need steps >= 1")
        if self.dt is not None:
            _require(
                isinstance(self.dt, float) and self.dt > 0.0,
                f"dt must be a positive number, got {self.dt!r}",
            )
        _require(
            isinstance(self.velocity_seed, int)
            and not isinstance(self.velocity_seed, bool),
            f"velocity_seed must be an integer, got {self.velocity_seed!r}",
        )
        if self.vector_dim is not None:
            _require(
                isinstance(self.vector_dim, int)
                and not isinstance(self.vector_dim, bool)
                and 1 <= self.vector_dim <= 4096,
                f"vector_dim must be an integer in [1, 4096], got {self.vector_dim!r}",
            )
        _require(
            isinstance(self.tenant, str) and 1 <= len(self.tenant) <= 64,
            "tenant must be a 1..64 character string",
        )
        if self.deadline_ms is not None:
            _require(
                isinstance(self.deadline_ms, float) and self.deadline_ms > 0.0,
                f"deadline_ms must be a positive number, got {self.deadline_ms!r}",
            )
        _require(
            isinstance(self.return_field, bool),
            "return_field must be a boolean",
        )

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "kind": self.kind,
            "mesh": self.mesh.to_dict(),
            "scenarios": [s.to_dict() for s in self.scenarios],
            "variant": self.variant,
            "mode": self.mode,
            "steps": self.steps,
            "velocity_seed": self.velocity_seed,
            "tenant": self.tenant,
            "return_field": self.return_field,
        }
        if self.dt is not None:
            out["dt"] = self.dt
        if self.vector_dim is not None:
            out["vector_dim"] = self.vector_dim
        if self.deadline_ms is not None:
            out["deadline_ms"] = self.deadline_ms
        return out

    @classmethod
    def from_dict(cls, data: Any) -> "CampaignRequest":
        _require(isinstance(data, dict), "request must be a JSON object")
        allowed = {
            "kind", "mesh", "scenarios", "variant", "mode", "steps", "dt",
            "velocity_seed", "vector_dim", "tenant", "deadline_ms",
            "return_field",
        }
        _require(
            set(data) <= allowed,
            f"unknown request fields {sorted(set(data) - allowed)}",
        )
        _require("kind" in data and "mesh" in data, "request needs kind and mesh")
        raw_scenarios = data.get("scenarios", [{}])
        _require(
            isinstance(raw_scenarios, list) and raw_scenarios,
            "scenarios must be a non-empty list",
        )

        def num(v):
            if isinstance(v, bool):
                return v
            return float(v) if isinstance(v, (int, float)) else v

        dt = data.get("dt")
        deadline = data.get("deadline_ms")
        req = cls(
            kind=data["kind"],
            mesh=MeshSpec.from_dict(data["mesh"]),
            scenarios=tuple(ScenarioSpec.from_dict(s) for s in raw_scenarios),
            variant=data.get("variant", "RSP"),
            mode=data.get("mode", "compiled"),
            steps=data.get("steps", 0),
            dt=None if dt is None else num(dt),
            velocity_seed=data.get("velocity_seed", 0),
            vector_dim=data.get("vector_dim"),
            tenant=data.get("tenant", "default"),
            deadline_ms=None if deadline is None else num(deadline),
            return_field=data.get("return_field", False),
        )
        req.validate()
        return req

    @classmethod
    def from_json(cls, payload: bytes) -> "CampaignRequest":
        try:
            data = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError("malformed", f"invalid JSON: {exc}") from exc
        return cls.from_dict(data)

    def content_key(self) -> str:
        """Identity-free content hash (coalescing / result-cache key)."""
        content = self.to_dict()
        content.pop("tenant", None)
        content.pop("deadline_ms", None)
        return sha256_hex(canonical_json(content))


def canonical_json(obj: Any) -> bytes:
    """Sorted-key, minimal-separator JSON bytes (stable hash input)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode("utf-8")


def sha256_hex(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()


# ---------------------------------------------------------------------------
# Minimal HTTP/1.1 subset
# ---------------------------------------------------------------------------

MAX_BODY_BYTES = 4 * 1024 * 1024
_STATUS_TEXT = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
    504: "Gateway Timeout",
}


def parse_http_request(
    head: bytes,
) -> Tuple[str, str, Dict[str, str]]:
    """Parse a request head (through the blank line) into
    ``(method, path, headers)``; raises :class:`ProtocolError` on junk."""
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError as exc:  # pragma: no cover - latin-1 total
        raise ProtocolError("malformed", "undecodable request head") from exc
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError("malformed", f"bad request line {lines[0]!r}")
    method, path = parts[0].upper(), parts[1]
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError("malformed", f"bad header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    length = headers.get("content-length", "0")
    try:
        n = int(length)
    except ValueError:
        raise ProtocolError(
            "malformed", f"bad Content-Length {length!r}"
        ) from None
    if n < 0 or n > MAX_BODY_BYTES:
        raise ProtocolError(
            "malformed", f"Content-Length {n} outside [0, {MAX_BODY_BYTES}]"
        )
    return method, path, headers


def format_http_response(
    status: int,
    body: Dict[str, Any],
    retry_after: Optional[float] = None,
) -> bytes:
    """One JSON response, ``Connection: close`` (one request per
    connection keeps the server ~200 lines instead of a framework)."""
    payload = json.dumps(body, sort_keys=True).encode("utf-8")
    headers = [
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(payload)}",
        "Connection: close",
    ]
    if retry_after is not None:
        headers.append(f"Retry-After: {max(0.0, retry_after):.3f}")
    return "\r\n".join(headers).encode("latin-1") + b"\r\n\r\n" + payload


def error_body(exc: ProtocolError) -> Dict[str, Any]:
    """The canonical rejection body: ``{"error": code, "message": ...}``."""
    body: Dict[str, Any] = {"error": exc.code, "message": str(exc)}
    if exc.retry_after is not None:
        body["retry_after"] = exc.retry_after
    return body
