"""The campaign server: an always-available assembly-as-a-service layer.

One asyncio TCP server speaking the :mod:`repro.server.protocol` HTTP
subset, fronting the existing execution stack
(:class:`~repro.core.unified.UnifiedAssembler`,
:class:`~repro.physics.fractional_step.BatchCampaign`) with the
production concerns the library layer deliberately doesn't have:

* **admission control** (:mod:`repro.server.admission`) -- bounded
  queue, per-tenant quotas, load shedding with ``Retry-After``;
* **deadlines** -- each admitted job carries a
  :class:`~repro.resilience.cancel.CancelToken`; expiry surfaces as a
  typed ``deadline_exceeded`` rejection, never a wedged slot;
* **circuit breakers** (:mod:`repro.server.breaker`) per
  ``(variant, mode)``, routing work down the mode ladder away from
  repeatedly-failing rungs;
* **content caches** (:mod:`repro.server.cache`) -- warm meshes/plans
  and digest-verified finished results, plus in-flight coalescing of
  identical submissions;
* **graceful drain** -- stop admitting, cancel queued work with typed
  rejections, checkpoint in-flight campaigns, join every worker task.

Endpoints: ``POST /submit``, ``GET /jobs/<id>``,
``GET /jobs/<id>/result``, ``GET /health``, ``GET /stats``,
``POST /drain``.  Everything is observable through ``server.*`` and
``resilience.*`` metrics in :mod:`repro.obs`.

Results are **bitwise-faithful**: the executor runs the exact library
code paths, the response carries the sha256 of the raw result bytes, and
(with ``return_field``) the field itself as repr-exact JSON floats --
the integration tests assert byte equality against direct library calls.
"""

from __future__ import annotations

import asyncio
import dataclasses
import itertools
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional

import numpy as np

from ..obs.metrics import MetricsRegistry, get_registry
from ..obs.spans import NULL_TRACER
from ..resilience.cancel import CancelToken, CooperativeCancel
from ..resilience.ladders import record_escalation
from .admission import AdmissionController
from .breaker import CircuitBreaker
from .cache import MeshCache, ResultCache
from .protocol import (
    ERROR_CODES,
    CampaignRequest,
    ProtocolError,
    error_body,
    format_http_response,
    parse_http_request,
    sha256_hex,
)

__all__ = ["ServerConfig", "CampaignServer", "ServerHandle"]


@dataclasses.dataclass(frozen=True)
class ServerConfig:
    """SLO and sizing knobs of one :class:`CampaignServer`.

    ``max_stall_s`` / ``slow_client_s`` clamp the *injected*
    ``server_queue`` / ``server_client`` fault delays so chaos tests
    stay fast while still exercising the timeout paths.
    """

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral (the bound port lands on server.port)
    workers: int = 1
    max_queue_depth: int = 16
    max_per_tenant: int = 4
    breaker_threshold: int = 3
    breaker_reset_s: float = 30.0
    default_deadline_s: float = 120.0
    max_stall_s: float = 0.25
    slow_client_s: float = 0.2
    mesh_cache_entries: int = 8
    result_cache_entries: int = 64
    checkpoint_dir: Optional[str] = None


class _JobCheckpointed(Exception):
    """Internal: a drained campaign checkpointed instead of finishing."""

    def __init__(self, paths: List[str]) -> None:
        super().__init__(f"checkpointed {len(paths)} scenarios")
        self.paths = paths


@dataclasses.dataclass
class _Job:
    id: str
    request: CampaignRequest
    content_key: str
    cancel: CancelToken
    state: str = "queued"  # queued|running|done|failed|cancelled|checkpointed
    result: Optional[Dict[str, Any]] = None
    error: Optional[Dict[str, Any]] = None
    checkpoints: Optional[List[str]] = None
    submitted_at: float = dataclasses.field(default_factory=time.monotonic)

    def status(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"job_id": self.id, "state": self.state}
        if self.error is not None:
            # flatten to the canonical rejection shape: {"error": code,
            # "message": ...} -- same as an immediate HTTP rejection.
            out.update(self.error)
        if self.checkpoints is not None:
            out["checkpoints"] = self.checkpoints
        return out


class CampaignServer:
    """Asyncio campaign server over a local TCP socket.

    Use :meth:`start_in_thread` from synchronous code (tests, benches,
    the CLI wraps the asyncio entrypoints directly).
    """

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        fault_plan=None,
        metrics: Optional[MetricsRegistry] = None,
        tracer=None,
    ) -> None:
        self.config = config or ServerConfig()
        self.fault_plan = fault_plan
        self._metrics = metrics
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.admission = AdmissionController(
            max_queue_depth=self.config.max_queue_depth,
            max_per_tenant=self.config.max_per_tenant,
            workers=self.config.workers,
            metrics=metrics,
        )
        self.breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_threshold,
            reset_timeout_s=self.config.breaker_reset_s,
            metrics=metrics,
        )
        self.mesh_cache = MeshCache(
            max_entries=self.config.mesh_cache_entries, metrics=metrics
        )
        self.result_cache = ResultCache(
            max_entries=self.config.result_cache_entries,
            metrics=metrics,
            fault_plan=fault_plan,
        )
        self.jobs: Dict[str, _Job] = {}
        self.port: Optional[int] = None
        self._ids = itertools.count(1)
        self._inflight: Dict[str, str] = {}  # content_key -> job_id
        self._queue: Optional[asyncio.Queue] = None
        self._worker_tasks: List[asyncio.Task] = []
        self._server: Optional[asyncio.base_events.Server] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._drained = asyncio.Event()
        self._stopped = asyncio.Event()
        self._lock = threading.Lock()  # guards jobs/_inflight across threads

    def _registry(self) -> MetricsRegistry:
        return get_registry() if self._metrics is None else self._metrics

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> None:
        """Bind the socket and start the worker tasks."""
        self._queue = asyncio.Queue()
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="campaign-exec",
        )
        self._worker_tasks = [
            asyncio.create_task(self._worker(), name=f"campaign-worker-{i}")
            for i in range(self.config.workers)
        ]
        self._server = await asyncio.start_server(
            self._handle_conn, host=self.config.host, port=self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_until_drained(self) -> None:
        """Serve until :meth:`shutdown` completes (the CLI entrypoint)."""
        await self._stopped.wait()

    async def drain(self) -> Dict[str, Any]:
        """Graceful drain: reject queued work, checkpoint in-flight
        campaigns, join every worker task.

        The listener stays open so clients can still fetch job status,
        results and checkpoint paths (and get typed ``draining``
        rejections for new work); :meth:`shutdown` closes it.
        Idempotent; returns a summary for the ``/drain`` response.  On
        return there are **no** live worker tasks or executor threads --
        the no-leak tests assert exactly that.
        """
        self.admission.start_draining()
        rejected = []
        # queued jobs never started: typed `draining` rejection.
        while self._queue is not None and not self._queue.empty():
            job_id = self._queue.get_nowait()
            if job_id is None:
                continue
            job = self.jobs[job_id]
            job.state = "cancelled"
            job.error = {
                "error": "draining",
                "message": "server drained before the job started",
            }
            self._registry().counter("server.rejections.draining").inc()
            self._finish_job(job)
            self._queue.task_done()
            rejected.append(job_id)
        # running jobs: cooperative cancel with reason "drain" --
        # campaigns checkpoint at the next step boundary.
        running = [j for j in self.jobs.values() if j.state == "running"]
        for job in running:
            job.cancel.cancel("drain")
        if self._worker_tasks:
            for _ in self._worker_tasks:
                self._queue.put_nowait(None)
            await asyncio.gather(*self._worker_tasks)
            self._worker_tasks = []
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self._drained.set()
        return {
            "draining": True,
            "rejected_queued": rejected,
            "cancelled_running": [j.id for j in running],
        }

    async def shutdown(self) -> Dict[str, Any]:
        """Drain, then close the listening socket and release the loop."""
        summary = await self.drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._stopped.set()
        return summary

    def _finish_job(self, job: _Job) -> None:
        self.admission.release(job.request.tenant)
        with self._lock:
            if self._inflight.get(job.content_key) == job.id:
                self._inflight.pop(job.content_key, None)

    # -- connection handling --------------------------------------------
    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        registry = self._registry()
        registry.counter("server.requests").inc()
        try:
            try:
                head = await asyncio.wait_for(
                    reader.readuntil(b"\r\n\r\n"), timeout=10.0
                )
                method, path, headers = parse_http_request(head)
                n = int(headers.get("content-length", "0"))
                body = await asyncio.wait_for(
                    reader.readexactly(n), timeout=10.0
                ) if n else b""
            except ProtocolError:
                raise
            except (asyncio.IncompleteReadError, asyncio.LimitOverrunError,
                    asyncio.TimeoutError, ValueError) as exc:
                raise ProtocolError(
                    "malformed", f"bad request framing: {exc}"
                ) from exc
            # chaos: garble the body in flight -- must surface as a typed
            # `malformed` rejection, never a 500 or a hung connection.
            if self.fault_plan is not None and body:
                body, _ = self.fault_plan.corrupt_bytes("server_request", body)
            response = await self._dispatch(method, path, body)
        except ProtocolError as exc:
            registry.counter(f"server.rejections.{exc.code}").inc()
            response = format_http_response(
                exc.status, error_body(exc), retry_after=exc.retry_after
            )
        except Exception as exc:  # never leak a traceback onto the wire
            err = ProtocolError("internal", f"{type(exc).__name__}: {exc}")
            registry.counter("server.rejections.internal").inc()
            response = format_http_response(err.status, error_body(err))
        # chaos: slow client -- response write is delayed but bounded, so
        # one slow reader cannot wedge the accept loop.
        if self.fault_plan is not None:
            spec = self.fault_plan.draw("server_client")
            if spec is not None and spec.kind in ("slow", "hang"):
                await asyncio.sleep(
                    min(spec.delay or self.config.slow_client_s,
                        self.config.slow_client_s)
                )
        try:
            writer.write(response)
            await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _dispatch(self, method: str, path: str, body: bytes) -> bytes:
        if method == "POST" and path == "/submit":
            return await self._submit(body)
        if method == "POST" and path == "/drain":
            summary = await self.drain()
            return format_http_response(200, summary)
        if method == "GET" and path == "/health":
            return format_http_response(200, self._health())
        if method == "GET" and path == "/stats":
            return format_http_response(200, self._stats())
        if method == "GET" and path.startswith("/jobs/"):
            rest = path[len("/jobs/"):]
            if rest.endswith("/result"):
                return self._job_result(rest[: -len("/result")])
            return self._job_status(rest)
        raise ProtocolError("not_found", f"no endpoint {method} {path}")

    # -- endpoints ------------------------------------------------------
    async def _submit(self, body: bytes) -> bytes:
        registry = self._registry()
        request = CampaignRequest.from_json(body)
        content_key = request.content_key()
        # cached result: served even under full queue or drain -- no work
        # is admitted, so availability of warm content never degrades.
        cached = self.result_cache.get(content_key)
        if cached is not None:
            job = self._new_job(request, content_key, admitted=False)
            job.state = "done"
            job.result = cached
            return format_http_response(
                200, {**job.status(), "cached": True}
            )
        # in-flight coalescing: identical physics rides the same job.
        with self._lock:
            leader_id = self._inflight.get(content_key)
        if leader_id is not None and self.jobs[leader_id].state in (
            "queued", "running"
        ):
            registry.counter("server.coalesced").inc()
            return format_http_response(
                202, {"job_id": leader_id, "state": self.jobs[leader_id].state,
                      "coalesced": True}
            )
        self.admission.admit(request.tenant)  # raises typed rejections
        job = self._new_job(request, content_key, admitted=True)
        with self._lock:
            self._inflight[content_key] = job.id
        await self._queue.put(job.id)
        return format_http_response(202, job.status())

    def _new_job(
        self, request: CampaignRequest, content_key: str, admitted: bool
    ) -> _Job:
        deadline_s = (
            request.deadline_ms / 1000.0
            if request.deadline_ms is not None
            else self.config.default_deadline_s
        )
        job = _Job(
            id=f"job-{next(self._ids):06d}",
            request=request,
            content_key=content_key,
            cancel=CancelToken(deadline_s=deadline_s if admitted else None),
        )
        with self._lock:
            self.jobs[job.id] = job
        return job

    def _job_status(self, job_id: str) -> bytes:
        job = self.jobs.get(job_id)
        if job is None:
            raise ProtocolError("not_found", f"no job {job_id!r}")
        return format_http_response(200, job.status())

    def _job_result(self, job_id: str) -> bytes:
        job = self.jobs.get(job_id)
        if job is None:
            raise ProtocolError("not_found", f"no job {job_id!r}")
        if job.state == "done":
            return format_http_response(
                200, {**job.status(), "result": job.result}
            )
        if job.state in ("queued", "running"):
            return format_http_response(202, job.status())
        # failed / cancelled / checkpointed: replay the typed error.
        body = job.status()
        status = 500
        if job.error is not None:
            status = ERROR_CODES.get(job.error.get("error", "internal"), 500)
        return format_http_response(status, body)

    def _health(self) -> Dict[str, Any]:
        return {
            "status": "draining" if self.admission.draining else "ok",
            "queue_depth": self.admission.depth,
            "workers": self.config.workers,
            "retry_after_hint": self.admission.retry_after(),
        }

    def _stats(self) -> Dict[str, Any]:
        snap = self._registry().snapshot()
        interesting = {
            name: data
            for name, data in snap.items()
            if name.startswith(("server.", "resilience.", "plan."))
        }
        by_state: Dict[str, int] = {}
        with self._lock:
            for job in self.jobs.values():
                by_state[job.state] = by_state.get(job.state, 0) + 1
        return {
            "metrics": interesting,
            "breakers": self.breaker.snapshot(),
            "jobs": by_state,
            "mesh_cache_entries": len(self.mesh_cache),
            "result_cache_entries": len(self.result_cache),
            "queue_depth": self.admission.depth,
        }

    # -- job execution --------------------------------------------------
    async def _worker(self) -> None:
        while True:
            job_id = await self._queue.get()
            if job_id is None:
                self._queue.task_done()
                return
            job = self.jobs[job_id]
            try:
                await self._run_job(job)
            finally:
                self._finish_job(job)
                self._queue.task_done()

    async def _run_job(self, job: _Job) -> None:
        registry = self._registry()
        # chaos: queue stall before dispatch (clamped, then the deadline
        # check below turns an over-long stall into a typed rejection).
        if self.fault_plan is not None:
            spec = self.fault_plan.draw("server_queue")
            if spec is not None and spec.kind in ("hang", "slow"):
                await asyncio.sleep(
                    min(spec.delay or self.config.max_stall_s,
                        self.config.max_stall_s)
                )
        if job.cancel.cancelled:
            reason = job.cancel.reason
            code = "deadline_exceeded" if reason == "deadline" else "draining"
            job.state = "cancelled"
            job.error = {"error": code, "message": f"cancelled before start ({reason})"}
            registry.counter(f"server.rejections.{code}").inc()
            registry.counter("server.jobs_cancelled").inc()
            return
        job.state = "running"
        t0 = time.monotonic()
        loop = asyncio.get_running_loop()
        try:
            payload = await loop.run_in_executor(
                self._executor, self._run_job_sync, job
            )
        except _JobCheckpointed as exc:
            job.state = "checkpointed"
            job.checkpoints = exc.paths
            registry.counter("server.jobs_checkpointed").inc()
            return
        except CooperativeCancel as exc:
            code = (
                "deadline_exceeded" if exc.reason == "deadline" else "draining"
            )
            job.state = "cancelled"
            job.error = {"error": code, "message": str(exc)}
            registry.counter(f"server.rejections.{code}").inc()
            registry.counter("server.jobs_cancelled").inc()
            return
        except ProtocolError as exc:
            job.state = "failed"
            job.error = error_body(exc)
            registry.counter(f"server.rejections.{exc.code}").inc()
            registry.counter("server.jobs_failed").inc()
            return
        except Exception as exc:
            job.state = "failed"
            job.error = {
                "error": "internal",
                "message": f"{type(exc).__name__}: {exc}",
            }
            registry.counter("server.rejections.internal").inc()
            registry.counter("server.jobs_failed").inc()
            return
        seconds = time.monotonic() - t0
        job.result = payload
        job.state = "done"
        self.result_cache.put(job.content_key, payload)
        self.admission.record_service_time(seconds)
        registry.counter("server.jobs_completed").inc()
        registry.histogram("server.service_seconds").record(seconds)

    # -- synchronous execution (runs in the executor thread) ------------
    def _run_job_sync(self, job: _Job) -> Dict[str, Any]:
        from ..core.unified import SpecializationError
        from ..physics.momentum import VREMAN_C, AssemblyParams

        req = job.request
        if self.fault_plan is not None:
            spec = self.fault_plan.draw("server_exec")
            if spec is not None:
                if spec.kind in ("slow", "hang"):
                    time.sleep(min(spec.delay or self.config.max_stall_s,
                                   self.config.max_stall_s))
                elif spec.kind in ("crash", "exit"):
                    raise ProtocolError(
                        "internal", "injected executor crash"
                    )
        job.cancel.check()
        mesh = self.mesh_cache.get(req.mesh)
        params = [
            AssemblyParams(
                density=s.density,
                viscosity=s.viscosity,
                body_force=s.body_force,
                vreman_c=VREMAN_C if s.vreman_c is None else s.vreman_c,
            )
            for s in req.scenarios
        ]
        rng = np.random.default_rng(req.velocity_seed)
        velocity = 0.1 * rng.standard_normal((mesh.nnode, 3))
        modes = self.breaker.route(req.variant, req.mode)
        if req.kind == "campaign":
            # BatchCampaign drives UnifiedAssembler directly; "reference"
            # is not an assembler mode, so the campaign ladder bottoms
            # out at interpreted.
            modes = [m for m in modes if m != "reference"]
        if not modes:
            raise ProtocolError(
                "breaker_open",
                f"every mode rung for variant {req.variant!r} is open",
            )
        last_error: Optional[Exception] = None
        for mode in modes:
            job.cancel.check()
            try:
                payload = self._execute(req, mesh, params, velocity, mode, job)
            except (CooperativeCancel, _JobCheckpointed):
                raise
            except SpecializationError as exc:
                # the requested variant cannot represent the requested
                # physics (specialized constants differ) -- a client
                # error, not a rung failure: no breaker, no degradation.
                raise ProtocolError("malformed", str(exc)) from exc
            except Exception as exc:
                last_error = exc
                self.breaker.record_failure((req.variant, mode))
                record_escalation(
                    "AssemblerDegradation",
                    "resilience.assembler_degradations",
                    self.tracer,
                    self._metrics,
                    variant=req.variant,
                    mode=mode,
                    reason=f"{type(exc).__name__}: {exc}",
                )
                continue
            self.breaker.record_success((req.variant, mode))
            payload["mode"] = mode
            payload["degraded"] = mode != req.mode
            return payload
        raise ProtocolError(
            "internal",
            f"all rungs failed for variant {req.variant!r} "
            f"(last: {type(last_error).__name__}: {last_error})",
        )

    def _execute(
        self,
        req: CampaignRequest,
        mesh,
        params: List,
        velocity: np.ndarray,
        mode: str,
        job: _Job,
    ) -> Dict[str, Any]:
        if req.kind == "assemble":
            rhs = self._assemble_once(req, mesh, params[0], velocity, mode)
            return self._field_payload(req, rhs, kind="assemble")
        if req.kind == "batch":
            rhs = self._assemble_batch(req, mesh, params, velocity, mode)
            return self._field_payload(req, rhs, kind="batch")
        return self._run_campaign(req, mesh, params, velocity, mode, job)

    def _assemble_once(self, req, mesh, p, velocity, mode) -> np.ndarray:
        if mode == "reference":
            from ..physics.momentum import assemble_momentum_rhs

            rhs = assemble_momentum_rhs(mesh, velocity, p)
        else:
            from ..core.unified import UnifiedAssembler

            asm = UnifiedAssembler(
                mesh, p, mode=mode, vector_dim=req.vector_dim,
                tracer=self.tracer, fault_plan=self.fault_plan,
            )
            rhs = asm.assemble(req.variant, velocity)
        if not np.isfinite(rhs).all():
            raise RuntimeError(f"non-finite RHS from mode {mode!r}")
        return rhs

    def _assemble_batch(self, req, mesh, params, velocity, mode) -> np.ndarray:
        if mode == "reference":
            from ..physics.momentum import assemble_momentum_rhs

            rhs = np.stack([
                assemble_momentum_rhs(mesh, velocity, p) for p in params
            ])
        else:
            from ..core.batch import ScenarioBatch
            from ..core.unified import UnifiedAssembler

            asm = UnifiedAssembler(
                mesh, params[0], mode=mode, vector_dim=req.vector_dim,
                tracer=self.tracer, fault_plan=self.fault_plan,
            )
            rhs = asm.run_batch(req.variant, ScenarioBatch(params), velocity)
        if not np.isfinite(rhs).all():
            raise RuntimeError(f"non-finite batch RHS from mode {mode!r}")
        return rhs

    def _run_campaign(
        self, req, mesh, params, velocity, mode, job
    ) -> Dict[str, Any]:
        from ..physics.fractional_step import BatchCampaign

        campaign = BatchCampaign(
            mesh,
            params,
            variant=req.variant,
            mode=mode,
            vector_dim=req.vector_dim,
            tracer=self.tracer,
            metrics=self._metrics,
        )
        campaign.set_velocities(velocity)
        try:
            reports = campaign.run(
                req.steps, dt=req.dt, cancel=job.cancel
            )
        except CooperativeCancel as exc:
            if (
                exc.reason == "drain"
                and self.config.checkpoint_dir is not None
            ):
                directory = os.path.join(self.config.checkpoint_dir, job.id)
                raise _JobCheckpointed(campaign.checkpoint(directory)) from exc
            raise
        final = campaign.velocities()
        if not np.isfinite(final).all():
            raise RuntimeError(f"non-finite campaign state from mode {mode!r}")
        payload = self._field_payload(req, final, kind="campaign")
        payload["steps"] = len(reports)
        payload["kinetic_energy"] = [
            sv.kinetic_energy() for sv in campaign.solvers
        ]
        payload["detached"] = list(campaign.detached)
        return payload

    def _field_payload(
        self, req: CampaignRequest, field: np.ndarray, kind: str
    ) -> Dict[str, Any]:
        field = np.ascontiguousarray(field, dtype=np.float64)
        payload: Dict[str, Any] = {
            "kind": kind,
            "variant": req.variant,
            "shape": list(field.shape),
            "sha256": sha256_hex(field.tobytes()),
            "sum": [float(x) for x in field.reshape(-1, 3).sum(axis=0)],
        }
        if req.return_field:
            payload["field"] = field.tolist()
        return payload

    # -- synchronous embedding ------------------------------------------
    def start_in_thread(self) -> "ServerHandle":
        """Run the server on a dedicated event-loop thread.

        Returns a :class:`ServerHandle` once the socket is bound --
        the pattern tests, benches and examples use to talk to a live
        server from synchronous code.
        """
        started = threading.Event()
        failure: List[BaseException] = []
        handle = ServerHandle(self)

        async def _main() -> None:
            try:
                await self.start()
            except BaseException as exc:  # pragma: no cover - bind errors
                failure.append(exc)
                started.set()
                raise
            handle.loop = asyncio.get_running_loop()
            started.set()
            await self.serve_until_drained()

        def _runner() -> None:
            try:
                asyncio.run(_main())
            except BaseException as exc:  # pragma: no cover
                if not failure:
                    failure.append(exc)
                started.set()

        handle.thread = threading.Thread(
            target=_runner, name="campaign-server", daemon=True
        )
        handle.thread.start()
        started.wait(timeout=30.0)
        if failure:
            raise failure[0]
        if self.port is None:
            raise RuntimeError("campaign server failed to bind")
        return handle


class ServerHandle:
    """Synchronous handle to a server running on its own loop thread."""

    def __init__(self, server: CampaignServer) -> None:
        self.server = server
        self.thread: Optional[threading.Thread] = None
        self.loop: Optional[asyncio.AbstractEventLoop] = None

    @property
    def port(self) -> int:
        assert self.server.port is not None
        return self.server.port

    def stop(self, timeout: float = 30.0) -> None:
        """Drain the server and join its thread (idempotent)."""
        if self.thread is None or not self.thread.is_alive():
            return
        assert self.loop is not None
        future = asyncio.run_coroutine_threadsafe(
            self.server.shutdown(), self.loop
        )
        future.result(timeout=timeout)
        self.thread.join(timeout=timeout)
        if self.thread.is_alive():  # pragma: no cover - diagnostics only
            raise RuntimeError("campaign server thread failed to stop")
