"""Linear-algebra substrate: CG, preconditioners, smoothed-aggregation AMG
and deflated CG for the pressure-Poisson problem."""

from .cg import SolveResult, SolverError, conjugate_gradient
from .precond import ilu0, jacobi, ssor
from .amg import AmgLevel, SmoothedAggregationAMG
from .deflation import deflated_cg, partition_coarse_space

__all__ = [
    "SolveResult", "SolverError", "conjugate_gradient",
    "ilu0", "jacobi", "ssor",
    "AmgLevel", "SmoothedAggregationAMG",
    "deflated_cg", "partition_coarse_space",
]
