"""Smoothed-aggregation algebraic multigrid.

The paper points at AMG4PSBLAS for the exascale pressure solve; this module
is the native substrate standing in for it: a classical smoothed-aggregation
AMG (Vanek/Mandel/Brezina) with

* greedy strength-based aggregation,
* Jacobi-smoothed tentative prolongators,
* damped-Jacobi pre/post smoothing,
* a dense coarse solve (pseudo-inverse, so the singular pure-Neumann
  pressure operator works),

usable standalone (``solve``) or as a CG preconditioner (``as_preconditioner``),
which is how :mod:`repro.physics.pressure` uses it.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional

import numpy as np
import scipy.sparse as sp

from .cg import SolveResult

__all__ = ["AmgLevel", "SmoothedAggregationAMG"]


@dataclasses.dataclass
class AmgLevel:
    """One level of the multigrid hierarchy."""

    a: sp.csr_matrix
    prolongator: Optional[sp.csr_matrix]  # None on the coarsest level
    diag_inv: np.ndarray


def _strength_graph(a: sp.csr_matrix, theta: float) -> sp.csr_matrix:
    """Symmetric strength-of-connection filter: keep ``|a_ij| >=
    theta * sqrt(a_ii a_jj)``."""
    d = np.sqrt(np.abs(a.diagonal()))
    coo = a.tocoo()
    scale = d[coo.row] * d[coo.col]
    keep = (np.abs(coo.data) >= theta * scale) & (coo.row != coo.col)
    return sp.csr_matrix(
        (np.ones(keep.sum()), (coo.row[keep], coo.col[keep])), shape=a.shape
    )


def _aggregate(strength: sp.csr_matrix) -> np.ndarray:
    """Greedy aggregation; returns aggregate id per node (-1 never remains)."""
    n = strength.shape[0]
    agg = np.full(n, -1, dtype=np.int64)
    indptr, indices = strength.indptr, strength.indices
    next_agg = 0
    # pass 1: roots with fully-unaggregated neighbourhoods
    for i in range(n):
        if agg[i] != -1:
            continue
        nbrs = indices[indptr[i] : indptr[i + 1]]
        if (agg[nbrs] == -1).all():
            agg[i] = next_agg
            agg[nbrs] = next_agg
            next_agg += 1
    # pass 2: attach stragglers to a neighbouring aggregate
    for i in range(n):
        if agg[i] != -1:
            continue
        nbrs = indices[indptr[i] : indptr[i + 1]]
        assigned = nbrs[agg[nbrs] != -1]
        if len(assigned):
            agg[i] = agg[assigned[0]]
        else:
            agg[i] = next_agg
            next_agg += 1
    return agg


class SmoothedAggregationAMG:
    """Smoothed-aggregation AMG hierarchy for an SPD (or singular
    consistent) sparse matrix.

    Parameters
    ----------
    a:
        System matrix (CSR convertible).
    theta:
        Strength threshold for aggregation.
    omega:
        Damping of the prolongator smoother and of the Jacobi smoother.
    max_levels, coarse_size:
        Hierarchy limits.
    presmooth, postsmooth:
        Damped-Jacobi sweeps per side.
    """

    def __init__(
        self,
        a: sp.spmatrix,
        theta: float = 0.08,
        omega: float = 2.0 / 3.0,
        max_levels: int = 10,
        coarse_size: int = 64,
        presmooth: int = 1,
        postsmooth: int = 1,
    ) -> None:
        self.omega = float(omega)
        self.presmooth = int(presmooth)
        self.postsmooth = int(postsmooth)
        self.levels: List[AmgLevel] = []

        current = sp.csr_matrix(a, dtype=np.float64)
        for _ in range(max_levels):
            diag = current.diagonal()
            diag_inv = np.where(diag != 0.0, 1.0 / np.where(diag == 0, 1, diag), 0.0)
            if current.shape[0] <= coarse_size:
                self.levels.append(AmgLevel(current, None, diag_inv))
                break
            strength = _strength_graph(current, theta)
            agg = _aggregate(strength)
            nagg = int(agg.max()) + 1
            if nagg >= current.shape[0]:  # aggregation stalled
                self.levels.append(AmgLevel(current, None, diag_inv))
                break
            tentative = sp.csr_matrix(
                (
                    np.ones(current.shape[0]),
                    (np.arange(current.shape[0]), agg),
                ),
                shape=(current.shape[0], nagg),
            )
            # Jacobi-smoothed prolongator: P = (I - w D^-1 A) T
            dinv_a = sp.diags(diag_inv) @ current
            prolongator = (
                tentative - self.omega * (dinv_a @ tentative)
            ).tocsr()
            self.levels.append(AmgLevel(current, prolongator, diag_inv))
            current = (prolongator.T @ current @ prolongator).tocsr()
        else:
            diag = current.diagonal()
            diag_inv = np.where(diag != 0.0, 1.0 / np.where(diag == 0, 1, diag), 0.0)
            self.levels.append(AmgLevel(current, None, diag_inv))

        # dense coarse pseudo-inverse handles the singular Neumann operator
        self._coarse_pinv = np.linalg.pinv(
            self.levels[-1].a.toarray(), rcond=1e-10
        )

    # ------------------------------------------------------------------
    @property
    def num_levels(self) -> int:
        return len(self.levels)

    def operator_complexity(self) -> float:
        """Total nonzeros over all levels / fine-level nonzeros."""
        fine = self.levels[0].a.nnz
        return sum(l.a.nnz for l in self.levels) / max(1, fine)

    # ------------------------------------------------------------------
    def _smooth(self, level: AmgLevel, x: np.ndarray, b: np.ndarray, sweeps: int) -> np.ndarray:
        for _ in range(sweeps):
            x = x + self.omega * level.diag_inv * (b - level.a @ x)
        return x

    def _cycle(self, k: int, b: np.ndarray) -> np.ndarray:
        level = self.levels[k]
        if level.prolongator is None:
            return self._coarse_pinv @ b
        x = np.zeros_like(b)
        x = self._smooth(level, x, b, self.presmooth)
        residual = b - level.a @ x
        coarse = self._cycle(k + 1, level.prolongator.T @ residual)
        x = x + level.prolongator @ coarse
        x = self._smooth(level, x, b, self.postsmooth)
        return x

    def vcycle(self, b: np.ndarray) -> np.ndarray:
        """One V-cycle applied to the residual equation ``A e = b``."""
        return self._cycle(0, np.asarray(b, dtype=np.float64))

    # ------------------------------------------------------------------
    def as_preconditioner(self) -> Callable[[np.ndarray], np.ndarray]:
        """Return a V-cycle callable for :func:`~repro.solvers.cg.conjugate_gradient`."""
        return self.vcycle

    def solve(
        self,
        b: np.ndarray,
        x0: Optional[np.ndarray] = None,
        tol: float = 1e-8,
        maxiter: int = 100,
    ) -> SolveResult:
        """Stationary V-cycle iteration (no Krylov acceleration)."""
        a = self.levels[0].a
        b = np.asarray(b, dtype=np.float64)
        x = np.zeros_like(b) if x0 is None else np.array(x0, dtype=np.float64)
        bnorm = float(np.linalg.norm(b)) or 1.0
        history = []
        for it in range(maxiter + 1):
            r = b - a @ x
            rnorm = float(np.linalg.norm(r))
            history.append(rnorm)
            if rnorm <= tol * bnorm:
                return SolveResult(x, it, rnorm, True, history)
            x = x + self.vcycle(r)
        return SolveResult(x, maxiter, history[-1], False, history)
