"""Conjugate-gradient solvers for the pressure-Poisson system.

The paper's fractional-step scheme solves a linear system for the pressure
each step; it is "usually not computationally demanding" thanks to the small
LES time steps, and the authors plan to delegate it to AMG libraries
(AMG4PSBLAS).  This substrate provides a native preconditioned CG so the
end-to-end examples run, with convergence histories for the tests.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Union

import numpy as np
import scipy.sparse as sp

from ..obs.metrics import MetricsRegistry, get_registry
from ..obs.spans import NULL_TRACER

__all__ = ["SolveResult", "conjugate_gradient", "SolverError"]

LinearOperator = Union[np.ndarray, sp.spmatrix, Callable[[np.ndarray], np.ndarray]]


class SolverError(RuntimeError):
    """An iterative solver failed to converge (or broke down).

    Carries the solve state at failure so telemetry and error handlers can
    diagnose without re-running: ``iterations`` done, ``residual_norm``
    reached, the full ``residual_history``, and the convergence ``target``.
    """

    def __init__(
        self,
        message: str,
        iterations: Optional[int] = None,
        residual_norm: Optional[float] = None,
        residual_history: Optional[List[float]] = None,
        target: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.iterations = iterations
        self.residual_norm = residual_norm
        self.residual_history = list(residual_history or [])
        self.target = target

    def context(self) -> dict:
        """Structured failure context (JSON-ready, history tail capped)."""
        return {
            "iterations": self.iterations,
            "residual_norm": self.residual_norm,
            "target": self.target,
            "residual_history": self.residual_history[-32:],
        }


@dataclasses.dataclass
class SolveResult:
    """Outcome of an iterative solve.

    ``rung`` records which rung of a degradation ladder served the solve
    (0 = fast path; see :class:`repro.physics.pressure.PressureSolver`).
    """

    x: np.ndarray
    iterations: int
    residual_norm: float
    converged: bool
    residual_history: List[float]
    rung: int = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SolveResult(iters={self.iterations}, "
            f"res={self.residual_norm:.3e}, converged={self.converged})"
        )


def _as_operator(a: LinearOperator) -> Callable[[np.ndarray], np.ndarray]:
    if callable(a):
        return a
    return lambda v: a @ v


def conjugate_gradient(
    a: LinearOperator,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-8,
    atol: float = 0.0,
    maxiter: int = 1000,
    preconditioner: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    raise_on_fail: bool = False,
    tracer=None,
    metrics: Optional[MetricsRegistry] = None,
) -> SolveResult:
    """Preconditioned conjugate gradients for SPD systems.

    Parameters
    ----------
    a:
        SPD matrix (dense/sparse) or matvec callable.
    b:
        Right-hand side.
    x0:
        Initial guess (zeros by default).
    tol, atol:
        Convergence when ``||r|| <= max(tol * ||b||, atol)``.
    preconditioner:
        Callable applying ``M^{-1}``; identity if omitted.
    raise_on_fail:
        Raise :class:`SolverError` instead of returning an unconverged
        result.
    tracer:
        Optional :class:`repro.obs.Tracer`; when enabled the solve is
        recorded as a ``cg_solve`` span with iteration/residual attributes.
    metrics:
        Registry receiving ``cg.solves``, ``cg.iterations``,
        ``cg.failures`` counters and the ``cg.residual_norm`` /
        ``cg.solve_iterations`` histograms; defaults to the process-wide
        registry (:func:`repro.obs.get_registry`).

    Notes
    -----
    Singular-but-consistent systems (the pure-Neumann pressure problem) are
    handled by the caller projecting the nullspace out of ``b`` and of the
    iterates; see :mod:`repro.physics.pressure`.
    """
    tracer = NULL_TRACER if tracer is None else tracer
    registry = get_registry() if metrics is None else metrics

    def record(result: Optional[SolveResult], span=None, error: str = "") -> None:
        registry.counter("cg.solves").inc()
        if result is not None:
            registry.counter("cg.iterations").inc(result.iterations)
            registry.histogram("cg.solve_iterations").record(result.iterations)
            registry.histogram("cg.residual_norm").record(result.residual_norm)
            if not result.converged:
                registry.counter("cg.failures").inc()
            if span is not None:
                span.attributes.update(
                    iterations=result.iterations,
                    residual_norm=result.residual_norm,
                    converged=result.converged,
                )
        else:
            registry.counter("cg.failures").inc()
            if span is not None:
                span.attributes["error"] = error

    with tracer.span("cg_solve", n=int(np.asarray(b).shape[0])) as span:
        matvec = _as_operator(a)
        b = np.asarray(b, dtype=np.float64)
        x = np.zeros_like(b) if x0 is None else np.array(x0, dtype=np.float64)
        r = b - matvec(x)
        bnorm = float(np.linalg.norm(b))
        target = max(tol * bnorm, atol)
        if bnorm == 0.0:
            result = SolveResult(x * 0.0, 0, 0.0, True, [0.0])
            record(result, span)
            return result

        z = preconditioner(r) if preconditioner is not None else r
        p = z.copy()
        rz = float(r @ z)
        history = [float(np.linalg.norm(r))]
        if history[-1] <= target:
            result = SolveResult(x, 0, history[-1], True, history)
            record(result, span)
            return result

        for it in range(1, maxiter + 1):
            ap = matvec(p)
            pap = float(p @ ap)
            if pap <= 0.0:
                if raise_on_fail:
                    record(None, span, error="breakdown")
                    raise SolverError(
                        f"CG breakdown: non-positive curvature p.Ap={pap:.3e} "
                        f"at iteration {it} (matrix not SPD?)",
                        iterations=it,
                        residual_norm=history[-1],
                        residual_history=history,
                        target=target,
                    )
                result = SolveResult(x, it, history[-1], False, history)
                record(result, span)
                return result
            alpha = rz / pap
            x += alpha * p
            r -= alpha * ap
            rnorm = float(np.linalg.norm(r))
            history.append(rnorm)
            if rnorm <= target:
                result = SolveResult(x, it, rnorm, True, history)
                record(result, span)
                return result
            z = preconditioner(r) if preconditioner is not None else r
            rz_new = float(r @ z)
            beta = rz_new / rz
            rz = rz_new
            p = z + beta * p

        if raise_on_fail:
            record(None, span, error="no_convergence")
            raise SolverError(
                f"CG did not converge in {maxiter} iterations "
                f"(residual {history[-1]:.3e}, target {target:.3e})",
                iterations=maxiter,
                residual_norm=history[-1],
                residual_history=history,
                target=target,
            )
        result = SolveResult(x, maxiter, history[-1], False, history)
        record(result, span)
        return result
