"""Conjugate-gradient solvers for the pressure-Poisson system.

The paper's fractional-step scheme solves a linear system for the pressure
each step; it is "usually not computationally demanding" thanks to the small
LES time steps, and the authors plan to delegate it to AMG libraries
(AMG4PSBLAS).  This substrate provides a native preconditioned CG so the
end-to-end examples run, with convergence histories for the tests.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Union

import numpy as np
import scipy.sparse as sp

__all__ = ["SolveResult", "conjugate_gradient", "SolverError"]

LinearOperator = Union[np.ndarray, sp.spmatrix, Callable[[np.ndarray], np.ndarray]]


class SolverError(RuntimeError):
    """Raised when an iterative solver fails to converge."""


@dataclasses.dataclass
class SolveResult:
    """Outcome of an iterative solve."""

    x: np.ndarray
    iterations: int
    residual_norm: float
    converged: bool
    residual_history: List[float]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SolveResult(iters={self.iterations}, "
            f"res={self.residual_norm:.3e}, converged={self.converged})"
        )


def _as_operator(a: LinearOperator) -> Callable[[np.ndarray], np.ndarray]:
    if callable(a):
        return a
    return lambda v: a @ v


def conjugate_gradient(
    a: LinearOperator,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-8,
    atol: float = 0.0,
    maxiter: int = 1000,
    preconditioner: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    raise_on_fail: bool = False,
) -> SolveResult:
    """Preconditioned conjugate gradients for SPD systems.

    Parameters
    ----------
    a:
        SPD matrix (dense/sparse) or matvec callable.
    b:
        Right-hand side.
    x0:
        Initial guess (zeros by default).
    tol, atol:
        Convergence when ``||r|| <= max(tol * ||b||, atol)``.
    preconditioner:
        Callable applying ``M^{-1}``; identity if omitted.
    raise_on_fail:
        Raise :class:`SolverError` instead of returning an unconverged
        result.

    Notes
    -----
    Singular-but-consistent systems (the pure-Neumann pressure problem) are
    handled by the caller projecting the nullspace out of ``b`` and of the
    iterates; see :mod:`repro.physics.pressure`.
    """
    matvec = _as_operator(a)
    b = np.asarray(b, dtype=np.float64)
    x = np.zeros_like(b) if x0 is None else np.array(x0, dtype=np.float64)
    r = b - matvec(x)
    bnorm = float(np.linalg.norm(b))
    target = max(tol * bnorm, atol)
    if bnorm == 0.0:
        return SolveResult(x * 0.0, 0, 0.0, True, [0.0])

    z = preconditioner(r) if preconditioner is not None else r
    p = z.copy()
    rz = float(r @ z)
    history = [float(np.linalg.norm(r))]
    if history[-1] <= target:
        return SolveResult(x, 0, history[-1], True, history)

    for it in range(1, maxiter + 1):
        ap = matvec(p)
        pap = float(p @ ap)
        if pap <= 0.0:
            if raise_on_fail:
                raise SolverError(
                    f"CG breakdown: non-positive curvature p.Ap={pap:.3e} "
                    f"at iteration {it} (matrix not SPD?)"
                )
            return SolveResult(x, it, history[-1], False, history)
        alpha = rz / pap
        x += alpha * p
        r -= alpha * ap
        rnorm = float(np.linalg.norm(r))
        history.append(rnorm)
        if rnorm <= target:
            return SolveResult(x, it, rnorm, True, history)
        z = preconditioner(r) if preconditioner is not None else r
        rz_new = float(r @ z)
        beta = rz_new / rz
        rz = rz_new
        p = z + beta * p

    if raise_on_fail:
        raise SolverError(
            f"CG did not converge in {maxiter} iterations "
            f"(residual {history[-1]:.3e}, target {target:.3e})"
        )
    return SolveResult(x, maxiter, history[-1], False, history)
