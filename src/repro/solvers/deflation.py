"""Deflated conjugate gradients.

Alya's production pressure solver uses deflated CG with a coarse space from
mesh partitioning; this substrate implements the standard A-orthogonal
deflation projector for a user-supplied coarse basis ``W`` (columns):

    P = I - A W (W^T A W)^{-1} W^T

CG then runs on the deflated operator, and the coarse component is added
back at the end.  The default coarse space is piecewise-constant over a
node partition, which removes the smallest eigenmodes of the Poisson
operator (including the constant nullspace of the pure-Neumann problem).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np
import scipy.sparse as sp

from .cg import SolveResult, conjugate_gradient

__all__ = ["partition_coarse_space", "deflated_cg"]


def partition_coarse_space(labels: np.ndarray) -> sp.csr_matrix:
    """Piecewise-constant coarse basis from a node partition.

    ``labels[i]`` is the subdomain of node ``i``; the result is the
    ``(n, nsub)`` 0/1 indicator matrix.
    """
    labels = np.asarray(labels, dtype=np.int64)
    nsub = int(labels.max()) + 1 if labels.size else 0
    n = labels.shape[0]
    return sp.csr_matrix(
        (np.ones(n), (np.arange(n), labels)), shape=(n, nsub)
    )


def deflated_cg(
    a: sp.spmatrix,
    b: np.ndarray,
    w: sp.spmatrix,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-8,
    maxiter: int = 1000,
    preconditioner: Optional[Callable[[np.ndarray], np.ndarray]] = None,
) -> SolveResult:
    """Deflated preconditioned CG.

    Parameters
    ----------
    a:
        SPD (or consistent singular) sparse matrix.
    b:
        Right-hand side.
    w:
        ``(n, k)`` coarse basis (sparse).
    x0:
        Initial guess for the inner CG iterate (the coarse add-back is
        valid for any iterate, so a warm start passes straight through).
    """
    a = sp.csr_matrix(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    aw = a @ w  # (n, k) sparse
    coarse = (w.T @ aw).toarray()
    coarse_pinv = np.linalg.pinv(coarse, rcond=1e-12)

    def project(r: np.ndarray) -> np.ndarray:
        """P^T r = r - A W E^{-1} W^T r."""
        return r - aw @ (coarse_pinv @ (w.T @ r))

    def deflated_matvec(v: np.ndarray) -> np.ndarray:
        return project(a @ v)

    result = conjugate_gradient(
        deflated_matvec,
        project(b),
        x0=None if x0 is None else np.asarray(x0, dtype=np.float64),
        tol=tol,
        maxiter=maxiter,
        preconditioner=preconditioner,
    )
    # add back the coarse component: x = W E^{-1} W^T b + P x_cg
    x = result.x - w @ (coarse_pinv @ (w.T @ (a @ result.x)))
    x = x + w @ (coarse_pinv @ (w.T @ b))
    return SolveResult(
        x=x,
        iterations=result.iterations,
        residual_norm=result.residual_norm,
        converged=result.converged,
        residual_history=result.residual_history,
    )
