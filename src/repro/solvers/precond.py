"""Preconditioners for the CG pressure solver."""

from __future__ import annotations

from typing import Callable

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

__all__ = ["jacobi", "ssor", "ilu0"]


def jacobi(a: sp.spmatrix) -> Callable[[np.ndarray], np.ndarray]:
    """Diagonal (Jacobi) preconditioner ``M^{-1} r = r / diag(A)``."""
    d = np.asarray(a.diagonal(), dtype=np.float64)
    if (d == 0).any():
        raise ValueError("Jacobi preconditioner: zero diagonal entry")
    inv = 1.0 / d

    def apply(r: np.ndarray) -> np.ndarray:
        return inv * r

    return apply


def ssor(a: sp.spmatrix, omega: float = 1.0) -> Callable[[np.ndarray], np.ndarray]:
    """Symmetric SOR preconditioner.

    ``M = (D + wL) D^{-1} (D + wU) / (w (2 - w))``, applied as
    ``M^{-1} r = w (2 - w) (D + wU)^{-1} D (D + wL)^{-1} r`` via two
    triangular solves.  ``omega`` in (0, 2); symmetric for SPD ``A``.
    """
    if not 0.0 < omega < 2.0:
        raise ValueError("SSOR relaxation factor must be in (0, 2)")
    a = a.tocsr()
    d = np.asarray(a.diagonal(), dtype=np.float64)
    if (d == 0).any():
        raise ValueError("SSOR preconditioner: zero diagonal entry")
    dmat = sp.diags(d)
    lower_strict = sp.tril(a, k=-1)
    upper_strict = sp.triu(a, k=1)
    lw = (dmat + omega * lower_strict).tocsr()
    uw = (dmat + omega * upper_strict).tocsr()
    scale = omega * (2.0 - omega)

    def apply(r: np.ndarray) -> np.ndarray:
        y = spla.spsolve_triangular(lw, r, lower=True)
        y = d * y
        return scale * spla.spsolve_triangular(uw, y, lower=False)

    return apply


def ilu0(a: sp.spmatrix, **kwargs) -> Callable[[np.ndarray], np.ndarray]:
    """Incomplete-LU preconditioner via scipy's ``spilu`` (fill-in 0-ish).

    Extra keyword arguments go to :func:`scipy.sparse.linalg.spilu`.
    """
    kwargs.setdefault("fill_factor", 10.0)
    kwargs.setdefault("drop_tol", 1e-5)
    ilu = spla.spilu(a.tocsc(), **kwargs)

    def apply(r: np.ndarray) -> np.ndarray:
        return ilu.solve(r)

    return apply
